"""Content-addressed scheduling: keys, resume, and trace invariance.

The contracts under test:

* stage keys chain through upstream *output* hashes, so editing one
  stage re-keys exactly its descendants;
* scheduling knobs (:class:`~repro.dag.RunContext`) never enter keys;
* re-running a completed run executes **zero** stages, and its merged
  ledger is byte-identical to the original — the trace cannot tell a
  cached stage from an executed one.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import (
    DagSpec,
    DagStore,
    RunContext,
    StageSpec,
    register_stage_kind,
    run_dag,
    stage_key,
)
from repro.exceptions import DagError
from repro.obs.ledger import RunLedger

from . import toy_kinds  # noqa: F401


def _diamond(bias: int = 1) -> DagSpec:
    return DagSpec(
        name="diamond",
        stages=(
            StageSpec(name="a", kind="toy-emit",
                      config={"tag": "a", "value": 3}),
            StageSpec(name="b", kind="toy-combine", depends_on=("a",),
                      config={"bias": bias}),
            StageSpec(name="c", kind="toy-combine", depends_on=("a",),
                      config={"bias": 10}),
            StageSpec(name="d", kind="toy-combine", depends_on=("b", "c")),
        ),
    )


class TestStageKeys:
    def test_key_ignores_context(self):
        spec = _diamond()
        key = stage_key(spec.stage("a"), {})
        # Keys must be independent of every scheduling knob.
        assert key == stage_key(spec.stage("a"), {})
        run1 = run_dag(spec, context=RunContext(jobs=1))
        run2 = run_dag(spec, context=RunContext(jobs=4, cache_root="/x"))
        assert run1.keys == run2.keys
        assert run1.artifacts == run2.artifacts

    def test_config_change_rekeys_descendants_only(self):
        base = run_dag(_diamond(bias=1))
        edited = run_dag(_diamond(bias=2))
        assert edited.keys["a"] == base.keys["a"]
        assert edited.keys["c"] == base.keys["c"]
        assert edited.keys["b"] != base.keys["b"]
        assert edited.keys["d"] != base.keys["d"]  # via b's output hash

    def test_key_chains_output_hash_not_key(self):
        """Same-output stages under different keys share downstream keys."""
        spec_a = DagSpec(name="x", stages=(
            StageSpec(name="src", kind="toy-emit",
                      config={"tag": "one", "value": 7}),
            StageSpec(name="sink", kind="toy-combine", depends_on=("src",)),
        ))
        spec_b = DagSpec(name="x", stages=(
            StageSpec(name="src", kind="toy-emit",
                      config={"tag": "two", "value": 7}),  # same output
            StageSpec(name="sink", kind="toy-combine", depends_on=("src",)),
        ))
        run_a, run_b = run_dag(spec_a), run_dag(spec_b)
        assert run_a.keys["src"] != run_b.keys["src"]
        assert run_a.output_hashes["src"] == run_b.output_hashes["src"]
        assert run_a.keys["sink"] == run_b.keys["sink"]

    def test_renaming_an_edge_rekeys(self):
        stage = StageSpec(name="sink", kind="toy-combine", depends_on=("u",))
        renamed = StageSpec(name="sink", kind="toy-combine", depends_on=("v",))
        hashes = {"u": "h1", "v": "h1"}
        assert stage_key(stage, hashes) != stage_key(renamed, hashes)


class TestResume:
    def test_finished_stages_publish_before_their_wave_ends(self, tmp_path):
        """A mid-wave crash must not lose already-completed stages.

        Both stages are ready in the same wave; the second one raises.
        Per-stage publication means the first stage's artifact is
        already in the store when the run dies, so a resume skips it.
        """
        spec = DagSpec(
            name="d",
            stages=(
                StageSpec(name="ok", kind="toy-emit",
                          config={"tag": "ok", "value": 7}),
                StageSpec(name="boom", kind="toy-boom"),
            ),
        )
        store = DagStore(tmp_path / "stages")
        with pytest.raises(RuntimeError, match="detonated"):
            run_dag(spec, store=store)
        key = stage_key(spec.stage("ok"), {})
        stored = store.load("ok", key)
        assert stored is not None
        assert stored.artifact == 7

    def test_second_run_executes_nothing(self, tmp_path):
        spec = _diamond()
        store = DagStore(tmp_path / "stages")
        first = run_dag(spec, store=store)
        assert set(first.executed) == {"a", "b", "c", "d"}
        second = run_dag(spec, store=store)
        assert second.executed == ()
        assert set(second.cached) == {"a", "b", "c", "d"}
        assert second.artifacts == first.artifacts
        assert second.output_hashes == first.output_hashes

    def test_resumed_trace_byte_identical(self, tmp_path):
        spec = _diamond()
        store = DagStore(tmp_path / "stages")
        cold, warm = RunLedger(), RunLedger()
        run_dag(spec, store=store, ledger=cold)
        run_dag(spec, store=store, ledger=warm)
        assert warm.to_jsonl() == cold.to_jsonl()

    def test_partial_resume_runs_only_the_rest(self, tmp_path):
        log = tmp_path / "executions.log"
        spec = DagSpec(name="chain", stages=(
            StageSpec(name="a", kind="toy-logged",
                      config={"tag": "a", "log": str(log), "value": 1}),
            StageSpec(name="b", kind="toy-logged", depends_on=("a",),
                      config={"tag": "b", "log": str(log), "value": 1}),
        ))
        store = DagStore(tmp_path / "stages")
        run_dag(spec, store=store)
        assert log.read_text().splitlines() == ["a", "b"]
        # Damage b's entry: only b may re-execute.
        (store.stage_dir("b") / "meta.json").unlink()
        resumed = run_dag(spec, store=store)
        assert resumed.executed == ("b",)
        assert resumed.cached == ("a",)
        assert log.read_text().splitlines() == ["a", "b", "b"]

    def test_uncacheable_kinds_always_execute(self, tmp_path):
        state = tmp_path / "state.txt"
        state.write_text("abc")
        spec = DagSpec(name="v", stages=(
            StageSpec(name="probe", kind="toy-volatile",
                      config={"path": str(state)}),
        ))
        store = DagStore(tmp_path / "stages")
        assert run_dag(spec, store=store).artifact("probe") == 3
        state.write_text("abcdef")
        rerun = run_dag(spec, store=store)
        assert rerun.artifact("probe") == 6
        assert rerun.executed == ("probe",)
        assert not store.stage_dir("probe").exists()


class TestFingerprints:
    def test_fingerprint_supplies_output_hash(self, tmp_path):
        def build_fat(config, inputs, ctx):
            # Payload varies per call; the fingerprint must hide that.
            return {"id": config["id"], "noise": object()}

        register_stage_kind(
            "toy-fat", build_fat, cacheable=False,
            fingerprint=lambda art: f"fat-{art['id']}",
        )
        spec = DagSpec(name="f", stages=(
            StageSpec(name="w", kind="toy-fat", config={"id": 9}),
        ))
        run = run_dag(spec)
        assert run.output_hashes["w"] == "fat-9"


class TestRunResult:
    def test_missing_artifact_raises(self):
        run = run_dag(_diamond())
        assert run.artifact("d") == (3 + 1) + (3 + 10)
        with pytest.raises(DagError, match="no stage 'ghost'"):
            run.artifact("ghost")


# --- Hypothesis: zero re-execution over random completed runs ---------------

@st.composite
def random_logged_dags(draw):
    """Random acyclic specs whose every stage logs its executions."""
    n = draw(st.integers(min_value=1, max_value=6))
    edges = []
    for i in range(n):
        earlier = list(range(i))
        edges.append(draw(
            st.lists(st.sampled_from(earlier), unique=True,
                     max_size=len(earlier))
            if earlier else st.just([])
        ))
    return edges


@given(edges=random_logged_dags())
@settings(max_examples=30, deadline=None)
def test_rerunning_any_completed_run_executes_zero_stages(edges):
    with tempfile.TemporaryDirectory() as td:
        log = Path(td) / "log"
        spec = DagSpec(name="r", stages=tuple(
            StageSpec(
                name=f"s{i}",
                kind="toy-logged",
                depends_on=tuple(f"s{j}" for j in deps),
                config={"tag": f"s{i}", "log": str(log), "value": i},
            )
            for i, deps in enumerate(edges)
        ))
        store = DagStore(Path(td) / "stages")
        first = run_dag(spec, store=store)
        executions_after_first = len(log.read_text().splitlines())
        assert executions_after_first == len(spec.stages)
        second = run_dag(spec, store=store)
        assert second.executed == ()
        assert len(second.cached) == len(spec.stages)
        assert second.artifacts == first.artifacts
        # The log proves no stage function ran a second time.
        assert len(log.read_text().splitlines()) == executions_after_first
