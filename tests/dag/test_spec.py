"""Parse-time validation and scheduling properties of DAG specs.

Everything invalid — cycles, dangling edges, duplicate names, unknown
kinds, non-JSON configs — must be rejected when the spec is
*constructed*, never at run time; and for every valid spec,
``topological_order`` must be a deterministic dependency-respecting
permutation. The Hypothesis suite drives both over random DAGs.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import DagSpec, StageSpec, register_stage_kind, stage_kind
from repro.exceptions import DagError

from . import toy_kinds  # noqa: F401  (registers the toy-* kinds)


def _stage(name, deps=(), value=0):
    return StageSpec(
        name=name,
        kind="toy-emit",
        depends_on=tuple(deps),
        config={"tag": name, "value": value},
    )


class TestStageSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(DagError, match="unknown stage kind"):
            StageSpec(name="a", kind="no-such-kind")

    def test_empty_name_rejected(self):
        with pytest.raises(DagError, match="non-empty string name"):
            StageSpec(name="", kind="toy-emit")

    def test_self_dependency_rejected(self):
        with pytest.raises(DagError, match="depends on itself"):
            StageSpec(name="a", kind="toy-emit", depends_on=("a",))

    def test_duplicate_dependency_rejected(self):
        with pytest.raises(DagError, match="twice"):
            StageSpec(name="b", kind="toy-emit", depends_on=("a", "a"))

    def test_non_json_config_rejected(self):
        with pytest.raises(DagError, match="non-JSON-native"):
            StageSpec(name="a", kind="toy-emit", config={"x": object()})

    def test_payload_round_trip(self):
        stage = _stage("a", value=3)
        assert StageSpec.from_payload(stage.to_payload()) == stage

    def test_unknown_payload_keys_rejected(self):
        with pytest.raises(DagError, match="unknown keys"):
            StageSpec.from_payload(
                {"name": "a", "kind": "toy-emit", "extra": 1}
            )


class TestDagSpecValidation:
    def test_empty_dag_rejected(self):
        with pytest.raises(DagError, match="no stages"):
            DagSpec(name="d", stages=())

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(DagError, match="duplicate stage name"):
            DagSpec(name="d", stages=(_stage("a"), _stage("a")))

    def test_dangling_dependency_rejected(self):
        with pytest.raises(DagError, match="unknown stage 'ghost'"):
            DagSpec(name="d", stages=(_stage("a", deps=("ghost",)),))

    def test_cycle_rejected_naming_stages(self):
        with pytest.raises(DagError, match="cycle among: a, b"):
            DagSpec(
                name="d",
                stages=(_stage("a", deps=("b",)), _stage("b", deps=("a",))),
            )

    def test_cycle_rejected_from_payload(self, tmp_path):
        payload = {
            "name": "d",
            "stages": [
                {"name": "a", "kind": "toy-emit", "depends_on": ["c"],
                 "config": {"tag": "a", "value": 1}},
                {"name": "b", "kind": "toy-emit", "depends_on": ["a"],
                 "config": {"tag": "b", "value": 1}},
                {"name": "c", "kind": "toy-emit", "depends_on": ["b"],
                 "config": {"tag": "c", "value": 1}},
            ],
        }
        with pytest.raises(DagError, match="cycle"):
            DagSpec.from_payload(payload)
        spec_file = tmp_path / "dag.json"
        spec_file.write_text(json.dumps(payload))
        with pytest.raises(DagError, match="cycle"):
            DagSpec.from_json(spec_file)

    def test_from_json_rejects_bad_file(self, tmp_path):
        with pytest.raises(DagError, match="cannot read"):
            DagSpec.from_json(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(DagError, match="not valid JSON"):
            DagSpec.from_json(bad)

    def test_declaration_order_breaks_ties(self):
        spec = DagSpec(
            name="d",
            stages=(
                _stage("z"),
                _stage("a"),
                _stage("m", deps=("z", "a")),
            ),
        )
        assert [s.name for s in spec.topological_order()] == ["z", "a", "m"]


class TestKindRegistry:
    def test_reregister_same_fn_is_noop(self):
        kind = register_stage_kind("toy-emit", toy_kinds.emit)
        assert kind is stage_kind("toy-emit")

    def test_rebind_rejected(self):
        with pytest.raises(DagError, match="refusing to rebind"):
            register_stage_kind("toy-emit", toy_kinds.combine)


# --- Hypothesis: random DAGs -------------------------------------------------

@st.composite
def random_dags(draw) -> DagSpec:
    """Random acyclic specs: stage i may depend only on stages j < i."""
    n = draw(st.integers(min_value=1, max_value=8))
    stages = []
    for i in range(n):
        earlier = [f"s{j}" for j in range(i)]
        deps = draw(
            st.lists(st.sampled_from(earlier), unique=True, max_size=len(earlier))
            if earlier
            else st.just([])
        )
        stages.append(
            StageSpec(
                name=f"s{i}",
                kind="toy-combine" if deps else "toy-emit",
                depends_on=tuple(deps),
                config=(
                    {"bias": draw(st.integers(0, 5))}
                    if deps
                    else {"tag": f"s{i}", "value": draw(st.integers(0, 5))}
                ),
            )
        )
    return DagSpec(name="random", stages=tuple(stages))


@given(spec=random_dags())
@settings(max_examples=60, deadline=None)
def test_topological_order_is_valid(spec):
    order = spec.topological_order()
    assert sorted(s.name for s in order) == sorted(s.name for s in spec.stages)
    seen: set[str] = set()
    for stage in order:
        assert set(stage.depends_on) <= seen
        seen.add(stage.name)


@given(spec=random_dags())
@settings(max_examples=60, deadline=None)
def test_payload_round_trip_preserves_spec(spec):
    clone = DagSpec.from_payload(spec.to_payload())
    assert clone == spec
    assert [s.name for s in clone.topological_order()] == [
        s.name for s in spec.topological_order()
    ]


@given(spec=random_dags(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_closing_any_edge_into_a_loop_is_rejected(spec, data):
    """Reversing any existing dependency edge always creates a cycle."""
    edges = [
        (stage.name, dep) for stage in spec.stages for dep in stage.depends_on
    ]
    if not edges:
        return
    dependent, dependency = data.draw(st.sampled_from(edges), label="edge")
    payload = spec.to_payload()
    for entry in payload["stages"]:
        if entry["name"] == dependency:
            entry["depends_on"] = list(entry.get("depends_on", [])) + [
                dependent
            ]
    with pytest.raises(DagError, match="cycle"):
        DagSpec.from_payload(payload)
