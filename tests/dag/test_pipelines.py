"""The built-in pipelines: spec shape, equivalence, and key stability.

``repro report`` and ``repro sweep`` now run *through* the DAG
scheduler, so the load-bearing assertions here are about the pipeline
templates themselves: the specs they build, the byte-for-byte
equivalence of their artifacts to the underlying analysis functions,
and the warm/cold key stability that makes resume sound (a cell's
world-cache hit flag must never re-key downstream stages).
"""

from __future__ import annotations

import pytest

from repro.analysis.paper_report import full_report
from repro.dag import (
    CellOutcome,
    DagSpec,
    DagStore,
    FileBundle,
    InProcessBackend,
    RunContext,
    expand_pipeline,
    report_spec,
    run_dag,
    sweep_spec,
)
from repro.datasets import WorldConfig, build_world
from repro.exceptions import DagError
from repro.sweep import format_sweep_report, run_sweep, sweep_payload

from ..sweep.conftest import SMALL_SWEEP_BASE, SMALL_SWEEP_SEEDS, small_sweep_grid

REPORT_CONFIG = WorldConfig(
    seed=5, n_dasu_users=150, n_fcc_users=40, days_per_year=1.0
)


class TestReportSpec:
    def test_shape(self):
        spec = report_spec(REPORT_CONFIG)
        assert [s.name for s in spec.stages] == ["world", "paper-report"]
        assert spec.stage("paper-report").depends_on == ("world",)

    def test_needs_exactly_one_source(self):
        with pytest.raises(DagError, match="exactly one"):
            report_spec()
        with pytest.raises(DagError, match="exactly one"):
            report_spec(REPORT_CONFIG, data_dir="/data")

    def test_matches_direct_full_report(self, tmp_path, capsys):
        run = run_dag(
            report_spec(REPORT_CONFIG),
            backend=InProcessBackend(),
            context=RunContext(jobs=1, cache_root=str(tmp_path / "wc")),
        )
        bundle = run.artifact("paper-report")
        assert isinstance(bundle, FileBundle)
        world = build_world(REPORT_CONFIG, ground_truth=False)
        direct = full_report(world.dasu.users, world.fcc.users, world.survey)
        assert bundle.files["report.txt"] == direct + "\n"
        # stdout parity with the pre-DAG `repro report` path.
        assert "building world (seed=5, 150 Dasu users" in capsys.readouterr().out

    def test_cache_hit_prints_and_matches(self, tmp_path, capsys):
        ctx = RunContext(jobs=1, cache_root=str(tmp_path / "wc"))
        cold = run_dag(report_spec(REPORT_CONFIG),
                       backend=InProcessBackend(), context=ctx)
        capsys.readouterr()
        warm = run_dag(report_spec(REPORT_CONFIG),
                       backend=InProcessBackend(), context=ctx)
        assert "cache hit" in capsys.readouterr().out
        assert (
            warm.artifact("paper-report").files
            == cold.artifact("paper-report").files
        )
        # The world's fingerprint (its cache key) is representation-
        # independent, so downstream keys agree warm vs cold.
        assert warm.keys == cold.keys
        assert warm.output_hashes == cold.output_hashes


class TestSweepSpec:
    def test_shape_scenario_major(self):
        spec = sweep_spec(
            SMALL_SWEEP_BASE, small_sweep_grid(), SMALL_SWEEP_SEEDS,
            ("table1",),
        )
        assert [s.name for s in spec.stages] == [
            "cell/baseline/seed=5",
            "cell/baseline/seed=6",
            "cell/growth-off/seed=5",
            "cell/growth-off/seed=6",
            "sweep-report",
        ]
        report = spec.stage("sweep-report")
        assert report.depends_on == tuple(
            s.name for s in spec.stages[:-1]
        )
        assert report.config["cells"] == list(report.depends_on)

    def test_with_report_false_drops_the_fold(self):
        spec = sweep_spec(
            SMALL_SWEEP_BASE, small_sweep_grid(), SMALL_SWEEP_SEEDS,
            ("table1",), with_report=False,
        )
        assert all(s.kind == "sweep-cell" for s in spec.stages)

    def test_report_stage_matches_run_sweep(self, tmp_path):
        """The DAG's sweep-report bundle == the engine's formatted result."""
        grid, seeds = small_sweep_grid(), SMALL_SWEEP_SEEDS
        cache = str(tmp_path / "wc")
        result = run_sweep(
            SMALL_SWEEP_BASE, grid, seeds,
            experiments=("table1",), cache_root=cache,
        )
        spec = sweep_spec(SMALL_SWEEP_BASE, grid, seeds, ("table1",))
        run = run_dag(
            spec,
            backend=InProcessBackend(),
            context=RunContext(jobs=1, cache_root=cache),
        )
        bundle = run.artifact("sweep-report")
        assert bundle.files["report.txt"] == format_sweep_report(result) + "\n"
        import json

        assert json.loads(bundle.files["sweep.json"]) == sweep_payload(result)

    def test_world_cache_state_never_rekeys(self, tmp_path):
        """Warm vs cold world cache: same keys, same output hashes.

        The cell artifact carries a ``from_cache`` flag that differs
        between the runs; the fingerprint must exclude it or resume
        would re-execute every downstream stage after a cache flush.
        """
        spec = sweep_spec(
            SMALL_SWEEP_BASE, small_sweep_grid(), SMALL_SWEEP_SEEDS,
            ("table1",),
        )
        cache = str(tmp_path / "wc")
        ctx = RunContext(jobs=1, cache_root=cache)
        cold = run_dag(spec, backend=InProcessBackend(), context=ctx)
        warm = run_dag(spec, backend=InProcessBackend(), context=ctx)
        outcome = warm.artifact("cell/baseline/seed=5")
        assert isinstance(outcome, CellOutcome)
        assert outcome.from_cache  # the flag did flip...
        assert not cold.artifact("cell/baseline/seed=5").from_cache
        assert warm.keys == cold.keys  # ...and the keys did not
        assert warm.output_hashes == cold.output_hashes

    def test_store_resume_skips_cells(self, tmp_path):
        spec = sweep_spec(
            SMALL_SWEEP_BASE, small_sweep_grid(), SMALL_SWEEP_SEEDS,
            ("table1",),
        )
        ctx = RunContext(jobs=1, cache_root=str(tmp_path / "wc"))
        store = DagStore(tmp_path / "stages")
        first = run_dag(spec, backend=InProcessBackend(), store=store,
                        context=ctx)
        assert len(first.executed) == 5
        second = run_dag(spec, backend=InProcessBackend(), store=store,
                         context=ctx)
        assert second.executed == ()
        assert (
            second.artifact("sweep-report").files
            == first.artifact("sweep-report").files
        )


class TestExpandPipeline:
    def test_report_shorthand(self):
        spec = DagSpec.from_payload({
            "pipeline": "report",
            "config": {"world": {"seed": 9, "n_dasu_users": 50,
                                 "n_fcc_users": 10}},
        })
        assert [s.name for s in spec.stages] == ["world", "paper-report"]
        assert spec.stage("world").config["world"]["seed"] == 9
        # Partial payloads are canonicalized to the full config.
        assert "days_per_year" in spec.stage("world").config["world"]

    def test_sweep_shorthand_defaults(self):
        spec = DagSpec.from_payload({
            "pipeline": "sweep",
            "config": {"base": {"seed": 5, "n_dasu_users": 100,
                                "n_fcc_users": 0}, "seeds": [5, 6]},
        })
        names = [s.name for s in spec.stages]
        assert names[:2] == ["cell/baseline/seed=5", "cell/baseline/seed=6"]
        assert names[-1] == "sweep-report"

    def test_fault_profile_names_resolve(self):
        spec = DagSpec.from_payload({
            "pipeline": "report",
            "config": {"world": {"seed": 9, "n_dasu_users": 50,
                                 "n_fcc_users": 0, "faults": "light",
                                 "sanitize": True}},
        })
        world = spec.stage("world").config["world"]
        assert isinstance(world["faults"], dict)
        assert world["sanitize"] is True
        # "off" means pristine: the canonical payload omits the block.
        off = DagSpec.from_payload({
            "pipeline": "report",
            "config": {"world": {"seed": 9, "n_dasu_users": 50,
                                 "n_fcc_users": 0, "faults": "off"}},
        })
        assert "faults" not in off.stage("world").config["world"]

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(DagError, match="unknown pipeline"):
            expand_pipeline({"pipeline": "simulate"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(DagError, match="unknown keys"):
            expand_pipeline({"pipeline": "report", "stages": []})
        with pytest.raises(DagError, match="unknown keys"):
            expand_pipeline({"pipeline": "report",
                             "config": {"grid": {}}})
        with pytest.raises(DagError, match="unknown keys"):
            expand_pipeline({"pipeline": "sweep",
                             "config": {"world": {}}})

    def test_bad_world_config_rejected(self):
        with pytest.raises(DagError, match="report world config"):
            expand_pipeline({
                "pipeline": "report",
                "config": {"world": {"seed": 9, "bogus_field": 1}},
            })
