"""Executor-backend equivalence: identical bytes from either backend."""

from __future__ import annotations

import pytest

from repro.dag import (
    BACKENDS,
    DagSpec,
    DagStore,
    InProcessBackend,
    ProcessPoolBackend,
    StageSpec,
    get_backend,
    run_dag,
)
from repro.exceptions import DagError
from repro.obs.ledger import RunLedger

from . import toy_kinds  # noqa: F401


def _wide_spec(n: int = 6) -> DagSpec:
    stages = [
        StageSpec(name=f"s{i}", kind="toy-emit",
                  config={"tag": f"s{i}", "value": i})
        for i in range(n)
    ]
    stages.append(
        StageSpec(
            name="sum",
            kind="toy-combine",
            depends_on=tuple(f"s{i}" for i in range(n)),
        )
    )
    return DagSpec(name="wide", stages=tuple(stages))


class TestBackendEquivalence:
    def test_artifacts_and_trace_identical(self):
        spec = _wide_spec()
        led_in, led_pool = RunLedger(), RunLedger()
        run_in = run_dag(spec, backend=InProcessBackend(), ledger=led_in)
        run_pool = run_dag(
            spec, backend=ProcessPoolBackend(jobs=3), ledger=led_pool
        )
        assert run_pool.artifacts == run_in.artifacts
        assert run_pool.keys == run_in.keys
        assert run_pool.output_hashes == run_in.output_hashes
        assert led_pool.to_jsonl() == led_in.to_jsonl()

    def test_pool_worker_count_invariant(self):
        spec = _wide_spec()
        ledgers = []
        for jobs in (1, 2, 5):
            ledger = RunLedger()
            run_dag(spec, backend=ProcessPoolBackend(jobs=jobs), ledger=ledger)
            ledgers.append(ledger.to_jsonl())
        assert len(set(ledgers)) == 1

    def test_cross_backend_resume(self, tmp_path):
        """A store written by one backend resumes under the other."""
        spec = _wide_spec()
        store = DagStore(tmp_path / "stages")
        first = run_dag(spec, backend=ProcessPoolBackend(jobs=2), store=store)
        second = run_dag(spec, backend=InProcessBackend(), store=store)
        assert second.executed == ()
        assert second.artifacts == first.artifacts


class TestBackendRegistry:
    def test_names(self):
        assert BACKENDS == ("inprocess", "pool")
        assert get_backend("inprocess").name == "inprocess"
        assert get_backend("pool", jobs=2).name == "pool"

    def test_unknown_backend_rejected(self):
        with pytest.raises(DagError, match="unknown executor backend"):
            get_backend("cluster")

    def test_cli_choices_stay_in_sync(self):
        """The hardcoded argparse choices must track BACKENDS."""
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["dag", "run", "--spec", "s.json", "--out", "o",
             "--backend", "pool"]
        )
        assert args.backend in BACKENDS
