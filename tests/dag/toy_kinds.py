"""Tiny module-level stage kinds for the DAG tests.

They live in their own importable module (not a conftest) because the
process-pool backend pickles kind callables by reference: workers must
be able to import them. Registration is idempotent, so every test
module can import this one safely.
"""

from __future__ import annotations

from pathlib import Path

from repro.dag import register_stage_kind
from repro.obs.ledger import count, span


def emit(config: dict, inputs: dict, ctx) -> int:
    """Return a configured value, recording ledger events on the way."""
    with span(f"toy/emit/{config['tag']}"):
        count(f"toy.emit.{config['tag']}")
    return int(config["value"])


def combine(config: dict, inputs: dict, ctx) -> int:
    """Sum the inputs plus an optional bias (order-independent)."""
    count("toy.combine")
    return sum(int(v) for v in inputs.values()) + int(config.get("bias", 0))


def logged(config: dict, inputs: dict, ctx) -> int:
    """Append one line to ``config['log']`` per *execution*.

    The log is deliberately outside the ledger: it counts real
    executions, so tests can prove a resumed run re-executed nothing
    even though its trace is indistinguishable from a fresh run's.
    """
    log = Path(config["log"])
    with open(log, "a") as fh:
        fh.write(f"{config.get('tag', '?')}\n")
    return sum(int(v) for v in inputs.values()) + int(config.get("value", 1))


def volatile(config: dict, inputs: dict, ctx) -> int:
    """A kind whose output depends on on-disk state (never cacheable)."""
    path = Path(config["path"])
    return len(path.read_text()) if path.exists() else 0


def boom(config: dict, inputs: dict, ctx) -> int:
    """A kind that always fails — for mid-wave crash tests."""
    raise RuntimeError("toy-boom detonated")


register_stage_kind("toy-emit", emit)
register_stage_kind("toy-combine", combine)
register_stage_kind("toy-logged", logged)
register_stage_kind("toy-volatile", volatile, cacheable=False)
register_stage_kind("toy-boom", boom)
