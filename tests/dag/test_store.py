"""Crash-safety and integrity of the stage-artifact store.

A :class:`~repro.dag.store.DagStore` entry must be all-or-nothing: a
reader can never observe a partial artifact (publish is a single
``os.replace``), and any damage — truncation, corruption, a stale key,
a foreign format — reads as a miss, never as wrong data.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.dag import DagStore
from repro.obs.ledger import RunLedger

from . import toy_kinds  # noqa: F401


@pytest.fixture()
def store(tmp_path) -> DagStore:
    return DagStore(tmp_path / "stages")


class TestRoundTrip:
    def test_store_then_load(self, store):
        store.store("a", "key1", {"answer": 42})
        hit = store.load("a", "key1")
        assert hit is not None
        assert hit.artifact == {"answer": 42}
        assert hit.ledger is None

    def test_ledger_shard_rides_along(self, store):
        shard = RunLedger()
        shard.count("toy.events", 3)
        with shard.span("toy/x"):
            pass
        store.store("a", "key1", 1, ledger=shard)
        hit = store.load("a", "key1")
        assert hit.ledger is not None
        assert hit.ledger.to_jsonl() == shard.to_jsonl()

    def test_empty_ledger_not_persisted(self, store):
        store.store("a", "key1", 1, ledger=RunLedger())
        assert not (store.stage_dir("a") / "ledger.jsonl").exists()
        assert store.load("a", "key1").ledger is None

    def test_output_hash_override(self, store):
        store.store("a", "key1", 1, output_hash="fingerprint-123")
        assert store.load("a", "key1").output_hash == "fingerprint-123"

    def test_slash_names_stay_flat(self, store):
        store.store("cell/base/seed=5", "k", 1)
        entry = store.stage_dir("cell/base/seed=5")
        assert entry.parent == store.root  # one level, no subdirs
        assert store.load("cell/base/seed=5", "k").artifact == 1

    def test_replace_under_new_key(self, store):
        store.store("a", "old", 1)
        store.store("a", "new", 2)
        assert store.load("a", "old") is None
        assert store.load("a", "new").artifact == 2


class TestMissModes:
    def test_absent_entry(self, store):
        assert store.load("a", "key1") is None

    def test_wrong_key(self, store):
        store.store("a", "key1", 1)
        assert store.load("a", "other-key") is None

    def test_truncated_artifact(self, store):
        store.store("a", "key1", list(range(100)))
        path = store.stage_dir("a") / "artifact.pkl"
        path.write_bytes(path.read_bytes()[:10])
        assert store.load("a", "key1") is None

    def test_corrupted_artifact_bytes(self, store):
        store.store("a", "key1", list(range(100)))
        path = store.stage_dir("a") / "artifact.pkl"
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.load("a", "key1") is None

    def test_missing_meta(self, store):
        store.store("a", "key1", 1)
        (store.stage_dir("a") / "meta.json").unlink()
        assert store.load("a", "key1") is None

    def test_foreign_format_version(self, store):
        store.store("a", "key1", 1)
        meta_path = store.stage_dir("a") / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["dag_store_format"] = 999
        meta_path.write_text(json.dumps(meta))
        assert store.load("a", "key1") is None

    def test_damaged_ledger(self, store):
        shard = RunLedger()
        shard.count("x")
        store.store("a", "key1", 1, ledger=shard)
        (store.stage_dir("a") / "ledger.jsonl").write_text("{broken\n")
        assert store.load("a", "key1") is None


class TestAtomicity:
    def test_no_staging_residue_after_store(self, store):
        store.store("a", "key1", 1)
        leftovers = [
            p for p in store.root.iterdir() if p.name.startswith(".staging-")
        ]
        assert leftovers == []

    def test_interrupted_store_invisible(self, store, monkeypatch):
        """A crash before the final replace leaves no visible entry."""
        boom = RuntimeError("killed mid-publish")

        def exploding_replace(src, dst):
            raise boom

        store.store("a", "key1", 1)  # pre-existing entry must survive
        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(RuntimeError, match="killed mid-publish"):
            store.store("b", "key2", 2)
        monkeypatch.undo()
        assert store.load("b", "key2") is None
        assert store.load("a", "key1").artifact == 1
        # The failed attempt cleaned its staging directory up.
        assert [p for p in store.root.iterdir()
                if p.name.startswith(".staging-")] == []

    def test_clear_removes_everything(self, store):
        store.store("a", "key1", 1)
        store.clear()
        assert not store.root.exists()
        assert store.load("a", "key1") is None
        store.clear()  # idempotent on an absent root
