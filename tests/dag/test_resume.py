"""Kill-and-resume integration harness for ``repro dag run``.

The headline guarantee of the DAG runtime, tested end to end: a sweep
driven as a DAG, SIGKILLed partway through, then resumed by re-invoking
the *same command*, produces ``report.txt``, ``sweep.json``, and
``trace.jsonl`` byte-identical to an uninterrupted run — and the resume
actually reuses the stages the killed run completed.

The victim runs as a subprocess (a real ``python -m repro`` invocation,
killed with an honest ``SIGKILL`` — no in-process simulation), with the
world tuned so each cell takes long enough to kill mid-run reliably.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

SPEC = {
    "pipeline": "sweep",
    "config": {
        "base": {"seed": 5, "n_dasu_users": 260, "n_fcc_users": 0,
                 "days_per_year": 1.0},
        "seeds": [5, 6, 7],
        "experiments": ["table1"],
    },
}
#: 3 cell stages + the sweep-report fold.
N_STAGES = 4


def _env(cache_dir: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    return env


def _dag_run_cmd(spec_file: Path, out: Path, *extra: str) -> list[str]:
    return [
        sys.executable, "-m", "repro", "dag", "run",
        "--spec", str(spec_file), "--out", str(out), "--jobs", "1",
        *extra,
    ]


def _published_stages(out: Path) -> list[str]:
    stages = out / "stages"
    if not stages.is_dir():
        return []
    return sorted(
        p.name for p in stages.iterdir()
        if p.is_dir() and not p.name.startswith(".staging-")
    )


def _wait_for_first_stage(proc: subprocess.Popen, out: Path,
                          timeout: float = 300.0) -> int:
    """Poll until at least one stage entry is published (or give up)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        done = len(_published_stages(out))
        if done >= 1:
            return done
        if proc.poll() is not None:
            return len(_published_stages(out))
        time.sleep(0.05)
    raise AssertionError("no stage published before timeout")


@pytest.fixture(scope="module")
def killed_and_resumed(tmp_path_factory):
    """Run → SIGKILL mid-flight → resume; plus an uninterrupted control.

    Module-scoped: the three runs cost real build time, and every
    assertion below reads the same artifacts. The victim is retried
    with a fresh run directory and cold cache if a loaded machine ever
    starves the polling loop long enough for the run to finish before
    the kill lands — the kill must genuinely interrupt the run.
    """
    root = tmp_path_factory.mktemp("dag-resume")
    spec_file = root / "spec.json"
    spec_file.write_text(json.dumps(SPEC))

    # Victim: killed after the first stage publishes, before the last.
    for attempt in range(3):
        cache = root / f"cache-{attempt}"
        interrupted = root / f"interrupted-{attempt}"
        proc = subprocess.Popen(
            _dag_run_cmd(spec_file, interrupted),
            env=_env(cache), cwd=root,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        done_at_kill = _wait_for_first_stage(proc, interrupted)
        proc.send_signal(signal.SIGKILL)
        returncode = proc.wait(timeout=60)
        if returncode == -signal.SIGKILL and done_at_kill < N_STAGES:
            break
    control = root / "control"

    # Resume: the exact same command again, run to completion.
    resume = subprocess.run(
        _dag_run_cmd(spec_file, interrupted),
        env=_env(cache), cwd=root, capture_output=True, text=True,
        timeout=600,
    )

    # Control: same spec, separate run directory and *cold* world cache
    # (the trace must be cache-invariant, so a cold control is the
    # strongest comparison).
    uninterrupted = subprocess.run(
        _dag_run_cmd(spec_file, control),
        env=_env(root / "cache-control"), cwd=root,
        capture_output=True, text=True, timeout=600,
    )
    return {
        "returncode": returncode,
        "done_at_kill": done_at_kill,
        "resume": resume,
        "uninterrupted": uninterrupted,
        "interrupted_dir": interrupted,
        "control_dir": control,
        "cache_dir": cache,
        "spec_file": spec_file,
    }


class TestKillAndResume:
    def test_victim_died_mid_run(self, killed_and_resumed):
        assert killed_and_resumed["returncode"] == -signal.SIGKILL
        assert 1 <= killed_and_resumed["done_at_kill"] < N_STAGES

    def test_resume_completed_and_reused_stages(self, killed_and_resumed):
        resume = killed_and_resumed["resume"]
        assert resume.returncode == 0, resume.stderr
        # Stage accounting goes to stderr; the resumed invocation must
        # have reloaded at least every stage the victim published.
        assert "executed" in resume.stderr and "resumed" in resume.stderr
        done = killed_and_resumed["done_at_kill"]
        reported = resume.stderr
        cached = int(reported.split("executed, ")[1].split(" resumed")[0])
        executed = int(reported.split("stages: ")[1].split(" executed")[0])
        assert cached >= done
        assert executed == N_STAGES - cached

    def test_artifacts_byte_identical_to_uninterrupted(
        self, killed_and_resumed
    ):
        control = killed_and_resumed["uninterrupted"]
        assert control.returncode == 0, control.stderr
        a, b = (killed_and_resumed["interrupted_dir"],
                killed_and_resumed["control_dir"])
        for name in ("report.txt", "sweep.json", "trace.jsonl",
                     "manifest.json"):
            assert (a / name).read_bytes() == (b / name).read_bytes(), name

    def test_no_partial_stage_entries_survive(self, killed_and_resumed):
        """The kill left at most invisible staging residue, and the
        completed run holds exactly the declared stages."""
        stages = killed_and_resumed["interrupted_dir"] / "stages"
        visible = _published_stages(killed_and_resumed["interrupted_dir"])
        assert len(visible) == N_STAGES
        for entry in visible:
            assert (stages / entry / "meta.json").exists()
            assert (stages / entry / "artifact.pkl").exists()

    def test_third_invocation_executes_nothing(self, killed_and_resumed):
        """A completed run directory is a no-op to re-run."""
        root = killed_and_resumed["interrupted_dir"]
        rerun = subprocess.run(
            _dag_run_cmd(killed_and_resumed["spec_file"], root),
            env=_env(killed_and_resumed["cache_dir"]), cwd=root.parent,
            capture_output=True, text=True, timeout=600,
        )
        assert rerun.returncode == 0, rerun.stderr
        assert "0 executed" in rerun.stderr


class TestPoolBackendResume:
    def test_pool_run_byte_identical_and_resumable(
        self, killed_and_resumed, tmp_path
    ):
        """The pool backend, cold cache: same bytes, resumable store."""
        spec_file = killed_and_resumed["spec_file"]
        out = tmp_path / "pool-run"
        run = subprocess.run(
            _dag_run_cmd(spec_file, out, "--backend", "pool", "--jobs", "2"),
            env=_env(tmp_path / "cache"), cwd=tmp_path,
            capture_output=True, text=True, timeout=600,
        )
        assert run.returncode == 0, run.stderr
        control = killed_and_resumed["control_dir"]
        for name in ("report.txt", "sweep.json", "trace.jsonl"):
            assert (out / name).read_bytes() == (control / name).read_bytes()
        rerun = subprocess.run(
            _dag_run_cmd(spec_file, out),  # other backend, same store
            env=_env(tmp_path / "cache"), cwd=tmp_path,
            capture_output=True, text=True, timeout=600,
        )
        assert rerun.returncode == 0, rerun.stderr
        assert "0 executed" in rerun.stderr
