"""The fragment-level report DAG.

Two contracts: the assembled report is byte-identical to the monolithic
:func:`~repro.analysis.paper_report.full_report`, and fragment stage
keys follow the *content* of their input slices — so an append
re-executes exactly the fragments whose data changed and a warm store
reloads everything else.
"""

from __future__ import annotations

import pytest

from repro.analysis.paper_report import (
    assemble_report,
    fragment_inputs,
    fragment_keys,
    full_report,
    render_fragment,
)
from repro.dag import (
    DagStore,
    RunContext,
    expand_pipeline,
    fragment_report_spec,
    run_dag,
)
from repro.datasets import AppendDelta, WorldCache, WorldConfig, append_world
from repro.exceptions import AnalysisError

CONFIG = WorldConfig(
    seed=17, n_dasu_users=80, n_fcc_users=12, days_per_year=1.0, sanitize=True
)


@pytest.fixture(scope="module")
def warm(tmp_path_factory):
    """A cache + stage store with one full fragment run already done."""
    root = tmp_path_factory.mktemp("fragment-dag")
    cache = WorldCache(root / "cache")
    store = DagStore(root / "stages")
    context = RunContext(jobs=1, cache_root=str(cache.root))
    result = run_dag(fragment_report_spec(CONFIG), store=store, context=context)
    return cache, store, context, result


def test_report_byte_identical_to_full_report(warm):
    cache, _, _, result = warm
    world = cache.load(CONFIG)
    expected = full_report(world.dasu.users, world.fcc.users, world.survey)
    assert result.artifact("paper-report").files["report.txt"] == expected + "\n"


def test_warm_rerun_reloads_every_fragment(warm):
    _, store, context, _ = warm
    result = run_dag(fragment_report_spec(CONFIG), store=store, context=context)
    assert not [s for s in result.executed if s.startswith("fragment/")]
    assert "paper-report" in result.cached


def test_append_recomputes_only_changed_fragments(warm):
    """New Dasu/FCC households re-key only the fragments that read them;
    survey-only fragments reload from the store untouched."""
    cache, store, context, _ = warm
    appended = append_world(CONFIG, AppendDelta(n_dasu_users=16), cache=cache)
    result = run_dag(
        fragment_report_spec(appended.config), store=store, context=context
    )
    executed = {s for s in result.executed if s.startswith("fragment/")}
    cached = {s for s in result.cached if s.startswith("fragment/")}
    survey_only = {
        f"fragment/{key}"
        for key in fragment_keys()
        if fragment_inputs(key) == ("survey",)
    }
    assert cached == survey_only
    assert executed == {
        f"fragment/{key}" for key in fragment_keys()
    } - survey_only

    world = cache.load(appended.config)
    expected = full_report(world.dasu.users, world.fcc.users, world.survey)
    assert result.artifact("paper-report").files["report.txt"] == expected + "\n"


def test_expand_pipeline_shorthand():
    spec = expand_pipeline(
        {"pipeline": "fragment-report", "config": {"world": {"seed": 17}}}
    )
    names = {stage.name for stage in spec.stages}
    assert "world" in names and "paper-report" in names
    assert {f"fragment/{key}" for key in fragment_keys()} <= names


def test_every_fragment_declares_known_inputs():
    for key in fragment_keys():
        inputs = fragment_inputs(key)
        assert inputs
        assert set(inputs) <= {"dasu", "fcc", "survey"}


def test_render_fragment_captures_analysis_error():
    text, error = render_fragment("fig1", dasu=())
    assert text is None
    assert "figure 1" in error


def test_assemble_report_requires_every_fragment():
    fragments = {key: ("", None) for key in fragment_keys()}
    del fragments["fig1"]
    with pytest.raises(AnalysisError, match="fig1"):
        assemble_report(fragments, n_dasu=10)
    with pytest.raises(AnalysisError):
        assemble_report(
            {key: ("", None) for key in fragment_keys()}, n_dasu=0
        )


def test_iqb_fragment_follows_dasu_and_fcc():
    """The barometer fragment re-keys on household data — an append must
    recompute it (covered exactly by the executed/cached set assertion
    in test_append_recomputes_only_changed_fragments) rather than
    reload a stale market table."""
    assert "iqb" in fragment_keys()
    assert fragment_inputs("iqb") == ("dasu", "fcc")
