"""BitTorrent session schedules."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.traffic.bittorrent import BitTorrentSchedule, draw_bt_sessions
from repro.units import SECONDS_PER_DAY


class TestDrawBtSessions:
    def test_session_count_scales_with_window(self):
        rng = np.random.default_rng(0)
        counts = [
            draw_bt_sessions(10 * SECONDS_PER_DAY, np.random.default_rng(i)).n_sessions
            for i in range(50)
        ]
        assert np.mean(counts) == pytest.approx(8.0, rel=0.25)

    def test_sessions_within_window(self):
        schedule = draw_bt_sessions(
            5 * SECONDS_PER_DAY, np.random.default_rng(1)
        )
        if schedule.n_sessions:
            assert np.all(schedule.intervals[:, 0] >= 0)
            assert np.all(schedule.intervals[:, 1] <= 5 * SECONDS_PER_DAY)

    def test_rate_shares_in_range(self):
        schedule = draw_bt_sessions(
            20 * SECONDS_PER_DAY, np.random.default_rng(2)
        )
        assert np.all(schedule.rate_shares >= 0.55)
        assert np.all(schedule.rate_shares <= 0.92)

    def test_sessions_are_long(self):
        schedule = draw_bt_sessions(
            50 * SECONDS_PER_DAY, np.random.default_rng(3)
        )
        durations = schedule.intervals[:, 1] - schedule.intervals[:, 0]
        assert np.mean(durations) > 3600.0  # hours, not minutes

    def test_zero_rate_possible(self):
        schedule = draw_bt_sessions(
            0.1 * SECONDS_PER_DAY,
            np.random.default_rng(4),
            sessions_per_day=0.01,
        )
        assert schedule.n_sessions == 0

    def test_invalid_duration(self):
        with pytest.raises(DatasetError):
            draw_bt_sessions(0.0, np.random.default_rng(0))

    def test_invalid_rate_share_range(self):
        with pytest.raises(DatasetError):
            draw_bt_sessions(
                1000.0, np.random.default_rng(0), rate_share_range=(0.9, 0.5)
            )

    def test_mismatched_schedule_rejected(self):
        with pytest.raises(DatasetError):
            BitTorrentSchedule(
                intervals=np.zeros((2, 2)), rate_shares=np.zeros(1)
            )

    def test_deterministic(self):
        a = draw_bt_sessions(SECONDS_PER_DAY, np.random.default_rng(7))
        b = draw_bt_sessions(SECONDS_PER_DAY, np.random.default_rng(7))
        assert np.array_equal(a.intervals, b.intervals)
