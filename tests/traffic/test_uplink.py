"""Uplink generation and collection invariants."""

import numpy as np
import pytest

from repro.behavior.demand import DemandProcess
from repro.measurement.dasu import DasuClient, DasuVantage
from repro.measurement.gateway import FccGateway
from repro.traffic.generator import generate_usage_series


def process(bt=False, upload_share=0.06, up_ceiling=1.0):
    return DemandProcess(
        offered_peak_mbps=2.0,
        ceiling_mbps=10.0,
        activity_level=0.6,
        burstiness_sigma=1.0,
        rate_median_share=0.35,
        bt_user=bt,
        upload_share=upload_share,
        up_ceiling_mbps=up_ceiling,
    )


def series(seed=0, days=4.0, **kwargs):
    return generate_usage_series(
        process(**kwargs), days, 30.0, np.random.default_rng(seed)
    )


class TestUplinkGeneration:
    def test_uplink_present_and_aligned(self):
        s = series()
        assert s.up_rates_mbps is not None
        assert s.up_rates_mbps.shape == s.rates_mbps.shape

    def test_uplink_capped_by_up_ceiling(self):
        s = series(up_ceiling=0.5)
        assert np.all(s.up_rates_mbps <= 0.5)

    def test_uplink_mirrors_downlink_share(self):
        s = series(upload_share=0.1)
        busy = s.rates_mbps > 0.1
        ratio = s.up_rates_mbps[busy].sum() / s.rates_mbps[busy].sum()
        assert 0.03 < ratio < 0.3

    def test_seeding_saturates_uplink(self):
        for seed in range(8):
            s = series(seed=seed, bt=True, up_ceiling=1.0)
            if s.bt_active.any():
                bt_up = s.up_rates_mbps[s.bt_active]
                assert np.median(bt_up) > 0.5  # near the 1.0 ceiling
                return
        pytest.fail("no BT activity in eight draws")

    def test_higher_upload_share_more_uplink(self):
        low = series(seed=3, upload_share=0.03).up_rates_mbps.mean()
        high = series(seed=3, upload_share=0.3).up_rates_mbps.mean()
        assert high > 2 * low

    def test_invalid_upload_share_rejected(self):
        from repro.exceptions import DatasetError

        with pytest.raises(DatasetError):
            process(upload_share=0.0)
        with pytest.raises(DatasetError):
            process(up_ceiling=0.0)


class TestUplinkCollection:
    def test_dasu_collects_uplink(self):
        s = series(days=6.0)
        client = DasuClient(DasuVantage.UPNP, np.random.default_rng(1))
        sampled = client.collect(s)
        assert sampled.up_rates_mbps is not None
        assert sampled.up_rates_mbps.shape == sampled.rates_mbps.shape

    def test_collected_uplink_near_truth(self):
        s = series(days=8.0, seed=5)
        client = DasuClient(DasuVantage.DIRECT, np.random.default_rng(2))
        sampled = client.collect(s)
        # Mean of collected uplink within the diurnal-bias envelope.
        assert sampled.up_rates_mbps.mean() == pytest.approx(
            s.up_rates_mbps.mean(), rel=1.0
        )

    def test_gateway_uplink_aligned_with_downlink_records(self):
        s = series(days=3.0, seed=4)
        gateway = FccGateway(np.random.default_rng(3), loss_rate=0.2)
        down, hours = gateway.hourly_rates_with_hours(s)
        up = gateway.hourly_upload_rates(s)
        assert up is not None
        assert up.shape == down.shape

    def test_gateway_uplink_mean_preserved(self):
        s = series(days=3.0, seed=4)
        gateway = FccGateway(np.random.default_rng(3), loss_rate=0.0)
        gateway.hourly_rates_with_hours(s)
        up = gateway.hourly_upload_rates(s)
        assert up.mean() == pytest.approx(s.up_rates_mbps.mean(), rel=1e-9)

    def test_gateway_uplink_none_without_series_uplink(self):
        s = series(days=2.0)
        stripped = type(s)(
            interval_s=s.interval_s,
            start_hour=s.start_hour,
            rates_mbps=s.rates_mbps,
            bt_active=s.bt_active,
            up_rates_mbps=None,
        )
        gateway = FccGateway(np.random.default_rng(0))
        assert gateway.hourly_upload_rates(stripped) is None
