"""Diurnal activity pattern."""

import numpy as np
import pytest

from repro.traffic.diurnal import (
    EVENING_PEAK_HOUR,
    NIGHT_FLOOR,
    diurnal_weight,
    mean_diurnal_weight,
)


class TestDiurnalWeight:
    def test_peak_at_evening(self):
        assert diurnal_weight(EVENING_PEAK_HOUR) == pytest.approx(1.0)

    def test_trough_near_4am(self):
        assert diurnal_weight(4.0) < 0.3

    def test_floor_respected(self):
        hours = np.linspace(0, 24, 500)
        assert np.min(diurnal_weight(hours)) >= NIGHT_FLOOR - 1e-9

    def test_max_is_one(self):
        hours = np.linspace(0, 24, 2000)
        assert np.max(diurnal_weight(hours)) <= 1.0 + 1e-9

    def test_midday_shoulder(self):
        assert diurnal_weight(13.0) > diurnal_weight(5.0)

    def test_evening_beats_midday(self):
        assert diurnal_weight(EVENING_PEAK_HOUR) > diurnal_weight(13.0)

    def test_periodic(self):
        assert diurnal_weight(1.0) == pytest.approx(diurnal_weight(25.0))

    def test_scalar_returns_float(self):
        assert isinstance(diurnal_weight(12.0), float)

    def test_array_shape_preserved(self):
        hours = np.array([0.0, 6.0, 12.0, 18.0])
        assert diurnal_weight(hours).shape == hours.shape

    def test_mean_weight_between_floor_and_one(self):
        mean = mean_diurnal_weight()
        assert NIGHT_FLOOR < mean < 1.0
