"""The usage-series generator."""

import numpy as np
import pytest

from repro.behavior.demand import DemandProcess
from repro.exceptions import DatasetError
from repro.traffic.generator import UsageSeries, generate_usage_series


def process(peak=2.0, ceiling=10.0, activity=0.55, bt=False):
    return DemandProcess(
        offered_peak_mbps=peak,
        ceiling_mbps=ceiling,
        activity_level=activity,
        burstiness_sigma=1.0,
        rate_median_share=0.35,
        bt_user=bt,
    )


def series(days=2.0, interval=30.0, seed=0, **kwargs):
    return generate_usage_series(
        process(**kwargs), days, interval, np.random.default_rng(seed)
    )


class TestGenerateUsageSeries:
    def test_sample_count(self):
        s = series(days=1.0)
        assert s.n_samples == 2880

    def test_rates_non_negative(self):
        s = series()
        assert np.all(s.rates_mbps >= 0)

    def test_rates_capped_by_ceiling(self):
        s = series(ceiling=3.0)
        assert np.all(s.rates_mbps <= 3.0)

    def test_demand_grows_with_offered_peak(self):
        low = [series(seed=i, peak=0.5).rates_mbps.mean() for i in range(10)]
        high = [series(seed=i, peak=5.0).rates_mbps.mean() for i in range(10)]
        assert np.mean(high) > 3 * np.mean(low)

    def test_p95_well_below_uncapped_ceiling(self):
        # Users rarely fully utilize their links (Sec. 3.1).
        peaks = [
            np.percentile(series(seed=i, peak=2.0, ceiling=50.0).rates_mbps, 95)
            for i in range(10)
        ]
        assert np.mean(peaks) < 5.0

    def test_low_capacity_link_saturates(self):
        # A 0.5 Mbps line under a 2 Mbps need runs hot at the 95th
        # percentile (the Botswana pattern of Fig. 8b).
        peaks = [
            np.percentile(series(seed=i, peak=2.0, ceiling=0.5).rates_mbps, 95)
            for i in range(10)
        ]
        assert np.mean(peaks) > 0.3

    def test_evening_usage_heavier_than_night(self):
        s = series(days=6.0, seed=3)
        hours = s.hours()
        evening = s.rates_mbps[(hours >= 19) & (hours <= 22)]
        night = s.rates_mbps[(hours >= 2) & (hours <= 5)]
        assert evening.mean() > 1.5 * night.mean()

    def test_non_bt_user_has_no_bt_samples(self):
        assert not series(bt=False).bt_active.any()

    def test_bt_user_saturates_during_sessions(self):
        for seed in range(10):
            s = series(days=4.0, seed=seed, bt=True, ceiling=8.0)
            if s.bt_active.any():
                bt_rates = s.rates_mbps[s.bt_active]
                assert np.median(bt_rates) > 0.5 * 8.0
                return
        pytest.fail("no BitTorrent activity in ten draws")

    def test_without_bt_excludes_flagged_samples(self):
        s = series(days=4.0, seed=1, bt=True)
        assert s.without_bt().size == (~s.bt_active).sum()

    def test_hours_wrap(self):
        s = series(days=2.0)
        hours = s.hours()
        assert np.all((hours >= 0) & (hours < 24))

    def test_duration_days(self):
        assert series(days=1.5).duration_days == pytest.approx(1.5)

    def test_start_hour_offset(self):
        s = generate_usage_series(
            process(), 1.0, 30.0, np.random.default_rng(0), start_hour=12.0
        )
        assert s.hours()[0] == pytest.approx(12.0, abs=0.1)

    def test_deterministic(self):
        a = series(seed=9)
        b = series(seed=9)
        assert np.array_equal(a.rates_mbps, b.rates_mbps)

    def test_invalid_duration(self):
        with pytest.raises(DatasetError):
            generate_usage_series(process(), 0.0, 30.0, np.random.default_rng(0))

    def test_too_short_window(self):
        with pytest.raises(DatasetError):
            generate_usage_series(
                process(), 0.001, 30.0, np.random.default_rng(0)
            )

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(DatasetError):
            UsageSeries(
                interval_s=30.0,
                start_hour=0.0,
                rates_mbps=np.zeros(10),
                bt_active=np.zeros(5, dtype=bool),
            )
