"""On/off session processes."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.traffic.sessions import draw_on_intervals, intervals_to_mask


class TestDrawOnIntervals:
    def test_intervals_within_bounds(self):
        rng = np.random.default_rng(0)
        intervals = draw_on_intervals(86400.0, 1800.0, 2700.0, rng)
        assert np.all(intervals[:, 0] >= 0.0)
        assert np.all(intervals[:, 1] <= 86400.0)

    def test_intervals_ordered_and_disjoint(self):
        rng = np.random.default_rng(1)
        intervals = draw_on_intervals(86400.0, 1800.0, 2700.0, rng)
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2
            assert s1 < e1

    def test_on_fraction_matches_duty_cycle(self):
        rng = np.random.default_rng(2)
        total_on = 0.0
        duration = 86400.0 * 20
        intervals = draw_on_intervals(duration, 3000.0, 4200.0, rng)
        total_on = float(np.sum(intervals[:, 1] - intervals[:, 0]))
        expected = 3000.0 / (3000.0 + 4200.0)
        assert total_on / duration == pytest.approx(expected, rel=0.2)

    def test_deterministic(self):
        a = draw_on_intervals(86400.0, 1800.0, 2700.0, np.random.default_rng(3))
        b = draw_on_intervals(86400.0, 1800.0, 2700.0, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_invalid_duration(self):
        with pytest.raises(DatasetError):
            draw_on_intervals(0.0, 100.0, 100.0, np.random.default_rng(0))

    def test_invalid_means(self):
        with pytest.raises(DatasetError):
            draw_on_intervals(100.0, 0.0, 100.0, np.random.default_rng(0))


class TestIntervalsToMask:
    def test_basic_rasterization(self):
        intervals = np.array([[10.0, 40.0]])
        mask = intervals_to_mask(intervals, n_samples=10, interval_s=10.0)
        # Midpoints 5,15,25,35,...: samples 1-3 covered.
        assert list(np.nonzero(mask)[0]) == [1, 2, 3]

    def test_empty_intervals(self):
        mask = intervals_to_mask(np.empty((0, 2)), 5, 10.0)
        assert not mask.any()

    def test_full_coverage(self):
        intervals = np.array([[0.0, 100.0]])
        mask = intervals_to_mask(intervals, 10, 10.0)
        assert mask.all()

    def test_interval_past_grid_clipped(self):
        intervals = np.array([[50.0, 500.0]])
        mask = intervals_to_mask(intervals, 10, 10.0)
        assert mask[9]
        assert not mask[0]

    def test_invalid_grid(self):
        with pytest.raises(DatasetError):
            intervals_to_mask(np.empty((0, 2)), 0, 10.0)
