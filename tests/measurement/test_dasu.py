"""The Dasu client: biased sampling and counter handling."""

import numpy as np
import pytest

from repro.behavior.demand import DemandProcess
from repro.exceptions import MeasurementError
from repro.measurement.dasu import DasuClient, DasuVantage, SampledUsage
from repro.traffic.generator import generate_usage_series


def make_series(days=4.0, bt=True, seed=0, peak=2.0, ceiling=10.0):
    process = DemandProcess(
        offered_peak_mbps=peak,
        ceiling_mbps=ceiling,
        activity_level=0.6,
        burstiness_sigma=1.0,
        rate_median_share=0.35,
        bt_user=bt,
    )
    return generate_usage_series(
        process, days, 30.0, np.random.default_rng(seed)
    )


class TestCollect:
    @pytest.mark.parametrize("vantage", list(DasuVantage))
    def test_collects_a_subset(self, vantage):
        series = make_series()
        client = DasuClient(vantage, np.random.default_rng(1))
        sampled = client.collect(series)
        assert 0 < sampled.n_samples < series.n_samples

    def test_rates_plausible(self):
        series = make_series(bt=False)
        client = DasuClient(DasuVantage.DIRECT, np.random.default_rng(1))
        sampled = client.collect(series)
        assert np.all(sampled.rates_mbps >= 0)
        assert np.percentile(sampled.rates_mbps, 99) <= 10.0 * 1.01

    def test_mean_close_to_truth_upnp(self):
        # Counter artifacts must not bias the recovered rates: compare
        # the collected mean against the true mean over collected hours.
        series = make_series(days=8.0, bt=False)
        client = DasuClient(DasuVantage.UPNP, np.random.default_rng(2))
        sampled = client.collect(series)
        # Allow the diurnal sampling bias but nothing pathological.
        assert sampled.rates_mbps.mean() == pytest.approx(
            series.rates_mbps.mean(), rel=1.0
        )

    def test_sampling_is_peak_biased(self):
        # Dasu means exceed the whole-day truth (the Fig. 3 offset).
        ratios = []
        for seed in range(30):
            series = make_series(days=10.0, bt=False, seed=seed)
            client = DasuClient(
                DasuVantage.DIRECT, np.random.default_rng(100 + seed)
            )
            sampled = client.collect(series)
            if sampled.n_samples > 100:
                ratios.append(sampled.rates_mbps.mean() / series.rates_mbps.mean())
        assert np.mean(ratios) > 1.03

    def test_bt_flags_preserved(self):
        series = make_series(days=6.0, bt=True)
        client = DasuClient(DasuVantage.DIRECT, np.random.default_rng(3))
        sampled = client.collect(series)
        if series.bt_active.any():
            assert sampled.bt_active.dtype == bool

    def test_summary_excludes_bt(self):
        series = make_series(days=6.0, bt=True, seed=5)
        client = DasuClient(DasuVantage.DIRECT, np.random.default_rng(4))
        sampled = client.collect(series)
        if sampled.bt_active.any() and sampled.has_no_bt_samples:
            with_bt = sampled.summary(include_bt=True)
            without = sampled.summary(include_bt=False)
            assert without.mean_mbps <= with_bt.mean_mbps

    def test_hours_in_range(self):
        series = make_series()
        client = DasuClient(DasuVantage.UPNP, np.random.default_rng(5))
        sampled = client.collect(series)
        assert np.all((sampled.hours >= 0) & (sampled.hours < 24))

    def test_deterministic(self):
        series = make_series()
        a = DasuClient(DasuVantage.UPNP, np.random.default_rng(6)).collect(series)
        b = DasuClient(DasuVantage.UPNP, np.random.default_rng(6)).collect(series)
        assert np.array_equal(a.rates_mbps, b.rates_mbps)

    def test_invalid_miss_rate(self):
        with pytest.raises(MeasurementError):
            DasuClient(DasuVantage.UPNP, np.random.default_rng(0), read_miss_rate=1.0)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(MeasurementError):
            SampledUsage(
                rates_mbps=np.zeros(3),
                bt_active=np.zeros(2, dtype=bool),
                hours=np.zeros(3),
            )
