"""Popular-site latency probes."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.market.plans import PlanTechnology
from repro.measurement.web_latency import POPULAR_SITES, WebLatencyProber
from repro.network.link import AccessLink
from repro.network.path import NetworkPath


def path(distance=30.0, cdn_gap=5.0):
    link = AccessLink(10.0, 1.0, PlanTechnology.DSL, 30.0, 0.001)
    return NetworkPath(link, distance, cdn_gap, 0.0)


class TestWebLatencyProber:
    def test_five_sites(self):
        assert len(POPULAR_SITES) == 5
        assert "google.com" in POPULAR_SITES

    def test_probe_single_site(self):
        prober = WebLatencyProber(np.random.default_rng(0))
        rtt = prober.probe_site(path(), "google.com")
        assert rtt > 30.0  # at least the access RTT

    def test_unknown_site_rejected(self):
        prober = WebLatencyProber(np.random.default_rng(0))
        with pytest.raises(MeasurementError):
            prober.probe_site(path(), "example.org")

    def test_median_latency_tracks_path(self):
        prober = WebLatencyProber(np.random.default_rng(0))
        near = np.median(
            [prober.median_latency_ms(path(distance=20.0)) for _ in range(30)]
        )
        far = np.median(
            [prober.median_latency_ms(path(distance=150.0)) for _ in range(30)]
        )
        assert far > near + 80.0

    def test_cdn_gap_matters(self):
        prober = WebLatencyProber(np.random.default_rng(0))
        small = np.median(
            [prober.median_latency_ms(path(cdn_gap=0.0)) for _ in range(30)]
        )
        large = np.median(
            [prober.median_latency_ms(path(cdn_gap=40.0)) for _ in range(30)]
        )
        assert large > small + 15.0

    def test_deterministic(self):
        a = WebLatencyProber(np.random.default_rng(2)).median_latency_ms(path())
        b = WebLatencyProber(np.random.default_rng(2)).median_latency_ms(path())
        assert a == b
