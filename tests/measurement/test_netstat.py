"""Host byte counters."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.measurement.netstat import NetstatCounter, deltas_from_netstat


class TestNetstatCounter:
    def test_monotone_without_reboots(self):
        counter = NetstatCounter(
            np.random.default_rng(0), reboot_probability_per_read=0.0
        )
        values = []
        for _ in range(20):
            counter.advance(1000)
            values.append(counter.read())
        assert values == sorted(values)

    def test_starts_at_zero(self):
        counter = NetstatCounter(
            np.random.default_rng(0), reboot_probability_per_read=0.0
        )
        assert counter.read() == 0

    def test_negative_advance_rejected(self):
        with pytest.raises(MeasurementError):
            NetstatCounter(np.random.default_rng(0)).advance(-5)

    def test_reboot_resets(self):
        counter = NetstatCounter(
            np.random.default_rng(1), reboot_probability_per_read=0.9
        )
        counter.advance(10_000)
        values = [counter.read() for _ in range(20)]
        assert 0 in values


class TestDeltasFromNetstat:
    def test_plain_deltas(self):
        assert list(deltas_from_netstat(np.array([0, 10, 30]))) == [10, 20]

    def test_reboot_flagged(self):
        assert list(deltas_from_netstat(np.array([100, 5]))) == [-1]

    def test_negative_reading_rejected(self):
        with pytest.raises(MeasurementError):
            deltas_from_netstat(np.array([-5, 10]))

    def test_too_few_rejected(self):
        with pytest.raises(MeasurementError):
            deltas_from_netstat(np.array([1]))
