"""FCC gateway aggregation."""

import numpy as np
import pytest

from repro.behavior.demand import DemandProcess
from repro.exceptions import MeasurementError
from repro.measurement.gateway import FccGateway
from repro.traffic.generator import generate_usage_series


def make_series(days=3.0, seed=0):
    process = DemandProcess(
        offered_peak_mbps=2.0,
        ceiling_mbps=10.0,
        activity_level=0.6,
        burstiness_sigma=1.0,
        rate_median_share=0.35,
        bt_user=False,
    )
    return generate_usage_series(process, days, 30.0, np.random.default_rng(seed))


class TestFccGateway:
    def test_hourly_record_count(self):
        gateway = FccGateway(np.random.default_rng(0), loss_rate=0.0)
        hourly = gateway.hourly_rates(make_series(days=2.0))
        assert hourly.size == 48

    def test_mean_preserved(self):
        series = make_series(days=4.0)
        gateway = FccGateway(np.random.default_rng(0), loss_rate=0.0)
        hourly = gateway.hourly_rates(series)
        assert hourly.mean() == pytest.approx(series.rates_mbps.mean(), rel=1e-9)

    def test_unbiased_sampling(self):
        # Unlike Dasu, the gateway records around the clock: its mean is
        # the true mean, no peak-hour inflation.
        series = make_series(days=6.0, seed=2)
        gateway = FccGateway(np.random.default_rng(0), loss_rate=0.0)
        summary = gateway.summary(series)
        assert summary.mean_mbps == pytest.approx(
            series.rates_mbps.mean(), rel=1e-9
        )

    def test_hourly_peak_slightly_below_fine_grained(self):
        series = make_series(days=6.0, seed=3)
        gateway = FccGateway(np.random.default_rng(0), loss_rate=0.0)
        hourly_peak = gateway.summary(series).peak_mbps
        fine_peak = np.percentile(series.rates_mbps, 95)
        assert hourly_peak <= fine_peak * 1.01
        assert hourly_peak >= fine_peak * 0.4

    def test_record_loss(self):
        series = make_series(days=4.0)
        gateway = FccGateway(np.random.default_rng(1), loss_rate=0.3)
        hourly = gateway.hourly_rates(series)
        assert hourly.size < 96

    def test_invalid_loss_rate(self):
        with pytest.raises(MeasurementError):
            FccGateway(np.random.default_rng(0), loss_rate=1.0)

    def test_coarse_series_rejected(self):
        process = DemandProcess(
            offered_peak_mbps=1.0,
            ceiling_mbps=10.0,
            activity_level=0.5,
            burstiness_sigma=1.0,
            rate_median_share=0.3,
            bt_user=False,
        )
        coarse = generate_usage_series(
            process, 30.0, 7200.0, np.random.default_rng(0)
        )
        gateway = FccGateway(np.random.default_rng(0))
        with pytest.raises(MeasurementError):
            gateway.hourly_rates(coarse)
