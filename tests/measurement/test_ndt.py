"""NDT-style performance tests."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.market.plans import PlanTechnology
from repro.measurement.ndt import NdtClient, NdtResult
from repro.network.link import AccessLink
from repro.network.path import NetworkPath


def path(
    download=20.0,
    rtt=25.0,
    loss=0.0005,
    tech=PlanTechnology.CABLE,
    distance=20.0,
):
    link = AccessLink(download, 2.0, tech, rtt, loss)
    return NetworkPath(link, distance, 5.0, 0.0)


class TestRunTest:
    def test_clean_line_measures_near_line_rate(self):
        client = NdtClient(np.random.default_rng(0))
        results = [client.run_test(path(), 0.0) for _ in range(20)]
        best = max(r.download_mbps for r in results)
        assert best == pytest.approx(20.0, rel=0.12)

    def test_download_never_exceeds_line(self):
        client = NdtClient(np.random.default_rng(0))
        for _ in range(50):
            assert client.run_test(path(), 0.0).download_mbps <= 20.0

    def test_rtt_near_truth(self):
        client = NdtClient(np.random.default_rng(0))
        rtts = [client.run_test(path(), 0.0).rtt_ms for _ in range(50)]
        assert np.median(rtts) == pytest.approx(45.0, rel=0.2)

    def test_lossy_line_tcp_limited(self):
        client = NdtClient(np.random.default_rng(0))
        lossy = path(download=20.0, rtt=250.0, loss=0.05, tech=PlanTechnology.WIRELESS)
        results = [client.run_test(lossy, 0.0) for _ in range(20)]
        assert max(r.download_mbps for r in results) < 15.0

    def test_satellite_pep_speeds_up_measurement(self):
        client_a = NdtClient(np.random.default_rng(0))
        client_b = NdtClient(np.random.default_rng(0))
        sat = path(download=10.0, rtt=600.0, loss=0.005, tech=PlanTechnology.SATELLITE)
        wl = path(download=10.0, rtt=600.0, loss=0.005, tech=PlanTechnology.WIRELESS)
        sat_best = max(client_a.run_test(sat, 0.0).download_mbps for _ in range(20))
        wl_best = max(client_b.run_test(wl, 0.0).download_mbps for _ in range(20))
        assert sat_best > wl_best

    def test_loss_measured_with_sampling_noise(self):
        client = NdtClient(np.random.default_rng(0))
        losses = [
            client.run_test(path(loss=0.01), 0.0).loss_fraction
            for _ in range(30)
        ]
        assert np.mean(losses) == pytest.approx(0.01, rel=0.4)

    def test_clean_line_often_reports_zero_loss(self):
        client = NdtClient(np.random.default_rng(0))
        losses = [
            client.run_test(path(loss=1e-6), 0.0).loss_fraction
            for _ in range(20)
        ]
        assert min(losses) == 0.0

    def test_cross_traffic_lowers_throughput(self):
        quiet = NdtClient(np.random.default_rng(1))
        busy = NdtClient(np.random.default_rng(1))
        q = np.mean([quiet.run_test(path(), 0.0, 0.0).download_mbps for _ in range(20)])
        b = np.mean(
            [busy.run_test(path(), 0.0, 15.0).download_mbps for _ in range(20)]
        )
        assert b < q

    def test_cross_traffic_inflates_rtt(self):
        client = NdtClient(np.random.default_rng(1))
        quiet = np.mean([client.run_test(path(), 0.0, 0.0).rtt_ms for _ in range(20)])
        busy = np.mean([client.run_test(path(), 0.0, 18.0).rtt_ms for _ in range(20)])
        assert busy > quiet + 20.0

    def test_negative_cross_traffic_rejected(self):
        client = NdtClient(np.random.default_rng(0))
        with pytest.raises(MeasurementError):
            client.run_test(path(), 0.0, -1.0)


class TestRunTests:
    def test_campaign_size_and_ordering(self):
        client = NdtClient(np.random.default_rng(0))
        results = client.run_tests(path(), 10, (0.0, 30.0))
        assert len(results) == 10
        days = [r.day for r in results]
        assert days == sorted(days)
        assert all(0.0 <= d <= 30.0 for d in days)

    def test_invalid_window(self):
        client = NdtClient(np.random.default_rng(0))
        with pytest.raises(MeasurementError):
            client.run_tests(path(), 5, (3.0, 3.0))

    def test_invalid_count(self):
        client = NdtClient(np.random.default_rng(0))
        with pytest.raises(MeasurementError):
            client.run_tests(path(), 0, (0.0, 1.0))


class TestNdtResult:
    def test_validation(self):
        with pytest.raises(MeasurementError):
            NdtResult(0.0, 0.0, 1.0, 10.0, 0.0)
        with pytest.raises(MeasurementError):
            NdtResult(0.0, 1.0, 1.0, 0.0, 0.0)
        with pytest.raises(MeasurementError):
            NdtResult(0.0, 1.0, 1.0, 10.0, 1.5)
