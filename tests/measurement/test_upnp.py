"""UPnP counter artifacts and correction."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.measurement.upnp import UpnpCounter, deltas_from_readings
from repro.units import UINT32_WRAP


class TestUpnpCounter:
    def test_advance_and_read(self):
        counter = UpnpCounter(np.random.default_rng(0), reset_probability_per_read=0.0)
        start = counter.read()
        counter.advance(1000)
        assert counter.read() == (start + 1000) % UINT32_WRAP

    def test_wraps_at_32_bits(self):
        counter = UpnpCounter(np.random.default_rng(0), reset_probability_per_read=0.0)
        counter.advance(UINT32_WRAP + 5)
        value = counter.read()
        assert 0 <= value < UINT32_WRAP

    def test_negative_advance_rejected(self):
        counter = UpnpCounter(np.random.default_rng(0))
        with pytest.raises(MeasurementError):
            counter.advance(-1)

    def test_reset_eventually_happens(self):
        counter = UpnpCounter(
            np.random.default_rng(0), reset_probability_per_read=0.5
        )
        counter.advance(10_000)
        values = [counter.read() for _ in range(50)]
        assert 0 in values

    def test_invalid_reset_probability(self):
        with pytest.raises(MeasurementError):
            UpnpCounter(np.random.default_rng(0), reset_probability_per_read=1.0)


class TestDeltasFromReadings:
    def test_plain_deltas(self):
        readings = np.array([100, 250, 400])
        assert list(deltas_from_readings(readings)) == [150, 150]

    def test_wrap_corrected(self):
        near_top = UINT32_WRAP - 100
        readings = np.array([near_top, 50])
        assert list(deltas_from_readings(readings)) == [150]

    def test_reset_flagged(self):
        readings = np.array([1_000_000, 500])
        deltas = deltas_from_readings(readings)
        assert list(deltas) == [-1]

    def test_wrap_and_reset_distinguished(self):
        # A drop of more than half the range is a wrap; less is a reset.
        wrap = np.array([UINT32_WRAP - 10, 10])
        reset = np.array([UINT32_WRAP // 2 - 10, 10])
        assert deltas_from_readings(wrap)[0] == 20
        assert deltas_from_readings(reset)[0] == -1

    def test_mixed_sequence(self):
        readings = np.array([0, 100, UINT32_WRAP - 50, 50, 60, 0, 40])
        deltas = deltas_from_readings(readings)
        assert deltas[0] == 100
        assert deltas[2] == 100  # wrap corrected
        assert deltas[4] == -1  # reset
        assert deltas[5] == 40

    def test_round_trip_with_counter(self):
        rng = np.random.default_rng(5)
        counter = UpnpCounter(rng, reset_probability_per_read=0.0)
        true_deltas = rng.integers(0, 3_000_000_000, 200)
        readings = []
        for delta in true_deltas:
            counter.advance(int(delta))
            readings.append(counter.read())
        recovered = deltas_from_readings(np.array(readings))
        # All but possibly huge (> half-range) deltas recover exactly.
        for true, got in zip(true_deltas[1:], recovered):
            if true < UINT32_WRAP // 2:
                assert got == true % UINT32_WRAP or got == -1

    def test_too_few_readings_rejected(self):
        with pytest.raises(MeasurementError):
            deltas_from_readings(np.array([5]))

    def test_out_of_range_readings_rejected(self):
        with pytest.raises(MeasurementError):
            deltas_from_readings(np.array([0, UINT32_WRAP]))
        with pytest.raises(MeasurementError):
            deltas_from_readings(np.array([-1, 10]))
