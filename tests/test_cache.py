"""The on-disk world cache: keys, hits, invalidation, corruption."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import main
from repro.datasets import WorldConfig, build_world
from repro.datasets import cache as cache_module
from repro.datasets.cache import WorldCache, build_or_load_world, cache_key

TINY = WorldConfig(seed=21, n_dasu_users=30, n_fcc_users=8, days_per_year=1.0)


@pytest.fixture()
def cache(tmp_path) -> WorldCache:
    return WorldCache(tmp_path / "worlds")


class TestCacheKey:
    def test_stable_for_equal_configs(self):
        assert cache_key(TINY) == cache_key(dataclasses.replace(TINY))

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 22},
            {"n_dasu_users": 31},
            {"n_fcc_users": 9},
            {"days_per_year": 1.25},
            {"sample_interval_s": 60.0},
            {"ndt_tests_per_period": 11},
            {"address_constraint_rate": 0.2},
            {"price_selection_enabled": False},
            {"quality_suppression_enabled": False},
            {"demand_growth_enabled": False},
        ],
    )
    def test_any_field_change_changes_key(self, change):
        assert cache_key(dataclasses.replace(TINY, **change)) != cache_key(TINY)

    def test_package_version_change_changes_key(self, monkeypatch):
        before = cache_key(TINY)
        monkeypatch.setattr(cache_module, "__version__", "0.0.0-test")
        assert cache_key(TINY) != before

    def test_cache_format_change_changes_key(self, monkeypatch):
        before = cache_key(TINY)
        monkeypatch.setattr(cache_module, "CACHE_FORMAT_VERSION", 999)
        assert cache_key(TINY) != before


class TestWorldCache:
    def test_miss_on_empty_cache(self, cache):
        assert cache.load(TINY) is None

    def test_store_then_hit(self, cache):
        world = build_world(TINY)
        entry = cache.store(world)
        assert entry is not None and entry.is_dir()
        cached = cache.load(TINY)
        assert cached is not None
        assert [u.user_id for u in sorted(
            cached.all_users, key=lambda u: u.user_id
        )] == [u.user_id for u in sorted(
            world.all_users, key=lambda u: u.user_id
        )]
        assert cached.survey.n_plans == world.survey.n_plans
        # Records only: ground truth is never persisted.
        assert cached.ground_truth == {}

    def test_loaded_records_equal_built_records(self, cache):
        # CSV round-trips floats exactly except the %.6g-encoded hourly
        # profile, so compare the analysis-relevant fields (as the io
        # round-trip tests do) rather than whole records.
        world = build_world(TINY)
        cache.store(world)
        cached = cache.load(TINY)
        by_id = {u.user_id: u for u in cached.all_users}
        for user in world.all_users:
            loaded = by_id[user.user_id]
            assert loaded.country == user.country
            assert loaded.capacity_down_mbps == user.capacity_down_mbps
            assert loaded.peak_mbps == user.peak_mbps
            assert loaded.peak_no_bt_mbps == user.peak_no_bt_mbps
            assert loaded.latency_ms == user.latency_ms
            assert len(loaded.observations) == len(user.observations)
            assert loaded.network == user.network

    def test_different_config_misses(self, cache):
        cache.store(build_world(TINY))
        other = dataclasses.replace(TINY, seed=22)
        assert cache.load(other) is None

    def test_corrupt_users_csv_is_a_miss(self, cache):
        world = build_world(TINY)
        entry = cache.store(world)
        (entry / "users.csv").write_text("not,a,valid\nusers,file,at all\n")
        assert cache.load(TINY) is None
        assert not cache.fetch_into(TINY, entry.parent / "out")

    def test_truncated_users_csv_is_a_miss(self, cache):
        world = build_world(TINY)
        entry = cache.store(world)
        raw = (entry / "users.csv").read_bytes()
        (entry / "users.csv").write_bytes(raw[: len(raw) // 2])
        assert cache.load(TINY) is None

    def test_missing_survey_is_a_miss(self, cache):
        entry = cache.store(build_world(TINY))
        (entry / "survey.csv").unlink()
        assert cache.load(TINY) is None

    def test_invalidate(self, cache):
        cache.store(build_world(TINY))
        assert cache.invalidate(TINY)
        assert cache.load(TINY) is None
        assert not cache.invalidate(TINY)

    def test_trace_worlds_bypass_cache(self, cache):
        config = dataclasses.replace(TINY, trace_user_fraction=0.5)
        world = build_world(config)
        assert cache.store(world) is None
        assert cache.load(config) is None

    def test_fetch_into_copies_raw_files(self, cache, tmp_path):
        world = build_world(TINY)
        entry = cache.store(world)
        out = tmp_path / "fetched"
        assert cache.fetch_into(TINY, out)
        for name in ("users.csv", "survey.csv", "config.json"):
            assert (out / name).read_bytes() == (entry / name).read_bytes()

    def test_trace_round_trips_through_cache(self, cache):
        # The build ledger is stored as trace.jsonl next to the datasets
        # and comes back byte-identical on a hit.
        world = build_world(TINY)
        entry = cache.store(world)
        stored = (entry / "trace.jsonl").read_text()
        assert stored == world.ledger.to_jsonl()
        cached = cache.load(TINY)
        assert cached.ledger is not None
        assert cached.ledger.to_jsonl() == stored

    def test_fetch_into_copies_trace(self, cache, tmp_path):
        entry = cache.store(build_world(TINY))
        out = tmp_path / "fetched-trace"
        assert cache.fetch_into(TINY, out)
        assert (out / "trace.jsonl").read_bytes() == (
            entry / "trace.jsonl"
        ).read_bytes()

    def test_entry_without_trace_still_hits(self, cache):
        # Entries written before the ledger existed (or hand-pruned)
        # must stay loadable; they just carry no ledger.
        entry = cache.store(build_world(TINY))
        (entry / "trace.jsonl").unlink()
        cached = cache.load(TINY)
        assert cached is not None
        assert cached.ledger is None

    def test_corrupt_trace_is_a_miss(self, cache):
        entry = cache.store(build_world(TINY))
        (entry / "trace.jsonl").write_text("not json\n")
        assert cache.load(TINY) is None


class TestBuildOrLoad:
    def test_builds_then_loads(self, cache):
        world, from_cache = build_or_load_world(TINY, cache=cache)
        assert not from_cache
        again, from_cache = build_or_load_world(TINY, cache=cache)
        assert from_cache
        assert len(again.all_users) == len(world.all_users)

    def test_use_cache_false_always_builds(self, cache):
        build_or_load_world(TINY, cache=cache)
        world, from_cache = build_or_load_world(
            TINY, cache=cache, use_cache=False
        )
        assert not from_cache
        assert world.ground_truth  # a real build carries ground truth

    def test_corrupt_entry_falls_back_to_clean_build(self, cache):
        build_or_load_world(TINY, cache=cache)
        entry = cache.entry_dir(TINY)
        (entry / "users.csv").write_text("garbage")
        world, from_cache = build_or_load_world(TINY, cache=cache)
        assert not from_cache
        assert world.all_users
        # The rebuild repaired the entry.
        assert cache.load(TINY) is not None


class TestCliCache:
    ARGS = ["--users", "30", "--fcc", "8", "--days", "1.0", "--seed", "21"]

    def _build(self, out, cache_dir, *extra):
        return main(
            ["build", "--out", str(out), "--cache-dir", str(cache_dir)]
            + self.ARGS + list(extra)
        )

    def test_second_build_hits_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert self._build(tmp_path / "w1", cache_dir) == 0
        first = capsys.readouterr().out
        assert "cache hit" not in first
        assert self._build(tmp_path / "w2", cache_dir) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second
        assert "skipping build" in second
        assert (
            (tmp_path / "w1" / "users.csv").read_bytes()
            == (tmp_path / "w2" / "users.csv").read_bytes()
        )

    def test_no_cache_forces_rebuild(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert self._build(tmp_path / "w1", cache_dir) == 0
        capsys.readouterr()
        assert self._build(tmp_path / "w2", cache_dir, "--no-cache") == 0
        out = capsys.readouterr().out
        assert "cache hit" not in out
        assert "building world" in out

    def test_corrupt_cache_entry_falls_back(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert self._build(tmp_path / "w1", cache_dir) == 0
        capsys.readouterr()
        entries = [
            p for p in cache_dir.iterdir() if not p.name.startswith(".")
        ]
        assert len(entries) == 1
        (entries[0] / "users.csv").write_text("corrupted beyond repair")
        assert self._build(tmp_path / "w2", cache_dir) == 0
        out = capsys.readouterr().out
        assert "building world" in out
        assert (tmp_path / "w2" / "users.csv").exists()

    def test_report_from_cache_skips_build(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert self._build(tmp_path / "w1", cache_dir) == 0
        capsys.readouterr()
        rc = main(
            ["report", "--cache-dir", str(cache_dir)] + self.ARGS
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cache hit" in out
        assert "skipping build" in out
        assert "Reproduction report" in out


class TestStoreRace:
    """Concurrent stores of the same config must both succeed.

    ``os.replace`` onto an existing non-empty directory raises (ENOTEMPTY
    on Linux); the builds are deterministic, so losing the publish race
    is a benign success, not an error.
    """

    def test_lost_race_returns_existing_entry(self, cache):
        world = build_world(TINY)
        first = cache.store(world)
        before = (first / "users.csv").read_bytes()
        # A second store finds the entry path occupied by a valid,
        # equivalent entry: keep it, discard the staging copy.
        second = cache.store(world)
        assert second == first
        assert (first / "users.csv").read_bytes() == before
        assert cache.load(TINY) is not None
        assert not list(cache.root.glob(".staging-*"))

    def test_invalid_occupant_is_replaced(self, cache):
        world = build_world(TINY)
        entry = cache.entry_dir(TINY)
        entry.mkdir(parents=True)
        (entry / "garbage.txt").write_text("not a world")
        stored = cache.store(world)
        assert stored == entry
        assert cache.load(TINY) is not None
        assert not (entry / "garbage.txt").exists()
        assert not list(cache.root.glob(".staging-*"))


class TestCacheKeyCanonicalization:
    """``cache_key`` hashes a canonical JSON payload.

    The old implementation used ``json.dumps(..., default=str)``: any
    unserializable value was silently stringified, so two *different*
    configs could collide (or one config could hash differently across
    platforms whose ``str()`` differs). Numeric scalars now normalize to
    builtin int/float and anything else fails loudly.
    """

    def test_numpy_scalars_hash_like_builtins(self):
        import numpy as np

        assert cache_key(
            dataclasses.replace(TINY, seed=np.int64(TINY.seed))
        ) == cache_key(TINY)
        assert cache_key(
            dataclasses.replace(
                TINY, days_per_year=np.float64(TINY.days_per_year)
            )
        ) == cache_key(TINY)

    def test_non_canonical_value_raises(self):
        from pathlib import Path as _Path

        from repro.exceptions import DatasetError

        bad = dataclasses.replace(TINY, seed=_Path("not-a-seed"))
        with pytest.raises(DatasetError, match="non-JSON-native"):
            cache_key(bad)

    def test_bool_is_not_an_int(self):
        # bool is an Integral subclass; it must stay a JSON bool, not
        # collapse onto 0/1 (which would collide with integer fields).
        assert cache_key(
            dataclasses.replace(TINY, sanitize=False)
        ) != cache_key(dataclasses.replace(TINY, sanitize=True))


class TestColumnarShard:
    """The ``users.npy`` fast path: valid shards load without CSV
    parsing; anything suspect falls back to the CSV byte-for-byte."""

    def test_entry_carries_npy_and_manifest(self, cache):
        entry = cache.store(build_world(TINY))
        assert (entry / "users.npy").exists()
        meta = json.loads((entry / "users.npy.json").read_text())
        assert meta["users_csv_bytes"] == (entry / "users.csv").stat().st_size

    def test_corrupt_npy_falls_back_to_csv(self, cache):
        world = build_world(TINY)
        entry = cache.store(world)
        (entry / "users.npy").write_bytes(b"\x93NUMPY garbage")
        cached = cache.load(TINY)
        assert cached is not None
        assert sorted(u.user_id for u in cached.all_users) == sorted(
            u.user_id for u in world.all_users
        )

    def test_stale_manifest_falls_back_to_csv(self, cache):
        entry = cache.store(build_world(TINY))
        meta = json.loads((entry / "users.npy.json").read_text())
        meta["rows"] = meta["rows"] + 1
        (entry / "users.npy.json").write_text(json.dumps(meta))
        assert cache.load(TINY) is not None

    def test_fetch_into_copies_columnar_shard(self, cache, tmp_path):
        entry = cache.store(build_world(TINY))
        out = tmp_path / "out"
        out.mkdir()
        assert cache.fetch_into(TINY, out)
        for name in ("users.npy", "users.npy.json"):
            assert (out / name).read_bytes() == (entry / name).read_bytes()
