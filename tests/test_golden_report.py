"""Golden snapshot of the full report.

The parallel/cached build refactor must not change a single analysis
number, so the complete ``full_report`` text for a small fixed-seed
world is pinned byte-for-byte under ``tests/golden/``. Any behavioral
drift in the generative substrate, the measurement clients, or the
analysis toolkit fails this test loudly.

To regenerate after an *intentional* behavior change::

    PYTHONPATH=src python -m pytest tests/test_golden_report.py --regen-golden

then review the golden diff like any other code change.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.paper_report import full_report
from repro.datasets import WorldConfig, build_world

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_REPORT = GOLDEN_DIR / "full_report_seed11.txt"

#: Small enough to build in ~1 s, large enough that every report section
#: has data. Changing this config invalidates the snapshot — regenerate.
GOLDEN_CONFIG = WorldConfig(
    seed=11, n_dasu_users=400, n_fcc_users=80, days_per_year=1.0
)


@pytest.fixture(scope="module")
def report_text() -> str:
    world = build_world(GOLDEN_CONFIG)
    return full_report(world.dasu.users, world.fcc.users, world.survey)


def test_full_report_matches_golden(report_text, request):
    if request.config.getoption("--regen-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN_REPORT.write_text(report_text + "\n")
        pytest.skip(f"regenerated {GOLDEN_REPORT}")
    assert GOLDEN_REPORT.exists(), (
        "golden snapshot missing — regenerate with "
        "`python -m pytest tests/test_golden_report.py --regen-golden`"
    )
    expected = GOLDEN_REPORT.read_text()
    assert report_text + "\n" == expected, (
        "full_report drifted from the golden snapshot; if the change is "
        "intentional, regenerate with --regen-golden and review the diff"
    )


def test_report_is_parallel_invariant(report_text):
    """The pinned report is also what a 2-worker build produces."""
    world = build_world(GOLDEN_CONFIG, jobs=2, chunk_size=17)
    parallel_text = full_report(
        world.dasu.users, world.fcc.users, world.survey
    )
    assert parallel_text == report_text
