"""Access-technology profiles."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.market.plans import PlanTechnology
from repro.network.technology import TECH_PROFILES, sample_technology


class TestProfiles:
    def test_all_technologies_covered(self):
        assert set(TECH_PROFILES) == set(PlanTechnology)

    def test_satellite_is_high_latency(self):
        sat = TECH_PROFILES[PlanTechnology.SATELLITE]
        assert sat.rtt_range_ms[0] >= 400.0

    def test_fiber_is_low_latency_low_loss(self):
        fiber = TECH_PROFILES[PlanTechnology.FIBER]
        assert fiber.rtt_range_ms[1] <= 30.0
        assert fiber.loss_range[1] <= 1e-3

    def test_only_satellite_has_pep(self):
        for tech, profile in TECH_PROFILES.items():
            if tech is PlanTechnology.SATELLITE:
                assert profile.pep_rtt_ms is not None
            else:
                assert profile.pep_rtt_ms is None

    def test_rtt_samples_in_range(self):
        rng = np.random.default_rng(0)
        profile = TECH_PROFILES[PlanTechnology.DSL]
        for _ in range(100):
            rtt = profile.sample_access_rtt_ms(rng)
            assert profile.rtt_range_ms[0] <= rtt <= profile.rtt_range_ms[1]

    def test_loss_samples_in_range(self):
        rng = np.random.default_rng(0)
        profile = TECH_PROFILES[PlanTechnology.CABLE]
        for _ in range(100):
            loss = profile.sample_loss_fraction(rng)
            assert profile.loss_range[0] <= loss <= profile.loss_range[1]

    def test_loss_multiplier_scales(self):
        rng = np.random.default_rng(0)
        profile = TECH_PROFILES[PlanTechnology.DSL]
        base = [profile.sample_loss_fraction(np.random.default_rng(i)) for i in range(50)]
        scaled = [
            profile.sample_loss_fraction(np.random.default_rng(i), multiplier=10.0)
            for i in range(50)
        ]
        assert np.mean(scaled) > 5 * np.mean(base)

    def test_loss_capped(self):
        rng = np.random.default_rng(0)
        profile = TECH_PROFILES[PlanTechnology.WIRELESS]
        for _ in range(100):
            assert profile.sample_loss_fraction(rng, multiplier=100.0) <= 0.30

    def test_invalid_multiplier(self):
        rng = np.random.default_rng(0)
        with pytest.raises(MeasurementError):
            TECH_PROFILES[PlanTechnology.DSL].sample_loss_fraction(rng, 0.0)


class TestSampleTechnology:
    MIX = {
        PlanTechnology.FIBER: 0.2,
        PlanTechnology.DSL: 0.5,
        PlanTechnology.SATELLITE: 0.3,
    }

    def test_respects_capacity_ceiling(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            tech = sample_technology(self.MIX, 100.0, rng)
            assert tech is PlanTechnology.FIBER  # only fiber carries 100 Mbps

    def test_low_capacity_uses_full_mix(self):
        rng = np.random.default_rng(0)
        seen = {sample_technology(self.MIX, 1.0, rng) for _ in range(300)}
        assert seen == set(self.MIX)

    def test_empty_feasible_falls_back_to_fiber(self):
        rng = np.random.default_rng(0)
        mix = {PlanTechnology.DSL: 1.0}
        assert sample_technology(mix, 100.0, rng) is PlanTechnology.FIBER

    def test_invalid_capacity(self):
        rng = np.random.default_rng(0)
        with pytest.raises(MeasurementError):
            sample_technology(self.MIX, -1.0, rng)

    def test_deterministic(self):
        a = [
            sample_technology(self.MIX, 5.0, np.random.default_rng(7))
            for _ in range(3)
        ]
        assert a[0] == a[1] == a[2]
