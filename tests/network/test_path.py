"""End-to-end paths."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.market.plans import PlanTechnology
from repro.network.link import AccessLink
from repro.network.path import NetworkPath, build_path


def link(rtt=30.0, loss=0.001):
    return AccessLink(10.0, 1.0, PlanTechnology.DSL, rtt, loss)


class TestNetworkPath:
    def test_ndt_rtt_composition(self):
        path = NetworkPath(link(rtt=30.0), 50.0, 10.0, 0.0)
        assert path.ndt_rtt_ms == 80.0

    def test_web_rtt_includes_cdn_gap(self):
        path = NetworkPath(link(rtt=30.0), 50.0, 10.0, 0.0)
        assert path.web_rtt_ms == 90.0

    def test_loss_combination(self):
        path = NetworkPath(link(loss=0.01), 50.0, 0.0, 0.01)
        assert path.loss_fraction == pytest.approx(1 - 0.99 * 0.99)

    def test_loss_capped(self):
        path = NetworkPath(link(loss=0.3), 50.0, 0.0, 0.3)
        assert path.loss_fraction <= 0.5

    def test_negative_distance_rejected(self):
        with pytest.raises(MeasurementError):
            NetworkPath(link(), -1.0, 0.0, 0.0)

    def test_invalid_path_loss_rejected(self):
        with pytest.raises(MeasurementError):
            NetworkPath(link(), 10.0, 0.0, 1.0)


class TestBuildPath:
    def test_distance_scales_with_country_latency(self):
        near = [
            build_path(link(), 10.0, np.random.default_rng(i)).distance_rtt_ms
            for i in range(100)
        ]
        far = [
            build_path(link(), 120.0, np.random.default_rng(i)).distance_rtt_ms
            for i in range(100)
        ]
        assert np.median(far) > 5 * np.median(near)

    def test_remote_countries_get_cdn_gap(self):
        gaps = [
            build_path(link(), 140.0, np.random.default_rng(i)).cdn_gap_ms
            for i in range(200)
        ]
        assert np.mean(gaps) > 5.0

    def test_well_served_countries_small_gap(self):
        gaps = [
            build_path(link(), 15.0, np.random.default_rng(i)).cdn_gap_ms
            for i in range(200)
        ]
        assert max(gaps) <= 8.0

    def test_negative_extra_latency_rejected(self):
        with pytest.raises(MeasurementError):
            build_path(link(), -5.0, np.random.default_rng(0))

    def test_deterministic(self):
        a = build_path(link(), 50.0, np.random.default_rng(3))
        b = build_path(link(), 50.0, np.random.default_rng(3))
        assert a.distance_rtt_ms == b.distance_rtt_ms
