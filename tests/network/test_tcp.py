"""Mathis TCP throughput model."""

import math

import pytest

from repro.exceptions import MeasurementError
from repro.market.plans import PlanTechnology
from repro.network.link import AccessLink
from repro.network.path import NetworkPath
from repro.network.tcp import (
    DEFAULT_HOUSEHOLD_FLOWS,
    effective_capacity_mbps,
    mathis_throughput_mbps,
)


class TestMathis:
    def test_known_value(self):
        # MSS 1460 B, RTT 100 ms, loss 1%: ~1.43 Mbps per flow.
        expected = 1460 * 8 / 0.1 * math.sqrt(1.5) / math.sqrt(0.01) / 1e6
        assert mathis_throughput_mbps(100.0, 0.01) == pytest.approx(expected)

    def test_loss_free_is_unbounded(self):
        assert mathis_throughput_mbps(100.0, 0.0) == math.inf

    def test_scales_with_flows(self):
        single = mathis_throughput_mbps(50.0, 0.001, n_flows=1)
        assert mathis_throughput_mbps(50.0, 0.001, n_flows=8) == pytest.approx(
            8 * single
        )

    def test_decreases_with_rtt(self):
        assert mathis_throughput_mbps(200.0, 0.01) < mathis_throughput_mbps(
            50.0, 0.01
        )

    def test_decreases_with_loss(self):
        assert mathis_throughput_mbps(50.0, 0.05) < mathis_throughput_mbps(
            50.0, 0.001
        )

    def test_invalid_rtt(self):
        with pytest.raises(MeasurementError):
            mathis_throughput_mbps(0.0, 0.01)

    def test_invalid_loss(self):
        with pytest.raises(MeasurementError):
            mathis_throughput_mbps(50.0, 1.0)

    def test_invalid_flows(self):
        with pytest.raises(MeasurementError):
            mathis_throughput_mbps(50.0, 0.01, n_flows=0)


def path_for(technology, rtt, loss, download=10.0):
    link = AccessLink(download, 1.0, technology, rtt, loss)
    return NetworkPath(link, 10.0, 0.0, 0.0)


class TestEffectiveCapacity:
    def test_clean_path_is_line_limited(self):
        path = path_for(PlanTechnology.CABLE, 20.0, 1e-5)
        assert effective_capacity_mbps(path) == pytest.approx(10.0)

    def test_lossy_distant_path_is_tcp_limited(self):
        path = path_for(PlanTechnology.WIRELESS, 300.0, 0.05)
        assert effective_capacity_mbps(path) < 10.0

    def test_satellite_pep_raises_ceiling(self):
        # Same RTT/loss, but satellite's PEP caps the TCP-visible RTT.
        sat = path_for(PlanTechnology.SATELLITE, 600.0, 0.01)
        wireless = path_for(PlanTechnology.WIRELESS, 600.0, 0.01)
        assert effective_capacity_mbps(sat) > effective_capacity_mbps(wireless)

    def test_flow_count_matters_on_limited_paths(self):
        path = path_for(PlanTechnology.WIRELESS, 300.0, 0.05)
        assert effective_capacity_mbps(path, n_flows=2) < effective_capacity_mbps(
            path, n_flows=DEFAULT_HOUSEHOLD_FLOWS
        )
