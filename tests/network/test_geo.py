"""Network identity planning."""

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.network.geo import NetworkPlanner


def planner(seed=0, isps=("ISP-A", "ISP-B")):
    return NetworkPlanner("Testland", isps, np.random.default_rng(seed))


class TestNetworkPlanner:
    def test_home_network_fields(self):
        net = planner().home_network()
        assert net.isp in ("ISP-A", "ISP-B")
        assert "/" in net.prefix
        assert net.city

    def test_requested_isp_respected(self):
        net = planner().home_network("ISP-B")
        assert net.isp == "ISP-B"

    def test_unknown_isp_rejected(self):
        with pytest.raises(DatasetError):
            planner().home_network("Nope")

    def test_prefixes_unique(self):
        p = planner()
        prefixes = {p.home_network().prefix for _ in range(100)}
        assert len(prefixes) == 100

    def test_switch_changes_tuple(self):
        p = planner()
        home = p.home_network()
        for _ in range(20):
            switched = p.switched_network(home)
            assert switched != home  # prefix always fresh

    def test_switch_usually_keeps_city(self):
        p = planner(seed=2)
        home = p.home_network()
        same_city = sum(
            1 for _ in range(200) if p.switched_network(home).city == home.city
        )
        assert same_city > 120

    def test_no_isps_rejected(self):
        with pytest.raises(DatasetError):
            NetworkPlanner("X", (), np.random.default_rng(0))

    def test_no_cities_rejected(self):
        with pytest.raises(DatasetError):
            NetworkPlanner("X", ("A",), np.random.default_rng(0), n_cities=0)

    def test_deterministic(self):
        a = planner(seed=5).home_network()
        b = planner(seed=5).home_network()
        assert a == b
