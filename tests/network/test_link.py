"""Access-link provisioning."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError
from repro.market.plans import PlanTechnology
from repro.network.link import AccessLink, provision_link


class TestAccessLink:
    def test_valid(self):
        link = AccessLink(10.0, 1.0, PlanTechnology.DSL, 30.0, 0.001)
        assert link.download_mbps == 10.0

    def test_invalid_capacity(self):
        with pytest.raises(MeasurementError):
            AccessLink(0.0, 1.0, PlanTechnology.DSL, 30.0, 0.001)

    def test_invalid_rtt(self):
        with pytest.raises(MeasurementError):
            AccessLink(10.0, 1.0, PlanTechnology.DSL, 0.0, 0.001)

    def test_invalid_loss(self):
        with pytest.raises(MeasurementError):
            AccessLink(10.0, 1.0, PlanTechnology.DSL, 30.0, 1.0)


class TestProvisionLink:
    def test_fiber_delivers_advertised(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            link = provision_link(100.0, 50.0, PlanTechnology.FIBER, rng)
            assert link.download_mbps >= 95.0

    def test_dsl_degrades(self):
        rng = np.random.default_rng(0)
        ratios = [
            provision_link(10.0, 1.0, PlanTechnology.DSL, rng).download_mbps / 10.0
            for _ in range(200)
        ]
        assert min(ratios) < 0.85
        assert max(ratios) <= 1.02

    def test_technology_ceiling_enforced(self):
        rng = np.random.default_rng(0)
        link = provision_link(100.0, 10.0, PlanTechnology.DSL, rng)
        assert link.download_mbps <= 25.0

    def test_satellite_ceiling(self):
        rng = np.random.default_rng(0)
        link = provision_link(50.0, 5.0, PlanTechnology.SATELLITE, rng)
        assert link.download_mbps <= 15.0

    def test_upload_not_above_download(self):
        rng = np.random.default_rng(0)
        for _ in range(100):
            link = provision_link(5.0, 5.0, PlanTechnology.CABLE, rng)
            assert link.upload_mbps <= link.download_mbps

    def test_loss_multiplier_passed_through(self):
        base = [
            provision_link(
                5.0, 0.5, PlanTechnology.DSL, np.random.default_rng(i)
            ).loss_fraction
            for i in range(100)
        ]
        scaled = [
            provision_link(
                5.0, 0.5, PlanTechnology.DSL, np.random.default_rng(i),
                loss_multiplier=8.0,
            ).loss_fraction
            for i in range(100)
        ]
        assert np.mean(scaled) > 4 * np.mean(base)

    def test_rtt_within_technology_profile(self):
        rng = np.random.default_rng(0)
        link = provision_link(10.0, 1.0, PlanTechnology.CABLE, rng)
        assert 10.0 <= link.access_rtt_ms <= 35.0
