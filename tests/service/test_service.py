"""The warm report service end to end.

One module-scoped daemon serves a tiny world chain; the tests drive it
the way an operator would — over HTTP and through the spool directory —
and check the service's central promise: what it serves is always
byte-identical to a cold full rebuild of the chain's tip.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.analysis.paper_report import fragment_inputs, fragment_keys
from repro.datasets import WorldCache, WorldConfig
from repro.service import ReportServer, ReportService

CONFIG = WorldConfig(
    seed=23, n_dasu_users=80, n_fcc_users=12, days_per_year=1.0, sanitize=True
)


class Client:
    def __init__(self, base_url: str):
        self.base_url = base_url

    def get(self, path: str, headers: dict | None = None):
        request = urllib.request.Request(
            self.base_url + path, headers=headers or {}
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve")
    cache = WorldCache(root / "cache")
    service = ReportService(
        CONFIG, state_dir=root / "state", cache=cache, jobs=1
    )
    server = ReportServer(
        service, port=0, spool_dir=root / "spool", interval_s=0.05
    )
    server.start()
    yield server, service, cache, root / "spool"
    server.stop()


@pytest.fixture()
def client(daemon):
    server, _, _, _ = daemon
    return Client(server.url)


def expected_report(cache: WorldCache, config: WorldConfig) -> bytes:
    """The cold-rebuild reference: render straight from the world."""
    from repro.analysis.paper_report import full_report

    world = cache.load(config)
    assert world is not None
    text = full_report(world.dasu.users, world.fcc.users, world.survey)
    return (text + "\n").encode("utf-8")


def test_healthz(client):
    status, _, body = client.get("/healthz")
    assert status == 200 and body == b"ok\n"


def test_report_matches_cold_rebuild(daemon, client):
    _, service, cache, _ = daemon
    status, headers, body = client.get("/report.txt")
    assert status == 200
    assert body == expected_report(cache, service.log.tip_config())
    assert headers.get("ETag")


def test_etag_304(client):
    _, headers, _ = client.get("/report.txt")
    status, _, body = client.get(
        "/report.txt", {"If-None-Match": headers["ETag"]}
    )
    assert status == 304 and body == b""
    status, _, _ = client.get(
        "/report.txt", {"If-None-Match": "stale-tag"}
    )
    assert status == 200


def test_manifest_and_trace(client):
    status, headers, body = client.get("/manifest.json")
    assert status == 200
    manifest = json.loads(body)
    assert manifest["command"] == "serve"
    assert manifest["append_chain"] == [] or isinstance(
        manifest["append_chain"], list
    )
    status, _, body = client.get("/trace.jsonl")
    assert status == 200
    for line in body.splitlines():
        json.loads(line)


def test_unknown_route_404(client):
    status, _, _ = client.get("/nope")
    assert status == 404


def test_sweep_endpoints_404_without_grid(client):
    for path in ("/sweep.json", "/sweep-report.txt"):
        status, _, body = client.get(path)
        assert status == 404
        assert b"grid" in body


def test_status_payload(client):
    status, _, body = client.get("/status.json")
    assert status == 200
    payload = json.loads(body)
    assert payload["ready"] is True
    assert payload["refreshes"] >= 1
    assert payload["n_dasu_users"] >= CONFIG.n_dasu_users


def test_spool_append_refreshes_and_confines_recompute(daemon, client):
    """An appended period changes the ETag, re-renders the report to the
    cold-rebuild bytes, and re-executes only data-dependent fragments."""
    server, service, cache, spool = daemon
    _, headers, _ = client.get("/report.txt")
    old_etag = headers["ETag"]
    before = service.log.tip_config()

    (spool / "batch-100.json").write_text(json.dumps({"n_dasu_users": 16}))
    assert server.poll_once() == 1
    assert not list(spool.glob("batch-100.json"))

    tip = service.log.tip_config()
    assert tip.n_dasu_users == before.n_dasu_users + 16
    status, headers, body = client.get("/report.txt")
    assert status == 200
    assert headers["ETag"] != old_etag
    assert body == expected_report(cache, tip)

    _, _, status_body = client.get("/status.json")
    payload = json.loads(status_body)
    survey_only = {
        f"fragment/{key}"
        for key in fragment_keys()
        if fragment_inputs(key) == ("survey",)
    }
    cached = {s for s in payload["cached"] if s.startswith("fragment/")}
    executed = {s for s in payload["executed"] if s.startswith("fragment/")}
    assert cached == survey_only
    assert executed == {
        f"fragment/{key}" for key in fragment_keys()
    } - survey_only


def test_spool_rejects_malformed_files(daemon, client):
    server, service, _, spool = daemon
    (spool / "broken.json").write_text("{not json")
    rejected_before = service.rejected
    assert server.poll_once() == 0
    assert service.rejected == rejected_before + 1
    assert (spool / "broken.json.rejected").exists()
    (spool / "broken.json.rejected").unlink()


def test_spool_grid_enables_sweep_endpoints(daemon, client):
    server, service, _, spool = daemon
    grid = {"name": "svc", "scenarios": [{"name": "baseline"}]}
    (spool / "verdicts.grid.json").write_text(json.dumps(grid))
    assert server.poll_once() == 1
    status, headers, body = client.get("/sweep.json")
    assert status == 200
    payload = json.loads(body)
    assert payload["cells"]
    status, _, body = client.get("/sweep-report.txt")
    assert status == 200 and body


def test_run_loop_exits_on_stop(daemon):
    """A second front-end over the same (warm) service: its polling
    loop must exit promptly once stop is requested."""
    _, service, _, spool = daemon
    second = ReportServer(service, port=0, spool_dir=spool, interval_s=0.05)
    second.start()
    timer = threading.Timer(0.3, second._stop.set)
    timer.start()
    second.run()  # returns (and shuts down) once the stop event fires
    timer.cancel()
    with pytest.raises(RuntimeError):
        second.port


def test_restart_replays_chain_and_reloads_fragments(daemon, tmp_path_factory):
    """A fresh service over the same cache + state dir replays the delta
    log to the same tip and reloads every fragment from the store."""
    _, service, cache, _ = daemon
    tip = service.log.tip_config()
    restarted = ReportService(
        CONFIG, state_dir=service.state_dir, cache=cache, jobs=1
    )
    assert restarted.snapshot() is None
    snapshot = restarted.refresh()
    assert snapshot.config == tip
    assert snapshot.report_text.encode("utf-8") == expected_report(cache, tip)
    assert not [s for s in snapshot.executed if s.startswith("fragment/")]


def test_iqb_matches_cold_payload(daemon, client):
    """/iqb.json is byte-identical to iqb_payload on the chain's tip."""
    from repro.analysis.iqb import iqb_payload

    _, service, cache, _ = daemon
    status, headers, body = client.get("/iqb.json")
    assert status == 200
    assert headers.get("ETag")
    world = cache.load(service.log.tip_config())
    expected = (
        json.dumps(
            iqb_payload(world.dasu.users, world.fcc.users),
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    assert body == expected.encode("utf-8")
    status, _, stale = client.get(
        "/iqb.json", {"If-None-Match": headers["ETag"]}
    )
    assert status == 304 and stale == b""
