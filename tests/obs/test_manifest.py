"""Run manifests: provenance that is byte-stable across parallelism."""

import dataclasses
import json

from repro._version import __version__
from repro.datasets.cache import cache_key
from repro.datasets.world import WorldConfig
from repro.obs.manifest import MANIFEST_FORMAT_VERSION, run_manifest, write_manifest


class TestRunManifest:
    def test_config_block_and_hash(self):
        config = WorldConfig(seed=3, n_dasu_users=10, n_fcc_users=2)
        manifest = run_manifest(config, command="build")
        assert manifest["manifest_format"] == MANIFEST_FORMAT_VERSION
        assert manifest["command"] == "build"
        assert manifest["code_version"] == __version__
        assert manifest["seed"] == 3
        assert manifest["config_hash"] == cache_key(config)
        assert manifest["config"]["n_dasu_users"] == 10

    def test_no_scheduling_knobs(self):
        # Two runs differing only in --jobs must produce byte-identical
        # manifests, so no field may carry worker counts or timestamps.
        manifest = run_manifest(WorldConfig(seed=1), command="report")
        blob = json.dumps(manifest)
        assert "jobs" not in blob
        assert "time" not in blob

    def test_data_dir_run_has_no_config(self):
        manifest = run_manifest(None, command="report", data_dir="/data/x")
        assert manifest["config"] is None
        assert manifest["config_hash"] is None
        assert manifest["seed"] is None
        assert manifest["data_dir"] == "/data/x"

    def test_sanitize_and_faults_surfaced(self):
        config = dataclasses.replace(WorldConfig(seed=1), sanitize=True)
        manifest = run_manifest(config, command="build")
        assert manifest["sanitize"] is True

    def test_deterministic_for_same_config(self):
        config = WorldConfig(seed=5)
        assert run_manifest(config, command="build") == run_manifest(
            config, command="build"
        )

    def test_write_is_byte_stable(self, tmp_path):
        config = WorldConfig(seed=5)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_manifest(run_manifest(config, command="build"), a)
        write_manifest(run_manifest(config, command="build"), b)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_text().endswith("\n")
