"""The run ledger: recording, merging, and serialization invariants."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import LedgerError
from repro.obs.ledger import RunLedger, Span, count, current, gauge, scoped, span


class TestRecording:
    def test_counters_accumulate(self):
        ledger = RunLedger()
        ledger.count("users", 3)
        ledger.count("users", 2)
        assert ledger.counters["users"] == 5

    def test_default_increment_is_one(self):
        ledger = RunLedger()
        ledger.count("hits")
        assert ledger.counters["hits"] == 1

    def test_non_integer_increment_rejected(self):
        with pytest.raises(LedgerError):
            RunLedger().count("x", 1.5)

    def test_gauge_set_once(self):
        ledger = RunLedger()
        ledger.gauge("size", 42.0)
        assert ledger.gauges["size"] == 42.0

    def test_gauge_reset_to_same_value_allowed(self):
        ledger = RunLedger()
        ledger.gauge("size", 42.0)
        ledger.gauge("size", 42.0)

    def test_gauge_conflict_rejected(self):
        ledger = RunLedger()
        ledger.gauge("size", 42.0)
        with pytest.raises(LedgerError):
            ledger.gauge("size", 43.0)

    def test_span_records_duration(self):
        ledger = RunLedger()
        with ledger.span("work", shard="s0"):
            pass
        (recorded,) = ledger.spans
        assert recorded.name == "work"
        assert recorded.shard == "s0"
        assert recorded.wall_s >= 0.0

    def test_span_recorded_on_exception(self):
        ledger = RunLedger()
        with pytest.raises(ValueError):
            with ledger.span("boom"):
                raise ValueError("x")
        assert [s.name for s in ledger.spans] == ["boom"]

    def test_ledger_is_picklable(self):
        # Workers ship shard ledgers back through the process pool.
        ledger = RunLedger()
        ledger.count("c", 2)
        ledger.add_span(Span("s", 1.0, 0.5, shard="0"))
        clone = pickle.loads(pickle.dumps(ledger))
        assert clone.counters == ledger.counters
        assert clone.spans == ledger.spans


# Strategies generating small random ledgers for the merge properties.
_names = st.sampled_from(["a", "b", "c", "build/x", "sanitize.rule.y"])
_counters = st.dictionaries(_names, st.integers(-100, 100), max_size=4)
_spans = st.lists(
    st.builds(
        Span,
        name=_names,
        wall_s=st.floats(0.0, 10.0, allow_nan=False),
        cpu_s=st.floats(0.0, 10.0, allow_nan=False),
        shard=st.one_of(st.none(), st.sampled_from(["0", "1"])),
    ),
    max_size=4,
)


def _ledger(counters, spans, gauges=()):
    ledger = RunLedger()
    for name, value in counters.items():
        ledger.count(name, value)
    for s in spans:
        ledger.add_span(s)
    for name, value in gauges:
        ledger.gauge(name, value)
    return ledger


@st.composite
def ledgers(draw):
    return _ledger(draw(_counters), draw(_spans))


class TestMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(ledgers(), ledgers(), ledgers())
    def test_merge_associative(self, a, b, c):
        # (a + b) + c  ==  a + (b + c), compared on serialized bytes —
        # the form in which worker-count invariance actually matters.
        left = pickle.loads(pickle.dumps(a)).merge(
            pickle.loads(pickle.dumps(b))
        ).merge(c)
        bc = pickle.loads(pickle.dumps(b)).merge(pickle.loads(pickle.dumps(c)))
        right = pickle.loads(pickle.dumps(a)).merge(bc)
        assert left.to_jsonl(include_timings=True) == right.to_jsonl(
            include_timings=True
        )

    @settings(max_examples=60, deadline=None)
    @given(ledgers(), ledgers())
    def test_merge_order_independent(self, a, b):
        ab = pickle.loads(pickle.dumps(a)).merge(b)
        ba = pickle.loads(pickle.dumps(b)).merge(a)
        assert ab.to_jsonl(include_timings=True) == ba.to_jsonl(
            include_timings=True
        )

    @settings(max_examples=60, deadline=None)
    @given(ledgers())
    def test_merge_with_empty_is_identity(self, a):
        before = a.to_jsonl(include_timings=True)
        a.merge(RunLedger())
        assert a.to_jsonl(include_timings=True) == before

    @settings(max_examples=60, deadline=None)
    @given(ledgers())
    def test_jsonl_round_trip(self, a):
        text = a.to_jsonl(include_timings=True)
        assert RunLedger.from_jsonl(text).to_jsonl(include_timings=True) == text


class TestSerialization:
    def test_zero_event_ledger_round_trips_unchanged(self):
        # The empty stream is "" and must survive a full round trip.
        empty = RunLedger()
        assert empty.to_jsonl() == ""
        clone = RunLedger.from_jsonl(empty.to_jsonl())
        assert clone.to_jsonl() == ""
        assert clone.counters == {} and clone.gauges == {} and clone.spans == []

    def test_events_in_canonical_order(self):
        ledger = RunLedger()
        ledger.add_span(Span("z", 1.0, 1.0))
        ledger.count("beta")
        ledger.gauge("alpha", 1.0)
        ledger.count("alpha")
        kinds = [(e["type"], e["name"]) for e in ledger.events()]
        assert kinds == [
            ("counter", "alpha"),
            ("counter", "beta"),
            ("gauge", "alpha"),
            ("span", "z"),
        ]

    def test_timings_excluded_by_default(self):
        ledger = RunLedger()
        ledger.add_span(Span("s", 1.23, 0.5))
        assert "1.23" not in ledger.to_jsonl()
        assert "1.23" in ledger.to_jsonl(include_timings=True)

    def test_span_order_independent_of_insertion(self):
        a, b = RunLedger(), RunLedger()
        a.add_span(Span("x", 1.0, 1.0))
        a.add_span(Span("y", 2.0, 2.0))
        b.add_span(Span("y", 2.0, 2.0))
        b.add_span(Span("x", 1.0, 1.0))
        assert a.to_jsonl(include_timings=True) == b.to_jsonl(
            include_timings=True
        )

    def test_bad_line_rejected_with_line_number(self):
        with pytest.raises(LedgerError, match="line 1"):
            RunLedger.from_jsonl("not json\n")
        with pytest.raises(LedgerError):
            RunLedger.from_jsonl('{"type": "mystery", "name": "x"}\n')

    def test_stage_timings_view_filters_and_strips_prefix(self):
        ledger = RunLedger()
        ledger.add_span(Span("report/fig1", 1.0, 0.5))
        ledger.add_span(Span("build/chunk/x", 9.0, 9.0))
        rows = ledger.stage_timings(prefix="report/")
        assert [(t.name, t.wall_s) for t in rows] == [("fig1", 1.0)]


class TestAmbient:
    def test_no_ambient_ledger_by_default(self):
        assert current() is None
        count("ignored")  # no-ops, must not raise
        gauge("ignored", 1.0)
        with span("ignored"):
            pass

    def test_scoped_installs_and_restores(self):
        with scoped() as ledger:
            assert current() is ledger
            count("c", 2)
            gauge("g", 3.0)
            with span("s"):
                pass
        assert current() is None
        assert ledger.counters == {"c": 2}
        assert ledger.gauges == {"g": 3.0}
        assert [s.name for s in ledger.spans] == ["s"]

    def test_scopes_nest(self):
        with scoped() as outer:
            with scoped() as inner:
                count("x")
            count("y")
        assert inner.counters == {"x": 1}
        assert outer.counters == {"y": 1}

    def test_existing_ledger_can_be_installed(self):
        ledger = RunLedger()
        with scoped(ledger) as installed:
            assert installed is ledger
            count("z")
        assert ledger.counters == {"z": 1}
