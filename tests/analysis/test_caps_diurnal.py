"""Extension analyses: usage caps and diurnal profiles."""

import numpy as np
import pytest

from repro.analysis.caps import caps_experiment
from repro.analysis.diurnal import DiurnalProfile, population_diurnal_profile
from repro.behavior.demand import cap_awareness_multiplier
from repro.exceptions import AnalysisError, DatasetError


class TestCapAwareness:
    def test_no_cap_no_effect(self):
        assert cap_awareness_multiplier(5.0, None) == 1.0

    def test_loose_cap_no_effect(self):
        # 1 Mbps latent peak projects ~33 GB/month: a 300 GB cap is moot.
        assert cap_awareness_multiplier(1.0, 300.0) == 1.0

    def test_tight_cap_rations(self):
        multiplier = cap_awareness_multiplier(10.0, 50.0)
        assert multiplier < 1.0

    def test_floor_respected(self):
        assert cap_awareness_multiplier(100.0, 5.0) == pytest.approx(0.35)

    def test_monotone_in_cap(self):
        tight = cap_awareness_multiplier(10.0, 40.0)
        loose = cap_awareness_multiplier(10.0, 200.0)
        assert tight <= loose

    def test_invalid_inputs(self):
        with pytest.raises(DatasetError):
            cap_awareness_multiplier(0.0, 50.0)
        with pytest.raises(DatasetError):
            cap_awareness_multiplier(1.0, 0.0)


class TestCapsExperiment:
    def test_runs_on_world(self, dasu_users):
        result = caps_experiment(dasu_users)
        assert result.n_uncapped > 100
        assert result.n_tight_capped > 10
        assert result.experiment.result.n_pairs > 5

    def test_capped_users_express_less_of_their_need(self, small_world):
        """Ground-truth validation of the rationing mechanism: tightly
        capped households realize a smaller share of their latent need.
        (The matched-experiment version runs at paper scale in the
        benchmarks, where the pair volume supports it.)"""
        truth = small_world.ground_truth

        def expressed_share(user) -> float:
            return user.mean_mbps / truth[user.user_id].need_mbps

        # Caps only bind for households with real demand.
        heavy = [
            u
            for u in small_world.dasu.users
            if truth[u.user_id].need_mbps > 2.0
        ]
        capped = [
            expressed_share(u)
            for u in heavy
            if u.plan_data_cap_gb is not None and u.plan_data_cap_gb < 100
        ]
        uncapped = [
            expressed_share(u) for u in heavy if u.plan_data_cap_gb is None
        ]
        assert len(capped) > 20 and len(uncapped) > 100
        assert np.median(capped) < np.median(uncapped)

    def test_empty_population_rejected(self):
        with pytest.raises(AnalysisError):
            caps_experiment([])


class TestDiurnalProfile:
    def test_population_profile_shape(self, dasu_users):
        profile = population_diurnal_profile(dasu_users)
        assert profile.n_periods > 100
        # Residential traffic peaks in the evening, troughs overnight.
        assert 18 <= profile.peak_hour <= 23
        assert 0 <= profile.trough_hour <= 8
        assert profile.peak_to_trough_ratio > 1.5

    def test_dasu_coverage_is_evening_biased(self, small_world):
        dasu = population_diurnal_profile(small_world.dasu.users)
        fcc = population_diurnal_profile(small_world.fcc.users)
        assert dasu.coverage_bias() > fcc.coverage_bias()
        assert fcc.coverage_bias() == pytest.approx(1.0, abs=0.05)

    def test_unnormalized_profile_runs(self, dasu_users):
        profile = population_diurnal_profile(dasu_users, normalize=False)
        assert profile.n_periods > 0

    def test_invalid_vector_rejected(self):
        with pytest.raises(AnalysisError):
            DiurnalProfile(
                mean_mbps_by_hour=(1.0,) * 23,
                coverage_by_hour=(1,) * 24,
                n_periods=1,
            )

    def test_empty_population_rejected(self):
        with pytest.raises(AnalysisError):
            population_diurnal_profile([])


class TestHourlyProfileStorage:
    def test_profiles_present_on_records(self, dasu_users):
        with_profiles = [
            u
            for u in dasu_users
            if u.current.hourly_mean_mbps is not None
        ]
        assert len(with_profiles) > len(dasu_users) * 0.3

    def test_profiles_survive_csv(self, small_world, tmp_path):
        from repro.datasets.io import read_users_csv, write_users_csv

        subset = small_world.dasu.users[:100]
        write_users_csv(subset, tmp_path / "users.csv")
        loaded = read_users_csv(tmp_path / "users.csv")
        original = sorted(subset, key=lambda u: u.user_id)
        for a, b in zip(loaded, original):
            pa = a.current.hourly_mean_mbps
            pb = b.current.hourly_mean_mbps
            assert (pa is None) == (pb is None)
            if pa is not None:
                assert np.allclose(
                    np.nan_to_num(np.array(pa), nan=-1.0),
                    np.nan_to_num(np.array(pb), nan=-1.0),
                    rtol=1e-4,
                )
