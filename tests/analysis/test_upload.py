"""Upload-direction analyses."""

import numpy as np
import pytest

from repro.analysis.upload import seeding_experiment, upload_asymmetry
from repro.exceptions import AnalysisError


class TestUploadMeasurements:
    def test_most_users_carry_uploads(self, dasu_users):
        with_up = [u for u in dasu_users if u.mean_up_mbps is not None]
        assert len(with_up) > len(dasu_users) * 0.9

    def test_uploads_below_downloads_generally(self, dasu_users):
        ratios = [
            u.mean_up_mbps / u.mean_mbps
            for u in dasu_users
            if u.mean_up_mbps is not None and u.mean_mbps > 0
        ]
        assert np.median(ratios) < 0.5

    def test_upload_peak_bounded_by_upstream_provisioning(self, dasu_users):
        for user in dasu_users[:300]:
            if user.peak_up_mbps is not None:
                # Uplinks are provisioned far below downlinks.
                assert user.peak_up_mbps <= user.capacity_down_mbps


class TestUploadAsymmetry:
    def test_summary(self, dasu_users):
        result = upload_asymmetry(dasu_users)
        assert result.n_users > 100
        assert 0.0 < result.median_ratio < 1.0
        assert result.p90_ratio >= result.median_ratio

    def test_bt_users_less_asymmetric(self, dasu_users):
        result = upload_asymmetry(dasu_users)
        assert result.median_ratio_bt is not None
        assert result.median_ratio_non_bt is not None
        assert result.median_ratio_bt > result.median_ratio_non_bt

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            upload_asymmetry([])


class TestSeedingExperiment:
    def test_bt_households_upload_more(self, dasu_users):
        result = seeding_experiment(dasu_users)
        assert result.result.n_pairs > 20
        assert result.result.fraction_holds > 0.6

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            seeding_experiment([])
