"""Seed-sweep harness."""

import pytest

from repro.analysis.capacity import table1
from repro.analysis.sensitivity import (
    SeedSweepResult,
    SweepPoint,
    proportion_sweep,
    seed_sweep,
)
from repro.datasets import WorldConfig
from repro.exceptions import AnalysisError

TINY = WorldConfig(seed=0, n_dasu_users=200, n_fcc_users=0, days_per_year=1.0)


class TestSweepPoint:
    def test_wilson_for_proportions(self):
        point = SweepPoint(seed=1, value=0.7, n_trials=100)
        ci = point.wilson()
        assert ci is not None
        assert ci.low < 0.7 < ci.high

    def test_no_wilson_without_trials(self):
        assert SweepPoint(seed=1, value=0.7).wilson() is None


class TestSeedSweep:
    def test_statistic_per_seed(self):
        result = seed_sweep(
            TINY, seeds=(1, 2, 3), statistic=lambda w: float(len(w.dasu.users))
        )
        assert len(result.points) == 3
        assert all(p.value > 100 for p in result.points)
        assert result.spread >= 0.0

    def test_mean_and_threshold(self):
        result = SeedSweepResult(
            points=(
                SweepPoint(1, 0.6),
                SweepPoint(2, 0.7),
            )
        )
        assert result.mean == pytest.approx(0.65)
        assert result.all_above(0.55)
        assert not result.all_above(0.65)

    def test_rows_render(self):
        result = SeedSweepResult(
            points=(SweepPoint(1, 0.6, n_trials=50),)
        )
        rows = result.rows()
        assert "seed 1" in rows[0]
        assert "CI" in rows[0]

    def test_empty_seeds_rejected(self):
        with pytest.raises(AnalysisError):
            seed_sweep(TINY, seeds=(), statistic=lambda w: 0.0)

    def test_empty_result_rejected(self):
        with pytest.raises(AnalysisError):
            SeedSweepResult(points=())


class TestProportionSweep:
    def test_table1_effect_across_seeds(self):
        def stat(world):
            result = table1(world.dasu.users)
            return result.peak.fraction_holds, result.peak.n_pairs

        result = proportion_sweep(TINY, seeds=(5, 6), statistic=stat)
        assert len(result.points) == 2
        for point in result.points:
            assert point.n_trials is not None and point.n_trials > 0
            assert point.wilson() is not None
