"""Columnar analysis twins == object-path analysis, exactly.

``binned_demand_curve``, eligibility filtering, and the matched natural
experiments each have a column-wise implementation; admission criterion
is *exact* agreement with the per-record path — same points, same pairs
(by user), same distances, same verdicts — not statistical closeness.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.common import (
    CONFOUNDER_COLUMNS,
    CONFOUNDER_EXTRACTORS,
    binned_demand_curve,
    demand_outcome,
    demand_outcome_array,
    eligibility_mask,
    matched_experiment,
    matched_experiment_columns,
)
from repro.core.binning import capacity_class_spec, explicit_bins
from repro.datasets import UserColumns
from repro.exceptions import AnalysisError

CONFOUNDERS_ALWAYS = ("capacity", "latency", "loss")
CONFOUNDERS_MARKET = (
    "capacity", "latency", "loss", "price_of_access", "upgrade_cost"
)


@pytest.fixture(scope="module")
def pools(small_world):
    """One object/columnar pool pair split on a real covariate."""
    users = small_world.dasu.users
    control = [u for u in users if not u.bt_user]
    treatment = [u for u in users if u.bt_user]
    return (
        control,
        treatment,
        UserColumns.from_records(control),
        UserColumns.from_records(treatment),
    )


class TestOutcomeArrays:
    @pytest.mark.parametrize("metric", ["peak", "mean"])
    @pytest.mark.parametrize("include_bt", [False, True])
    def test_matches_scalar_outcome(self, pools, metric, include_bt):
        control, _, control_cols, _ = pools
        scalar = demand_outcome(metric, include_bt)
        np.testing.assert_array_equal(
            demand_outcome_array(metric, include_bt)(control_cols),
            [scalar(u) for u in control],
        )

    def test_unknown_metric_raises(self):
        with pytest.raises(AnalysisError):
            demand_outcome_array("median", False)


class TestEligibilityMask:
    def test_matches_object_filter(self, pools):
        control, _, control_cols, _ = pools
        mask = eligibility_mask(control_cols, CONFOUNDERS_MARKET)
        expected = [
            all(
                math.isfinite(CONFOUNDER_EXTRACTORS[c](u))
                for c in CONFOUNDERS_MARKET
            )
            for u in control
        ]
        np.testing.assert_array_equal(mask, expected)
        # The market covariates are genuinely missing for some users,
        # otherwise this test exercises nothing.
        assert mask.sum() < len(control)

    def test_outcome_values_participate(self, pools):
        _, _, control_cols, _ = pools
        outcome = np.zeros(control_cols.n_users)
        outcome[0] = np.nan
        mask = eligibility_mask(
            control_cols, CONFOUNDERS_ALWAYS, outcome_values=outcome
        )
        assert not mask[0]

    def test_unknown_confounder_raises(self, pools):
        _, _, control_cols, _ = pools
        with pytest.raises(AnalysisError, match="unknown confounder"):
            eligibility_mask(control_cols, ("capacity", "astrology"))


class TestBinnedDemandCurve:
    @pytest.mark.parametrize(
        "spec",
        [capacity_class_spec(), explicit_bins([(0.0, 4.0), (4.0, 64.0)])],
        ids=["capacity-classes", "coarse"],
    )
    @pytest.mark.parametrize("metric", ["peak", "mean"])
    def test_identical_points(self, small_world, spec, metric):
        users = small_world.dasu.users
        columns = UserColumns.from_records(users)
        from_records = binned_demand_curve(users, metric=metric, spec=spec)
        from_columns = binned_demand_curve(columns, metric=metric, spec=spec)
        assert from_records.points == from_columns.points

    def test_min_users_threshold_agrees(self, small_world):
        users = small_world.dasu.users
        columns = UserColumns.from_records(users)
        a = binned_demand_curve(users, min_users=40)
        b = binned_demand_curve(columns, min_users=40)
        assert a.points == b.points


class TestMatchedExperiments:
    @pytest.mark.parametrize(
        "confounders",
        [CONFOUNDERS_ALWAYS, CONFOUNDERS_MARKET],
        ids=["always-present", "with-market-covariates"],
    )
    def test_identical_result_pairs_and_counters(self, pools, confounders):
        control, treatment, control_cols, treatment_cols = pools
        outcome_scalar = demand_outcome("peak", include_bt=False)
        outcome_array = demand_outcome_array("peak", include_bt=False)
        by_object = matched_experiment(
            "bt-vs-not", control, treatment, confounders, outcome_scalar
        )
        by_column = matched_experiment_columns(
            "bt-vs-not",
            control_cols,
            treatment_cols,
            confounders,
            outcome_array,
        )
        assert by_object.result == by_column.result
        assert by_object.matching.n_matched == by_column.matching.n_matched
        assert by_object.matching.n_control == by_column.matching.n_control
        assert (
            by_object.matching.n_treatment == by_column.matching.n_treatment
        )
        # Same users paired, in the same order, at the same distances.
        control_idx = np.flatnonzero(
            eligibility_mask(
                control_cols, confounders, outcome_array(control_cols)
            )
        )
        treatment_idx = np.flatnonzero(
            eligibility_mask(
                treatment_cols, confounders, outcome_array(treatment_cols)
            )
        )
        control_ids = control_cols.user_ids
        treatment_ids = treatment_cols.user_ids
        assert [
            (p.control.user_id, p.treatment.user_id, p.distance)
            for p in by_object.matching.pairs
        ] == [
            (
                control_ids[control_idx[p.control]],
                treatment_ids[treatment_idx[p.treatment]],
                p.distance,
            )
            for p in by_column.matching.pairs
        ]

    def test_experiment_produces_pairs(self, pools):
        # Guard against the equivalence above passing vacuously.
        control, treatment, control_cols, treatment_cols = pools
        result = matched_experiment_columns(
            "bt-vs-not",
            control_cols,
            treatment_cols,
            CONFOUNDERS_ALWAYS,
            demand_outcome_array("peak", include_bt=False),
        )
        assert result.result.n_pairs > 0


# ---------------------------------------------------------------------------
# Fault injection: the analysis twins agree on a damaged-then-cleaned
# world too, where missing covariates and NaN profiles occur in bulk.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def faulted_pools(faulted_world_default):
    """Object/columnar pool pair from the faulted + sanitized world."""
    users = faulted_world_default.dasu.users
    control = [u for u in users if not u.bt_user]
    treatment = [u for u in users if u.bt_user]
    return (
        control,
        treatment,
        UserColumns.from_records(control),
        UserColumns.from_records(treatment),
    )


class TestFaultedWorldEquivalence:
    def test_match_pairs_arrays_matches_object_path(self, faulted_pools):
        """Core matcher: identical pairs, by user, on faulted pools."""
        from repro.core.matching import match_pairs, match_pairs_arrays

        control, treatment, control_cols, treatment_cols = faulted_pools
        names = CONFOUNDERS_MARKET
        cmask = eligibility_mask(control_cols, names)
        tmask = eligibility_mask(treatment_cols, names)
        # Fault injection must make eligibility a real filter here.
        assert cmask.sum() < len(control)
        eligible_control = [u for u, ok in zip(control, cmask) if ok]
        eligible_treatment = [u for u, ok in zip(treatment, tmask) if ok]
        by_object = match_pairs(
            eligible_control,
            eligible_treatment,
            [CONFOUNDER_EXTRACTORS[c] for c in names],
        )
        by_arrays = match_pairs_arrays(
            [
                CONFOUNDER_COLUMNS[c](control_cols.select_users(cmask))
                for c in names
            ],
            [
                CONFOUNDER_COLUMNS[c](treatment_cols.select_users(tmask))
                for c in names
            ],
        )
        assert by_arrays.n_matched == by_object.n_matched > 0
        assert by_arrays.n_control == by_object.n_control
        assert by_arrays.n_treatment == by_object.n_treatment
        assert [
            (p.control.user_id, p.treatment.user_id, p.distance)
            for p in by_object.pairs
        ] == [
            (
                eligible_control[p.control].user_id,
                eligible_treatment[p.treatment].user_id,
                p.distance,
            )
            for p in by_arrays.pairs
        ]

    @pytest.mark.parametrize(
        "confounders",
        [CONFOUNDERS_ALWAYS, CONFOUNDERS_MARKET],
        ids=["always-present", "with-market-covariates"],
    )
    def test_matched_experiment_identical(self, faulted_pools, confounders):
        control, treatment, control_cols, treatment_cols = faulted_pools
        by_object = matched_experiment(
            "bt-vs-not",
            control,
            treatment,
            confounders,
            demand_outcome("peak", include_bt=False),
        )
        by_column = matched_experiment_columns(
            "bt-vs-not",
            control_cols,
            treatment_cols,
            confounders,
            demand_outcome_array("peak", include_bt=False),
        )
        assert by_object.result == by_column.result
        assert by_object.matching.n_matched == by_column.matching.n_matched
        assert by_object.result.n_pairs > 0

    def test_binned_demand_curve_identical(self, faulted_world_default):
        users = faulted_world_default.dasu.users
        columns = UserColumns.from_records(users)
        a = binned_demand_curve(users, metric="peak")
        b = binned_demand_curve(columns, metric="peak")
        assert a.points == b.points
