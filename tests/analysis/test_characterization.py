"""Fig. 1 characterization."""

import numpy as np
import pytest

from repro.analysis.characterization import figure1
from repro.exceptions import AnalysisError


@pytest.fixture(scope="module")
def result(dasu_users):
    return figure1(dasu_users)


class TestFigure1:
    def test_cdfs_are_valid(self, result):
        for series in (result.capacity_cdf, result.latency_cdf, result.loss_percent_cdf):
            assert np.all(np.diff(series.values) > 0)
            assert np.all(np.diff(series.cumulative) >= 0)
            assert series.cumulative[-1] == pytest.approx(1.0)

    def test_median_capacity_in_paper_ballpark(self, result):
        # Paper: 7.4 Mbps. Shape target: single-digit megabits.
        assert 2.0 <= result.median_capacity_mbps <= 20.0

    def test_share_below_1mbps(self, result):
        # Paper: ~10%.
        assert 0.03 <= result.share_below_1mbps <= 0.3

    def test_latency_tail(self, result):
        # Paper: top 5% above 500 ms (satellite/wireless).
        assert 0.01 <= result.share_latency_above_500ms <= 0.12

    def test_loss_tail(self, result):
        # Paper: ~14% above 1% loss.
        assert 0.05 <= result.share_loss_above_1pct <= 0.3

    def test_most_users_have_low_loss(self, result):
        assert result.share_loss_below_0_1pct >= 0.4

    def test_summary_rows_structure(self, result):
        rows = result.summary_rows()
        assert len(rows) == 9
        for label, paper, measured in rows:
            assert isinstance(label, str)
            assert np.isfinite(measured)

    def test_empty_users_rejected(self):
        with pytest.raises(AnalysisError):
            figure1([])
