"""The internet quality barometer (:mod:`repro.analysis.iqb`).

The scoring core is locked by a hypothesis property suite — bounded
scores, per-metric monotonicity, weight-rescaling invariance, exact 1.0
when every threshold is met, zero-weight entries ignored, and exact
(bit-for-bit) equivalence between the vectorized columnar path and the
straight-line scalar reference. Config validation must reject every
malformed payload with an error that names the offending use case and
requirement, so a bad threshold can never silently become NaN scores.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.iqb import (
    DEFAULT_IQB_CONFIG,
    IQB_PRESETS,
    METRIC_KINDS,
    IqbConfig,
    IqbRequirement,
    IqbUseCase,
    format_iqb_report,
    iqb_experiment,
    iqb_payload,
    market_barometer,
    resolve_iqb_config,
    score_columns,
    score_record,
)
from repro.core.upgrades import NetworkId, ServicePeriod
from repro.datasets import UserColumns
from repro.datasets.records import PeriodObservation, UserRecord
from repro.exceptions import AnalysisError

GOLDEN_DIR = Path(__file__).parent.parent / "golden"
GOLDEN_IQB = GOLDEN_DIR / "iqb_report_small.txt"

METRICS = tuple(sorted(METRIC_KINDS))  # deterministic draw order


# ---------------------------------------------------------------------------
# Synthetic households
# ---------------------------------------------------------------------------


def make_record(
    download: float = 20.0,
    upload: float = 5.0,
    latency: float = 50.0,
    loss: float = 0.002,
    *,
    user_id: str = "u0",
    country: str = "Chile",
) -> UserRecord:
    period = ServicePeriod(
        user_id=user_id,
        network=NetworkId("isp", "10.0.0.0/24", "city"),
        start_day=0.0,
        end_day=90.0,
        capacity_mbps=download,
        mean_mbps=1.0,
        peak_mbps=4.0,
        mean_no_bt_mbps=0.8,
        peak_no_bt_mbps=3.0,
    )
    observation = PeriodObservation(
        period=period,
        latency_ms=latency,
        loss_fraction=loss,
        capacity_up_mbps=upload,
        n_ndt_tests=5,
        n_usage_samples=100,
    )
    return UserRecord(
        user_id=user_id,
        source="dasu",
        country=country,
        region="south america",
        development="developing",
        vantage="direct",
        technology="cable",
        bt_user=False,
        observations=(observation,),
        price_of_access_usd=40.0,
        upgrade_cost_usd_per_mbps=1.0,
        gdp_per_capita_usd=15000.0,
    )


#: (download, upload, latency, loss) with every value measured.
finite_metrics = st.tuples(
    st.floats(min_value=0.001, max_value=5000.0),
    st.floats(min_value=0.001, max_value=1000.0),
    st.floats(min_value=0.1, max_value=5000.0),
    st.floats(min_value=0.0, max_value=1.0),
)

#: As above, but download/upload/latency may be unmeasured (NaN/inf) —
#: the shapes an un-sanitized dirty dataset can carry. (Loss is range
#: checked at record construction, so it stays finite here.)
_maybe_bad = lambda s: st.one_of(  # noqa: E731
    s, st.just(float("nan")), st.just(float("inf"))
)
dirty_metrics = st.tuples(
    _maybe_bad(st.floats(min_value=0.001, max_value=5000.0)),
    _maybe_bad(st.floats(min_value=0.001, max_value=1000.0)),
    _maybe_bad(st.floats(min_value=0.1, max_value=5000.0)),
    st.floats(min_value=0.0, max_value=1.0),
)


@st.composite
def iqb_configs(draw) -> IqbConfig:
    """Random valid configs: 1-3 use cases, unique metrics per case,
    at least one positive weight at every level."""
    use_cases = []
    for i in range(draw(st.integers(min_value=1, max_value=3))):
        metrics = draw(st.permutations(METRICS))
        metrics = metrics[: draw(st.integers(min_value=1, max_value=4))]
        requirements = []
        for j, metric in enumerate(metrics):
            weight = draw(
                st.floats(min_value=0.5, max_value=8.0)
                if j == 0
                else st.floats(min_value=0.0, max_value=8.0)
            )
            threshold = draw(
                st.floats(min_value=0.0001, max_value=0.5)
                if metric == "loss_fraction"
                else st.floats(min_value=0.01, max_value=500.0)
            )
            requirements.append(IqbRequirement(metric, weight, threshold))
        case_weight = draw(
            st.floats(min_value=0.5, max_value=5.0)
            if i == 0
            else st.floats(min_value=0.0, max_value=5.0)
        )
        use_cases.append(
            IqbUseCase(f"case-{i}", case_weight, tuple(requirements))
        )
    return IqbConfig(name="generated", use_cases=tuple(use_cases))


# ---------------------------------------------------------------------------
# The property suite
# ---------------------------------------------------------------------------


class TestScoringProperties:
    @given(values=dirty_metrics, config=iqb_configs())
    @settings(max_examples=120, deadline=None)
    def test_scores_bounded(self, values, config):
        """Every score — per use case and composite — is in [0, 1]."""
        result = score_record(make_record(*values), config)
        assert 0.0 <= result.composite <= 1.0
        for name, score in result.use_case_scores.items():
            assert 0.0 <= score <= 1.0, name

    @given(
        values=finite_metrics,
        config=iqb_configs(),
        index=st.integers(min_value=0, max_value=3),
        factor=st.floats(min_value=1.0001, max_value=100.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_monotone_in_each_metric(self, values, config, index, factor):
        """Improving any one metric never lowers any score; worsening it
        never raises one. (Metric order: download, upload, latency,
        loss — the first two improve upward, the last two downward.)"""
        scaled = list(values)
        scaled[index] = min(values[index] * factor, 1.0 if index == 3 else 1e9)
        base = score_record(make_record(*values), config)
        moved = score_record(make_record(*scaled), config)
        higher_is_better = index < 2
        for name in base.use_case_scores:
            b, m = base.use_case_scores[name], moved.use_case_scores[name]
            assert (m >= b) if higher_is_better else (m <= b), name
        if higher_is_better:
            assert moved.composite >= base.composite
        else:
            assert moved.composite <= base.composite

    @given(
        values=finite_metrics,
        config=iqb_configs(),
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_weight_rescaling_invariance(self, values, config, scale):
        """Multiplying every weight by one constant changes nothing."""
        payload = config.to_payload()
        for case in payload["use_cases"].values():
            case["weight"] *= scale
            for requirement in case["requirements"].values():
                requirement["weight"] *= scale
        rescaled = IqbConfig.from_payload(payload)
        record = make_record(*values)
        base = score_record(record, config)
        moved = score_record(record, rescaled)
        assert math.isclose(
            moved.composite, base.composite, rel_tol=1e-9, abs_tol=1e-12
        )
        for name in base.use_case_scores:
            assert math.isclose(
                moved.use_case_scores[name],
                base.use_case_scores[name],
                rel_tol=1e-9,
                abs_tol=1e-12,
            ), name
        assert moved.ready == base.ready

    @given(config=iqb_configs(), slack=st.floats(min_value=1.0, max_value=50.0))
    @settings(max_examples=120, deadline=None)
    def test_all_thresholds_met_scores_exactly_one(self, config, slack):
        """Meeting every threshold gives *exactly* 1.0, not 0.999…"""
        min_needed = {"download_mbps": 0.001, "upload_mbps": 0.001}
        max_allowed = {"latency_ms": 5000.0, "loss_fraction": 1.0}
        for use_case in config.use_cases:
            for requirement in use_case.requirements:
                if requirement.kind == "min":
                    min_needed[requirement.metric] = max(
                        min_needed[requirement.metric], requirement.threshold
                    )
                else:
                    max_allowed[requirement.metric] = min(
                        max_allowed[requirement.metric], requirement.threshold
                    )
        record = make_record(
            download=min_needed["download_mbps"] * slack,
            upload=min_needed["upload_mbps"] * slack,
            latency=max_allowed["latency_ms"] / slack,
            loss=max_allowed["loss_fraction"] / slack,
        )
        result = score_record(record, config)
        assert result.composite == 1.0
        assert all(s == 1.0 for s in result.use_case_scores.values())
        assert result.ready

    @given(values=dirty_metrics)
    @settings(max_examples=60, deadline=None)
    def test_zero_weight_requirements_and_cases_ignored(self, values):
        """Adding zero-weight requirements (with absurd thresholds) and
        a zero-weight use case leaves every score bit-identical."""
        base_config = IqbConfig(
            name="base",
            use_cases=(
                IqbUseCase(
                    "browsing",
                    1.0,
                    (
                        IqbRequirement("download_mbps", 2.0, 10.0),
                        IqbRequirement("latency_ms", 1.0, 100.0),
                    ),
                ),
            ),
        )
        padded_config = IqbConfig(
            name="padded",
            use_cases=(
                IqbUseCase(
                    "browsing",
                    1.0,
                    (
                        IqbRequirement("download_mbps", 2.0, 10.0),
                        IqbRequirement("latency_ms", 1.0, 100.0),
                        # Impossible thresholds, but weight 0: ignored.
                        IqbRequirement("upload_mbps", 0.0, 1e9),
                        IqbRequirement("loss_fraction", 0.0, 1e-12),
                    ),
                ),
                IqbUseCase(
                    "dead weight",
                    0.0,
                    (IqbRequirement("download_mbps", 1.0, 1e9),),
                ),
            ),
        )
        record = make_record(*values)
        base = score_record(record, base_config)
        padded = score_record(record, padded_config)
        assert padded.composite == base.composite
        assert (
            padded.use_case_scores["browsing"]
            == base.use_case_scores["browsing"]
        )
        assert padded.ready == base.ready
        columns = UserColumns.from_records([record])
        vec_base = score_columns(columns, base_config)
        vec_padded = score_columns(columns, padded_config)
        assert vec_padded.composite[0] == vec_base.composite[0]
        assert vec_padded.ready[0] == vec_base.ready[0]

    @given(
        batch=st.lists(dirty_metrics, min_size=1, max_size=8),
        config=iqb_configs(),
    )
    @settings(max_examples=60, deadline=None)
    def test_scalar_and_vectorized_paths_identical(self, batch, config):
        """score_columns == score_record per household, bit for bit."""
        records = [
            make_record(*values, user_id=f"u{i}")
            for i, values in enumerate(batch)
        ]
        vectorized = score_columns(UserColumns.from_records(records), config)
        for i, record in enumerate(records):
            scalar = score_record(record, config)
            assert vectorized.composite[i] == scalar.composite
            assert bool(vectorized.ready[i]) == scalar.ready
            for name, scores in vectorized.use_case_scores.items():
                assert scores[i] == scalar.use_case_scores[name], name

    def test_non_finite_measurements_score_zero(self):
        """An unmeasured metric contributes 0 — never NaN."""
        config = IqbConfig(
            name="latency only",
            use_cases=(
                IqbUseCase(
                    "gaming", 1.0, (IqbRequirement("latency_ms", 1.0, 50.0),)
                ),
            ),
        )
        for latency in (float("nan"), float("inf")):
            result = score_record(make_record(latency=latency), config)
            assert result.composite == 0.0
            assert not result.ready
            columns = UserColumns.from_records(
                [make_record(latency=latency)]
            )
            assert score_columns(columns, config).composite[0] == 0.0


# ---------------------------------------------------------------------------
# Config validation: every error names the offending piece.
# ---------------------------------------------------------------------------


class TestConfigValidation:
    def payload(self) -> dict:
        return DEFAULT_IQB_CONFIG.to_payload()

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), -float("inf"), -1.0, 0.0]
    )
    def test_bad_threshold_names_use_case_and_requirement(self, bad):
        payload = self.payload()
        payload["use_cases"]["web browsing"]["requirements"]["latency_ms"][
            "max"
        ] = bad
        with pytest.raises(AnalysisError) as error:
            IqbConfig.from_payload(payload)
        assert "web browsing" in str(error.value)
        assert "latency_ms" in str(error.value)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -2.0])
    def test_bad_requirement_weight_names_use_case_and_requirement(self, bad):
        payload = self.payload()
        payload["use_cases"]["video streaming"]["requirements"][
            "download_mbps"
        ]["weight"] = bad
        with pytest.raises(AnalysisError) as error:
            IqbConfig.from_payload(payload)
        assert "video streaming" in str(error.value)
        assert "download_mbps" in str(error.value)

    def test_bad_use_case_weight_names_use_case(self):
        payload = self.payload()
        payload["use_cases"]["audio streaming"]["weight"] = -1.0
        with pytest.raises(AnalysisError, match="audio streaming"):
            IqbConfig.from_payload(payload)

    def test_non_numeric_weight_rejected(self):
        payload = self.payload()
        payload["use_cases"]["web browsing"]["requirements"]["latency_ms"][
            "weight"
        ] = "heavy"
        with pytest.raises(AnalysisError, match="must be a number"):
            IqbConfig.from_payload(payload)

    def test_boolean_weight_rejected(self):
        payload = self.payload()
        payload["use_cases"]["web browsing"]["weight"] = True
        with pytest.raises(AnalysisError, match="must be a number"):
            IqbConfig.from_payload(payload)

    def test_unknown_metric_rejected(self):
        payload = self.payload()
        payload["use_cases"]["web browsing"]["requirements"]["jitter_ms"] = {
            "weight": 1,
            "max": 30,
        }
        with pytest.raises(AnalysisError, match="jitter_ms"):
            IqbConfig.from_payload(payload)

    def test_wrong_threshold_kind_explained(self):
        payload = self.payload()
        requirement = payload["use_cases"]["web browsing"]["requirements"][
            "download_mbps"
        ]
        requirement["max"] = requirement.pop("min")
        with pytest.raises(AnalysisError, match="takes a 'min' threshold"):
            IqbConfig.from_payload(payload)

    def test_missing_threshold_rejected(self):
        payload = self.payload()
        del payload["use_cases"]["web browsing"]["requirements"][
            "loss_fraction"
        ]["max"]
        with pytest.raises(AnalysisError, match="missing the 'max'"):
            IqbConfig.from_payload(payload)

    def test_unknown_keys_rejected_at_every_level(self):
        top = self.payload()
        top["extra"] = 1
        with pytest.raises(AnalysisError, match="unknown keys: extra"):
            IqbConfig.from_payload(top)
        case = self.payload()
        case["use_cases"]["web browsing"]["bonus"] = 1
        with pytest.raises(AnalysisError, match="bonus"):
            IqbConfig.from_payload(case)

    def test_duplicate_requirement_metric_rejected(self):
        with pytest.raises(AnalysisError, match="duplicate requirement"):
            IqbConfig(
                name="dup",
                use_cases=(
                    IqbUseCase(
                        "case",
                        1.0,
                        (
                            IqbRequirement("latency_ms", 1.0, 50.0),
                            IqbRequirement("latency_ms", 2.0, 80.0),
                        ),
                    ),
                ),
            )

    def test_duplicate_use_case_rejected(self):
        case = IqbUseCase(
            "case", 1.0, (IqbRequirement("latency_ms", 1.0, 50.0),)
        )
        with pytest.raises(AnalysisError, match="duplicate use case"):
            IqbConfig(name="dup", use_cases=(case, case))

    def test_all_zero_weights_rejected(self):
        with pytest.raises(AnalysisError, match="no positive-weight"):
            IqbUseCase(
                "case", 1.0, (IqbRequirement("latency_ms", 0.0, 50.0),)
            ).validate()
        case = IqbUseCase(
            "case", 0.0, (IqbRequirement("latency_ms", 1.0, 50.0),)
        )
        with pytest.raises(AnalysisError, match="no positive-weight"):
            IqbConfig(name="zero", use_cases=(case,))

    def test_empty_shapes_rejected(self):
        with pytest.raises(AnalysisError, match="non-empty name"):
            IqbConfig(
                name="",
                use_cases=(
                    IqbUseCase(
                        "c", 1.0, (IqbRequirement("latency_ms", 1.0, 1.0),)
                    ),
                ),
            )
        with pytest.raises(AnalysisError, match="no use cases"):
            IqbConfig(name="empty", use_cases=())
        with pytest.raises(AnalysisError, match="non-empty 'use_cases'"):
            IqbConfig.from_payload({"name": "x", "use_cases": {}})
        with pytest.raises(AnalysisError, match="JSON object"):
            IqbConfig.from_payload([1, 2])  # type: ignore[arg-type]

    def test_round_trip_through_payload(self):
        for preset in IQB_PRESETS.values():
            assert IqbConfig.from_payload(preset.to_payload()) == preset

    def test_resolve_presets_and_unknown(self):
        assert resolve_iqb_config(None) is DEFAULT_IQB_CONFIG
        assert resolve_iqb_config("streaming") is IQB_PRESETS["streaming"]
        assert resolve_iqb_config(DEFAULT_IQB_CONFIG) is DEFAULT_IQB_CONFIG
        with pytest.raises(AnalysisError, match="unknown IQB preset"):
            resolve_iqb_config("gaming")

    def test_from_json_errors(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot read"):
            IqbConfig.from_json(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(AnalysisError, match="not valid JSON"):
            IqbConfig.from_json(bad)
        good = tmp_path / "good.json"
        good.write_text(json.dumps(DEFAULT_IQB_CONFIG.to_payload()))
        assert IqbConfig.from_json(good) == DEFAULT_IQB_CONFIG


# ---------------------------------------------------------------------------
# Market aggregation and the demand experiment on a real world.
# ---------------------------------------------------------------------------


class TestMarketBarometer:
    def test_records_and_columns_agree_exactly(self, dasu_users):
        from_records = market_barometer(dasu_users)
        from_columns = market_barometer(UserColumns.from_records(dasu_users))
        assert from_records == from_columns

    def test_markets_sorted_and_thresholded(self, dasu_users):
        markets = market_barometer(dasu_users, min_users=25)
        assert markets
        names = [m.market for m in markets]
        assert names == sorted(names)
        for market in markets:
            assert market.n_users >= 25
            assert 0.0 <= market.mean_composite <= 1.0
            # The Wilson low can exceed an exactly-zero share by one
            # rounding ulp, hence the epsilon.
            assert market.ready_ci.low <= market.ready_share + 1e-12
            assert market.ready_share <= market.ready_ci.high

    def test_higher_threshold_keeps_a_subset(self, dasu_users):
        all_markets = {m.market for m in market_barometer(dasu_users)}
        big_markets = {
            m.market for m in market_barometer(dasu_users, min_users=60)
        }
        assert big_markets < all_markets


class TestIqbExperiment:
    def test_too_few_households_rejected(self):
        records = [make_record(user_id=f"u{i}") for i in range(10)]
        with pytest.raises(AnalysisError, match="at least 30"):
            iqb_experiment(records)

    def test_runs_on_a_real_world(self, dasu_users):
        result = iqb_experiment(dasu_users[:600])
        assert result.config_name == "default"
        assert result.n_classes >= 1
        assert result.n_control > 0 and result.n_treatment > 0
        outcome = result.experiment.result
        assert outcome.n_pairs > 0
        assert 0.0 <= outcome.fraction_holds <= 1.0
        assert 0.0 <= outcome.p_value <= 1.0

    def test_identical_scores_leave_no_terciles(self):
        records = [
            make_record(user_id=f"u{i}", country="Chile") for i in range(40)
        ]
        with pytest.raises(AnalysisError, match="distinct"):
            iqb_experiment(records)


# ---------------------------------------------------------------------------
# Rendering: golden snapshot and payload shape.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def iqb_world():
    from repro.datasets import WorldConfig, build_world

    return build_world(
        WorldConfig(seed=5, n_dasu_users=150, n_fcc_users=40, days_per_year=1.0)
    )


def test_iqb_report_matches_golden(iqb_world, request):
    text = format_iqb_report(iqb_world.dasu.users, iqb_world.fcc.users)
    if request.config.getoption("--regen-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        GOLDEN_IQB.write_text(text + "\n")
        pytest.skip(f"regenerated {GOLDEN_IQB}")
    assert GOLDEN_IQB.exists(), (
        "golden snapshot missing — regenerate with "
        "`python -m pytest tests/analysis/test_iqb.py --regen-golden`"
    )
    assert text + "\n" == GOLDEN_IQB.read_text(), (
        "the IQB report drifted from the golden snapshot; if intentional, "
        "regenerate with --regen-golden and review the diff"
    )


def test_payload_is_deterministic_json(iqb_world):
    a = iqb_payload(iqb_world.dasu.users, iqb_world.fcc.users)
    b = iqb_payload(
        UserColumns.from_records(iqb_world.dasu.users),
        UserColumns.from_records(iqb_world.fcc.users),
    )
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert set(a) == {"config", "dasu", "fcc", "markets", "experiment"}
    assert a["config"] == DEFAULT_IQB_CONFIG.to_payload()


def test_empty_dasu_rejected():
    with pytest.raises(AnalysisError, match="needs Dasu households"):
        format_iqb_report([])
