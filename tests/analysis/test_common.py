"""Shared analysis building blocks."""

import math

import pytest

from repro.analysis.common import (
    binned_demand_curve,
    curve_correlation,
    demand_outcome,
    matched_experiment,
    standard_confounders,
)
from repro.exceptions import AnalysisError


class TestDemandOutcome:
    def test_peak_no_bt(self, dasu_users):
        outcome = demand_outcome("peak", include_bt=False)
        user = dasu_users[0]
        assert outcome(user) == user.peak_no_bt_mbps

    def test_mean_with_bt(self, dasu_users):
        outcome = demand_outcome("mean", include_bt=True)
        user = dasu_users[0]
        assert outcome(user) == user.mean_mbps

    def test_unknown_metric(self):
        with pytest.raises(AnalysisError):
            demand_outcome("median", include_bt=False)


class TestStandardConfounders:
    def test_known_names_resolve(self):
        extractors = standard_confounders(["capacity", "latency", "loss"])
        assert len(extractors) == 3

    def test_unknown_name_rejected(self):
        with pytest.raises(AnalysisError):
            standard_confounders(["weather"])

    def test_loss_floored(self, dasu_users):
        extractor = standard_confounders(["loss"])[0]
        assert all(extractor(u) > 0 for u in dasu_users[:50])


class TestBinnedDemandCurve:
    def test_points_ordered_by_capacity(self, dasu_users):
        curve = binned_demand_curve(dasu_users, "peak", include_bt=False)
        lows = [p.bin.low for p in curve.points]
        assert lows == sorted(lows)

    def test_bin_members_counted(self, dasu_users):
        curve = binned_demand_curve(dasu_users, "mean", include_bt=True)
        assert sum(p.n_users for p in curve.points) <= len(dasu_users)
        assert all(p.n_users >= 5 for p in curve.points)

    def test_demand_grows_with_capacity(self, dasu_users):
        curve = binned_demand_curve(dasu_users, "peak", include_bt=False)
        first, last = curve.points[0], curve.points[-1]
        assert last.average > first.average

    def test_correlation_strong(self, dasu_users):
        curve = binned_demand_curve(dasu_users, "peak", include_bt=False)
        assert curve.correlation > 0.8

    def test_ci_contains_average(self, dasu_users):
        curve = binned_demand_curve(dasu_users, "mean", include_bt=False)
        for point in curve.points:
            assert point.ci.low <= point.average <= point.ci.high

    def test_point_for_lookup(self, dasu_users):
        curve = binned_demand_curve(dasu_users, "peak", include_bt=False)
        point = curve.points[2]
        assert curve.point_for(point.center_mbps) == point

    def test_min_users_respected(self, dasu_users):
        strict = binned_demand_curve(
            dasu_users, "peak", include_bt=False, min_users=50
        )
        assert all(p.n_users >= 50 for p in strict.points)


class TestCurveCorrelation:
    def test_too_few_points_is_nan(self):
        assert math.isnan(curve_correlation([]))


class TestMatchedExperiment:
    def test_basic_run(self, dasu_users):
        low = [u for u in dasu_users if u.capacity_down_mbps <= 8.0]
        high = [u for u in dasu_users if u.capacity_down_mbps > 8.0]
        result = matched_experiment(
            "test",
            low,
            high,
            confounders=("latency", "loss"),
            outcome=demand_outcome("peak", include_bt=False),
        )
        assert result.result.n_pairs > 10
        assert 0.0 <= result.result.fraction_holds <= 1.0

    def test_pairs_respect_caliper(self, dasu_users):
        low = [u for u in dasu_users if u.capacity_down_mbps <= 8.0]
        high = [u for u in dasu_users if u.capacity_down_mbps > 8.0]
        result = matched_experiment(
            "test",
            low,
            high,
            confounders=("latency",),
            outcome=demand_outcome("peak", include_bt=False),
        )
        for pair in result.matching.pairs:
            ratio = pair.control.latency_ms / pair.treatment.latency_ms
            assert 1 / 1.2501 <= ratio <= 1.2501

    def test_missing_confounders_excluded(self, dasu_users):
        # Users without an upgrade-cost estimate must be dropped, not crash.
        result = matched_experiment(
            "test",
            dasu_users[: len(dasu_users) // 2],
            dasu_users[len(dasu_users) // 2 :],
            confounders=("upgrade_cost",),
            outcome=demand_outcome("mean", include_bt=False),
        )
        eligible = result.matching.n_control + result.matching.n_treatment
        with_cost = sum(
            1 for u in dasu_users if u.upgrade_cost_usd_per_mbps is not None
        )
        assert eligible <= with_cost
