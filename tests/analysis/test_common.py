"""Shared analysis building blocks."""

import math

import pytest

from repro.analysis.common import (
    CONFOUNDER_EXTRACTORS,
    binned_demand_curve,
    curve_correlation,
    demand_outcome,
    matched_experiment,
    standard_confounders,
)
from repro.core.matching import match_pairs
from repro.exceptions import AnalysisError, MatchingError
from repro.obs.ledger import scoped
from tests.datasets.test_records import make_record


class TestDemandOutcome:
    def test_peak_no_bt(self, dasu_users):
        outcome = demand_outcome("peak", include_bt=False)
        user = dasu_users[0]
        assert outcome(user) == user.peak_no_bt_mbps

    def test_mean_with_bt(self, dasu_users):
        outcome = demand_outcome("mean", include_bt=True)
        user = dasu_users[0]
        assert outcome(user) == user.mean_mbps

    def test_unknown_metric(self):
        with pytest.raises(AnalysisError):
            demand_outcome("median", include_bt=False)


class TestStandardConfounders:
    def test_known_names_resolve(self):
        extractors = standard_confounders(["capacity", "latency", "loss"])
        assert len(extractors) == 3

    def test_unknown_name_rejected(self):
        with pytest.raises(AnalysisError):
            standard_confounders(["weather"])

    def test_loss_floored(self, dasu_users):
        extractor = standard_confounders(["loss"])[0]
        assert all(extractor(u) > 0 for u in dasu_users[:50])


class TestZeroValuedMarketConfounders:
    """A 0.0 price (free/bundled plan) or 0.0 upgrade cost is a real
    market condition, not a missing value; only None marks missing."""

    def test_zero_price_is_not_missing(self):
        user = make_record(price_of_access_usd=0.0)
        assert CONFOUNDER_EXTRACTORS["price_of_access"](user) == 0.0

    def test_zero_upgrade_cost_is_not_missing(self):
        user = make_record(upgrade_cost_usd_per_mbps=0.0)
        assert CONFOUNDER_EXTRACTORS["upgrade_cost"](user) == 0.0

    def test_none_still_marks_missing(self):
        user = make_record(
            price_of_access_usd=None, upgrade_cost_usd_per_mbps=None
        )
        assert math.isnan(CONFOUNDER_EXTRACTORS["price_of_access"](user))
        assert math.isnan(CONFOUNDER_EXTRACTORS["upgrade_cost"](user))

    def test_free_plan_users_survive_matching(self):
        # Two pools of identical free-plan users must pair up instead of
        # being silently dropped as "missing a price".
        control = [
            make_record(user_id=f"c{i}", price_of_access_usd=0.0)
            for i in range(4)
        ]
        treatment = [
            make_record(user_id=f"t{i}", price_of_access_usd=0.0)
            for i in range(4)
        ]
        result = matched_experiment(
            "free plans",
            control,
            treatment,
            confounders=("price_of_access",),
            outcome=demand_outcome("peak", include_bt=False),
        )
        assert result.matching.n_control == 4
        assert result.matching.n_treatment == 4
        assert result.matching.n_matched == 4

    def test_zero_cost_upgrades_survive_matching(self):
        control = [
            make_record(user_id=f"c{i}", upgrade_cost_usd_per_mbps=0.0)
            for i in range(3)
        ]
        treatment = [
            make_record(user_id=f"t{i}", upgrade_cost_usd_per_mbps=0.0)
            for i in range(3)
        ]
        result = matched_experiment(
            "zero-cost upgrades",
            control,
            treatment,
            confounders=("upgrade_cost",),
            outcome=demand_outcome("mean", include_bt=False),
        )
        assert result.matching.n_matched == 3

    def test_missing_market_value_excluded_before_matching(self):
        # A None market covariate surfaces as NaN (_market_value) and
        # must be filtered by the eligibility pass — the matcher itself
        # refuses NaN, so reaching it would raise, not mis-pair.
        control = [
            make_record(
                user_id=f"c{i}",
                price_of_access_usd=(None if i == 0 else 10.0),
            )
            for i in range(4)
        ]
        treatment = [
            make_record(user_id=f"t{i}", price_of_access_usd=10.0)
            for i in range(4)
        ]
        result = matched_experiment(
            "missing price",
            control,
            treatment,
            confounders=("price_of_access",),
            outcome=demand_outcome("peak", include_bt=False),
        )
        assert result.matching.n_control == 3
        assert result.matching.n_matched == 3

    def test_nan_reaching_match_pairs_raises(self):
        # The backstop behind the filter above: NaN confounders are a
        # caller bug and must fail loudly inside the matcher.
        control = [make_record(user_id="c0", price_of_access_usd=None)]
        treatment = [make_record(user_id="t0", price_of_access_usd=10.0)]
        with pytest.raises(MatchingError):
            match_pairs(
                control,
                treatment,
                standard_confounders(("price_of_access",)),
            )

    def test_ledger_counters_recorded(self):
        control = [
            make_record(
                user_id=f"c{i}",
                price_of_access_usd=(None if i == 0 else 10.0),
            )
            for i in range(4)
        ]
        treatment = [
            make_record(user_id=f"t{i}", price_of_access_usd=10.0)
            for i in range(4)
        ]
        with scoped() as ledger:
            matched_experiment(
                "accounted",
                control,
                treatment,
                confounders=("price_of_access",),
                outcome=demand_outcome("peak", include_bt=False),
            )
        assert ledger.counters["experiments.run"] == 1
        assert ledger.counters["experiments.users_excluded"] == 1
        # Identical records tie on the outcome, so pairs + ties covers
        # every matched pair regardless of how the sign test splits them.
        assert (
            ledger.counters.get("experiments.pairs", 0)
            + ledger.counters.get("experiments.ties", 0)
            == 3
        )
        assert ledger.counters["matching.runs"] == 1
        assert ledger.counters["matching.pool.control"] == 3
        assert ledger.counters["matching.pool.treatment"] == 4
        assert ledger.counters["matching.pairs"] == 3
        verdicts = (
            ledger.counters.get("experiments.verdicts.rejects_null", 0)
            + ledger.counters.get("experiments.verdicts.null_retained", 0)
        )
        assert verdicts == 1


class TestBinnedDemandCurve:
    def test_points_ordered_by_capacity(self, dasu_users):
        curve = binned_demand_curve(dasu_users, "peak", include_bt=False)
        lows = [p.bin.low for p in curve.points]
        assert lows == sorted(lows)

    def test_bin_members_counted(self, dasu_users):
        curve = binned_demand_curve(dasu_users, "mean", include_bt=True)
        assert sum(p.n_users for p in curve.points) <= len(dasu_users)
        assert all(p.n_users >= 5 for p in curve.points)

    def test_demand_grows_with_capacity(self, dasu_users):
        curve = binned_demand_curve(dasu_users, "peak", include_bt=False)
        first, last = curve.points[0], curve.points[-1]
        assert last.average > first.average

    def test_correlation_strong(self, dasu_users):
        curve = binned_demand_curve(dasu_users, "peak", include_bt=False)
        assert curve.correlation > 0.8

    def test_ci_contains_average(self, dasu_users):
        curve = binned_demand_curve(dasu_users, "mean", include_bt=False)
        for point in curve.points:
            assert point.ci.low <= point.average <= point.ci.high

    def test_point_for_lookup(self, dasu_users):
        curve = binned_demand_curve(dasu_users, "peak", include_bt=False)
        point = curve.points[2]
        assert curve.point_for(point.center_mbps) == point

    def test_min_users_respected(self, dasu_users):
        strict = binned_demand_curve(
            dasu_users, "peak", include_bt=False, min_users=50
        )
        assert all(p.n_users >= 50 for p in strict.points)


class TestCurveCorrelation:
    def test_too_few_points_is_nan(self):
        assert math.isnan(curve_correlation([]))


class TestMatchedExperiment:
    def test_basic_run(self, dasu_users):
        low = [u for u in dasu_users if u.capacity_down_mbps <= 8.0]
        high = [u for u in dasu_users if u.capacity_down_mbps > 8.0]
        result = matched_experiment(
            "test",
            low,
            high,
            confounders=("latency", "loss"),
            outcome=demand_outcome("peak", include_bt=False),
        )
        assert result.result.n_pairs > 10
        assert 0.0 <= result.result.fraction_holds <= 1.0

    def test_pairs_respect_caliper(self, dasu_users):
        low = [u for u in dasu_users if u.capacity_down_mbps <= 8.0]
        high = [u for u in dasu_users if u.capacity_down_mbps > 8.0]
        result = matched_experiment(
            "test",
            low,
            high,
            confounders=("latency",),
            outcome=demand_outcome("peak", include_bt=False),
        )
        for pair in result.matching.pairs:
            ratio = pair.control.latency_ms / pair.treatment.latency_ms
            assert 1 / 1.2501 <= ratio <= 1.2501

    def test_missing_confounders_excluded(self, dasu_users):
        # Users without an upgrade-cost estimate must be dropped, not crash.
        result = matched_experiment(
            "test",
            dasu_users[: len(dasu_users) // 2],
            dasu_users[len(dasu_users) // 2 :],
            confounders=("upgrade_cost",),
            outcome=demand_outcome("mean", include_bt=False),
        )
        eligible = result.matching.n_control + result.matching.n_treatment
        with_cost = sum(
            1 for u in dasu_users if u.upgrade_cost_usd_per_mbps is not None
        )
        assert eligible <= with_cost
