"""User segmentation (the paper's future-work extension)."""

import pytest

from repro.analysis.segments import SEGMENTS, classify_user, segment_users
from repro.exceptions import AnalysisError


class TestClassifyUser:
    def test_every_user_classified(self, dasu_users):
        for user in dasu_users[:300]:
            assert classify_user(user) in SEGMENTS

    def test_bt_users_are_bulk(self, dasu_users):
        for user in dasu_users:
            if user.bt_user:
                assert classify_user(user) == "bulk"


class TestSegmentUsers:
    @pytest.fixture(scope="class")
    def result(self, dasu_users):
        return segment_users(dasu_users)

    def test_assignments_complete(self, result, dasu_users):
        assert len(result.assignments) == len(dasu_users)

    def test_shares_sum_to_one(self, result):
        assert sum(result.shares.values()) == pytest.approx(1.0)

    def test_bulk_is_majority_in_p2p_panel(self, result):
        # The Dasu panel is recruited through a BitTorrent client.
        assert result.shares["bulk"] > 0.4

    def test_light_users_demand_least(self, result):
        light = result.profile("light")
        bursty = result.profile("bursty")
        assert light.median_peak_mbps < bursty.median_peak_mbps

    def test_sustained_users_run_links_hotter_than_light(self, result):
        sustained = result.profile("sustained")
        light = result.profile("light")
        assert sustained.mean_peak_utilization > light.mean_peak_utilization

    def test_profiles_have_counts(self, result):
        for profile in result.profiles:
            assert profile.n_users > 0

    def test_segments_correlate_with_ground_truth(self, small_world):
        """Validation only (never used by analyses): measured 'sustained'
        users over-represent the generative 'streamer' archetype."""
        result = segment_users(small_world.dasu.users)
        truth = small_world.ground_truth

        def streamer_share(segment: str) -> float:
            members = [
                uid for uid, seg in result.assignments.items()
                if seg == segment
            ]
            if not members:
                return 0.0
            hits = sum(
                1 for uid in members
                if truth[uid].profile.name == "streamer"
            )
            return hits / len(members)

        assert streamer_share("sustained") > streamer_share("bursty")

    def test_unknown_segment_rejected(self, result):
        with pytest.raises(AnalysisError):
            result.profile("whales")

    def test_empty_population_rejected(self):
        with pytest.raises(AnalysisError):
            segment_users([])
