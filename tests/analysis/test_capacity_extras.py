"""Additional capacity-analysis surface: elasticity and curve helpers."""

import pytest

from repro.analysis import capacity
from repro.exceptions import AnalysisError


@pytest.fixture(scope="module")
def fig2(dasu_users):
    return capacity.figure2(dasu_users)


class TestDemandElasticity:
    def test_elasticity_well_below_proportional(self, fig2):
        # The law of diminishing returns: demand grows far sub-linearly
        # with capacity.
        elasticity = fig2.demand_elasticity()
        assert 0.2 < elasticity < 0.85

    def test_diminishing_returns_uses_elasticity(self, fig2):
        assert fig2.diminishing_returns() == (
            fig2.demand_elasticity() < 0.85
            and fig2.peak_no_bt.points[-1].average
            / fig2.peak_no_bt.points[-1].center_mbps
            < fig2.peak_no_bt.points[0].average
            / fig2.peak_no_bt.points[0].center_mbps
        )

    def test_threshold_parameter(self, fig2):
        # An absurdly strict threshold fails; a loose one passes.
        assert not fig2.diminishing_returns(elasticity_threshold=0.01)
        assert fig2.diminishing_returns(elasticity_threshold=0.99)


class TestCurveHelpers:
    def test_point_for_out_of_range(self, fig2):
        assert fig2.peak_no_bt.point_for(1e9) is None

    def test_panels_cover_bt_combinations(self, fig2):
        labels = [label for label, _ in fig2.panels()]
        assert any("w/ BT" in label for label in labels)
        assert any("no BT" in label for label in labels)

    def test_upgrade_observations_unique_users(self, dasu_users):
        observations = capacity.upgrade_observations(dasu_users)
        user_ids = [o.user_id for o in observations]
        assert len(user_ids) == len(set(user_ids))
        for obs in observations:
            assert obs.capacity_ratio >= 1.25


class TestTable2Options:
    def test_custom_confounders(self, dasu_users):
        result = capacity.table2(
            dasu_users, "dasu", confounders=("latency", "loss")
        )
        assert result.rows
        # Looser confounding yields at least as many pairs per row.
        strict = capacity.table2(dasu_users, "dasu")
        loose_pairs = sum(r.experiment.result.n_pairs for r in result.rows)
        strict_pairs = sum(r.experiment.result.n_pairs for r in strict.rows)
        assert loose_pairs >= strict_pairs

    def test_mean_metric_variant(self, dasu_users):
        result = capacity.table2(dasu_users, "dasu", metric="mean")
        assert result.rows

    def test_min_group_users_filters(self, dasu_users):
        tight = capacity.table2(dasu_users, "dasu", min_group_users=10_000)
        assert not tight.rows
