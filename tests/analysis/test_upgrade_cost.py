"""Sec. 6: cost of increasing capacity (Fig. 10, Tables 5-6)."""

import math

import numpy as np
import pytest

from repro.analysis import upgrade_cost
from repro.exceptions import AnalysisError


@pytest.fixture(scope="module")
def fig10(small_world):
    return upgrade_cost.figure10(small_world.survey)


class TestFigure10:
    def test_covers_most_countries(self, fig10, small_world):
        assert fig10.n_countries > 0.6 * len(small_world.survey.countries)

    def test_paper_anchor_order(self, fig10):
        # Japan/South Korea at the cheap end, US/Canada mid, Ghana/Uganda
        # expensive — exactly Fig. 10's annotations.
        for cheap in ("Japan", "South Korea"):
            q = fig10.quantile_of(cheap)
            assert q is not None and q < 0.25
        us = fig10.quantile_of("US")
        assert us is not None and 0.05 < us < 0.65
        for pricey in ("Ghana", "Uganda"):
            q = fig10.quantile_of(pricey)
            assert q is not None and q > 0.6

    def test_developed_cheap_developing_expensive(self, fig10, small_world):
        # Paper: < $1 in developed countries, can exceed $100 in
        # developing ones.
        costs = np.array(sorted(fig10.costs_by_country.values()))
        assert costs[0] < 1.0
        assert costs[-1] > 20.0

    def test_cdf_valid(self, fig10):
        xs, ps = fig10.cdf
        assert np.all(np.diff(xs) > 0)
        assert ps[-1] == pytest.approx(1.0)

    def test_unknown_country(self, fig10):
        assert fig10.cost_for("Atlantis") is None
        assert fig10.quantile_of("Atlantis") is None


class TestCorrelationSummary:
    def test_near_paper_shares(self, small_world):
        strong, moderate = upgrade_cost.correlation_summary(small_world.survey)
        # Paper: 66% strong, 81% moderate.
        assert 0.4 <= strong <= 0.95
        assert 0.6 <= moderate <= 1.0


class TestTable5:
    def test_all_rows_present(self, small_world):
        result = upgrade_cost.table5(small_world.survey)
        assert len(result.rows) == 9

    def test_shares_monotone(self, small_world):
        result = upgrade_cost.table5(small_world.survey)
        for row in result.rows:
            if row.n_countries:
                assert row.share_above_1 >= row.share_above_5 >= row.share_above_10

    def test_africa_vs_developed_regions(self, small_world):
        result = upgrade_cost.table5(small_world.survey)
        africa = result.row_for("Africa")
        assert africa.share_above_1 > 0.9
        assert africa.share_above_10 > 0.4
        for cheap_region in ("North America", "Asia (developed)"):
            row = result.row_for(cheap_region)
            if row.n_countries:
                assert row.share_above_5 == 0.0

    def test_europe_mostly_cheap(self, small_world):
        europe = upgrade_cost.table5(small_world.survey).row_for("Europe")
        assert europe.share_above_1 < 0.5

    def test_asia_split_ordering(self, small_world):
        result = upgrade_cost.table5(small_world.survey)
        developed = result.row_for("Asia (developed)")
        developing = result.row_for("Asia (developing)")
        if developed.n_countries and developing.n_countries:
            assert developing.share_above_1 > developed.share_above_1

    def test_unknown_region_rejected(self, small_world):
        result = upgrade_cost.table5(small_world.survey)
        with pytest.raises(AnalysisError):
            result.row_for("Antarctica")


class TestTable6:
    def test_groups_populated(self, dasu_users):
        result = upgrade_cost.table6(dasu_users)
        assert all(size > 10 for size in result.group_sizes)

    def test_direction_of_effect(self, dasu_users):
        result = upgrade_cost.table6(dasu_users, include_bt=False)
        fractions = [
            r.result.fraction_holds
            for r in (result.low_vs_mid, result.mid_vs_high)
            if r.result.n_pairs >= 50 and not math.isnan(r.result.fraction_holds)
        ]
        # Expensive upgrades push demand up, over comparisons with
        # enough matched pairs to be meaningful at this world size.
        assert fractions
        assert np.mean(fractions) > 0.5

    def test_rows_structure(self, dasu_users):
        with_bt = upgrade_cost.table6(dasu_users, include_bt=True)
        rows = with_bt.rows()
        assert rows[0][1] == 53.8
        without = upgrade_cost.table6(dasu_users, include_bt=False)
        assert without.rows()[0][1] == 52.2
