"""The assembled reproduction report."""

import pytest

from repro.analysis.paper_report import full_report, section_reports
from repro.exceptions import AnalysisError


class TestFullReport:
    def test_contains_every_section(self, small_world):
        text = full_report(
            small_world.dasu.users,
            small_world.fcc.users,
            small_world.survey,
        )
        for marker in (
            "Figure 1",
            "Section 3",
            "Section 4",
            "Section 5",
            "Section 6",
            "Section 7",
            "Table 1",
            "Table 5",
            "Fig. 11",
        ):
            assert marker in text

    def test_paper_values_present(self, small_world):
        text = full_report(small_world.dasu.users)
        assert "66.8%" in text  # Table 1 average, paper value
        assert "70.3%" in text

    def test_without_optional_datasets(self, small_world):
        text = full_report(small_world.dasu.users)
        assert "Table 4" not in text  # needs the survey
        assert "Table 1" in text

    def test_sections_degrade_gracefully(self, small_world):
        # A US-only subset cannot run the India analyses; the report
        # must mark the section as skipped instead of crashing.
        us_only = [u for u in small_world.dasu.users if u.country == "US"]
        sections = section_reports(us_only)
        assert any("skipped" in s for s in sections)
        assert any("Table 1" in s for s in sections)

    def test_empty_dataset_rejected(self):
        with pytest.raises(AnalysisError):
            full_report([])
