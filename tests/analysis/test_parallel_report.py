"""Serial-vs-parallel equivalence of the analysis engine.

The report's fragments run through the same process pool as the world
builder; these tests pin the determinism guarantee — the rendered report
is byte-identical for any ``jobs`` — and the profiling contract.
"""

import re

import pytest

from repro.analysis.paper_report import full_report, section_reports
from repro.core.timing import StageTimer, format_profile
from repro.exceptions import ReproError
from repro.obs.ledger import RunLedger


@pytest.fixture(scope="module")
def serial_report(small_world) -> str:
    return full_report(
        small_world.dasu.users, small_world.fcc.users, small_world.survey
    )


class TestParallelEquivalence:
    def test_two_workers_byte_identical(self, small_world, serial_report):
        parallel = full_report(
            small_world.dasu.users,
            small_world.fcc.users,
            small_world.survey,
            jobs=2,
        )
        assert parallel == serial_report

    def test_without_optional_datasets(self, small_world):
        serial = full_report(small_world.dasu.users)
        parallel = full_report(small_world.dasu.users, jobs=2)
        assert parallel == serial

    def test_skipped_sections_identical_in_parallel(self, small_world):
        # A US-only subset cannot run the India analyses; the skip
        # marker (and its message) must not depend on the worker count.
        us_only = [u for u in small_world.dasu.users if u.country == "US"]
        serial = section_reports(us_only)
        parallel = section_reports(us_only, jobs=2)
        assert parallel == serial
        assert any("skipped" in s for s in serial)

    def test_invalid_jobs_rejected(self, small_world):
        with pytest.raises(ReproError):
            full_report(small_world.dasu.users, jobs=0)


class TestProfiler:
    def test_profiler_collects_every_fragment(self, small_world):
        profiler = StageTimer()
        full_report(
            small_world.dasu.users,
            small_world.fcc.users,
            small_world.survey,
            profiler=profiler,
        )
        names = [t.name for t in profiler.timings]
        assert len(names) == len(set(names))
        for key in ("fig1", "table1", "fig6", "table7", "fig12"):
            assert key in names
        assert all(t.wall_s >= 0.0 for t in profiler.timings)

    def test_parallel_profile_covers_same_fragments(self, small_world):
        serial, parallel = StageTimer(), StageTimer()
        full_report(small_world.dasu.users, profiler=serial)
        full_report(small_world.dasu.users, profiler=parallel, jobs=2)
        assert [t.name for t in serial.timings] == [
            t.name for t in parallel.timings
        ]


def _masked_profile(ledger: RunLedger) -> str:
    """The rendered --profile table with every duration blanked out —
    what must be byte-identical across worker counts."""
    table = format_profile(
        ledger.stage_timings(prefix="report/"), title="analysis profile"
    )
    # Absorb the numbers' right-align padding as well as their digits:
    # a duration crossing a power of ten between runs (slow CI box,
    # scheduling noise) changes its width, and that is still "only the
    # durations differ".
    return re.sub(r" *[0-9][0-9.]*", " #", table)


class TestReportLedger:
    def test_ledger_byte_identical_across_jobs(self, small_world):
        ledgers = []
        for jobs in (1, 4):
            ledger = RunLedger()
            full_report(
                small_world.dasu.users,
                small_world.fcc.users,
                small_world.survey,
                jobs=jobs,
                ledger=ledger,
            )
            ledgers.append(ledger)
        assert ledgers[0].to_jsonl() == ledgers[1].to_jsonl()

    def test_spans_cover_every_fragment(self, small_world):
        ledger = RunLedger()
        full_report(
            small_world.dasu.users,
            small_world.fcc.users,
            small_world.survey,
            jobs=2,
            ledger=ledger,
        )
        names = {s.name for s in ledger.spans}
        for key in ("fig1", "table1", "fig6", "table7", "fig12", "iqb"):
            assert f"report/{key}" in names
        # Fragments may open nested analysis spans (the iqb fragment
        # records iqb/* spans), so count only the report/* ones.
        fragment_spans = sum(
            1 for s in ledger.spans if s.name.startswith("report/")
        )
        assert ledger.counters["report.fragments.run"] == fragment_spans

    def test_experiment_counters_recorded(self, small_world):
        ledger = RunLedger()
        full_report(small_world.dasu.users, jobs=2, ledger=ledger)
        assert ledger.counters["experiments.run"] > 0
        assert ledger.counters["matching.runs"] > 0

    def test_masked_profile_byte_identical_across_jobs(self, small_world):
        # Satellite: the --profile table once printed rows in wall-time
        # order, which made its bytes depend on scheduling noise. With
        # the name-sorted table, only the durations may differ.
        tables = []
        for jobs in (1, 4):
            ledger = RunLedger()
            full_report(small_world.dasu.users, jobs=jobs, ledger=ledger)
            tables.append(_masked_profile(ledger))
        assert tables[0] == tables[1]
