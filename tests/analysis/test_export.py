"""Figure-data export."""

import csv

import pytest

from repro.analysis.export import export_figure_data
from repro.exceptions import AnalysisError


@pytest.fixture(scope="module")
def exported(small_world, tmp_path_factory):
    out = tmp_path_factory.mktemp("figures")
    files = export_figure_data(
        out,
        small_world.dasu.users,
        small_world.fcc.users,
        small_world.survey,
    )
    return out, files


class TestExportFigureData:
    def test_all_figures_written(self, exported):
        out, files = exported
        names = {f.name for f in files}
        for expected in (
            "fig1_characterization.csv",
            "fig2_usage_vs_capacity.csv",
            "fig3_fcc_vs_dasu.csv",
            "fig4_slow_fast_cdfs.csv",
            "fig5_upgrade_deltas.csv",
            "fig6_longitudinal.csv",
            "fig7_country_cdfs.csv",
            "fig8_tier_utilization.csv",
            "fig9_tier_demand.csv",
            "fig10_upgrade_cost_cdf.csv",
            "fig11_india_latency.csv",
            "fig12_india_loss.csv",
        ):
            assert expected in names

    def test_files_parse_as_csv(self, exported):
        out, files = exported
        for path in files:
            with path.open() as handle:
                rows = list(csv.reader(handle))
            assert len(rows) >= 2  # header plus data
            width = len(rows[0])
            assert all(len(row) == width for row in rows)

    def test_cdf_files_monotone(self, exported):
        out, _ = exported
        with (out / "fig1_characterization.csv").open() as handle:
            reader = csv.DictReader(handle)
            last = {}
            for row in reader:
                series = row["series"]
                value = float(row["cumulative"])
                if series in last:
                    assert value >= last[series]
                last[series] = value
            assert last  # something was read

    def test_optional_inputs_skipped(self, small_world, tmp_path):
        files = export_figure_data(tmp_path, small_world.dasu.users)
        names = {f.name for f in files}
        assert "fig3_fcc_vs_dasu.csv" not in names
        assert "fig10_upgrade_cost_cdf.csv" not in names
        assert "fig2_usage_vs_capacity.csv" in names

    def test_empty_dataset_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            export_figure_data(tmp_path, [])
