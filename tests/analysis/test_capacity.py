"""Sec. 3 analyses: Figs. 2-5, Tables 1-2."""

import numpy as np
import pytest

from repro.analysis import capacity
from repro.exceptions import AnalysisError


@pytest.fixture(scope="module")
def fig2(dasu_users):
    return capacity.figure2(dasu_users)


@pytest.fixture(scope="module")
def t1(dasu_users):
    return capacity.table1(dasu_users)


class TestFigure2:
    def test_four_panels(self, fig2):
        assert len(fig2.panels()) == 4

    def test_correlations_strong(self, fig2):
        # Paper: r >= 0.87 in every panel.
        assert fig2.min_correlation > 0.8

    def test_bt_inflates_usage(self, fig2):
        for with_bt, without in (
            (fig2.mean_with_bt, fig2.mean_no_bt),
            (fig2.peak_with_bt, fig2.peak_no_bt),
        ):
            shared = 0
            higher = 0
            for point in with_bt.points:
                other = without.point_for(point.center_mbps)
                if other is not None:
                    shared += 1
                    if point.average >= other.average:
                        higher += 1
            assert shared > 3
            assert higher >= shared * 0.7

    def test_usage_grows_with_capacity(self, fig2):
        points = fig2.peak_no_bt.points
        assert points[-1].average > 3 * points[0].average

    def test_utilization_declines_with_capacity(self, fig2):
        points = fig2.peak_no_bt.points
        first_util = points[0].average / points[0].center_mbps
        last_util = points[-1].average / points[-1].center_mbps
        assert last_util < first_util


class TestFigure3:
    def test_peak_nearly_identical(self, dasu_users, fcc_users):
        result = capacity.figure3(dasu_users, fcc_users)
        assert result.peak_ratio_dasu_over_fcc == pytest.approx(1.0, abs=0.45)

    def test_dasu_mean_biased_high(self, dasu_users, fcc_users):
        # The median-of-classes ratio scatters roughly 0.84-1.19 across
        # seeds at this world size; assert it stays near 1 rather than
        # pinning one seed's draw.
        result = capacity.figure3(dasu_users, fcc_users)
        assert result.mean_ratio_dasu_over_fcc > 0.8

    def test_requires_both_datasets(self, dasu_users):
        with pytest.raises(AnalysisError):
            capacity.figure3(dasu_users, [])


class TestTable1:
    def test_has_observations(self, t1):
        assert t1.n_observations > 10

    def test_demand_increases_on_faster_network(self, t1):
        # Paper: 66.8% (mean) and 70.3% (peak), decisively significant.
        assert t1.average.fraction_holds > 0.52
        assert t1.peak.fraction_holds > 0.52

    def test_peak_effect_at_least_mean_like(self, t1):
        assert t1.peak.fraction_holds > 0.5

    def test_rows_structure(self, t1):
        rows = t1.rows()
        assert rows[0][0] == "Average usage"
        assert rows[1][1] == 70.3

    def test_with_bt_at_least_as_strong(self, dasu_users, t1):
        # Paper: including BitTorrent, the effect is even stronger.
        with_bt = capacity.table1(dasu_users, include_bt=True)
        assert (
            with_bt.peak.fraction_holds
            >= t1.peak.fraction_holds - 0.1
        )

    def test_empty_users_rejected(self):
        with pytest.raises(AnalysisError):
            capacity.table1([])


class TestFigure4:
    def test_fast_network_usage_higher(self, dasu_users):
        result = capacity.figure4(dasu_users)
        assert result.median_fast_mean_mbps > result.median_slow_mean_mbps
        assert result.median_fast_peak_mbps > result.median_slow_peak_mbps

    def test_ratios_reported(self, dasu_users):
        result = capacity.figure4(dasu_users)
        assert result.mean_ratio_at_median > 1.0
        assert result.peak_ratio_at_median > 1.0

    def test_cdfs_valid(self, dasu_users):
        result = capacity.figure4(dasu_users)
        for xs, ps in (result.slow_mean_cdf, result.fast_peak_cdf):
            assert ps[-1] == pytest.approx(1.0)


class TestFigure5:
    def test_cells_have_upgrades(self, dasu_users):
        result = capacity.figure5(dasu_users)
        assert result.cells
        for cell in result.cells:
            assert cell.target_tier.low >= cell.initial_tier.low
            assert cell.n_switches >= 3

    def test_low_tier_gains_dominate(self, dasu_users):
        result = capacity.figure5(dasu_users, metric="peak", include_bt=False)
        assert result.low_tier_gains_exceed_high()

    def test_metric_validation(self, dasu_users):
        with pytest.raises(AnalysisError):
            capacity.figure5(dasu_users, metric="max")


class TestTable2:
    def test_dasu_rows(self, dasu_users):
        result = capacity.table2(dasu_users, "dasu")
        assert len(result.rows) >= 4
        for row in result.rows:
            assert row.treatment_bin.low == row.control_bin.high

    def test_low_bins_support_hypothesis(self, dasu_users):
        result = capacity.table2(dasu_users, "dasu")
        low_rows = [r for r in result.rows if r.control_bin.high <= 6.4]
        assert low_rows
        fractions = [r.experiment.result.fraction_holds for r in low_rows]
        assert np.mean(fractions) > 0.52

    def test_fcc_rows(self, fcc_users):
        result = capacity.table2(fcc_users, "fcc", min_group_users=10)
        assert result.rows
        fractions = [r.experiment.result.fraction_holds for r in result.rows]
        assert np.mean(fractions) > 0.52

    def test_row_lookup(self, dasu_users):
        result = capacity.table2(dasu_users, "dasu")
        row = result.rows[0]
        assert result.row_for(row.control_bin.low) == row
        assert result.row_for(999.0) is None
