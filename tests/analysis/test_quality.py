"""Sec. 7: connection quality (Tables 7-8, Figs. 11-12)."""

import numpy as np
import pytest

from repro.analysis import quality


class TestTable7:
    def test_group_sizes_cover_bins(self, dasu_users):
        result = quality.table7(dasu_users)
        assert len(result.group_sizes) == 5
        assert result.group_sizes[-1] > 5  # the (512, 2048] control

    def test_rows_reference_control(self, dasu_users):
        result = quality.table7(dasu_users)
        for row in result.rows:
            assert row.control_bin.low == 512.0
            assert row.treatment_bin.high <= 512.0

    def test_lower_latency_users_demand_more(self, dasu_users):
        result = quality.table7(dasu_users)
        fractions = [
            r.experiment.result.fraction_holds
            for r in result.rows
            if r.experiment.result.n_pairs >= 10
        ]
        if fractions:
            assert np.mean(fractions) > 0.5

    def test_paper_values_attached(self, dasu_users):
        result = quality.table7(dasu_users)
        for row in result.rows:
            assert 50.0 < row.paper_percent < 70.0


class TestFigure11:
    @pytest.fixture(scope="class")
    def fig11(self, dasu_users):
        return quality.figure11(dasu_users)

    def test_india_latency_much_higher(self, fig11):
        assert fig11.india_median_ndt_ms > 1.5 * fig11.other_median_ndt_ms

    def test_nearly_all_india_above_100ms(self, fig11):
        # Paper: nearly every Indian user has latency above 100 ms.
        assert fig11.share_india_above_100ms > 0.75

    def test_india_demands_less_than_matched_us(self, fig11):
        # Paper: 62% of matched pairs (p < 0.001). At this world size
        # only ~25 pairs exist (sd ~0.10 even if the true share is 0.62),
        # so this is a loose sanity bound; the paper-scale benchmark
        # asserts the strict > 0.5 with ~120 pairs.
        assert fig11.india_lower_demand_share >= 0.40

    def test_web_and_ndt14_cdfs_present(self, fig11):
        assert fig11.india_web_cdf is not None
        assert fig11.other_web_cdf is not None
        assert fig11.india_ndt14_cdf is not None

    def test_web_latency_tracks_ndt(self, fig11):
        # The Fig. 11 validation: the web-latency distribution is similar
        # to the NDT one for the same population.
        india_ndt = fig11.india_ndt_cdf[0]
        india_web = fig11.india_web_cdf[0]
        assert np.median(india_web) == pytest.approx(
            np.median(india_ndt), rel=0.6
        )


class TestTable8:
    def test_rows_present(self, dasu_users):
        result = quality.table8(dasu_users)
        assert len(result.rows) >= 2

    def test_lower_loss_users_demand_more(self, dasu_users):
        result = quality.table8(dasu_users)
        fractions = [
            r.experiment.result.fraction_holds
            for r in result.rows
            if r.experiment.result.n_pairs >= 10
        ]
        assert fractions
        assert np.mean(fractions) > 0.5

    def test_group_sizes(self, dasu_users):
        result = quality.table8(dasu_users)
        assert len(result.group_sizes) == 4
        assert sum(result.group_sizes) > len(dasu_users) * 0.5


class TestFigure12:
    def test_india_loss_higher(self, dasu_users):
        result = quality.figure12(dasu_users)
        assert result.india_median_loss_pct > 3 * result.other_median_loss_pct

    def test_cdfs_valid(self, dasu_users):
        result = quality.figure12(dasu_users)
        for xs, ps in (result.india_loss_pct_cdf, result.other_loss_pct_cdf):
            assert ps[-1] == pytest.approx(1.0)
