"""Sec. 5: price of access (Table 3, Table 4, Figs. 7-9)."""

import pytest

from repro.analysis import price
from repro.exceptions import AnalysisError
from repro.market.countries import CASE_STUDY_COUNTRIES


class TestTable3:
    def test_groups_populated(self, dasu_users):
        result = price.table3(dasu_users)
        low, mid, high = result.group_sizes
        assert low > 100
        assert mid > 30
        assert high > 10

    def test_expensive_markets_demand_more(self, dasu_users):
        result = price.table3(dasu_users)
        # Direction of both comparisons, per the paper (63.4% / 72.2%).
        assert result.low_vs_mid.result.fraction_holds > 0.5

    def test_rows_structure(self, dasu_users):
        rows = price.table3(dasu_users).rows()
        assert len(rows) == 2
        assert rows[1][1] == 72.2


class TestTable4:
    def test_all_four_countries(self, small_world):
        result = price.table4(small_world.dasu.users, small_world.survey)
        assert [r.country for r in result.rows] == list(CASE_STUDY_COUNTRIES)

    def test_capacity_ordering_matches_paper(self, small_world):
        result = price.table4(small_world.dasu.users, small_world.survey)
        caps = {r.country: r.median_capacity_mbps for r in result.rows}
        assert caps["Botswana"] < caps["Saudi Arabia"] < caps["US"]
        assert caps["US"] < caps["Japan"] * 4  # Japan at least comparable

    def test_income_share_ordering(self, small_world):
        result = price.table4(small_world.dasu.users, small_world.survey)
        shares = {
            r.country: r.cost_share_of_monthly_income for r in result.rows
        }
        # Paper: 8.0% > 3.3% > 1.3% ~= 1.3%.
        assert shares["Botswana"] > shares["Saudi Arabia"]
        assert shares["Saudi Arabia"] > shares["US"]
        assert shares["Japan"] < 0.05

    def test_nearest_tier_close_to_median(self, small_world):
        result = price.table4(small_world.dasu.users, small_world.survey)
        for row in result.rows:
            ratio = row.nearest_tier_mbps / row.median_capacity_mbps
            assert 0.3 < ratio < 3.5

    def test_row_lookup(self, small_world):
        result = price.table4(small_world.dasu.users, small_world.survey)
        assert result.row_for("US").country == "US"
        with pytest.raises(AnalysisError):
            result.row_for("Atlantis")

    def test_missing_country_rejected(self, small_world):
        with pytest.raises(AnalysisError):
            price.table4(
                small_world.dasu.users, small_world.survey, countries=("Atlantis",)
            )


class TestFigure7:
    def test_entries_per_country(self, dasu_users):
        result = price.figure7(dasu_users)
        assert len(result.countries) == 4

    def test_capacity_order(self, dasu_users):
        result = price.figure7(dasu_users)
        assert (
            result.country("Botswana").median_capacity_mbps
            < result.country("US").median_capacity_mbps
        )

    def test_botswana_runs_hottest(self, dasu_users):
        result = price.figure7(dasu_users)
        bw = result.country("Botswana").mean_peak_utilization
        jp = result.country("Japan").mean_peak_utilization
        assert bw > jp + 0.2

    def test_unknown_country_lookup(self, dasu_users):
        result = price.figure7(dasu_users)
        with pytest.raises(AnalysisError):
            result.country("Atlantis")


class TestFigures8And9:
    def test_tier_groups_have_min_users(self, dasu_users):
        result = price.figure8(dasu_users, min_users=10)
        assert result.groups
        for group in result.groups:
            assert group.n_users >= 10

    def test_us_utilization_declines_with_tier(self, dasu_users):
        result = price.figure8(dasu_users, min_users=10)
        us_groups = [g for g in result.groups if g.country == "US"]
        assert len(us_groups) >= 3
        utils = [g.mean_peak_utilization for g in us_groups]
        assert utils[0] > utils[-1]

    def test_figure9_demand_grows_with_tier_in_us(self, dasu_users):
        result = price.figure9(dasu_users, min_users=10)
        us = [g for g in result.groups if g.country == "US"]
        assert us[-1].mean_peak_demand_mbps > us[0].mean_peak_demand_mbps

    def test_group_lookup(self, dasu_users):
        result = price.figure8(dasu_users, min_users=10)
        group = result.groups[0]
        assert result.group_for(group.country, group.tier.low) == group
        assert result.group_for("Atlantis", 1.0) is None
