"""Sec. 4: longitudinal trends (Fig. 6)."""

import pytest

from repro.analysis import longitudinal
from repro.exceptions import AnalysisError


@pytest.fixture(scope="module")
def fig6(dasu_users):
    return longitudinal.figure6(dasu_users)


class TestYearObservations:
    def test_partition_by_year(self, dasu_users):
        totals = 0
        for year in (2011, 2012, 2013):
            totals += len(longitudinal.year_observations(dasu_users, year))
        assert totals == sum(len(u.observations) for u in dasu_users)

    def test_each_year_populated(self, dasu_users):
        for year in (2011, 2012, 2013):
            assert len(longitudinal.year_observations(dasu_users, year)) > 50


class TestFigure6:
    def test_three_year_curves(self, fig6):
        assert [yc.year for yc in fig6.year_curves] == [2011, 2012, 2013]
        for yc in fig6.year_curves:
            assert yc.curve.points

    def test_demand_per_class_stationary(self, fig6):
        # The paper's headline: no significant change at any given speed
        # tier. Allow at most one borderline class (the paper itself
        # notes a slight increase at the very fast end).
        assert len(fig6.classes_rejecting_null()) <= max(
            2, len(fig6.per_class_experiments) // 3
        )
        assert fig6.cross_year_experiment.fraction_holds < 0.56

    def test_per_class_experiments_cover_classes(self, fig6):
        assert len(fig6.per_class_experiments) >= 3

    def test_class_drift_bounded(self, fig6):
        # Class averages should stay within ~2x across the window
        # (log-ratio < ~0.7), far from the 4x global traffic growth.
        assert fig6.max_class_drift() < 0.8

    def test_experiment_has_pairs(self, fig6):
        assert fig6.cross_year_experiment.n_pairs > 50

    def test_too_few_years_rejected(self, dasu_users):
        with pytest.raises(AnalysisError):
            longitudinal.figure6(dasu_users, years=(2011,))

    def test_mean_variant_runs(self, dasu_users):
        result = longitudinal.figure6(dasu_users, metric="mean", include_bt=True)
        assert result.year_curves[0].curve.metric == "mean"
