"""Text rendering of results."""

from repro.analysis.common import binned_demand_curve
from repro.analysis.report import (
    format_curve,
    format_experiment_row,
    format_paper_vs_measured,
)
from repro.core.experiments import NaturalExperiment, PairedOutcome


def experiment_result(holds=70, total=100):
    outcomes = [PairedOutcome(0.0, 1.0)] * holds + [
        PairedOutcome(1.0, 0.0)
    ] * (total - holds)
    return NaturalExperiment("demo").evaluate(outcomes)


class TestFormatExperimentRow:
    def test_contains_both_values(self):
        row = format_experiment_row("demo", 66.8, experiment_result())
        assert "66.8%" in row
        assert "70.0%" in row

    def test_insignificant_marked(self):
        row = format_experiment_row("demo", None, experiment_result(52, 100))
        assert "*" in row

    def test_no_paper_value(self):
        row = format_experiment_row("demo", None, experiment_result())
        assert "-" in row

    def test_empty_result(self):
        row = format_experiment_row("demo", 50.0, experiment_result(0, 0))
        assert "n/a" in row


class TestFormatCurve:
    def test_renders_every_bin(self, dasu_users):
        curve = binned_demand_curve(dasu_users, "peak", include_bt=False)
        text = format_curve("peak demand", curve)
        assert text.count("Mbps") >= len(curve.points)
        assert "r =" in text


class TestFormatPaperVsMeasured:
    def test_plain_values(self):
        text = format_paper_vs_measured(
            "title", [("median capacity", 7.4, 6.9)]
        )
        assert "7.400" in text and "6.900" in text

    def test_percent_mode(self):
        text = format_paper_vs_measured(
            "title", [("share", 0.10, 0.14)], as_percent=True
        )
        assert "10.0%" in text and "14.0%" in text
