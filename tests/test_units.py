"""Unit conversions."""

import math

import pytest

from repro import units
from repro.exceptions import UnitError


class TestRateConversions:
    def test_kbps_to_mbps(self):
        assert units.kbps_to_mbps(1000.0) == 1.0

    def test_mbps_to_kbps(self):
        assert units.mbps_to_kbps(1.0) == 1000.0

    def test_kbps_mbps_round_trip(self):
        assert units.kbps_to_mbps(units.mbps_to_kbps(7.4)) == pytest.approx(7.4)

    def test_mbps_to_bytes_per_sec(self):
        # 1 Mbps = 1e6 bits/s = 125000 bytes/s.
        assert units.mbps_to_bytes_per_sec(1.0) == 125_000.0

    def test_bytes_to_megabits(self):
        assert units.bytes_to_megabits(125_000) == 1.0


class TestRateMbps:
    def test_basic_rate(self):
        assert units.rate_mbps(125_000, 1.0) == pytest.approx(1.0)

    def test_thirty_second_interval(self):
        n_bytes = units.bytes_for_rate(2.0, 30.0)
        assert units.rate_mbps(n_bytes, 30.0) == pytest.approx(2.0, rel=1e-6)

    def test_zero_bytes_is_zero_rate(self):
        assert units.rate_mbps(0, 30.0) == 0.0

    def test_zero_interval_rejected(self):
        with pytest.raises(UnitError):
            units.rate_mbps(100, 0.0)

    def test_negative_interval_rejected(self):
        with pytest.raises(UnitError):
            units.rate_mbps(100, -1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(UnitError):
            units.rate_mbps(-1, 30.0)


class TestBytesForRate:
    def test_whole_bytes(self):
        assert units.bytes_for_rate(1.0, 1.0) == 125_000

    def test_zero_rate(self):
        assert units.bytes_for_rate(0.0, 30.0) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(UnitError):
            units.bytes_for_rate(-1.0, 30.0)

    def test_negative_interval_rejected(self):
        with pytest.raises(UnitError):
            units.bytes_for_rate(1.0, -30.0)


class TestPercentConversions:
    def test_fraction_to_percent(self):
        assert units.fraction_to_percent(0.014) == pytest.approx(1.4)

    def test_percent_to_fraction(self):
        assert units.percent_to_fraction(1.4) == pytest.approx(0.014)

    def test_round_trip(self):
        assert units.percent_to_fraction(
            units.fraction_to_percent(0.123)
        ) == pytest.approx(0.123)


class TestConstants:
    def test_uint32_wrap(self):
        assert units.UINT32_WRAP == 2**32

    def test_seconds_per_day(self):
        assert units.SECONDS_PER_DAY == 24 * 3600

    def test_bits_per_megabit_is_decimal(self):
        # Network rates are decimal megabits, not mebibits.
        assert units.BITS_PER_MEGABIT == 10**6
