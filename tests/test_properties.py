"""Property-based tests on the core invariants (hypothesis)."""

import math

import numpy as np
import pytest
import scipy.stats
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.binning import capacity_class, capacity_class_bounds
from repro.core.experiments import NaturalExperiment, PairedOutcome
from repro.core.matching import caliper_compatible, match_pairs
from repro.core.metrics import demand_summary
from repro.core.regression import fit_price_capacity
from repro.core.stats import (
    binomial_sf,
    binomial_test_greater,
    ecdf,
    mean_confidence_interval,
    pearson_r,
)
from repro.measurement.upnp import deltas_from_readings
from repro.units import UINT32_WRAP, bytes_for_rate, rate_mbps

# ---------------------------------------------------------------------------
# Units
# ---------------------------------------------------------------------------


@given(
    mbps=st.floats(min_value=0.001, max_value=10_000.0),
    interval=st.floats(min_value=1.0, max_value=3600.0),
)
def test_rate_round_trip(mbps, interval):
    """bytes_for_rate and rate_mbps invert each other (up to the one
    byte lost to integer truncation, i.e. 8e-6/interval Mbps)."""
    n_bytes = bytes_for_rate(mbps, interval)
    recovered = rate_mbps(n_bytes, interval)
    assert abs(recovered - mbps) <= 8.0e-6 / interval + 1e-9 * mbps


# ---------------------------------------------------------------------------
# Binning
# ---------------------------------------------------------------------------


@given(capacity=st.floats(min_value=1e-3, max_value=2_000.0))
def test_capacity_class_contains_its_value(capacity):
    """Every capacity falls inside the bounds of its own class."""
    k = capacity_class(capacity)
    bounds = capacity_class_bounds(k)
    if capacity > bounds.high or capacity <= bounds.low:
        # Only the sub-base convention is allowed to break containment.
        assert capacity <= 0.1
        assert k == 1


@given(capacity=st.floats(min_value=0.11, max_value=1_000.0))
def test_capacity_class_monotone(capacity):
    """Doubling the capacity advances the class by exactly one."""
    assert capacity_class(capacity * 2.0) == capacity_class(capacity) + 1


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


@given(
    n=st.integers(min_value=1, max_value=2_000),
    data=st.data(),
)
def test_binomial_sf_matches_scipy(n, data):
    k = data.draw(st.integers(min_value=0, max_value=n))
    p = data.draw(st.floats(min_value=0.01, max_value=0.99))
    ours = binomial_sf(k, n, p)
    theirs = scipy.stats.binom.sf(k - 1, n, p)
    # Deep tails (p-values below ~1e-250) differ between scipy's betainc
    # route and our summed-PMF route at a few parts in 1e7.
    assert ours == pytest.approx(theirs, rel=1e-6, abs=1e-250)


@given(
    n=st.integers(min_value=1, max_value=500),
    data=st.data(),
)
def test_binomial_test_p_value_in_unit_interval(n, data):
    k = data.draw(st.integers(min_value=0, max_value=n))
    result = binomial_test_greater(k, n)
    assert 0.0 <= result.p_value <= 1.0


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50
    )
)
def test_confidence_interval_brackets_mean(values):
    ci = mean_confidence_interval(values)
    assert ci.low <= ci.center <= ci.high
    assert ci.center == pytest.approx(float(np.mean(values)), abs=1e-6)


@given(
    values=st.lists(
        st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=100
    )
)
def test_ecdf_properties(values):
    xs, ps = ecdf(values)
    assert np.all(np.diff(xs) > 0)  # strictly increasing support
    assert np.all(np.diff(ps) > 0)  # strictly increasing cumulative mass
    assert ps[-1] == pytest.approx(1.0)
    assert ps[0] > 0.0


@given(
    pairs=st.lists(
        st.tuples(
            st.floats(min_value=-100, max_value=100),
            st.floats(min_value=-100, max_value=100),
        ),
        min_size=3,
        max_size=50,
    )
)
def test_pearson_bounded(pairs):
    x = [p[0] for p in pairs]
    y = [p[1] for p in pairs]
    assume(len(set(x)) > 1 and len(set(y)) > 1)
    r = pearson_r(x, y)
    if not math.isnan(r):
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# Demand metrics
# ---------------------------------------------------------------------------


@given(
    rates=st.lists(
        st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=200
    )
)
def test_demand_summary_bounds(rates):
    summary = demand_summary(rates)
    # Tolerance of a few ulps: numpy's pairwise summation can land the
    # mean a hair outside [min, max] for pathological float inputs.
    lo, hi = min(rates) * (1 - 1e-12) - 1e-12, max(rates) * (1 + 1e-12) + 1e-12
    assert lo <= summary.mean_mbps <= hi
    assert lo <= summary.peak_mbps <= hi
    assert summary.n_samples == len(rates)


# ---------------------------------------------------------------------------
# Matching
# ---------------------------------------------------------------------------


@given(
    a=st.floats(min_value=0.0, max_value=1e6),
    b=st.floats(min_value=0.0, max_value=1e6),
)
def test_caliper_symmetric(a, b):
    assert caliper_compatible(a, b) == caliper_compatible(b, a)


@given(
    control=st.lists(
        st.floats(min_value=0.01, max_value=100.0), min_size=0, max_size=30
    ),
    treatment=st.lists(
        st.floats(min_value=0.01, max_value=100.0), min_size=0, max_size=30
    ),
)
@settings(deadline=None)
def test_matching_invariants(control, treatment):
    c_units = [{"v": v} for v in control]
    t_units = [{"v": v} for v in treatment]
    summary = match_pairs(c_units, t_units, [lambda u: u["v"]])
    # 1:1 without replacement.
    assert summary.n_matched <= min(len(control), len(treatment))
    seen_c = [id(p.control) for p in summary.pairs]
    seen_t = [id(p.treatment) for p in summary.pairs]
    assert len(seen_c) == len(set(seen_c))
    assert len(seen_t) == len(set(seen_t))
    # Every pair respects the caliper.
    for pair in summary.pairs:
        assert caliper_compatible(pair.control["v"], pair.treatment["v"])


# ---------------------------------------------------------------------------
# Natural experiments
# ---------------------------------------------------------------------------


@given(
    outcomes=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),
            st.floats(min_value=0.0, max_value=10.0),
        ),
        min_size=0,
        max_size=200,
    )
)
def test_experiment_accounting(outcomes):
    result = NaturalExperiment("prop").evaluate(
        PairedOutcome(c, t) for c, t in outcomes
    )
    assert result.n_pairs + result.n_ties == len(outcomes)
    assert 0 <= result.n_holds <= result.n_pairs
    assert 0.0 <= result.p_value <= 1.0
    # The verdict is the conjunction of its two components.
    assert result.rejects_null == (
        result.statistically_significant and result.practically_important
    )


# ---------------------------------------------------------------------------
# Regression
# ---------------------------------------------------------------------------


@given(
    slope=st.floats(min_value=-50.0, max_value=50.0),
    intercept=st.floats(min_value=-100.0, max_value=100.0),
    caps=st.lists(
        st.floats(min_value=0.1, max_value=500.0), min_size=2, max_size=30
    ),
)
def test_regression_recovers_exact_line(slope, intercept, caps):
    # A capacity spread of a few ULPs (e.g. [0.1, nextafter(0.1)]) makes
    # the normal equations ill-conditioned far beyond the tolerances
    # below; exact-line recovery is only a fair ask on a real spread.
    assume(max(caps) - min(caps) >= 1e-2)
    prices = [intercept + slope * c for c in caps]
    fit = fit_price_capacity(caps, prices)
    assert fit.slope_usd_per_mbps == pytest.approx(slope, rel=1e-6, abs=1e-6)
    assert fit.intercept_usd == pytest.approx(intercept, rel=1e-6, abs=1e-4)


# ---------------------------------------------------------------------------
# UPnP counter correction
# ---------------------------------------------------------------------------


@given(
    start=st.integers(min_value=0, max_value=UINT32_WRAP - 1),
    deltas=st.lists(
        st.integers(min_value=0, max_value=UINT32_WRAP // 2 - 1),
        min_size=1,
        max_size=50,
    ),
)
def test_upnp_wrap_correction_recovers_deltas(start, deltas):
    """Without resets, every (sub-half-range) delta is recovered exactly."""
    readings = [start]
    value = start
    for delta in deltas:
        value = (value + delta) % UINT32_WRAP
        readings.append(value)
    recovered = deltas_from_readings(np.array(readings))
    assert list(recovered) == deltas
