"""The command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.datasets.io import write_config_json, write_survey_csv, write_users_csv


@pytest.fixture(scope="module")
def data_dir(small_world, tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-data")
    write_users_csv(small_world.all_users, out / "users.csv")
    write_survey_csv(small_world.survey, out / "survey.csv")
    write_config_json(small_world.config, out / "config.json")
    return out


class TestParser:
    def test_build_defaults(self):
        args = build_parser().parse_args(["build", "--out", "/tmp/x"])
        assert args.seed == 20141105
        assert args.users == 2000
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_report_data_now_optional(self):
        args = build_parser().parse_args(["report"])
        assert args.data is None
        assert args.seed == 20141105

    def test_analyze_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["analyze", "--data", "d", "--experiment", "bogus"]
            )

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestBuild:
    def test_build_writes_dataset(self, tmp_path, capsys):
        rc = main(
            [
                "build", "--out", str(tmp_path / "w"), "--users", "60",
                "--fcc", "10", "--days", "1.0", "--seed", "3",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert rc == 0
        assert (tmp_path / "w" / "users.csv").exists()
        assert (tmp_path / "w" / "survey.csv").exists()
        assert (tmp_path / "w" / "config.json").exists()
        assert "wrote" in capsys.readouterr().out

    def test_parallel_build_matches_serial(self, tmp_path, capsys):
        base = [
            "--users", "40", "--fcc", "10", "--days", "1.0", "--seed", "3",
            "--no-cache",
        ]
        assert main(["build", "--out", str(tmp_path / "s")] + base) == 0
        assert main(
            ["build", "--out", str(tmp_path / "p"), "--jobs", "3"] + base
        ) == 0
        assert "jobs=3" in capsys.readouterr().out
        assert (
            (tmp_path / "s" / "users.csv").read_bytes()
            == (tmp_path / "p" / "users.csv").read_bytes()
        )

    @pytest.mark.parametrize("jobs", ["0", "-1"])
    def test_bad_jobs_rejected_with_clear_error(self, tmp_path, capsys, jobs):
        rc = main(
            ["build", "--out", str(tmp_path / "w"), "--users", "10",
             "--jobs", jobs]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "jobs" in err
        assert "positive integer" in err

    @pytest.mark.parametrize("jobs", ["0", "-1"])
    def test_report_rejects_bad_jobs_too(self, capsys, jobs):
        rc = main(["report", "--users", "10", "--jobs", jobs])
        assert rc == 2
        assert "positive integer" in capsys.readouterr().err


class TestFaultFlags:
    def test_fault_flags_parsed(self):
        args = build_parser().parse_args(
            ["build", "--out", "/tmp/x", "--faults", "default", "--sanitize"]
        )
        assert args.faults == "default"
        assert args.sanitize is True

    def test_faults_off_by_default(self):
        args = build_parser().parse_args(["build", "--out", "/tmp/x"])
        assert args.faults == "off"
        assert args.sanitize is False

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["build", "--out", "/tmp/x", "--faults", "bogus"]
            )

    def test_report_accepts_fault_flags(self):
        args = build_parser().parse_args(["report", "--faults", "light"])
        assert args.faults == "light"

    def test_build_with_faults_writes_report(self, tmp_path, capsys):
        rc = main(
            ["build", "--out", str(tmp_path / "w"), "--users", "40",
             "--fcc", "10", "--days", "1.0", "--seed", "3",
             "--faults", "default", "--sanitize", "--no-cache"]
        )
        assert rc == 0
        assert (tmp_path / "w" / "sanitization.json").exists()
        assert "sanitization report" in capsys.readouterr().out

    def test_faults_off_writes_no_report(self, tmp_path, capsys):
        rc = main(
            ["build", "--out", str(tmp_path / "w"), "--users", "40",
             "--fcc", "10", "--days", "1.0", "--seed", "3", "--no-cache"]
        )
        assert rc == 0
        assert not (tmp_path / "w" / "sanitization.json").exists()
        assert "sanitization report" not in capsys.readouterr().out


class TestAnalyze:
    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_every_experiment_runs(self, data_dir, capsys, experiment):
        rc = main(
            ["analyze", "--data", str(data_dir), "--experiment", experiment]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert f"experiment: {experiment}" in out
        assert len(out.splitlines()) >= 2

    def test_missing_data_dir_fails_cleanly(self, tmp_path, capsys):
        rc = main(
            ["analyze", "--data", str(tmp_path), "--experiment", "fig1"]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_survey_experiment_without_survey(self, small_world, tmp_path, capsys):
        write_users_csv(small_world.dasu.users[:100], tmp_path / "users.csv")
        rc = main(
            ["analyze", "--data", str(tmp_path), "--experiment", "table5"]
        )
        assert rc == 2
        assert "survey.csv" in capsys.readouterr().err


class TestExport:
    def test_export_writes_figures(self, data_dir, tmp_path, capsys):
        rc = main(
            ["export", "--data", str(data_dir), "--out", str(tmp_path / "figs")]
        )
        assert rc == 0
        assert (tmp_path / "figs" / "fig1_characterization.csv").exists()
        assert "figure-data files" in capsys.readouterr().out


class TestReport:
    def test_report_to_stdout(self, data_dir, capsys):
        rc = main(["report", "--data", str(data_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out
        assert "Table 1" in out
        assert "Section 7" in out

    def test_report_to_file(self, data_dir, tmp_path, capsys):
        target = tmp_path / "report.txt"
        rc = main(["report", "--data", str(data_dir), "--out", str(target)])
        assert rc == 0
        assert "Reproduction report" in target.read_text()

    def test_parallel_report_byte_identical(self, data_dir, tmp_path):
        serial, parallel = tmp_path / "j1.txt", tmp_path / "j2.txt"
        assert main(
            ["report", "--data", str(data_dir), "--out", str(serial)]
        ) == 0
        assert main(
            ["report", "--data", str(data_dir), "--out", str(parallel),
             "--jobs", "2"]
        ) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_profile_goes_to_stderr_only(self, data_dir, tmp_path, capsys):
        target = tmp_path / "report.txt"
        rc = main(
            ["report", "--data", str(data_dir), "--out", str(target),
             "--profile"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "analysis profile" in captured.err
        assert "wall" in captured.err and "cpu" in captured.err
        assert "analysis profile" not in captured.out
        assert "analysis profile" not in target.read_text()

    def test_profile_off_by_default(self, data_dir, capsys):
        rc = main(["report", "--data", str(data_dir)])
        assert rc == 0
        assert capsys.readouterr().err == ""


class TestTrace:
    """`--trace` artifacts: byte-stable across --jobs, and the trace's
    sanitize.* counters equal the persisted sanitization report."""

    ARGS = [
        "--users", "40", "--fcc", "10", "--days", "1.0", "--seed", "3",
        "--faults", "default", "--sanitize", "--no-cache",
    ]

    def _build(self, out, *extra):
        return main(["build", "--out", str(out), "--trace"]
                    + self.ARGS + list(extra))

    def test_build_trace_byte_identical_across_jobs(self, tmp_path, capsys):
        assert self._build(tmp_path / "j1") == 0
        assert self._build(tmp_path / "j2", "--jobs", "2") == 0
        for name in ("trace.jsonl", "manifest.json"):
            assert (
                (tmp_path / "j1" / name).read_bytes()
                == (tmp_path / "j2" / name).read_bytes()
            ), name
        assert "trace written" in capsys.readouterr().err

    def test_trace_sanitize_counts_match_sanitization_json(self, tmp_path):
        import json

        assert self._build(tmp_path / "w") == 0
        report = json.loads((tmp_path / "w" / "sanitization.json").read_text())
        counters = {}
        for line in (tmp_path / "w" / "trace.jsonl").read_text().splitlines():
            event = json.loads(line)
            if event["type"] == "counter":
                counters[event["name"]] = event["value"]
        assert counters["sanitize.users.in"] == report["users_in"]
        assert counters["sanitize.users.kept"] == report["users_kept"]
        for name, stats in report["rules"].items():
            prefix = f"sanitize.rule.{name}"
            assert counters[f"{prefix}.examined"] == stats["examined"], name
            assert counters[f"{prefix}.repaired"] == stats["repaired"], name
            assert counters[f"{prefix}.dropped"] == stats["dropped"], name

    def test_manifest_carries_provenance(self, tmp_path):
        import json

        from repro._version import __version__

        assert self._build(tmp_path / "w") == 0
        manifest = json.loads((tmp_path / "w" / "manifest.json").read_text())
        assert manifest["command"] == "build"
        assert manifest["seed"] == 3
        assert manifest["code_version"] == __version__
        assert manifest["config_hash"]

    def test_report_trace_byte_identical_across_jobs(self, tmp_path, data_dir):
        for jobs in ("1", "4"):
            rc = main(
                ["report", "--data", str(data_dir),
                 "--out", str(tmp_path / f"r{jobs}.txt"),
                 "--trace", "--trace-dir", str(tmp_path / f"t{jobs}"),
                 "--jobs", jobs]
            )
            assert rc == 0
        for name in ("trace.jsonl", "manifest.json"):
            assert (
                (tmp_path / "t1" / name).read_bytes()
                == (tmp_path / "t4" / name).read_bytes()
            ), name

    def test_report_trace_identical_on_cache_hit_and_miss(self, tmp_path):
        # A cache hit folds the stored build ledger into the run; the
        # trace must not depend on which path produced the world.
        args = [
            "report", "--users", "30", "--fcc", "8", "--days", "1.0",
            "--seed", "21", "--cache-dir", str(tmp_path / "cache"),
            "--trace",
        ]
        assert main(args + ["--trace-dir", str(tmp_path / "miss")]) == 0
        assert main(args + ["--trace-dir", str(tmp_path / "hit")]) == 0
        assert (
            (tmp_path / "miss" / "trace.jsonl").read_bytes()
            == (tmp_path / "hit" / "trace.jsonl").read_bytes()
        )

    def test_cached_build_reuses_trace(self, tmp_path, capsys):
        args = [
            "--users", "30", "--fcc", "8", "--days", "1.0", "--seed", "21",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(
            ["build", "--out", str(tmp_path / "w1"), "--trace"] + args
        ) == 0
        assert main(
            ["build", "--out", str(tmp_path / "w2"), "--trace"] + args
        ) == 0
        assert "cache hit" in capsys.readouterr().out
        assert (
            (tmp_path / "w1" / "trace.jsonl").read_bytes()
            == (tmp_path / "w2" / "trace.jsonl").read_bytes()
        )

    def test_no_trace_flag_writes_no_artifacts(self, tmp_path):
        assert main(
            ["build", "--out", str(tmp_path / "w")] + self.ARGS
        ) == 0
        assert not (tmp_path / "w" / "trace.jsonl").exists()
        assert not (tmp_path / "w" / "manifest.json").exists()


class TestColumnarDataDir:
    """``--data`` directories carry a ``users.npy`` shard since the
    columnar data plane; loading must prefer it and agree with the CSV."""

    @pytest.fixture()
    def columnar_dir(self, tiny_world, tmp_path):
        from repro.datasets.io import write_users_npy

        out = tmp_path / "data"
        out.mkdir()
        columns = tiny_world.all_columns
        write_users_csv(columns, out / "users.csv")
        write_users_npy(columns, out / "users.npy")
        write_survey_csv(tiny_world.survey, out / "survey.csv")
        return out

    def _analyze(self, data_dir, capsys) -> str:
        rc = main(
            ["analyze", "--data", str(data_dir), "--experiment", "table2"]
        )
        assert rc == 0
        return capsys.readouterr().out

    def test_npy_and_csv_loads_agree(self, columnar_dir, capsys):
        from_npy = self._analyze(columnar_dir, capsys)
        (columnar_dir / "users.npy").unlink()
        from_csv = self._analyze(columnar_dir, capsys)
        assert from_npy == from_csv

    def test_corrupt_npy_falls_back_to_csv(self, columnar_dir, capsys):
        baseline = self._analyze(columnar_dir, capsys)
        (columnar_dir / "users.npy").write_bytes(b"not a numpy file")
        assert self._analyze(columnar_dir, capsys) == baseline

    def test_build_writes_the_shard(self, tmp_path):
        from repro.datasets.io import read_users_npy

        out = tmp_path / "w"
        rc = main(
            ["build", "--out", str(out), "--users", "30", "--fcc", "8",
             "--days", "1.0", "--seed", "21", "--no-cache"]
        )
        assert rc == 0
        columns = read_users_npy(out / "users.npy")
        assert columns.n_rows > 0


class TestIqb:
    """`repro iqb`: the barometer command's artifacts are byte-stable
    across worker counts and cache states (the jobs-invariance contract
    every other artifact-producing subcommand already honors)."""

    ARGS = [
        "--users", "120", "--fcc", "20", "--days", "1.0", "--seed", "9",
    ]

    def _run(self, out, *extra):
        return main(
            ["iqb", "--out", str(out), "--trace"] + self.ARGS + list(extra)
        )

    def test_report_to_stdout(self, data_dir, capsys):
        rc = main(["iqb", "--data", str(data_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Internet quality barometer (config 'default')" in out
        assert "IQB vs demand" in out

    def test_artifacts_byte_identical_across_jobs(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert self._run(tmp_path / "j1", "--jobs", "1", *cache) == 0
        assert self._run(tmp_path / "j4", "--jobs", "4", *cache) == 0
        for name in ("iqb.txt", "iqb.json", "trace.jsonl"):
            assert (
                (tmp_path / "j1" / name).read_bytes()
                == (tmp_path / "j4" / name).read_bytes()
            ), name
        assert "barometer written" in capsys.readouterr().out

    def test_cold_and_warm_cache_identical(self, tmp_path):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert self._run(tmp_path / "cold", *cache) == 0
        assert self._run(tmp_path / "warm", *cache) == 0
        for name in ("iqb.txt", "iqb.json", "trace.jsonl"):
            assert (
                (tmp_path / "cold" / name).read_bytes()
                == (tmp_path / "warm" / name).read_bytes()
            ), name

    def test_payload_parses_and_names_config(self, tmp_path):
        import json

        assert self._run(tmp_path / "w", "--no-cache") == 0
        payload = json.loads((tmp_path / "w" / "iqb.json").read_text())
        assert payload["config"]["name"] == "default"
        assert payload["dasu"]["n_users"] > 0
        assert "experiment" in payload
        manifest = json.loads((tmp_path / "w" / "manifest.json").read_text())
        assert manifest["command"] == "iqb"
        assert manifest["iqb_config"]["name"] == "default"

    def test_config_file_and_preset(self, data_dir, tmp_path, capsys):
        import json

        from repro.analysis.iqb import IQB_PRESETS

        rc = main(["iqb", "--data", str(data_dir), "--config", "streaming"])
        assert rc == 0
        assert "config 'streaming'" in capsys.readouterr().out
        path = tmp_path / "custom.json"
        path.write_text(
            json.dumps(IQB_PRESETS["streaming"].to_payload())
        )
        rc = main(["iqb", "--data", str(data_dir), "--config", str(path)])
        assert rc == 0
        assert "config 'streaming'" in capsys.readouterr().out

    def test_invalid_config_file_fails_cleanly(self, tmp_path, capsys):
        import json

        path = tmp_path / "bad.json"
        payload = {
            "name": "bad",
            "use_cases": {
                "web": {
                    "requirements": {
                        "latency_ms": {"weight": -1, "max": 100}
                    }
                }
            },
        }
        path.write_text(json.dumps(payload))
        rc = main(["iqb", "--config", str(path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "'web'" in err and "'latency_ms'" in err

    def test_trace_requires_out(self, data_dir, capsys):
        rc = main(["iqb", "--data", str(data_dir), "--trace"])
        assert rc == 2
        assert "--out" in capsys.readouterr().err
