"""World configuration validation."""

import pytest

from repro.datasets.world import WorldConfig
from repro.exceptions import DatasetError


class TestWorldConfig:
    def test_defaults_valid(self):
        config = WorldConfig()
        assert config.n_dasu_users > 0
        assert config.years == (2011, 2012, 2013)

    def test_mechanism_switches_default_on(self):
        config = WorldConfig()
        assert config.price_selection_enabled
        assert config.quality_suppression_enabled
        assert config.demand_growth_enabled

    def test_negative_users_rejected(self):
        with pytest.raises(DatasetError):
            WorldConfig(n_dasu_users=-1)

    def test_unsorted_years_rejected(self):
        with pytest.raises(DatasetError):
            WorldConfig(years=(2013, 2011))

    def test_empty_years_rejected(self):
        with pytest.raises(DatasetError):
            WorldConfig(years=())

    def test_zero_days_rejected(self):
        with pytest.raises(DatasetError):
            WorldConfig(days_per_year=0.0)

    def test_zero_ndt_tests_rejected(self):
        with pytest.raises(DatasetError):
            WorldConfig(ndt_tests_per_period=0)

    def test_bad_web_fraction_rejected(self):
        with pytest.raises(DatasetError):
            WorldConfig(web_probe_fraction=1.5)

    def test_frozen(self):
        config = WorldConfig()
        with pytest.raises(Exception):
            config.seed = 1  # type: ignore[misc]
