"""Raw usage traces."""

import numpy as np
import pytest

from repro.datasets import WorldConfig, build_world
from repro.datasets.traces import UsageTrace, read_traces_npz, write_traces_npz
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def traced_world():
    return build_world(
        WorldConfig(
            seed=41,
            n_dasu_users=150,
            n_fcc_users=40,
            days_per_year=1.0,
            trace_user_fraction=0.5,
        )
    )


class TestTraceCollection:
    def test_roughly_requested_fraction_traced(self, traced_world):
        fraction = len(traced_world.traces) / len(traced_world.all_users)
        assert 0.3 <= fraction <= 0.7

    def test_default_world_has_no_traces(self):
        world = build_world(
            WorldConfig(seed=41, n_dasu_users=40, n_fcc_users=0, days_per_year=1.0)
        )
        assert not world.traces

    def test_traces_match_record_owners(self, traced_world):
        user_ids = {u.user_id for u in traced_world.all_users}
        assert set(traced_world.traces) <= user_ids

    def test_one_trace_per_observed_year(self, traced_world):
        by_id = {u.user_id: u for u in traced_world.all_users}
        for user_id, traces in traced_world.traces.items():
            record = by_id[user_id]
            assert len(traces) == len(record.observations)
            assert [t.year for t in traces] == [
                o.year for o in record.observations
            ]

    def test_summaries_rederivable_from_traces(self, traced_world):
        """The audit property: every published summary equals the summary
        recomputed from its raw trace."""
        by_id = {u.user_id: u for u in traced_world.all_users}
        checked = 0
        for user_id, traces in traced_world.traces.items():
            record = by_id[user_id]
            for trace, obs in zip(traces, record.observations):
                summary = trace.summary(include_bt=True)
                assert summary.mean_mbps == pytest.approx(
                    obs.period.mean_mbps, rel=1e-9
                )
                assert summary.peak_mbps == pytest.approx(
                    obs.period.peak_mbps, rel=1e-9
                )
                checked += 1
        assert checked > 20

    def test_traces_carry_uplink_for_dasu(self, traced_world):
        dasu_ids = {u.user_id for u in traced_world.dasu.users}
        for user_id, traces in traced_world.traces.items():
            if user_id in dasu_ids:
                assert traces[0].up_rates_mbps is not None


class TestTracePersistence:
    def test_round_trip(self, traced_world, tmp_path):
        path = tmp_path / "traces.npz"
        n_written = write_traces_npz(traced_world.traces, path)
        assert n_written == sum(len(t) for t in traced_world.traces.values())
        loaded = read_traces_npz(path)
        assert set(loaded) == set(traced_world.traces)
        for user_id, traces in traced_world.traces.items():
            for original, restored in zip(traces, loaded[user_id]):
                assert restored.year == original.year
                assert restored.interval_s == original.interval_s
                assert np.allclose(restored.rates_mbps, original.rates_mbps)
                assert np.array_equal(restored.bt_active, original.bt_active)

    def test_duplicate_trace_rejected(self, tmp_path):
        trace = UsageTrace(
            user_id="u1",
            year=2011,
            interval_s=30.0,
            rates_mbps=np.ones(5),
            bt_active=np.zeros(5, dtype=bool),
            hours=np.arange(5.0),
        )
        with pytest.raises(DatasetError):
            write_traces_npz({"u1": [trace, trace]}, tmp_path / "x.npz")

    def test_misaligned_trace_rejected(self):
        with pytest.raises(DatasetError):
            UsageTrace(
                user_id="u1",
                year=2011,
                interval_s=30.0,
                rates_mbps=np.ones(5),
                bt_active=np.zeros(4, dtype=bool),
                hours=np.arange(5.0),
            )
