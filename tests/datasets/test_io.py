"""Dataset persistence.

Round-trip tests run against the shared session-scoped ``tiny_world``
fixture (see ``tests/conftest.py``) instead of building their own world.
"""

import pytest

from repro.datasets import WorldConfig
from repro.datasets.io import (
    read_config_json,
    read_users_csv,
    write_config_json,
    write_plans_csv,
    write_users_csv,
)
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def world(tiny_world):
    return tiny_world


class TestUsersCsv:
    def test_round_trip(self, world, tmp_path):
        path = tmp_path / "users.csv"
        n_rows = write_users_csv(world.dasu.users, path)
        assert n_rows >= len(world.dasu.users)
        loaded = read_users_csv(path)
        original = sorted(world.dasu.users, key=lambda u: u.user_id)
        assert len(loaded) == len(original)
        for a, b in zip(loaded, original):
            assert a.user_id == b.user_id
            assert a.country == b.country
            assert a.capacity_down_mbps == pytest.approx(b.capacity_down_mbps)
            assert a.peak_no_bt_mbps == pytest.approx(b.peak_no_bt_mbps)
            assert a.upgrade_cost_usd_per_mbps == b.upgrade_cost_usd_per_mbps
            assert len(a.observations) == len(b.observations)
            assert a.network == b.network

    def test_loaded_records_support_analysis(self, world, tmp_path):
        from repro.analysis.characterization import figure1

        path = tmp_path / "users.csv"
        write_users_csv(world.dasu.users, path)
        loaded = read_users_csv(path)
        result = figure1(loaded)
        assert result.n_users == len(loaded)

    def test_bad_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(DatasetError):
            read_users_csv(path)


class TestPlansCsv:
    def test_writes_all_plans(self, world, tmp_path):
        path = tmp_path / "plans.csv"
        n_rows = write_plans_csv(world.survey, path)
        assert n_rows == world.survey.n_plans
        header = path.read_text().splitlines()[0]
        assert "monthly_price_usd_ppp" in header


class TestConfigJson:
    def test_round_trip(self, tmp_path):
        config = WorldConfig(seed=99, n_dasu_users=10, n_fcc_users=2)
        path = tmp_path / "config.json"
        write_config_json(config, path)
        assert read_config_json(path) == config

    def test_invalid_payload_rejected(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text('{"bogus": 1, "years": [2011]}')
        with pytest.raises(DatasetError):
            read_config_json(path)


class TestSurveyCsv:
    def test_round_trip(self, world, tmp_path):
        from repro.datasets.io import read_survey_csv, write_survey_csv

        path = tmp_path / "survey.csv"
        n_rows = write_survey_csv(world.survey, path)
        assert n_rows == world.survey.n_plans
        loaded = read_survey_csv(path)
        assert loaded.countries == world.survey.countries
        for country in world.survey.countries:
            original = world.survey.market(country)
            restored = loaded.market(country)
            assert restored.price_of_access() == pytest.approx(
                original.price_of_access()
            )
            assert restored.upgrade_cost_usd_per_mbps == (
                pytest.approx(original.upgrade_cost_usd_per_mbps)
                if original.upgrade_cost_usd_per_mbps is not None
                else None
            )
            assert restored.economy.region == original.economy.region

    def test_bad_columns_rejected(self, tmp_path):
        from repro.datasets.io import read_survey_csv
        from repro.exceptions import DatasetError

        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(DatasetError):
            read_survey_csv(path)
