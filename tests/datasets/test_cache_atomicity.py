"""Crash-injection: the world cache's publish path under interruption.

:meth:`repro.datasets.cache.WorldCache.store` promises that a process
killed at *any* point leaves either no entry or a complete one — a
concurrent (or later) loader can never observe a partial store. These
tests make the promise empirical: a subprocess stores a world and is
SIGKILLed at adversarial points along the publish path (first file,
mid-write, just before the final ``os.replace``), and the parent then
verifies the cache is indistinguishable from one that never stored.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.datasets import WorldConfig, build_world
from repro.datasets.cache import (
    _STAGING_MAX_AGE_S,
    _STAGING_PREFIX,
    WorldCache,
    build_or_load_world,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")

CONFIG = WorldConfig(seed=3, n_dasu_users=60, n_fcc_users=10, days_per_year=1.0)

#: Where along the publish path the victim subprocess kills itself. Each
#: hook fires inside ``store()`` after progressively more staging work.
KILL_POINTS = ("first-file", "mid-write", "before-replace")

_KILL_SCRIPT = textwrap.dedent(
    """
    import os, signal, sys

    from repro.datasets import WorldConfig, build_world
    from repro.datasets import cache as cache_mod

    kill_point, cache_root = sys.argv[1], sys.argv[2]
    config = WorldConfig(
        seed=3, n_dasu_users=60, n_fcc_users=10, days_per_year=1.0
    )
    world = build_world(config, ground_truth=False)

    def die(*args, **kwargs):
        os.kill(os.getpid(), signal.SIGKILL)

    if kill_point == "first-file":
        cache_mod.write_users_csv = die          # staging dir still empty
    elif kill_point == "mid-write":
        cache_mod.write_survey_csv = die         # users files written
    elif kill_point == "before-replace":
        cache_mod.os.replace = die               # staging fully written
    else:
        raise SystemExit(f"unknown kill point {kill_point!r}")
    cache_mod.WorldCache(cache_root).store(world)
    raise SystemExit("store survived the kill hook")
    """
)


def _store_killed_at(kill_point: str, cache_root: Path) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _KILL_SCRIPT, kill_point, str(cache_root)],
        env=env, capture_output=True, text=True, timeout=600,
    )
    return proc.returncode


@pytest.mark.parametrize("kill_point", KILL_POINTS)
def test_killed_store_is_never_visible(tmp_path, kill_point):
    cache_root = tmp_path / "cache"
    rc = _store_killed_at(kill_point, cache_root)
    assert rc == -signal.SIGKILL

    cache = WorldCache(cache_root)
    # A concurrent loader sees a miss — never a partial entry.
    assert cache.load(CONFIG) is None
    assert not cache.entry_dir(CONFIG).exists()
    # The only residue is an invisible staging directory (none at all
    # when the kill came before any file was written into it is fine
    # too — mkdtemp itself may or may not have run).
    residue = list(cache_root.iterdir()) if cache_root.exists() else []
    assert all(p.name.startswith(_STAGING_PREFIX) for p in residue)


@pytest.mark.parametrize("kill_point", KILL_POINTS)
def test_interrupted_store_then_clean_rebuild(tmp_path, kill_point):
    """After a killed store, the normal path recovers completely."""
    cache_root = tmp_path / "cache"
    assert _store_killed_at(kill_point, cache_root) == -signal.SIGKILL
    world, from_cache = build_or_load_world(
        CONFIG, cache=WorldCache(cache_root), ground_truth=False
    )
    assert not from_cache  # the partial store read as a miss
    reloaded = WorldCache(cache_root).load(CONFIG)
    assert reloaded is not None
    assert len(reloaded.dasu.users) == len(world.dasu.users)


def test_stale_staging_swept_fresh_left_alone(tmp_path):
    cache_root = tmp_path / "cache"
    cache_root.mkdir()
    stale = cache_root / f"{_STAGING_PREFIX}stale"
    fresh = cache_root / f"{_STAGING_PREFIX}fresh"
    stale.mkdir()
    fresh.mkdir()
    old = time.time() - (_STAGING_MAX_AGE_S + 60)
    os.utime(stale, (old, old))

    world = build_world(CONFIG, ground_truth=False)
    cache = WorldCache(cache_root)
    entry = cache.store(world)
    assert entry is not None
    assert not stale.exists()  # abandoned residue reclaimed
    assert fresh.exists()      # an in-flight store is never disturbed
    assert cache.load(CONFIG) is not None


def test_store_replaces_invalid_occupant(tmp_path):
    """A corrupt directory squatting on the entry path is replaced."""
    cache = WorldCache(tmp_path / "cache")
    occupant = cache.entry_dir(CONFIG)
    occupant.mkdir(parents=True)
    (occupant / "config.json").write_text("{corrupt")
    world = build_world(CONFIG, ground_truth=False)
    assert cache.store(world) == occupant
    assert cache.load(CONFIG) is not None
