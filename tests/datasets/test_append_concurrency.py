"""Appends racing readers and dying mid-publish.

The cache's staging + ``os.replace`` discipline is what makes appends
safe to run while a service reads: an entry either exists completely or
not at all. These tests drive that contract with real concurrent
processes and with deterministic kill points.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.datasets import (
    AppendDelta,
    WorldCache,
    WorldConfig,
    append_world,
    build_or_load_world,
)
from repro.datasets import cache as cache_mod

BASE = WorldConfig(
    seed=13, n_dasu_users=64, n_fcc_users=8, days_per_year=1.0, sanitize=True
)

_APPEND_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.datasets import (
        AppendDelta, DeltaLog, WorldCache, WorldConfig, append_world,
    )
    cache = WorldCache(sys.argv[1])
    base = WorldConfig(
        seed=13, n_dasu_users=64, n_fcc_users=8, days_per_year=1.0,
        sanitize=True,
    )
    delta = AppendDelta(
        n_dasu_users=int(sys.argv[2]), n_fcc_users=int(sys.argv[3])
    )
    append_world(base, delta, cache=cache, log=DeltaLog(base, cache=cache))
    """
)


def _spawn_append(cache_root: Path, n_dasu: int, n_fcc: int):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    return subprocess.Popen(
        [sys.executable, "-c", _APPEND_SCRIPT, str(cache_root), str(n_dasu),
         str(n_fcc)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


def _assert_whole(world, config) -> None:
    """A loaded world is complete enough to analyze: unique users, and
    at least the base population (a torn splice would lose users)."""
    dasu_ids = [u.user_id for u in world.dasu.users]
    assert len(set(dasu_ids)) == len(dasu_ids)
    assert world.config == config


def test_concurrent_appends_never_serve_a_torn_world(tmp_path):
    """Two processes append distinct deltas while this one keeps reading.

    Every load during the race must observe either "no entry yet" or
    the complete extended entry — byte-identical to one produced by an
    unraced append — never a partial one.
    """
    reference = WorldCache(tmp_path / "reference")
    build_or_load_world(BASE, cache=reference, ground_truth=False)
    delta_a = AppendDelta(n_dasu_users=16)
    delta_b = AppendDelta(n_fcc_users=8)
    ext_a, ext_b = delta_a.apply(BASE), delta_b.apply(BASE)
    append_world(BASE, delta_a, cache=reference)
    append_world(BASE, delta_b, cache=reference)
    expected = {
        ext: (reference.entry_dir(ext) / "users.csv").read_bytes()
        for ext in (ext_a, ext_b)
    }

    cache = WorldCache(tmp_path / "cache")
    shutil.copytree(
        reference.entry_dir(BASE), cache.entry_dir(BASE), dirs_exist_ok=False
    )
    writers = [
        _spawn_append(cache.root, 16, 0),
        _spawn_append(cache.root, 0, 8),
    ]
    try:
        while any(w.poll() is None for w in writers):
            for ext in (ext_a, ext_b):
                world = cache.load(ext)
                if world is not None:
                    _assert_whole(world, ext)
                    users_csv = cache.entry_dir(ext) / "users.csv"
                    assert users_csv.read_bytes() == expected[ext]
    finally:
        for w in writers:
            stderr = w.communicate()[1]
            assert w.returncode == 0, stderr.decode()
    for ext in (ext_a, ext_b):
        assert (cache.entry_dir(ext) / "users.csv").read_bytes() == expected[ext]


def test_append_killed_mid_publish_then_resumed(tmp_path, monkeypatch):
    """Dying inside the cache publish leaves no entry; a rerun succeeds.

    The kill point is deterministic: the survey write happens after the
    users files inside the staging directory, so the interrupt lands
    with a half-written staging dir on disk and no published entry.
    """
    cache = WorldCache(tmp_path / "cache")
    build_or_load_world(BASE, cache=cache, ground_truth=False)
    delta = AppendDelta(n_dasu_users=16, n_fcc_users=4)
    extended = delta.apply(BASE)

    real_write = cache_mod.write_survey_csv

    def die(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(cache_mod, "write_survey_csv", die)
    with pytest.raises(KeyboardInterrupt):
        append_world(BASE, delta, cache=cache)
    assert cache.load(extended) is None

    monkeypatch.setattr(cache_mod, "write_survey_csv", real_write)
    result = append_world(BASE, delta, cache=cache)
    assert not result.from_cache
    world = cache.load(extended)
    assert world is not None
    _assert_whole(world, extended)


def test_append_process_sigkilled_then_resumed(tmp_path):
    """A real SIGKILL mid-store, then a clean rerun from another process."""
    cache = WorldCache(tmp_path / "cache")
    build_or_load_world(BASE, cache=cache, ground_truth=False)
    delta = AppendDelta(n_dasu_users=16)
    extended = delta.apply(BASE)
    script = textwrap.dedent(
        """
        import os, signal, sys
        from repro.datasets import (
            AppendDelta, WorldCache, WorldConfig, append_world,
        )
        from repro.datasets import cache as cache_mod

        def die(*args, **kwargs):
            os.kill(os.getpid(), signal.SIGKILL)

        cache_mod.write_survey_csv = die
        cache = WorldCache(sys.argv[1])
        base = WorldConfig(
            seed=13, n_dasu_users=64, n_fcc_users=8, days_per_year=1.0,
            sanitize=True,
        )
        append_world(base, AppendDelta(n_dasu_users=16), cache=cache)
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    proc = subprocess.run(
        [sys.executable, "-c", script, str(cache.root)],
        env=env,
        capture_output=True,
    )
    assert proc.returncode == -signal.SIGKILL
    assert cache.load(extended) is None

    result = append_world(BASE, delta, cache=cache)
    assert not result.from_cache
    world = cache.load(extended)
    assert world is not None
    _assert_whole(world, extended)
