"""End-to-end world building.

The world under test is the session-scoped ``tiny_world`` fixture from
``tests/conftest.py`` (built once, shared with the io and fault tests).
"""

import numpy as np
import pytest

from repro.datasets import WorldConfig, build_world
from repro.datasets.records import UserRecord

from ..conftest import TINY_WORLD_CONFIG as TINY


class TestBuildWorld:
    def test_user_counts_near_target(self, tiny_world):
        # Some candidates never subscribe (priced out); most do.
        assert len(tiny_world.dasu.users) >= TINY.n_dasu_users * 0.7
        assert len(tiny_world.fcc.users) >= TINY.n_fcc_users * 0.9

    def test_fcc_users_all_us(self, tiny_world):
        assert all(u.country == "US" for u in tiny_world.fcc.users)
        assert all(u.source == "fcc" for u in tiny_world.fcc.users)
        assert all(u.vantage == "gateway" for u in tiny_world.fcc.users)

    def test_dasu_users_global(self, tiny_world):
        assert len(tiny_world.dasu.countries) > 10

    def test_us_is_largest_dasu_country(self, tiny_world):
        counts = {
            c: len(tiny_world.dasu.by_country(c))
            for c in tiny_world.dasu.countries
        }
        assert max(counts, key=counts.get) == "US"

    def test_ground_truth_covers_all_users(self, tiny_world):
        for user in tiny_world.all_users:
            assert user.user_id in tiny_world.ground_truth

    def test_records_well_formed(self, tiny_world):
        for user in tiny_world.all_users:
            assert isinstance(user, UserRecord)
            assert user.capacity_down_mbps > 0
            assert user.latency_ms > 0
            assert 0 <= user.loss_fraction <= 1
            # Note: the 95th percentile can sit *below* the mean for very
            # bursty series (a BitTorrent binge covering <5% of samples),
            # so we only check both statistics are sane rates.
            assert 0.0 <= user.peak_mbps
            assert 0.0 <= user.mean_mbps <= user.capacity_down_mbps * 1.5
            assert user.price_of_access_usd is not None

    def test_observations_ordered_and_disjoint(self, tiny_world):
        for user in tiny_world.all_users:
            periods = user.periods
            for before, after in zip(periods, periods[1:]):
                assert before.end_day <= after.start_day

    def test_some_users_switch_services(self, tiny_world):
        switchers = [u for u in tiny_world.dasu.users if u.switched_service]
        assert switchers

    def test_switchers_change_network_id(self, tiny_world):
        for user in tiny_world.dasu.users:
            if user.switched_service:
                networks = {o.period.network for o in user.observations}
                assert len(networks) > 1

    def test_market_covariates_attached(self, tiny_world):
        us_users = tiny_world.dasu.by_country("US")
        assert us_users
        for user in us_users:
            assert user.price_of_access_usd < 30.0
            assert user.upgrade_cost_usd_per_mbps is not None

    def test_web_probe_fraction_respected(self, tiny_world):
        probed = [u for u in tiny_world.dasu.users if u.web_latency_ms]
        fraction = len(probed) / len(tiny_world.dasu.users)
        assert fraction == pytest.approx(TINY.web_probe_fraction, abs=0.15)

    def test_determinism(self):
        a = build_world(TINY)
        b = build_world(TINY)
        assert [u.user_id for u in a.all_users] == [u.user_id for u in b.all_users]
        assert [u.peak_mbps for u in a.all_users] == [
            u.peak_mbps for u in b.all_users
        ]
        assert [u.capacity_down_mbps for u in a.all_users] == [
            u.capacity_down_mbps for u in b.all_users
        ]

    def test_different_seed_different_world(self):
        other = build_world(
            WorldConfig(seed=12, n_dasu_users=150, n_fcc_users=40, days_per_year=1.0)
        )
        base = build_world(TINY)
        assert [u.peak_mbps for u in other.all_users] != [
            u.peak_mbps for u in base.all_users
        ]


class TestAblationSwitches:
    def test_no_price_selection_everyone_subscribes(self):
        config = WorldConfig(
            seed=11,
            n_dasu_users=150,
            n_fcc_users=0,
            days_per_year=1.0,
            price_selection_enabled=False,
        )
        world = build_world(config)
        # Without the budget gate, candidate draws never fail.
        assert len(world.dasu.users) >= 140

    def test_no_quality_suppression_raises_bad_link_demand(self):
        base = build_world(TINY)
        ablated = build_world(
            WorldConfig(
                seed=11,
                n_dasu_users=150,
                n_fcc_users=40,
                days_per_year=1.0,
                quality_suppression_enabled=False,
            )
        )

        def poor_quality_demand(world):
            users = [
                u
                for u in world.dasu.users
                if u.latency_ms > 300 or u.loss_fraction > 0.01
            ]
            return np.mean([u.peak_no_bt_mbps for u in users]) if users else None

        suppressed = poor_quality_demand(base)
        free = poor_quality_demand(ablated)
        assert suppressed is not None and free is not None
        assert free > suppressed
