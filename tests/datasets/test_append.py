"""Incremental ingest: ``append_world`` and the ``DeltaLog``.

The contract under test is byte-identity: an appended cache entry must
be indistinguishable from a cold ``build_world`` of the extended
configuration in every persisted dataset file, for any ``jobs`` value —
``trace.jsonl`` excepted (appended entries carry none by design).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.datasets import (
    AppendDelta,
    DeltaLog,
    WorldCache,
    WorldConfig,
    append_world,
    build_or_load_world,
    cache_key,
)
from repro.datasets import append as append_mod
from repro.exceptions import DatasetError

BASE = WorldConfig(
    seed=11, n_dasu_users=80, n_fcc_users=12, days_per_year=1.0, sanitize=True
)
DELTA = AppendDelta(n_dasu_users=24, n_fcc_users=4)

#: Every dataset file a cache entry persists (trace.jsonl is excluded
#: from the byte-identity contract).
ENTRY_FILES = (
    "users.csv",
    "users.npy",
    "users.npy.json",
    "survey.csv",
    "config.json",
    "sanitization.json",
)


def entry_bytes(cache: WorldCache, config: WorldConfig) -> dict[str, bytes]:
    entry = cache.entry_dir(config)
    return {
        name: (entry / name).read_bytes()
        for name in ENTRY_FILES
        if (entry / name).exists()
    }


@pytest.fixture(scope="module")
def cold(tmp_path_factory):
    """The extended world built cold, as the reference bytes."""
    cache = WorldCache(tmp_path_factory.mktemp("cold-cache"))
    build_or_load_world(DELTA.apply(BASE), cache=cache, ground_truth=False)
    return entry_bytes(cache, DELTA.apply(BASE))


def test_append_entry_byte_identical_to_cold_build(tmp_path, cold):
    cache = WorldCache(tmp_path / "cache")
    result = append_world(BASE, DELTA, cache=cache)
    assert not result.from_cache and not result.rebuilt
    assert result.config == DELTA.apply(BASE)
    got = entry_bytes(cache, result.config)
    assert set(got) == set(cold)
    for name in cold:
        assert got[name] == cold[name], f"{name} differs from cold build"


def test_append_jobs_invariant(tmp_path, cold):
    cache = WorldCache(tmp_path / "cache")
    append_world(BASE, DELTA, jobs=2, cache=cache)
    assert entry_bytes(cache, DELTA.apply(BASE)) == cold


def test_stacked_appends_equal_one_cold_build(tmp_path, cold):
    """Two appends land on the same bytes as one cold build of the sum."""
    cache = WorldCache(tmp_path / "cache")
    first = AppendDelta(n_dasu_users=24)
    second = AppendDelta(n_fcc_users=4)
    mid = append_world(BASE, first, cache=cache)
    result = append_world(mid.config, second, cache=cache)
    assert result.config == DELTA.apply(BASE)
    assert entry_bytes(cache, result.config) == cold


def test_empty_delta_returns_base(tmp_path):
    cache = WorldCache(tmp_path / "cache")
    result = append_world(BASE, AppendDelta(), cache=cache)
    assert result.config == BASE
    assert result.world.config == BASE


def test_append_hits_existing_extended_entry(tmp_path):
    cache = WorldCache(tmp_path / "cache")
    append_world(BASE, DELTA, cache=cache)
    again = append_world(BASE, DELTA, cache=cache)
    assert again.from_cache


def test_alabama_fallback_rebuilds(tmp_path, cold, monkeypatch):
    """A non-superset allocation falls back to a full, correct build."""
    monkeypatch.setattr(
        append_mod, "_delta_chunks", lambda *a, **k: None
    )
    cache = WorldCache(tmp_path / "cache")
    result = append_world(BASE, DELTA, cache=cache)
    assert result.rebuilt
    assert entry_bytes(cache, result.config) == cold


def test_trace_bearing_config_rejected(tmp_path):
    traced = dataclasses.replace(BASE, trace_user_fraction=0.5)
    with pytest.raises(DatasetError, match="trace"):
        append_world(traced, DELTA, cache=WorldCache(tmp_path / "cache"))


@pytest.mark.parametrize(
    "kwargs", [{"n_dasu_users": -1}, {"n_fcc_users": -2}, {"n_dasu_users": 1.5}]
)
def test_delta_validation(kwargs):
    with pytest.raises(DatasetError):
        AppendDelta(**kwargs)


def test_delta_payload_roundtrip():
    assert AppendDelta.from_payload(DELTA.payload()) == DELTA


class TestDeltaLog:
    def test_record_replay_tip(self, tmp_path):
        cache = WorldCache(tmp_path / "cache")
        log = DeltaLog(BASE, cache=cache)
        assert log.replay() == []
        assert log.tip_config() == BASE
        first = AppendDelta(n_dasu_users=24)
        second = AppendDelta(n_fcc_users=4)
        log.record(BASE, first)
        log.record(first.apply(BASE), second)
        assert log.replay() == [first, second]
        assert log.tip_config() == second.apply(first.apply(BASE))

    def test_rerecord_is_idempotent(self, tmp_path):
        log = DeltaLog(BASE, cache=WorldCache(tmp_path / "cache"))
        path_a = log.record(BASE, DELTA)
        path_b = log.record(BASE, DELTA)
        assert path_a == path_b
        assert log.replay() == [DELTA]

    def test_fork_resolves_deterministically(self, tmp_path):
        """Concurrent appends onto one parent: smallest record key wins."""
        log = DeltaLog(BASE, cache=WorldCache(tmp_path / "cache"))
        a = AppendDelta(n_dasu_users=8)
        b = AppendDelta(n_dasu_users=16)
        log.record(BASE, a)
        log.record(BASE, b)
        winner_key = min(
            log.record_key(log.base_key, log.base_key, d) for d in (a, b)
        )
        winner = a if log.record_key(
            log.base_key, log.base_key, a
        ) == winner_key else b
        assert log.replay() == [winner]
        # A fresh log over the same directory replays identically.
        fresh = DeltaLog(BASE, cache=log.cache)
        assert fresh.replay() == [winner]

    def test_corrupt_and_foreign_records_skipped(self, tmp_path):
        log = DeltaLog(BASE, cache=WorldCache(tmp_path / "cache"))
        log.record(BASE, DELTA)
        (log.root / "zzzz-corrupt.json").write_text("{not json")
        (log.root / "zzzz-foreign.json").write_text(
            json.dumps({"append_format": 999, "base_key": log.base_key})
        )
        assert log.replay() == [DELTA]

    def test_append_world_records_to_log(self, tmp_path):
        cache = WorldCache(tmp_path / "cache")
        log = DeltaLog(BASE, cache=cache)
        append_world(BASE, DELTA, cache=cache, log=log)
        assert log.tip_config() == DELTA.apply(BASE)
        assert cache_key(log.tip_config()) == cache_key(DELTA.apply(BASE))
