"""Equivalence suite for the columnar data plane.

The columnar representation (``repro.datasets.columns``) is only
admissible because it is *exactly* equivalent to the object path: every
record round-trips value-identically (including the ``None``-ness of
optional fields and NaNs inside hourly profiles), every vectorized
accessor agrees element-wise with its scalar twin, and the builder's
byte-identical ``--jobs`` guarantee extends to the ``users.npy`` shard.
This module locks each of those claims, mostly property-based.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.binning import (
    CASE_STUDY_TIERS,
    LOSS_BINS_FRACTION,
    capacity_class_spec,
    explicit_bins,
)
from repro.core.upgrades import NetworkId, ServicePeriod
from repro.datasets import (
    ROW_DTYPE,
    UserColumns,
    build_world,
    records_to_rows,
    rows_to_records,
    sanitize_columns,
    sanitize_users,
)
from repro.datasets.columns import OPTIONAL_FLAGS, PERIOD_FIELDS, USER_FIELDS
from repro.datasets.io import read_users_npy, write_users_csv, write_users_npy
from repro.datasets.records import PeriodObservation, UserRecord
from repro.exceptions import DatasetError


# ---------------------------------------------------------------------------
# NaN-aware structural equality.
#
# Plain ``==`` on records is NOT usable here: a NaN inside an hourly
# profile makes bit-identical tuples compare unequal (tuple equality
# falls back to float ``==`` for distinct float objects). The columnar
# contract is *value* identity, with NaN == NaN.
# ---------------------------------------------------------------------------


def value_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            value_equal(x, y) for x, y in zip(a, b)
        )
    if dataclasses.is_dataclass(a) and type(a) is type(b):
        return all(
            value_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
            if f.compare
        )
    return a == b


def records_equal(xs, ys) -> bool:
    xs, ys = list(xs), list(ys)
    return len(xs) == len(ys) and all(
        value_equal(x, y) for x, y in zip(xs, ys)
    )


# ---------------------------------------------------------------------------
# Hypothesis strategies over the full record shape.
# ---------------------------------------------------------------------------

_name = st.text(
    alphabet=st.characters(min_codepoint=48, max_codepoint=122),
    min_size=1,
    max_size=8,
)
_finite = st.floats(
    min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
)
_maybe = st.one_of(st.none(), _finite)
_hourly_value = st.one_of(st.just(math.nan), _finite)
_hourly = st.one_of(
    st.none(),
    st.tuples(*([_hourly_value] * 24)),
)


@st.composite
def observation_lists(draw, user_id: str):
    n = draw(st.integers(min_value=1, max_value=3))
    day = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    out = []
    for _ in range(n):
        duration = draw(st.floats(min_value=0.5, max_value=400.0))
        period = ServicePeriod(
            user_id=user_id,
            network=NetworkId(
                isp=draw(_name), prefix=draw(_name), city=draw(_name)
            ),
            start_day=day,
            end_day=day + duration,
            capacity_mbps=draw(_finite),
            mean_mbps=draw(_finite),
            peak_mbps=draw(_finite),
            mean_no_bt_mbps=draw(_finite),
            peak_no_bt_mbps=draw(_finite),
        )
        out.append(
            PeriodObservation(
                period=period,
                latency_ms=draw(_finite),
                loss_fraction=draw(
                    st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
                ),
                capacity_up_mbps=draw(_finite),
                n_ndt_tests=draw(st.integers(0, 50)),
                n_usage_samples=draw(st.integers(0, 10_000)),
                hourly_mean_mbps=draw(_hourly),
                mean_up_mbps=draw(_maybe),
                peak_up_mbps=draw(_maybe),
            )
        )
        day = period.end_day + draw(st.floats(min_value=0.0, max_value=10.0))
    return tuple(out)


@st.composite
def user_records(draw, user_id: str | None = None):
    uid = user_id if user_id is not None else draw(_name)
    return UserRecord(
        user_id=uid,
        source=draw(st.sampled_from(["dasu", "fcc"])),
        country=draw(_name),
        region=draw(_name),
        development=draw(st.sampled_from(["developed", "developing"])),
        vantage=draw(st.sampled_from(["direct", "upnp", "gateway"])),
        technology=draw(_name),
        bt_user=draw(st.booleans()),
        observations=draw(observation_lists(uid)),
        price_of_access_usd=draw(_maybe),
        upgrade_cost_usd_per_mbps=draw(_maybe),
        gdp_per_capita_usd=draw(_finite),
        plan_data_cap_gb=draw(_maybe),
        web_latency_ms=draw(_maybe),
        ndt_2014_latency_ms=draw(_maybe),
    )


@st.composite
def user_record_lists(draw, max_users: int = 5):
    n = draw(st.integers(min_value=0, max_value=max_users))
    ids = draw(
        st.lists(_name, min_size=n, max_size=n, unique=True)
    )
    return [draw(user_records(user_id=uid)) for uid in ids]


# ---------------------------------------------------------------------------
# Round trips.
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @given(user_record_lists())
    @settings(max_examples=60, deadline=None)
    def test_records_rows_records_is_identity(self, users):
        rows = records_to_rows(users)
        assert rows.dtype == ROW_DTYPE
        assert rows.shape == (sum(len(u.observations) for u in users),)
        assert records_equal(rows_to_records(rows), users)

    @given(users=user_record_lists(max_users=3))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_csv_bytes_identical_from_records_and_columns(self, tmp_path, users):
        """Streaming the CSV from columns is byte-for-byte the object path."""
        from_records = tmp_path / "records.csv"
        from_columns = tmp_path / "columns.csv"
        write_users_csv(users, from_records)
        write_users_csv(UserColumns.from_records(users), from_columns)
        assert from_records.read_bytes() == from_columns.read_bytes()

    def test_tiny_world_round_trips(self, tiny_world):
        users = tiny_world.all_users
        assert records_equal(
            rows_to_records(records_to_rows(users)), users
        )

    def test_none_and_nan_hourly_stay_distinct(self):
        base = _one_user("u1", hourly=None)
        with_nan = _one_user("u2", hourly=(math.nan,) * 24)
        rows = records_to_rows([base, with_nan])
        back = rows_to_records(rows)
        assert back[0].current.hourly_mean_mbps is None
        assert back[1].current.hourly_mean_mbps is not None
        assert all(math.isnan(v) for v in back[1].current.hourly_mean_mbps)

    def test_oversized_string_raises_instead_of_truncating(self):
        user = _one_user("u" * 200)
        with pytest.raises(DatasetError, match="columnar width"):
            records_to_rows([user])


def _one_user(
    user_id: str,
    *,
    source: str = "dasu",
    capacity: float = 8.0,
    hourly=None,
    n_obs: int = 1,
) -> UserRecord:
    observations = []
    for i in range(n_obs):
        period = ServicePeriod(
            user_id=user_id,
            network=NetworkId("isp", "pfx", "city"),
            start_day=float(30 * i),
            end_day=float(30 * i + 20),
            capacity_mbps=capacity,
            mean_mbps=1.0,
            peak_mbps=2.0,
            mean_no_bt_mbps=0.8,
            peak_no_bt_mbps=1.5,
        )
        observations.append(
            PeriodObservation(
                period=period,
                latency_ms=40.0,
                loss_fraction=0.001,
                capacity_up_mbps=1.0,
                n_ndt_tests=10,
                n_usage_samples=500,
                hourly_mean_mbps=hourly,
            )
        )
    return UserRecord(
        user_id=user_id,
        source=source,
        country="narnia",
        region="europe",
        development="developed",
        vantage="direct",
        technology="cable",
        bt_user=False,
        observations=tuple(observations),
        price_of_access_usd=30.0,
        upgrade_cost_usd_per_mbps=1.0,
        gdp_per_capita_usd=30_000.0,
    )


# ---------------------------------------------------------------------------
# Schema invariants.
# ---------------------------------------------------------------------------


class TestSchema:
    def test_field_order_is_csv_order_with_flags(self):
        names = list(ROW_DTYPE.names)
        without_flags = [
            n for n in names if n not in OPTIONAL_FLAGS.values()
        ]
        assert without_flags == USER_FIELDS + PERIOD_FIELDS
        for field, flag in OPTIONAL_FLAGS.items():
            assert names.index(flag) == names.index(field) + 1

    def test_wrong_dtype_rejected(self):
        with pytest.raises(DatasetError, match="columnar schema"):
            UserColumns(np.zeros(3, dtype=[("user_id", "S48")]))

    def test_non_contiguous_user_rows_rejected(self):
        rows = records_to_rows(
            [_one_user("a", n_obs=2), _one_user("b")]
        )
        shuffled = rows[[0, 2, 1]]
        with pytest.raises(DatasetError, match="contiguous"):
            UserColumns(shuffled).user_starts


# ---------------------------------------------------------------------------
# Vectorized accessors == scalar accessors.
# ---------------------------------------------------------------------------


class TestAccessors:
    def test_accessors_match_object_path(self, tiny_world):
        users = tiny_world.all_users
        columns = UserColumns.from_records(users)
        assert columns.n_users == len(users)
        assert list(columns.user_ids) == [u.user_id for u in users]
        np.testing.assert_array_equal(
            columns.capacity_down_mbps,
            [u.capacity_down_mbps for u in users],
        )
        np.testing.assert_array_equal(
            columns.latency_ms, [u.latency_ms for u in users]
        )
        np.testing.assert_array_equal(
            columns.loss_fraction, [u.loss_fraction for u in users]
        )
        np.testing.assert_array_equal(
            columns.peak_utilization, [u.peak_utilization for u in users]
        )
        for metric in ("peak", "mean"):
            for include_bt in (False, True):
                np.testing.assert_array_equal(
                    columns.demand(metric, include_bt),
                    [u.demand(metric, include_bt) for u in users],
                )

    def test_optional_columns_read_nan_where_absent(self):
        users = [_one_user("a"), _one_user("b")]
        users[1] = dataclasses.replace(users[1], price_of_access_usd=None)
        columns = UserColumns.from_records(users)
        prices = columns.price_of_access_usd
        assert prices[0] == 30.0
        assert math.isnan(prices[1])

    def test_unknown_demand_metric_raises(self):
        columns = UserColumns.from_records([_one_user("a")])
        with pytest.raises(DatasetError, match="unknown demand metric"):
            columns.demand("median")

    def test_source_mask_and_select(self):
        users = [
            _one_user("a", source="dasu", n_obs=2),
            _one_user("b", source="fcc"),
            _one_user("c", source="dasu"),
        ]
        columns = UserColumns.from_records(users)
        dasu = columns.select_users(columns.source_mask("dasu"))
        assert list(dasu.user_ids) == ["a", "c"]
        assert dasu.n_rows == 3  # "a" keeps both of its period rows
        assert records_equal(dasu.to_records(), [users[0], users[2]])

    def test_select_rejects_wrong_mask_shape(self):
        columns = UserColumns.from_records([_one_user("a")])
        with pytest.raises(DatasetError, match="user mask"):
            columns.select_users(np.ones(5, dtype=bool))

    def test_concat_preserves_order(self):
        a = UserColumns.from_records([_one_user("a")])
        b = UserColumns.from_records([_one_user("b")])
        merged = UserColumns.concat([b, UserColumns.empty(), a])
        assert list(merged.user_ids) == ["b", "a"]


# ---------------------------------------------------------------------------
# index_of_array == index_of, everywhere.
# ---------------------------------------------------------------------------

_SPECS = {
    "capacity-classes": capacity_class_spec(),
    "case-study-tiers": explicit_bins(CASE_STUDY_TIERS),
    "loss-bins": explicit_bins(LOSS_BINS_FRACTION),
    # A spec with a hole between bins: gap values must map to -1.
    "gapped": explicit_bins([(0.0, 1.0), (2.0, 3.0)]),
}


def _scalar_indices(spec, values):
    return [
        -1 if spec.index_of(v) is None else spec.index_of(v) for v in values
    ]


class TestIndexOfArray:
    @pytest.mark.parametrize("name", sorted(_SPECS))
    def test_edges_gaps_and_nonfinite(self, name):
        spec = _SPECS[name]
        edges = [b.low for b in spec] + [b.high for b in spec]
        nudged = [math.nextafter(e, math.inf) for e in edges if math.isfinite(e)]
        values = np.array(
            edges
            + nudged
            + [math.nan, math.inf, -math.inf, -1.0, 0.0, 1.5, 1e12],
            dtype=float,
        )
        np.testing.assert_array_equal(
            spec.index_of_array(values), _scalar_indices(spec, values)
        )

    @pytest.mark.parametrize("name", sorted(_SPECS))
    @given(
        values=st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_on_arbitrary_floats(self, name, values):
        spec = _SPECS[name]
        arr = np.asarray(values, dtype=float)
        np.testing.assert_array_equal(
            spec.index_of_array(arr), _scalar_indices(spec, arr)
        )

    def test_empty_input(self):
        spec = _SPECS["capacity-classes"]
        assert spec.index_of_array(np.array([])).shape == (0,)


# ---------------------------------------------------------------------------
# Streaming columnar sanitize == object sanitize.
# ---------------------------------------------------------------------------


class TestSanitizeColumns:
    def _dirty_users(self):
        users = [_one_user(f"u{i:02d}", n_obs=2) for i in range(6)]
        # A duplicate period (second observation repeats the first).
        dup = _one_user("u90")
        users.append(
            dataclasses.replace(
                dup, observations=dup.observations + dup.observations
            )
        )
        # Too few NDT tests to trust the connection characterization.
        low_ndt = _one_user("u91")
        users.append(
            dataclasses.replace(
                low_ndt,
                observations=tuple(
                    dataclasses.replace(o, n_ndt_tests=0)
                    for o in low_ndt.observations
                ),
            )
        )
        return users

    def test_counter_and_value_identical(self):
        users = self._dirty_users()
        kept_objects, object_report = sanitize_users(users)
        kept_columns, column_report = sanitize_columns(
            UserColumns.from_records(users)
        )
        assert records_equal(kept_columns.to_records(), kept_objects)
        assert object_report.to_payload() == column_report.to_payload()

    def test_empty_input(self):
        kept, report = sanitize_columns(UserColumns.empty())
        assert kept.n_rows == 0
        assert report.periods_in == 0


# ---------------------------------------------------------------------------
# The --jobs byte-identity guarantee extends to the columnar artifacts.
# ---------------------------------------------------------------------------


class TestParallelByteIdentity:
    def test_jobs_4_matches_jobs_1_csv_and_npy(self, tmp_path):
        from repro.datasets import WorldConfig

        config = WorldConfig(
            seed=23, n_dasu_users=60, n_fcc_users=12, days_per_year=1.0
        )
        serial = build_world(config, jobs=1)
        parallel = build_world(config, jobs=4, chunk_size=7)
        for label, world in (("serial", serial), ("parallel", parallel)):
            columns = world.all_columns
            write_users_csv(columns, tmp_path / f"{label}.csv")
            write_users_npy(columns, tmp_path / f"{label}.npy")
        assert (tmp_path / "serial.csv").read_bytes() == (
            tmp_path / "parallel.csv"
        ).read_bytes()
        assert (tmp_path / "serial.npy").read_bytes() == (
            tmp_path / "parallel.npy"
        ).read_bytes()


# ---------------------------------------------------------------------------
# Fault injection: every equivalence above re-pinned on a damaged world.
# ---------------------------------------------------------------------------


class TestFaultedWorldEquivalence:
    """The columnar plane on a faulted + sanitized world.

    Fault injection is where the representation's edge cases occur in
    bulk — NaN-laced hourly profiles, absent market covariates, whole
    periods dropped by cleaning — so the pristine-world round-trip and
    byte-identity claims are re-pinned on ``faulted_world_default``.
    """

    def test_faults_actually_left_scars(self, faulted_world_default):
        # Guard against the equivalences below passing vacuously: the
        # sanitizer must have had real damage to repair or drop, and the
        # surviving records must still carry missing market covariates.
        report = faulted_world_default.sanitization
        assert report is not None
        assert report.total_repaired + report.total_dropped > 0
        users = faulted_world_default.all_users
        assert any(u.upgrade_cost_usd_per_mbps is None for u in users)
        assert any(u.current.hourly_mean_mbps is None for u in users)

    def test_records_round_trip_value_identical(self, faulted_world_default):
        users = faulted_world_default.all_users
        assert records_equal(rows_to_records(records_to_rows(users)), users)

    def test_all_columns_matches_object_path(self, faulted_world_default):
        world = faulted_world_default
        assert records_equal(world.all_columns.to_records(), world.all_users)

    def test_csv_bytes_identical_from_records_and_columns(
        self, tmp_path, faulted_world_default
    ):
        world = faulted_world_default
        from_records = tmp_path / "records.csv"
        from_columns = tmp_path / "columns.csv"
        write_users_csv(world.all_users, from_records)
        write_users_csv(world.all_columns, from_columns)
        assert from_records.read_bytes() == from_columns.read_bytes()

    def test_npy_round_trip_is_byte_stable(
        self, tmp_path, faulted_world_default
    ):
        first = tmp_path / "first.npy"
        second = tmp_path / "second.npy"
        write_users_npy(faulted_world_default.all_columns, first)
        reloaded = read_users_npy(first, mmap=False)
        write_users_npy(reloaded, second)
        assert first.read_bytes() == second.read_bytes()
        assert records_equal(
            reloaded.to_records(), faulted_world_default.all_users
        )
