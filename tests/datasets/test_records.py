"""Analysis-ready records."""

import pytest

from repro.core.upgrades import NetworkId, ServicePeriod
from repro.datasets.records import PeriodObservation, UserRecord, period_year
from repro.exceptions import DatasetError


def make_period(start=10.0, capacity=5.0, prefix="10.0.0.0/24"):
    return ServicePeriod(
        user_id="u1",
        network=NetworkId("ISP", prefix, "City"),
        start_day=start,
        end_day=start + 2.0,
        capacity_mbps=capacity,
        mean_mbps=0.2,
        peak_mbps=1.0,
        mean_no_bt_mbps=0.15,
        peak_no_bt_mbps=0.8,
    )


def make_observation(start=10.0, capacity=5.0, prefix="10.0.0.0/24", latency=50.0):
    return PeriodObservation(
        period=make_period(start, capacity, prefix),
        latency_ms=latency,
        loss_fraction=0.001,
        capacity_up_mbps=1.0,
        n_ndt_tests=10,
        n_usage_samples=2000,
    )


def make_record(observations=None, **overrides):
    if observations is None:
        observations = (make_observation(),)
    kwargs = dict(
        user_id="u1",
        source="dasu",
        country="US",
        region="North America",
        development="developed",
        vantage="direct",
        technology="dsl",
        bt_user=True,
        observations=tuple(observations),
        price_of_access_usd=20.0,
        upgrade_cost_usd_per_mbps=0.6,
        gdp_per_capita_usd=49_797.0,
    )
    kwargs.update(overrides)
    return UserRecord(**kwargs)


class TestPeriodYear:
    def test_epoch(self):
        assert period_year(make_period(start=0.0)) == 2011

    def test_second_year(self):
        assert period_year(make_period(start=400.0)) == 2012

    def test_third_year(self):
        assert period_year(make_period(start=800.0)) == 2013


class TestUserRecord:
    def test_current_is_last(self):
        record = make_record(
            [make_observation(10.0, 2.0), make_observation(400.0, 8.0, "p2")]
        )
        assert record.capacity_down_mbps == 8.0

    def test_demand_accessors(self):
        record = make_record()
        assert record.demand("peak", include_bt=True) == 1.0
        assert record.demand("peak", include_bt=False) == 0.8
        assert record.demand("mean", include_bt=True) == 0.2
        assert record.demand("mean", include_bt=False) == 0.15

    def test_unknown_metric_rejected(self):
        with pytest.raises(DatasetError):
            make_record().demand("max")

    def test_peak_utilization(self):
        # Uses the no-BT peak (0.8 Mbps) over the 2 Mbps capacity.
        record = make_record([make_observation(capacity=2.0)])
        assert record.peak_utilization == pytest.approx(0.4)

    def test_peak_utilization_clipped(self):
        obs = make_observation(capacity=0.5)
        record = make_record([obs])
        assert record.peak_utilization == 1.0

    def test_switched_service_detection(self):
        same = make_record(
            [make_observation(10.0), make_observation(400.0)]
        )
        assert not same.switched_service
        switched = make_record(
            [make_observation(10.0), make_observation(400.0, prefix="p2")]
        )
        assert switched.switched_service

    def test_observation_in_year(self):
        record = make_record(
            [make_observation(10.0, 2.0), make_observation(400.0, 8.0, "p2")]
        )
        assert record.observation_in_year(2011).period.capacity_mbps == 2.0
        assert record.observation_in_year(2012).period.capacity_mbps == 8.0
        assert record.observation_in_year(2013) is None

    def test_unordered_observations_rejected(self):
        with pytest.raises(DatasetError):
            make_record(
                [make_observation(400.0), make_observation(10.0, prefix="p2")]
            )

    def test_empty_observations_rejected(self):
        with pytest.raises(DatasetError):
            make_record([])

    def test_invalid_source_rejected(self):
        with pytest.raises(DatasetError):
            make_record(source="mystery")

    def test_observation_validation(self):
        with pytest.raises(DatasetError):
            PeriodObservation(
                period=make_period(),
                latency_ms=0.0,
                loss_fraction=0.0,
                capacity_up_mbps=1.0,
                n_ndt_tests=1,
                n_usage_samples=10,
            )
