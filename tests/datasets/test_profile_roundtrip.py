"""Round-trip of the hourly-profile CSV encoding.

Regression suite for the ``_encode_profile``/``_decode_profile``
asymmetry: the encoding reserves the empty string for ``None``, so an
empty tuple (or any non-24-length profile) used to encode to ``""`` and
silently decode back as ``None`` — a different value. The fix rejects
every profile that cannot round-trip; the property test pins the
round-trip over everything that can.
"""

from __future__ import annotations

import pytest

from repro.datasets.io import _decode_profile, _encode_profile
from repro.exceptions import DatasetError

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402


def _snap(value: float) -> float:
    """The CSV stores profile values at %.6g precision; round-tripping
    is only claimed for values already on that grid."""
    return float(f"{value:.6g}")


profile_values = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
).map(_snap)

profiles = st.one_of(
    st.none(),
    st.tuples(*([profile_values] * 24)),
)


@given(profiles)
def test_roundtrip(profile):
    assert _decode_profile(_encode_profile(profile)) == profile


@given(st.lists(profile_values, min_size=0, max_size=23).map(tuple))
def test_short_profiles_rejected_not_corrupted(profile):
    """Anything shorter than 24 hours must raise, never encode."""
    with pytest.raises(DatasetError):
        _encode_profile(profile)


def test_none_and_empty_are_distinct():
    assert _encode_profile(None) == ""
    assert _decode_profile("") is None
    with pytest.raises(DatasetError, match="24 entries"):
        _encode_profile(())


@pytest.mark.parametrize("length", [1, 23, 25])
def test_wrong_length_raises(length):
    with pytest.raises(DatasetError, match="24 entries"):
        _encode_profile((0.5,) * length)
    if length != 24:
        with pytest.raises(DatasetError, match="24 entries"):
            _decode_profile(";".join(["0.5"] * length))
