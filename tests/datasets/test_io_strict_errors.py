"""Strict CSV ingest errors name the file, line, and column.

Regression suite for the bare ``ValueError`` that used to escape
``float(...)`` conversions during strict reads: every malformed cell
must surface as a :class:`DatasetError` that tells the operator where
to look, and the lenient path must record the same message instead of
raising.
"""

from __future__ import annotations

import pytest

from repro.datasets.io import (
    read_survey_csv,
    read_users_csv,
    write_survey_csv,
    write_users_csv,
)
from repro.exceptions import DatasetError


def _corrupt(path, column, bad, header_line=1, row_line=2) -> None:
    """Replace ``column``'s value on ``row_line`` with ``bad``."""
    lines = path.read_text().splitlines(keepends=True)
    header = lines[header_line - 1].rstrip("\r\n").split(",")
    index = header.index(column)
    row = lines[row_line - 1].rstrip("\r\n").split(",")
    row[index] = bad
    lines[row_line - 1] = ",".join(row) + "\r\n"
    path.write_text("".join(lines), newline="")


@pytest.fixture()
def users_csv(tiny_world, tmp_path):
    path = tmp_path / "users.csv"
    write_users_csv(tiny_world.all_columns, path)
    return path


@pytest.fixture()
def survey_csv(tiny_world, tmp_path):
    path = tmp_path / "survey.csv"
    write_survey_csv(tiny_world.survey, path)
    return path


@pytest.mark.parametrize(
    "column", ["capacity_mbps", "latency_ms", "n_usage_samples"]
)
def test_users_bad_number_names_location(users_csv, column):
    _corrupt(users_csv, column, "bogus")
    with pytest.raises(DatasetError) as excinfo:
        read_users_csv(users_csv)
    message = str(excinfo.value)
    assert str(users_csv) in message
    assert ":2:" in message
    assert f"column {column!r}" in message
    assert "bogus" in message


def test_users_bad_profile_names_location(users_csv):
    _corrupt(users_csv, "hourly_mean_mbps", "1;2;3")
    with pytest.raises(DatasetError) as excinfo:
        read_users_csv(users_csv)
    message = str(excinfo.value)
    assert ":2:" in message
    assert "column 'hourly_mean_mbps'" in message
    assert "24 entries" in message


def test_users_lenient_records_same_message(users_csv):
    _corrupt(users_csv, "capacity_mbps", "bogus")
    errors: list[str] = []
    users = read_users_csv(users_csv, errors=errors)
    assert users  # the other rows still load
    assert len(errors) == 1
    assert str(users_csv) in errors[0]
    assert "column 'capacity_mbps'" in errors[0]


@pytest.mark.parametrize(
    ("column", "bad", "needle"),
    [
        ("download_mbps", "fast", "column 'download_mbps'"),
        ("technology", "carrier-pigeon", "column 'technology'"),
        ("dedicated", "maybe", "column 'dedicated'"),
    ],
)
def test_survey_bad_cell_names_location(survey_csv, column, bad, needle):
    _corrupt(survey_csv, column, bad)
    with pytest.raises(DatasetError) as excinfo:
        read_survey_csv(survey_csv)
    message = str(excinfo.value)
    assert str(survey_csv) in message
    assert ":2:" in message
    assert needle in message


def test_errors_are_still_value_errors(users_csv):
    """Callers that catch ValueError (the old contract) keep working."""
    _corrupt(users_csv, "capacity_mbps", "bogus")
    with pytest.raises(ValueError):
        read_users_csv(users_csv)
