"""Serial/parallel equivalence of the world builder.

The contract: ``build_world(config, jobs=N, chunk_size=C)`` is
bit-identical for every ``N`` and ``C``, because each household owns a
``SeedSequence([seed, stream, country_index, user_index])``-derived
random stream that no scheduling decision can perturb. These tests pin
that contract at the strongest observable level — the bytes of the
persisted datasets.
"""

from __future__ import annotations

import pytest

from repro.datasets import WorldConfig, build_world
from repro.datasets.builder import _plan_chunks, _BuildContext
from repro.datasets.io import write_survey_csv, write_users_csv
from repro.exceptions import DatasetError, ReproError

SMALL = dict(n_dasu_users=40, n_fcc_users=10, days_per_year=1.0)


def _world_bytes(world, tmp_path, tag):
    users = tmp_path / f"{tag}-users.csv"
    survey = tmp_path / f"{tag}-survey.csv"
    write_users_csv(world.all_users, users)
    write_survey_csv(world.survey, survey)
    return users.read_bytes(), survey.read_bytes()


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("seed", [3, 97])
    def test_jobs_4_byte_identical_to_serial(self, tmp_path, seed):
        config = WorldConfig(seed=seed, **SMALL)
        serial = build_world(config, jobs=1)
        parallel = build_world(config, jobs=4)
        s_users, s_survey = _world_bytes(serial, tmp_path, f"s{seed}")
        p_users, p_survey = _world_bytes(parallel, tmp_path, f"p{seed}")
        assert s_users == p_users
        assert s_survey == p_survey

    def test_chunk_size_does_not_matter(self, tmp_path):
        config = WorldConfig(seed=5, **SMALL)
        reference = build_world(config, jobs=1)
        r_users, _ = _world_bytes(reference, tmp_path, "ref")
        for chunk_size in (3, 17, 500):
            world = build_world(config, jobs=1, chunk_size=chunk_size)
            users, _ = _world_bytes(world, tmp_path, f"c{chunk_size}")
            assert users == r_users, f"chunk_size={chunk_size} diverged"

    def test_parallel_chunked_matches_serial(self, tmp_path):
        config = WorldConfig(seed=5, **SMALL)
        reference = build_world(config, jobs=1)
        world = build_world(config, jobs=4, chunk_size=3)
        r_users, _ = _world_bytes(reference, tmp_path, "ref2")
        users, _ = _world_bytes(world, tmp_path, "par2")
        assert users == r_users

    def test_ground_truth_and_traces_identical(self):
        config = WorldConfig(seed=5, trace_user_fraction=0.5, **SMALL)
        serial = build_world(config, jobs=1)
        parallel = build_world(config, jobs=3)
        assert serial.ground_truth == parallel.ground_truth
        assert set(serial.traces) == set(parallel.traces)
        for user_id, serial_traces in serial.traces.items():
            parallel_traces = parallel.traces[user_id]
            assert len(serial_traces) == len(parallel_traces)
            for a, b in zip(serial_traces, parallel_traces):
                assert (a.rates_mbps == b.rates_mbps).all()


class TestBuildLedger:
    """The run ledger is part of the determinism contract: its serialized
    form may not depend on worker count or chunk size."""

    def test_ledger_byte_identical_across_jobs(self):
        config = WorldConfig(seed=7, sanitize=True, **SMALL)
        serial = build_world(config, jobs=1)
        parallel = build_world(config, jobs=4)
        assert serial.ledger is not None and parallel.ledger is not None
        assert serial.ledger.to_jsonl() == parallel.ledger.to_jsonl()

    def test_counters_invariant_across_chunk_sizes(self):
        # Chunk size reshapes the *plan* (``build.chunks`` and the
        # per-chunk spans follow it), but every substantive counter —
        # households, users, samples, faults — must not move.
        config = WorldConfig(seed=7, **SMALL)
        reference = build_world(config, jobs=1).ledger.counters
        for chunk_size in (3, 17, 500):
            counters = build_world(
                config, jobs=2, chunk_size=chunk_size
            ).ledger.counters
            for name in set(reference) | set(counters):
                if name == "build.chunks":
                    continue
                assert counters.get(name) == reference.get(name), (
                    f"chunk_size={chunk_size}: {name} diverged"
                )

    def test_sanitize_counters_match_report_exactly(self):
        # Acceptance criterion: every sanitization-rule count in the
        # trace equals the persisted SanitizationReport, number for
        # number — the ledger is a bridge, not a second implementation.
        config = WorldConfig(seed=7, sanitize=True, **SMALL)
        world = build_world(config, jobs=3)
        assert world.sanitization is not None
        expected = world.sanitization.ledger_counters()
        assert expected  # the bridge must actually carry counters
        for name, value in expected.items():
            assert world.ledger.counters[name] == value, name

    def test_user_accounting_adds_up(self):
        config = WorldConfig(seed=7, **SMALL)
        world = build_world(config, jobs=2)
        counters = world.ledger.counters
        assert counters["build.users.dasu"] == len(world.dasu.users)
        assert counters["build.users.fcc"] == len(world.fcc.users)
        assert counters["build.households.simulated"] >= (
            counters["build.users.dasu"] + counters["build.users.fcc"]
        )

    def test_caller_ledger_is_used(self):
        from repro.obs.ledger import RunLedger

        ledger = RunLedger()
        world = build_world(WorldConfig(seed=7, **SMALL), jobs=2, ledger=ledger)
        assert world.ledger is ledger
        assert ledger.counters["build.chunks"] > 0


class TestShardPlanning:
    def test_chunks_cover_every_user_exactly_once(self):
        config = WorldConfig(seed=5, n_dasu_users=100, n_fcc_users=30,
                             days_per_year=1.0)
        context = _BuildContext(config)
        specs = _plan_chunks(config, context.profiles, chunk_size=7)
        dasu_total = sum(s.count for s in specs if s.source == "dasu")
        fcc_total = sum(s.count for s in specs if s.source == "fcc")
        assert dasu_total == config.n_dasu_users
        assert fcc_total == config.n_fcc_users
        seen = set()
        for spec in specs:
            for index in range(spec.start, spec.start + spec.count):
                key = (spec.source, spec.country, index)
                assert key not in seen
                seen.add(key)

    def test_fcc_panel_requires_us_market(self):
        config = WorldConfig(
            seed=5, n_dasu_users=0, n_fcc_users=10, days_per_year=1.0
        )
        context = _BuildContext(config)
        non_us = tuple(p for p in context.profiles if p.name != "US")
        with pytest.raises(DatasetError):
            _plan_chunks(config, non_us, chunk_size=8)


class TestArgumentValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ReproError):
            build_world(WorldConfig(seed=5, **SMALL), jobs=0)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ReproError):
            build_world(WorldConfig(seed=5, **SMALL), jobs=-4)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(DatasetError):
            build_world(WorldConfig(seed=5, **SMALL), chunk_size=0)
