"""QoE suppression and demand processes."""

import numpy as np
import pytest

from repro.behavior.demand import DemandProcess, qoe_multiplier
from repro.behavior.population import PopulationModel
from repro.exceptions import DatasetError
from repro.market.countries import ANCHOR_PROFILES
from repro.market.plans import PlanTechnology
from repro.network.link import AccessLink
from repro.network.path import NetworkPath


class TestQoeMultiplier:
    def test_clean_fast_connection_unsuppressed(self):
        assert qoe_multiplier(30.0, 0.0001) == pytest.approx(1.0, abs=0.02)

    def test_latency_below_knee_unaffected(self):
        assert qoe_multiplier(140.0, 0.0) == 1.0

    def test_long_latency_suppresses(self):
        # Paper: above ~500 ms usage is clearly lower.
        assert qoe_multiplier(600.0, 0.0) < 0.75

    def test_latency_monotone(self):
        values = [qoe_multiplier(r, 0.0) for r in (100, 300, 600, 1200)]
        assert values == sorted(values, reverse=True)

    def test_loss_below_knee_unaffected(self):
        assert qoe_multiplier(50.0, 0.0005) == 1.0

    def test_high_loss_suppresses_strongly(self):
        # Paper: above 1% loss, usage is significantly lower.
        assert qoe_multiplier(50.0, 0.03) < 0.4

    def test_loss_monotone(self):
        values = [qoe_multiplier(50.0, p) for p in (0.0005, 0.003, 0.01, 0.05)]
        assert values == sorted(values, reverse=True)

    def test_effects_multiply(self):
        combined = qoe_multiplier(600.0, 0.02)
        assert combined == pytest.approx(
            qoe_multiplier(600.0, 0.0) * qoe_multiplier(1.0, 0.02), rel=0.05
        )

    def test_invalid_rtt(self):
        with pytest.raises(DatasetError):
            qoe_multiplier(0.0, 0.01)

    def test_invalid_loss(self):
        with pytest.raises(DatasetError):
            qoe_multiplier(50.0, 1.0)


def make_path(rtt=20.0, loss=0.0002, download=10.0, tech=PlanTechnology.CABLE):
    link = AccessLink(download, 1.0, tech, rtt, loss)
    return NetworkPath(link, 20.0, 2.0, 0.0)


def make_user(seed=0):
    rng = np.random.default_rng(seed)
    eco = ANCHOR_PROFILES[0].economy()  # US
    return PopulationModel().sample_user("u0", eco, rng)


class TestDemandProcess:
    def test_for_user_fields(self):
        user = make_user()
        process = DemandProcess.for_user(user, make_path())
        assert process.offered_peak_mbps > 0
        assert process.ceiling_mbps > 0
        assert process.bt_user == user.bt_user

    def test_clean_path_offers_full_need(self):
        user = make_user()
        process = DemandProcess.for_user(user, make_path())
        assert process.offered_peak_mbps == pytest.approx(
            user.need_mbps, rel=0.05
        )

    def test_bad_path_suppresses_offered_load(self):
        user = make_user()
        bad = make_path(rtt=600.0, loss=0.03, tech=PlanTechnology.WIRELESS)
        process = DemandProcess.for_user(user, bad)
        assert process.offered_peak_mbps < 0.6 * user.need_mbps

    def test_ceiling_bounded_by_line_rate(self):
        user = make_user()
        process = DemandProcess.for_user(user, make_path(download=5.0))
        assert process.ceiling_mbps <= 5.0

    def test_invalid_process_rejected(self):
        with pytest.raises(DatasetError):
            DemandProcess(
                offered_peak_mbps=0.0,
                ceiling_mbps=1.0,
                activity_level=0.5,
                burstiness_sigma=1.0,
                rate_median_share=0.3,
                bt_user=False,
            )
