"""Yearly service reviews."""

import numpy as np
import pytest

from repro.behavior.choice import ChoiceModel
from repro.behavior.population import PopulationModel
from repro.behavior.upgrades import UpgradePolicy
from repro.exceptions import DatasetError
from repro.market.countries import ANCHOR_PROFILES
from repro.market.survey import generate_market


def us_setup(seed=0):
    profile = [p for p in ANCHOR_PROFILES if p.name == "US"][0]
    rng = np.random.default_rng(seed)
    market = generate_market(profile, rng)
    user = PopulationModel().sample_user("u0", profile.economy(), rng)
    policy = UpgradePolicy(ChoiceModel(), move_probability=0.0)
    return user, market, policy, rng


class TestUpgradePolicy:
    def test_content_user_stays(self):
        user, market, policy, rng = us_setup()
        decision = policy.review(user, market, 10.0, 0.1, rng)
        assert not decision.switched
        assert decision.reason == "content"

    def test_saturated_user_reconsiders(self):
        user, market, policy, rng = us_setup()
        decision = policy.review(user, market, 0.5, 1.0, rng)
        # A saturated 0.5 Mbps US line: any normal need justifies a jump.
        if user.need_mbps > 0.5:
            assert decision.switched

    def test_growth_triggers_review(self):
        user, market, policy, rng = us_setup(seed=4)
        grown = user
        for _ in range(2):
            grown = grown.grown() if grown.yearly_need_growth > 1 else grown
        decision = policy.review(
            grown, market, 1.0, 0.2, rng, need_grew=True
        )
        # With low utilization and no growth the user would stay; the
        # growth flag forces the re-choice.
        assert decision.reason != "content"

    def test_small_changes_not_switches(self):
        user, market, policy, rng = us_setup()
        # A user whose optimum is their current plan does not churn.
        choice = ChoiceModel().choose(user, market, np.random.default_rng(1))
        assert choice is not None
        current = choice.plan.download_mbps
        switches = 0
        for i in range(30):
            decision = policy.review(
                user, market, current, 1.0, np.random.default_rng(i)
            )
            if decision.switched:
                assert (
                    decision.choice.plan.download_mbps >= 1.25 * current
                )
                switches += 1
        # Occasional noise-driven jumps are allowed but not the rule.
        assert switches < 15

    def test_moves_force_new_line_any_speed(self):
        user, market, policy, rng = us_setup()
        mover = UpgradePolicy(ChoiceModel(), move_probability=1.0)
        decision = mover.review(user, market, 10.0, 0.0, rng)
        assert decision.switched
        assert decision.reason == "moved"

    def test_unaffordable_market_blocks_upgrade(self):
        profile = [p for p in ANCHOR_PROFILES if p.name == "Botswana"][0]
        rng = np.random.default_rng(0)
        market = generate_market(profile, rng)
        policy = UpgradePolicy(ChoiceModel(), move_probability=0.0)
        # Find a candidate too poor for any Botswana plan.
        model = PopulationModel()
        cm = ChoiceModel()
        for i in range(300):
            user = model.sample_user(f"u{i}", profile.economy(), rng)
            if cm.choose(user, market, rng) is None:
                decision = policy.review(user, market, 0.25, 1.0, rng)
                assert not decision.switched
                assert decision.reason == "nothing affordable"
                return
        pytest.fail("no priced-out candidate found")

    def test_invalid_inputs(self):
        user, market, policy, rng = us_setup()
        with pytest.raises(DatasetError):
            policy.review(user, market, 0.0, 0.5, rng)
        with pytest.raises(DatasetError):
            policy.review(user, market, 1.0, 1.5, rng)

    def test_invalid_policy_parameters(self):
        with pytest.raises(DatasetError):
            UpgradePolicy(ChoiceModel(), move_probability=2.0)
        with pytest.raises(DatasetError):
            UpgradePolicy(ChoiceModel(), min_change_ratio=1.0)
