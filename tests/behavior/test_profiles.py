"""Application profiles."""

import numpy as np
import pytest

from repro.behavior.profiles import APPLICATION_PROFILES, ApplicationProfile, sample_profile
from repro.exceptions import DatasetError


class TestProfiles:
    def test_shares_sum_to_one(self):
        assert sum(share for _, share in APPLICATION_PROFILES) == pytest.approx(1.0)

    def test_all_profiles_valid(self):
        for profile, share in APPLICATION_PROFILES:
            assert 0 < profile.activity_level <= 1
            assert 0 < profile.rate_median_share <= 1
            assert 0 <= profile.bt_propensity <= 1
            assert share > 0

    def test_downloader_has_highest_bt_propensity(self):
        by_name = {p.name: p for p, _ in APPLICATION_PROFILES}
        assert by_name["downloader"].bt_propensity == max(
            p.bt_propensity for p, _ in APPLICATION_PROFILES
        )

    def test_streamer_sustains_higher_rates_than_browser(self):
        by_name = {p.name: p for p, _ in APPLICATION_PROFILES}
        assert (
            by_name["streamer"].rate_median_share
            > by_name["browser"].rate_median_share
        )

    def test_invalid_activity_rejected(self):
        with pytest.raises(DatasetError):
            ApplicationProfile("x", 0.0, 1.0, 0.3, 0.5)

    def test_invalid_burstiness_rejected(self):
        with pytest.raises(DatasetError):
            ApplicationProfile("x", 0.5, 0.0, 0.3, 0.5)

    def test_sampling_follows_mix(self):
        rng = np.random.default_rng(0)
        names = [sample_profile(rng).name for _ in range(2000)]
        browser_share = names.count("browser") / len(names)
        assert browser_share == pytest.approx(0.40, abs=0.05)

    def test_sampling_deterministic(self):
        a = sample_profile(np.random.default_rng(3)).name
        b = sample_profile(np.random.default_rng(3)).name
        assert a == b
