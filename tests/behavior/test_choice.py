"""Plan choice: need, want, can afford."""

import numpy as np
import pytest

from repro.behavior.choice import ChoiceModel
from repro.behavior.population import PopulationModel
from repro.exceptions import DatasetError
from repro.market.countries import ANCHOR_PROFILES
from repro.market.survey import generate_market


def profile_named(name):
    return [p for p in ANCHOR_PROFILES if p.name == name][0]


def market_for(name, seed=1):
    return generate_market(profile_named(name), np.random.default_rng(seed))


def users_for(name, n=400, seed=0, model=None):
    model = model or PopulationModel()
    rng = np.random.default_rng(seed)
    eco = profile_named(name).economy()
    return [model.sample_user(f"u{i}", eco, rng) for i in range(n)], rng


class TestPlanValue:
    def test_increasing_in_capacity(self):
        cm = ChoiceModel()
        assert cm.plan_value(2.0, 8.0) > cm.plan_value(2.0, 2.0)

    def test_saturates(self):
        cm = ChoiceModel()
        gain_low = cm.plan_value(2.0, 4.0) - cm.plan_value(2.0, 2.0)
        gain_high = cm.plan_value(2.0, 100.0) - cm.plan_value(2.0, 98.0)
        assert gain_high < gain_low / 10

    def test_scales_with_need(self):
        cm = ChoiceModel()
        assert cm.plan_value(8.0, 100.0) > cm.plan_value(1.0, 100.0)

    def test_invalid_inputs(self):
        with pytest.raises(DatasetError):
            ChoiceModel().plan_value(0.0, 1.0)

    def test_invalid_model(self):
        with pytest.raises(DatasetError):
            ChoiceModel(value_scale=0.0)
        with pytest.raises(DatasetError):
            ChoiceModel(plan_noise_usd=-1.0)


class TestChoose:
    def test_unaffordable_market_yields_none(self):
        market = market_for("Botswana")
        cm = ChoiceModel()
        users, rng = users_for("Botswana", n=600)
        choices = [cm.choose(u, market, rng) for u in users]
        # Botswana access is ~8% of monthly income: most candidates are
        # priced out entirely.
        assert choices.count(None) > len(choices) * 0.3

    def test_us_everyone_subscribes(self):
        market = market_for("US")
        cm = ChoiceModel()
        users, rng = users_for("US", n=300)
        choices = [cm.choose(u, market, rng) for u in users]
        assert choices.count(None) < len(choices) * 0.1

    def test_higher_need_buys_more_capacity(self):
        market = market_for("US")
        cm = ChoiceModel()
        users, rng = users_for("US", n=800)
        chosen = [(u.need_mbps, cm.choose(u, market, rng)) for u in users]
        low = [c.plan.download_mbps for n, c in chosen if c and n < 1.0]
        high = [c.plan.download_mbps for n, c in chosen if c and n > 8.0]
        assert np.median(high) > 2 * np.median(low)

    def test_cheap_slope_overprovisions(self):
        # Cheap upgrades (Japan) make households buy far more headroom
        # over their need than expensive upgrades do (US) — the
        # mechanism behind Japan's ~10% peak utilization in Fig. 8d.
        cm = ChoiceModel()
        headroom = {}
        for name in ("US", "Japan"):
            market = market_for(name)
            users, rng = users_for(name, n=800)
            ratios = []
            for user in users:
                choice = cm.choose(user, market, rng)
                if choice is not None:
                    ratios.append(choice.plan.download_mbps / user.need_mbps)
            headroom[name] = float(np.median(ratios))
        assert headroom["Japan"] > 1.5 * headroom["US"]

    def test_promoted_tier_creates_cluster(self):
        profile = profile_named("Saudi Arabia")
        market = market_for("Saudi Arabia")
        cm = ChoiceModel()
        users, rng = users_for("Saudi Arabia", n=600)
        chosen = [
            cm.choose(
                u,
                market,
                rng,
                promoted_tier_mbps=profile.promoted_tier_mbps,
                promoted_adoption=profile.promoted_adoption,
            )
            for u in users
        ]
        taken = [c for c in chosen if c]
        promoted = [c for c in taken if c.took_promoted_tier]
        assert len(promoted) > len(taken) * 0.15

    def test_dedicated_plans_never_chosen(self):
        market = market_for("Afghanistan", seed=3)
        cm = ChoiceModel()
        users, rng = users_for("Afghanistan", n=400)
        for user in users:
            choice = cm.choose(user, market, rng)
            if choice is not None:
                assert not choice.plan.dedicated

    def test_budget_respected(self):
        market = market_for("US")
        cm = ChoiceModel()
        users, rng = users_for("US", n=300)
        for user in users:
            choice = cm.choose(user, market, rng)
            if choice is not None:
                assert choice.plan.monthly_price_usd_ppp <= user.budget_usd_ppp
