"""Latent user population."""

import numpy as np
import pytest

from repro.behavior.population import LatentUser, PopulationModel
from repro.exceptions import DatasetError
from repro.market.currency import USD
from repro.market.economy import DevelopmentLevel, Economy, Region


def economy(gdp=49_797.0):
    return Economy(
        country="Testland",
        region=Region.NORTH_AMERICA,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp_usd=gdp,
        currency=USD,
        internet_penetration=0.8,
    )


def sample_many(model, n=2000, gdp=49_797.0, seed=0, bt_population=True):
    rng = np.random.default_rng(seed)
    eco = economy(gdp)
    return [
        model.sample_user(f"u{i}", eco, rng, bt_population=bt_population)
        for i in range(n)
    ]


class TestPopulationModel:
    def test_need_distribution_median(self):
        model = PopulationModel()
        users = sample_many(model)
        median = np.median([u.need_mbps for u in users])
        assert median == pytest.approx(model.need_median_mbps, rel=0.15)

    def test_need_is_heavy_tailed(self):
        users = sample_many(PopulationModel())
        needs = np.array([u.need_mbps for u in users])
        assert np.percentile(needs, 95) > 5 * np.median(needs)

    def test_budget_scales_with_income(self):
        rich = sample_many(PopulationModel(), gdp=50_000.0)
        poor = sample_many(PopulationModel(), gdp=2_000.0)
        assert np.median([u.budget_usd_ppp for u in rich]) > 10 * np.median(
            [u.budget_usd_ppp for u in poor]
        )

    def test_budget_floor(self):
        users = sample_many(PopulationModel(), gdp=100.0)
        assert min(u.budget_usd_ppp for u in users) >= 3.0

    def test_bt_population_flag(self):
        p2p = sample_many(PopulationModel(), n=1000, bt_population=True)
        panel = sample_many(PopulationModel(), n=1000, bt_population=False)
        bt_p2p = np.mean([u.bt_user for u in p2p])
        bt_panel = np.mean([u.bt_user for u in panel])
        assert bt_p2p > 0.5
        assert bt_panel < 0.25

    def test_growers_are_a_minority(self):
        model = PopulationModel()
        users = sample_many(model)
        growers = [u for u in users if u.yearly_need_growth > 1.0]
        share = len(growers) / len(users)
        assert share == pytest.approx(model.grower_fraction, abs=0.05)

    def test_growth_factor_substantial_for_growers(self):
        users = sample_many(PopulationModel())
        factors = [u.yearly_need_growth for u in users if u.yearly_need_growth > 1.0]
        assert np.median(factors) > 1.4

    def test_activity_scale_bounded_away_from_zero(self):
        users = sample_many(PopulationModel())
        assert min(u.activity_scale for u in users) >= 0.7

    def test_grown_multiplies_need(self):
        users = sample_many(PopulationModel(), n=200)
        grower = next(u for u in users if u.yearly_need_growth > 1.0)
        grown = grower.grown()
        assert grown.need_mbps == pytest.approx(
            grower.need_mbps * grower.yearly_need_growth
        )

    def test_grown_negative_years_rejected(self):
        users = sample_many(PopulationModel(), n=10)
        with pytest.raises(DatasetError):
            users[0].grown(-1)

    def test_invalid_model_parameters(self):
        with pytest.raises(DatasetError):
            PopulationModel(need_median_mbps=0.0)
        with pytest.raises(DatasetError):
            PopulationModel(budget_share_median=0.0)
        with pytest.raises(DatasetError):
            PopulationModel(grower_fraction=1.5)

    def test_latent_user_validation(self):
        users = sample_many(PopulationModel(), n=1)
        user = users[0]
        with pytest.raises(DatasetError):
            LatentUser(
                user_id="x",
                country="Testland",
                need_mbps=0.0,
                budget_usd_ppp=user.budget_usd_ppp,
                profile=user.profile,
                bt_user=False,
                taste_sigma=0.5,
                activity_scale=1.0,
                yearly_need_growth=1.0,
                upgrade_threshold=0.5,
            )

    def test_deterministic(self):
        a = sample_many(PopulationModel(), n=5, seed=9)
        b = sample_many(PopulationModel(), n=5, seed=9)
        assert [u.need_mbps for u in a] == [u.need_mbps for u in b]
