"""The ``repro sweep`` command-line surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

ARGS = ["--users", "60", "--fcc", "10", "--days", "1.0", "--seed", "3"]


@pytest.fixture()
def grid_file(tmp_path):
    path = tmp_path / "grid.json"
    path.write_text(
        json.dumps(
            {
                "name": "cli-grid",
                "scenarios": [
                    {"name": "base"},
                    {
                        "name": "no-growth",
                        "overrides": {"demand_growth_enabled": False},
                    },
                ],
            }
        )
    )
    return path


class TestParser:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.grid is None
        assert args.seeds is None
        assert args.experiments is None
        assert args.out is None
        assert args.trace is False
        assert args.jobs == 1
        assert args.no_cache is False


class TestSweepCommand:
    def test_baseline_sweep_to_stdout(self, tmp_path, capsys):
        rc = main(
            ["sweep", "--seeds", "2", "--experiments", "table1",
             "--cache-dir", str(tmp_path / "cache")] + ARGS
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "sweeping 1 scenarios x 2 seeds" in captured.out
        assert "scenario sweep: seeds-only" in captured.out
        assert "seeds (2): 3, 4" in captured.out
        assert "table1/" in captured.out
        # Cache accounting stays on stderr, never in the report.
        assert "worlds from cache" in captured.err
        assert "worlds from cache" not in captured.out

    def test_grid_file_drives_scenarios(self, grid_file, tmp_path, capsys):
        rc = main(
            ["sweep", "--grid", str(grid_file), "--seeds", "1",
             "--experiments", "table1",
             "--cache-dir", str(tmp_path / "cache")] + ARGS
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "scenario sweep: cli-grid" in out
        assert "base, no-growth" in out

    def test_out_writes_report_and_payload(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        rc = main(
            ["sweep", "--seeds", "1", "--experiments", "table1",
             "--out", str(out_dir),
             "--cache-dir", str(tmp_path / "cache")] + ARGS
        )
        assert rc == 0
        assert "sweep report written" in capsys.readouterr().out
        report = (out_dir / "report.txt").read_text()
        assert "scenario sweep" in report
        payload = json.loads((out_dir / "sweep.json").read_text())
        assert payload["seeds"] == [3]
        assert payload["experiments"] == ["table1"]
        assert payload["cells"][0]["seed"] == 3

    def test_trace_writes_ledger_and_manifest(self, tmp_path):
        out_dir = tmp_path / "sweep"
        rc = main(
            ["sweep", "--seeds", "1", "--experiments", "table1",
             "--out", str(out_dir), "--trace",
             "--cache-dir", str(tmp_path / "cache")] + ARGS
        )
        assert rc == 0
        trace = (out_dir / "trace.jsonl").read_text()
        counters = {
            e["name"]: e["value"]
            for e in map(json.loads, trace.splitlines())
            if e["type"] == "counter"
        }
        assert counters["sweep.cells"] == 1
        assert counters["sweep.verdicts.table1.rows"] >= 1
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["command"] == "sweep"
        assert manifest["seed"] == 3
        assert manifest["sweep_seeds"] == [3]
        assert manifest["experiments"] == ["table1"]
        assert manifest["grid"]["name"] == "seeds-only"

    def test_all_artifacts_byte_identical_across_jobs(self, grid_file, tmp_path):
        for jobs in ("1", "2"):
            rc = main(
                ["sweep", "--grid", str(grid_file), "--seeds", "2",
                 "--experiments", "table1,table8",
                 "--out", str(tmp_path / f"j{jobs}"), "--trace",
                 "--jobs", jobs,
                 "--cache-dir", str(tmp_path / f"cache{jobs}")] + ARGS
            )
            assert rc == 0
        for name in ("report.txt", "sweep.json", "trace.jsonl", "manifest.json"):
            assert (
                (tmp_path / "j1" / name).read_bytes()
                == (tmp_path / "j2" / name).read_bytes()
            ), name

    def test_warm_rerun_byte_identical(self, tmp_path):
        args = [
            "sweep", "--seeds", "2", "--experiments", "table1",
            "--trace", "--cache-dir", str(tmp_path / "cache"),
        ] + ARGS
        assert main(args + ["--out", str(tmp_path / "cold")]) == 0
        assert main(args + ["--out", str(tmp_path / "warm")]) == 0
        for name in ("report.txt", "sweep.json", "trace.jsonl", "manifest.json"):
            assert (
                (tmp_path / "cold" / name).read_bytes()
                == (tmp_path / "warm" / name).read_bytes()
            ), name


class TestSweepErrors:
    def test_trace_without_out_rejected(self, capsys):
        rc = main(["sweep", "--trace"] + ARGS)
        assert rc == 2
        assert "needs --out" in capsys.readouterr().err

    def test_nonpositive_seed_count_rejected(self, capsys):
        rc = main(["sweep", "--seeds", "0"] + ARGS)
        assert rc == 2
        assert "positive replicate count" in capsys.readouterr().err

    def test_unknown_experiment_rejected(self, capsys):
        rc = main(["sweep", "--experiments", "table9"] + ARGS)
        assert rc == 2
        assert "unknown sweep experiment" in capsys.readouterr().err

    def test_missing_grid_file_rejected(self, tmp_path, capsys):
        rc = main(
            ["sweep", "--grid", str(tmp_path / "absent.json")] + ARGS
        )
        assert rc == 2
        assert "cannot read grid file" in capsys.readouterr().err

    def test_bad_jobs_rejected(self, capsys):
        rc = main(["sweep", "--jobs", "0"] + ARGS)
        assert rc == 2
        assert "positive integer" in capsys.readouterr().err
