"""The verdict-stability report (:mod:`repro.sweep.report`)."""

from __future__ import annotations

import json

import pytest

from repro.core.stats import wilson_interval
from repro.datasets import WorldConfig
from repro.sweep import (
    CellResult,
    Scenario,
    ScenarioGrid,
    SweepResult,
    VerdictRow,
    format_sweep_report,
    stability_matrix,
    sweep_payload,
)

BASE = WorldConfig(seed=1, n_dasu_users=50, n_fcc_users=0, days_per_year=1.0)


def _verdict(experiment, row, fraction, holds):
    return VerdictRow(
        experiment=experiment,
        row=row,
        fraction_holds=fraction,
        n_pairs=40,
        p_value=0.01 if holds else 0.4,
        significant=holds,
        rejects_null=holds,
    )


def _cell(scenario, seed, verdicts, skipped=()):
    return CellResult(
        scenario=scenario,
        seed=seed,
        n_dasu_users=48,
        n_fcc_users=0,
        headline=(
            ("median_capacity_mbps", 8.0),
            ("median_peak_mbps", 0.7),
            ("mean_peak_utilization", 0.25),
        ),
        verdicts=tuple(verdicts),
        skipped=tuple(skipped),
    )


@pytest.fixture()
def synthetic_sweep() -> SweepResult:
    """Two scenarios x two seeds with hand-picked verdicts."""
    grid = ScenarioGrid(
        scenarios=(Scenario(name="baseline"), Scenario(name="variant")),
        name="synthetic",
    )
    cells = (
        _cell("baseline", 1, [
            _verdict("table1", "Average usage", 0.70, True),
            _verdict("table8", "high loss", 0.65, True),
        ]),
        _cell("baseline", 2, [
            _verdict("table1", "Average usage", 0.60, True),
            _verdict("table8", "high loss", 0.55, False),
        ]),
        _cell("variant", 1, [
            _verdict("table1", "Average usage", 0.50, False),
        ], skipped=["table8"]),
        _cell("variant", 2, [
            _verdict("table1", "Average usage", 0.45, False),
        ], skipped=["table8"]),
    )
    return SweepResult(
        grid=grid,
        base_config=BASE,
        seeds=(1, 2),
        experiments=("table1", "table8"),
        cells=cells,
        n_cache_hits=3,
    )


class TestStabilityMatrix:
    def test_aggregates_per_row(self, synthetic_sweep):
        table1, table8 = stability_matrix(synthetic_sweep)
        assert (table1.experiment, table1.row) == ("table1", "Average usage")
        assert table1.n_cells == 4
        assert table1.n_holds == 2
        assert table1.stability == pytest.approx(0.5)
        assert table1.mean_fraction_holds == pytest.approx(0.5625)
        assert table1.min_fraction_holds == pytest.approx(0.45)
        assert table1.max_fraction_holds == pytest.approx(0.70)
        assert table1.spread == pytest.approx(0.25)
        # table8 was skipped in the variant cells: only 2 cells count.
        assert table8.n_cells == 2
        assert table8.n_holds == 1

    def test_wilson_matches_core_stats(self, synthetic_sweep):
        row = stability_matrix(synthetic_sweep)[0]
        assert row.wilson() == wilson_interval(row.n_holds, row.n_cells)

    def test_rows_follow_experiment_registry_order(self, synthetic_sweep):
        # Reverse the declared experiment order: the matrix must follow it.
        reordered = SweepResult(
            grid=synthetic_sweep.grid,
            base_config=synthetic_sweep.base_config,
            seeds=synthetic_sweep.seeds,
            experiments=("table8", "table1"),
            cells=synthetic_sweep.cells,
        )
        assert [r.experiment for r in stability_matrix(reordered)] == [
            "table8", "table1"
        ]


class TestFormatReport:
    def test_report_structure(self, synthetic_sweep):
        text = format_sweep_report(synthetic_sweep)
        assert "scenario sweep: synthetic" in text
        assert "scenarios (2): baseline, variant" in text
        assert "seeds (2): 1, 2" in text
        assert "cells: 4" in text
        assert "verdict stability" in text
        assert "table1/Average usage" in text
        assert "per-cell headlines" in text
        assert "skipped experiments" in text
        assert "table8: skipped in 2 of 4 cells" in text

    def test_no_trailing_whitespace(self, synthetic_sweep):
        for line in format_sweep_report(synthetic_sweep).splitlines():
            assert line == line.rstrip()

    def test_skip_section_absent_without_skips(self, synthetic_sweep):
        cells = tuple(c for c in synthetic_sweep.cells if not c.skipped)
        trimmed = SweepResult(
            grid=synthetic_sweep.grid,
            base_config=synthetic_sweep.base_config,
            seeds=synthetic_sweep.seeds,
            experiments=synthetic_sweep.experiments,
            cells=cells,
        )
        assert "skipped experiments" not in format_sweep_report(trimmed)

    def test_cache_accounting_never_in_report(self, synthetic_sweep):
        assert "cache" not in format_sweep_report(synthetic_sweep)


class TestPayload:
    def test_payload_is_json_ready_and_complete(self, synthetic_sweep):
        payload = sweep_payload(synthetic_sweep)
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped == payload
        assert set(payload) == {
            "grid", "seeds", "experiments", "stability", "cells"
        }
        assert payload["seeds"] == [1, 2]
        assert len(payload["cells"]) == 4
        assert payload["cells"][0]["scenario"] == "baseline"
        assert payload["cells"][2]["skipped"] == ["table8"]

    def test_stability_entries_match_matrix(self, synthetic_sweep):
        payload = sweep_payload(synthetic_sweep)
        rows = stability_matrix(synthetic_sweep)
        assert len(payload["stability"]) == len(rows)
        first = payload["stability"][0]
        assert first["experiment"] == rows[0].experiment
        assert first["stability"] == pytest.approx(rows[0].stability)
        ci = rows[0].wilson()
        assert first["stability_ci_low"] == pytest.approx(ci.low)
        assert first["stability_ci_high"] == pytest.approx(ci.high)

    def test_cache_hits_excluded_from_payload(self, synthetic_sweep):
        assert "cache" not in json.dumps(sweep_payload(synthetic_sweep))

    def test_cache_hits_excluded_from_equality(self, synthetic_sweep):
        twin = SweepResult(
            grid=synthetic_sweep.grid,
            base_config=synthetic_sweep.base_config,
            seeds=synthetic_sweep.seeds,
            experiments=synthetic_sweep.experiments,
            cells=synthetic_sweep.cells,
            n_cache_hits=0,
        )
        assert twin == synthetic_sweep
