"""Metamorphic mechanism-direction tests.

Each test flips exactly one generative knob of the world model and
asserts two things against the shared ``metamorphic_sweep``:

1. the experiment that the paper's causal story ties to that mechanism
   moves in the predicted direction (usually: its "% H holds" collapses
   toward the 50% chance level when the mechanism is removed), and
2. experiments the mechanism does *not* drive stay inside the band the
   baseline scenario's own seed spread establishes.

Worlds are fully deterministic for a fixed (config, seed), so the
thresholds below are not statistical tolerances: they are calibrated
cushions around the measured effect at this fixture size (1,200
households x 3 seeds), sized so that the assertions survive modest
drift in the generative model but fail when a mechanism stops driving
its experiment. Fractions are pooled across seeds by pair count —
sum(fraction * n_pairs) / sum(n_pairs) — which is markedly more stable
than any per-seed value.
"""

from __future__ import annotations

import pytest

from .conftest import METAMORPHIC_SEEDS

#: Half-width of the "unrelated experiment" acceptance band, added on
#: each side of the baseline scenario's per-seed min..max envelope.
BAND_PAD = 0.06

TABLE1_ROWS = ("Average usage", "Peak usage")
TABLE8_HIGH_LOSS_ROWS = (
    "(1%, 15%] vs (0%, 0.01%]",
    "(1%, 15%] vs (0.01%, 0.1%]",
)
TABLE3_ROW = "($0, $25] vs ($25, $60]"
IQB_ROW = "top vs bottom tercile"


def _rows(sweep, scenario, experiment, row):
    out = [
        v
        for cell in sweep.cells_for(scenario)
        for v in cell.verdicts
        if v.experiment == experiment and v.row == row
    ]
    assert out, f"{scenario} produced no {experiment}/{row} rows"
    return out


def pooled(sweep, scenario, experiment, row) -> float:
    """Pair-pooled '% H holds' for one experiment row in one scenario."""
    rows = _rows(sweep, scenario, experiment, row)
    total = sum(v.n_pairs for v in rows)
    return sum(v.fraction_holds * v.n_pairs for v in rows) / total


def per_seed(sweep, scenario, experiment, row) -> list[float]:
    return [v.fraction_holds for v in _rows(sweep, scenario, experiment, row)]


def baseline_band(sweep, experiment, row) -> tuple[float, float]:
    values = per_seed(sweep, "baseline", experiment, row)
    return min(values) - BAND_PAD, max(values) + BAND_PAD


def headlines(sweep, scenario, name) -> list[float]:
    cells = sweep.cells_for(scenario)
    assert len(cells) == len(METAMORPHIC_SEEDS)
    return [c.headline_value(name) for c in cells]


def assert_in_band(sweep, scenario, experiment, row):
    low, high = baseline_band(sweep, experiment, row)
    value = pooled(sweep, scenario, experiment, row)
    assert low <= value <= high, (
        f"{scenario} moved unrelated {experiment}/{row} out of the "
        f"baseline band: {value:.3f} not in [{low:.3f}, {high:.3f}]"
    )


class TestSweepShape:
    def test_all_cells_present_with_no_skips(self, metamorphic_sweep):
        assert len(metamorphic_sweep.cells) == 6 * len(METAMORPHIC_SEEDS)
        assert all(not cell.skipped for cell in metamorphic_sweep.cells)

    def test_baseline_usage_verdicts_hold_in_every_cell(self, metamorphic_sweep):
        # Sanity anchor: at this size the paper's central result (more
        # capacity -> more usage, Table 1) holds in every baseline cell.
        for row in TABLE1_ROWS:
            verdicts = _rows(metamorphic_sweep, "baseline", "table1", row)
            assert all(v.rejects_null for v in verdicts), row


class TestDemandGrowthDrivesUsageResult:
    """No demand growth after upgrades -> Table 1 collapses to chance."""

    def test_table1_collapses_toward_chance(self, metamorphic_sweep):
        for row in TABLE1_ROWS:
            base = pooled(metamorphic_sweep, "baseline", "table1", row)
            off = pooled(metamorphic_sweep, "growth-off", "table1", row)
            assert off < base - 0.08, (row, base, off)
            assert abs(off - 0.5) < 0.10, (row, off)

    def test_table1_verdicts_flip_off(self, metamorphic_sweep):
        for row in TABLE1_ROWS:
            verdicts = _rows(metamorphic_sweep, "growth-off", "table1", row)
            assert not any(v.rejects_null for v in verdicts), row

    def test_loss_experiment_unaffected(self, metamorphic_sweep):
        for row in TABLE8_HIGH_LOSS_ROWS:
            assert_in_band(metamorphic_sweep, "growth-off", "table8", row)

    def test_demand_shrinks_without_growth(self, metamorphic_sweep):
        base = headlines(metamorphic_sweep, "baseline", "mean_peak_utilization")
        off = headlines(metamorphic_sweep, "growth-off", "mean_peak_utilization")
        for b, o in zip(base, off):
            assert o < b


class TestQualitySuppressionDrivesLossResult:
    """Quality no longer suppressing demand -> Table 8's high-loss rows
    collapse, while peak demand itself rises."""

    def test_high_loss_rows_collapse(self, metamorphic_sweep):
        for row in TABLE8_HIGH_LOSS_ROWS:
            base = pooled(metamorphic_sweep, "baseline", "table8", row)
            off = pooled(metamorphic_sweep, "quality-off", "table8", row)
            assert off < base - 0.12, (row, base, off)

    def test_unsuppressed_demand_is_higher(self, metamorphic_sweep):
        for name, margin in (
            ("mean_peak_utilization", 0.02),
            ("median_peak_mbps", 0.0),
        ):
            base = headlines(metamorphic_sweep, "baseline", name)
            off = headlines(metamorphic_sweep, "quality-off", name)
            for b, o in zip(base, off):
                assert o > b + margin, (name, b, o)

    def test_price_experiment_unaffected(self, metamorphic_sweep):
        assert_in_band(metamorphic_sweep, "quality-off", "table3", TABLE3_ROW)


class TestPriceSelectionDrivesPriceResult:
    """Without price-aware plan selection, price no longer predicts
    usage (Table 3 falls toward chance) and capacity stops sorting users
    — the capacity-usage link (Table 1) attenuates too."""

    def test_table3_falls_toward_chance(self, metamorphic_sweep):
        base = pooled(metamorphic_sweep, "baseline", "table3", TABLE3_ROW)
        off = pooled(metamorphic_sweep, "price-off", "table3", TABLE3_ROW)
        assert base - 0.5 > 0.04, base  # the signal exists to begin with
        assert (off - 0.5) < (base - 0.5) - 0.02, (base, off)
        assert abs(off - 0.5) < 0.05, off

    def test_table1_attenuates(self, metamorphic_sweep):
        for row in TABLE1_ROWS:
            base = pooled(metamorphic_sweep, "baseline", "table1", row)
            off = pooled(metamorphic_sweep, "price-off", "table1", row)
            assert off < base - 0.05, (row, base, off)

    def test_decoupling_widens_matched_pairs(self, metamorphic_sweep):
        # With plan choice independent of income, matched capacity pairs
        # get easier to form: the Table 1 pair pool grows substantially.
        def pairs(scenario):
            return sum(
                v.n_pairs
                for cell in metamorphic_sweep.cells_for(scenario)
                for v in cell.verdicts
                if v.experiment == "table1"
            )

        assert pairs("price-off") > 1.2 * pairs("baseline")


class TestSupplyConstraintsDriveUtilization:
    """Constrained addresses cap attainable capacity: users sit closer
    to their plan's ceiling without changing the usage experiments."""

    def test_utilization_rises_capacity_falls(self, metamorphic_sweep):
        for seed_i in range(len(METAMORPHIC_SEEDS)):
            base_util = headlines(
                metamorphic_sweep, "baseline", "mean_peak_utilization"
            )[seed_i]
            con_util = headlines(
                metamorphic_sweep, "constrained", "mean_peak_utilization"
            )[seed_i]
            assert con_util > base_util + 0.03
            base_cap = headlines(
                metamorphic_sweep, "baseline", "median_capacity_mbps"
            )[seed_i]
            con_cap = headlines(
                metamorphic_sweep, "constrained", "median_capacity_mbps"
            )[seed_i]
            assert con_cap < base_cap - 1.5

    def test_usage_experiment_unaffected(self, metamorphic_sweep):
        for row in TABLE1_ROWS:
            assert_in_band(metamorphic_sweep, "constrained", "table1", row)


class TestLightFaultsAreSanitizedAway:
    """Light fault injection plus the sanitization stage must be close
    to an identity transform on every verdict and headline."""

    def test_usage_fractions_nearly_identical(self, metamorphic_sweep):
        for row in TABLE1_ROWS:
            base = per_seed(metamorphic_sweep, "baseline", "table1", row)
            faulted = per_seed(metamorphic_sweep, "faulted", "table1", row)
            for b, f in zip(base, faulted):
                assert abs(b - f) < 0.05, (row, b, f)

    def test_loss_rows_stay_in_band(self, metamorphic_sweep):
        for row in TABLE8_HIGH_LOSS_ROWS:
            assert_in_band(metamorphic_sweep, "faulted", "table8", row)

    def test_few_users_lost(self, metamorphic_sweep):
        base_cells = metamorphic_sweep.cells_for("baseline")
        faulted_cells = metamorphic_sweep.cells_for("faulted")
        for b, f in zip(base_cells, faulted_cells):
            assert f.n_dasu_users >= 0.98 * b.n_dasu_users

    def test_headlines_nearly_identical(self, metamorphic_sweep):
        base = headlines(metamorphic_sweep, "baseline", "mean_peak_utilization")
        faulted = headlines(metamorphic_sweep, "faulted", "mean_peak_utilization")
        for b, f in zip(base, faulted):
            assert f == pytest.approx(b, abs=0.01)


class TestQualitySuppressionDrivesIqbVerdict:
    """The IQB composite folds latency and loss into a use-case score;
    quality suppression is the only mechanism through which those
    metrics move demand. Turning it off must collapse the IQB-vs-demand
    verdict to chance, while knobs that act through capacity alone
    (growth, supply constraints, light faults) shift measured *scores*
    at most — the within-capacity-class verdict stays in the baseline
    band."""

    def test_baseline_signal_exists(self, metamorphic_sweep):
        # Sanity anchor: with suppression on, higher composite scores
        # predict demand in every baseline cell at this fixture size.
        base = pooled(metamorphic_sweep, "baseline", "iqb", IQB_ROW)
        assert base - 0.5 > 0.05, base
        verdicts = _rows(metamorphic_sweep, "baseline", "iqb", IQB_ROW)
        assert all(v.rejects_null for v in verdicts)

    def test_quality_off_collapses_toward_chance(self, metamorphic_sweep):
        base = pooled(metamorphic_sweep, "baseline", "iqb", IQB_ROW)
        off = pooled(metamorphic_sweep, "quality-off", "iqb", IQB_ROW)
        assert off < base - 0.08, (base, off)
        assert abs(off - 0.5) < 0.07, off

    def test_quality_off_verdicts_flip_off(self, metamorphic_sweep):
        verdicts = _rows(metamorphic_sweep, "quality-off", "iqb", IQB_ROW)
        assert not any(v.rejects_null for v in verdicts)

    def test_capacity_only_knobs_stay_in_band(self, metamorphic_sweep):
        for scenario in ("growth-off", "constrained", "faulted"):
            assert_in_band(metamorphic_sweep, scenario, "iqb", IQB_ROW)

    def test_scores_track_capacity_not_suppression(self, metamorphic_sweep):
        # Supply constraints cap attainable capacity, dragging measured
        # composites down; removing quality suppression changes demand,
        # not measurements, so scores barely move.
        base = headlines(metamorphic_sweep, "baseline", "mean_iqb_score")
        constrained = headlines(
            metamorphic_sweep, "constrained", "mean_iqb_score"
        )
        off = headlines(metamorphic_sweep, "quality-off", "mean_iqb_score")
        for b, c, o in zip(base, constrained, off):
            assert c < b - 0.02, (b, c)
            assert abs(o - b) < 0.01, (b, o)
