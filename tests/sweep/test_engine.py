"""The sweep engine (:mod:`repro.sweep.engine`)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.datasets import WorldConfig, build_world
from repro.exceptions import SweepError
from repro.obs import RunLedger
from repro.sweep import (
    SWEEP_EXPERIMENTS,
    ScenarioGrid,
    run_sweep,
    sweep_worlds,
)

from .conftest import SMALL_SWEEP_BASE, SMALL_SWEEP_SEEDS, small_sweep_grid


class TestRunSweep:
    def test_cells_in_scenario_major_order(self, small_sweep):
        assert [(c.scenario, c.seed) for c in small_sweep.cells] == [
            ("baseline", 5), ("baseline", 6),
            ("growth-off", 5), ("growth-off", 6),
        ]
        assert small_sweep.seeds == SMALL_SWEEP_SEEDS
        assert small_sweep.experiments == SWEEP_EXPERIMENTS
        assert small_sweep.scenario_names == ("baseline", "growth-off")

    def test_verdict_rows_well_formed(self, small_sweep):
        for cell in small_sweep.cells:
            assert cell.verdicts, cell.scenario
            for verdict in cell.verdicts:
                assert verdict.experiment in SWEEP_EXPERIMENTS
                assert 0.0 <= verdict.fraction_holds <= 1.0
                assert verdict.n_pairs > 0
                assert 0.0 <= verdict.p_value <= 1.0
                if verdict.rejects_null:
                    assert verdict.significant

    def test_headline_statistics_present(self, small_sweep):
        for cell in small_sweep.cells:
            names = [name for name, _ in cell.headline]
            assert names == [
                "median_capacity_mbps",
                "median_peak_mbps",
                "mean_peak_utilization",
                "mean_iqb_score",
            ]
            assert cell.headline_value("median_capacity_mbps") > 0
            assert 0.0 <= cell.headline_value("mean_iqb_score") <= 1.0
            assert cell.headline_value("no_such_statistic") is None

    def test_rerun_is_equal_and_fully_cached(self, small_sweep):
        ledger = RunLedger()
        rerun = run_sweep(
            SMALL_SWEEP_BASE,
            small_sweep_grid(),
            SMALL_SWEEP_SEEDS,
            jobs=1,
            ledger=ledger,
        )
        # n_cache_hits is excluded from equality by design.
        assert rerun == small_sweep
        assert rerun.n_cache_hits == len(rerun.cells)
        # The merged ledger accounts for every cell and verdict row.
        assert ledger.counters["sweep.cells"] == len(rerun.cells)
        for key in SWEEP_EXPERIMENTS:
            rows = sum(
                1
                for cell in rerun.cells
                for v in cell.verdicts
                if v.experiment == key
            )
            skips = sum(1 for cell in rerun.cells if key in cell.skipped)
            assert ledger.counters.get(f"sweep.verdicts.{key}.rows", 0) == rows
            assert ledger.counters.get(f"sweep.skipped.{key}", 0) == skips

    def test_too_small_world_skips_experiment_instead_of_failing(self, tmp_path):
        base = dataclasses.replace(SMALL_SWEEP_BASE, n_dasu_users=30)
        ledger = RunLedger()
        result = run_sweep(
            base,
            ScenarioGrid.baseline(),
            (5,),
            experiments=("table1", "table7"),
            cache_root=tmp_path,
            ledger=ledger,
        )
        (cell,) = result.cells
        assert cell.skipped == ("table7",)
        assert {v.experiment for v in cell.verdicts} == {"table1"}
        assert ledger.counters["sweep.skipped.table7"] == 1

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SweepError, match="unknown sweep experiment"):
            run_sweep(
                SMALL_SWEEP_BASE,
                ScenarioGrid.baseline(),
                (5,),
                experiments=("table9",),
            )

    def test_no_experiments_rejected(self):
        with pytest.raises(SweepError, match="at least one experiment"):
            run_sweep(
                SMALL_SWEEP_BASE, ScenarioGrid.baseline(), (5,), experiments=()
            )

    def test_no_seeds_anywhere_rejected(self):
        with pytest.raises(SweepError, match="at least one seed"):
            run_sweep(SMALL_SWEEP_BASE, ScenarioGrid.baseline())

    def test_grid_seeds_used_when_caller_passes_none(self, small_sweep):
        grid = ScenarioGrid(
            scenarios=small_sweep_grid().scenarios,
            name="small",
            seeds=SMALL_SWEEP_SEEDS,
        )
        result = run_sweep(SMALL_SWEEP_BASE, grid, jobs=1)
        assert result.seeds == SMALL_SWEEP_SEEDS
        assert result.cells == small_sweep.cells

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(SweepError, match="distinct"):
            run_sweep(SMALL_SWEEP_BASE, ScenarioGrid.baseline(), (5, 5))

    def test_accessors(self, small_sweep):
        baseline_cells = small_sweep.cells_for("baseline")
        assert [c.seed for c in baseline_cells] == list(SMALL_SWEEP_SEEDS)
        fractions = small_sweep.fractions_for("table1", "Average usage")
        assert len(fractions) == len(small_sweep.cells)
        assert all(0.0 <= f <= 1.0 for f in fractions)
        assert small_sweep.fractions_for("table1", "no such row") == ()


class TestSweepWorlds:
    @staticmethod
    def _fingerprint(users):
        # Cache-loaded worlds carry the same records as a fresh build
        # but in persisted order, and the hourly profile is %.6g-encoded
        # in the CSV (see tests/test_cache.py) — so compare the
        # analysis-relevant fields, order-insensitively.
        return sorted(
            (
                u.user_id,
                u.country,
                u.capacity_down_mbps,
                u.peak_mbps,
                u.peak_no_bt_mbps,
                u.latency_ms,
                u.loss_fraction,
                len(u.observations),
            )
            for u in users
        )

    def test_worlds_match_direct_builds(self, tmp_path):
        worlds = sweep_worlds(
            SMALL_SWEEP_BASE, SMALL_SWEEP_SEEDS, jobs=2, cache_root=tmp_path
        )
        assert [w.config.seed for w in worlds] == list(SMALL_SWEEP_SEEDS)
        for seed, world in zip(SMALL_SWEEP_SEEDS, worlds):
            direct = build_world(
                dataclasses.replace(SMALL_SWEEP_BASE, seed=seed)
            )
            assert self._fingerprint(world.dasu.users) == self._fingerprint(
                direct.dasu.users
            )
            assert self._fingerprint(world.fcc.users) == self._fingerprint(
                direct.fcc.users
            )

    def test_cached_reload_is_identical(self, tmp_path):
        first = sweep_worlds(
            SMALL_SWEEP_BASE, SMALL_SWEEP_SEEDS, cache_root=tmp_path
        )
        again = sweep_worlds(
            SMALL_SWEEP_BASE, SMALL_SWEEP_SEEDS, cache_root=tmp_path
        )
        for a, b in zip(first, again):
            assert self._fingerprint(a.dasu.users) == self._fingerprint(
                b.dasu.users
            )

    def test_empty_seeds_rejected(self):
        with pytest.raises(SweepError, match="at least one seed"):
            sweep_worlds(SMALL_SWEEP_BASE, ())
