"""Scenario and grid parsing/validation (:mod:`repro.sweep.grid`)."""

from __future__ import annotations

import json

import pytest

from repro.datasets import WorldConfig
from repro.exceptions import SweepError
from repro.faults import FaultConfig
from repro.sweep import Scenario, ScenarioGrid

BASE = WorldConfig(seed=1, n_dasu_users=50, n_fcc_users=10, days_per_year=1.0)


class TestScenario:
    def test_apply_replaces_seed_and_overrides(self):
        scenario = Scenario(
            name="no-growth", overrides={"demand_growth_enabled": False}
        )
        config = scenario.apply(BASE, 42)
        assert config.seed == 42
        assert config.demand_growth_enabled is False
        assert config.n_dasu_users == BASE.n_dasu_users
        # The base config itself is untouched.
        assert BASE.demand_growth_enabled is True

    def test_fault_profile_and_sanitize_applied(self):
        scenario = Scenario(name="f", faults="light", sanitize=True)
        config = scenario.apply(BASE, 1)
        assert isinstance(config.faults, FaultConfig)
        assert config.sanitize is True

    def test_faults_off_means_pristine(self):
        config = Scenario(name="f", faults="off").apply(BASE, 1)
        assert config.faults is None

    def test_none_fields_inherit_base(self):
        base = Scenario(name="f", faults="light", sanitize=True).apply(BASE, 1)
        config = Scenario(name="plain").apply(base, 2)
        assert isinstance(config.faults, FaultConfig)
        assert config.sanitize is True

    def test_empty_name_rejected(self):
        with pytest.raises(SweepError, match="non-empty name"):
            Scenario(name="")

    def test_unknown_override_rejected(self):
        with pytest.raises(SweepError, match="unknown WorldConfig"):
            Scenario(name="s", overrides={"n_dasu_userz": 10})

    @pytest.mark.parametrize("field", ["seed", "faults", "sanitize"])
    def test_reserved_override_rejected(self, field):
        with pytest.raises(SweepError, match="reserved"):
            Scenario(name="s", overrides={field: 1})

    def test_unknown_fault_profile_rejected(self):
        with pytest.raises(SweepError, match="unknown fault profile"):
            Scenario(name="s", faults="catastrophic")

    def test_invalid_override_value_surfaces_as_sweep_error(self):
        scenario = Scenario(name="s", overrides={"n_dasu_users": -5})
        with pytest.raises(SweepError, match="invalid world configuration"):
            scenario.apply(BASE, 1)

    def test_payload_round_trip(self):
        scenario = Scenario(
            name="s",
            overrides={"address_constraint_rate": 0.3},
            faults="default",
            sanitize=True,
        )
        assert Scenario.from_payload(scenario.to_payload()) == scenario

    def test_minimal_payload_omits_defaults(self):
        assert Scenario(name="s").to_payload() == {"name": "s"}

    def test_payload_unknown_key_rejected(self):
        with pytest.raises(SweepError, match="unknown keys: extra"):
            Scenario.from_payload({"name": "s", "extra": 1})

    def test_payload_missing_name_rejected(self):
        with pytest.raises(SweepError, match="need a 'name'"):
            Scenario.from_payload({"overrides": {}})

    def test_payload_must_be_object(self):
        with pytest.raises(SweepError, match="must be objects"):
            Scenario.from_payload(["s"])


class TestScenarioGrid:
    def test_configs_are_scenario_major(self):
        grid = ScenarioGrid(
            scenarios=(Scenario(name="a"), Scenario(name="b")), name="g"
        )
        cells = grid.configs(BASE, (7, 8))
        assert [(s.name, seed) for s, seed, _ in cells] == [
            ("a", 7), ("a", 8), ("b", 7), ("b", 8)
        ]
        for scenario, seed, config in cells:
            assert config.seed == seed

    def test_empty_grid_rejected(self):
        with pytest.raises(SweepError, match="at least one scenario"):
            ScenarioGrid(scenarios=())

    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(SweepError, match="duplicate scenario name"):
            ScenarioGrid(scenarios=(Scenario(name="a"), Scenario(name="a")))

    def test_configs_need_seeds(self):
        grid = ScenarioGrid.baseline()
        with pytest.raises(SweepError, match="at least one seed"):
            grid.configs(BASE, ())

    def test_baseline_grid(self):
        grid = ScenarioGrid.baseline()
        assert grid.name == "seeds-only"
        assert len(grid.scenarios) == 1
        assert grid.scenarios[0].overrides == {}

    def test_payload_round_trip(self):
        grid = ScenarioGrid(
            scenarios=(
                Scenario(name="a"),
                Scenario(name="b", overrides={"n_dasu_users": 99}),
            ),
            name="g",
            seeds=(3, 4),
        )
        assert ScenarioGrid.from_payload(grid.to_payload()) == grid

    def test_from_payload_rejects_non_object(self):
        with pytest.raises(SweepError, match="JSON object"):
            ScenarioGrid.from_payload([1, 2])

    def test_from_payload_rejects_unknown_keys(self):
        with pytest.raises(SweepError, match="unknown keys"):
            ScenarioGrid.from_payload({"scenarios": [{"name": "a"}], "sceanrios": []})

    def test_from_payload_rejects_empty(self):
        with pytest.raises(SweepError, match="no scenarios and no axes"):
            ScenarioGrid.from_payload({"name": "g"})

    def test_from_payload_rejects_bad_seeds(self):
        with pytest.raises(SweepError, match="bad grid seeds"):
            ScenarioGrid.from_payload(
                {"scenarios": [{"name": "a"}], "seeds": ["x"]}
            )


class TestAxes:
    def test_axes_expand_to_cartesian_product(self):
        grid = ScenarioGrid.from_payload(
            {
                "axes": [
                    {"field": "demand_growth_enabled", "values": [True, False]},
                    {"field": "address_constraint_rate", "values": [0.0, 0.4]},
                ]
            }
        )
        names = [s.name for s in grid.scenarios]
        assert names == [
            "demand_growth_enabled=True,address_constraint_rate=0.0",
            "demand_growth_enabled=True,address_constraint_rate=0.4",
            "demand_growth_enabled=False,address_constraint_rate=0.0",
            "demand_growth_enabled=False,address_constraint_rate=0.4",
        ]
        assert grid.scenarios[3].overrides == {
            "demand_growth_enabled": False,
            "address_constraint_rate": 0.4,
        }

    def test_faults_axis_sets_profile_not_override(self):
        grid = ScenarioGrid.from_payload(
            {"axes": [{"field": "faults", "values": ["off", "light"]}]}
        )
        assert [s.faults for s in grid.scenarios] == ["off", "light"]
        assert all(s.overrides == {} for s in grid.scenarios)

    def test_axes_append_after_explicit_scenarios(self):
        grid = ScenarioGrid.from_payload(
            {
                "scenarios": [{"name": "hand-picked"}],
                "axes": [{"field": "demand_growth_enabled", "values": [False]}],
            }
        )
        assert [s.name for s in grid.scenarios] == [
            "hand-picked", "demand_growth_enabled=False"
        ]

    def test_axis_requires_field_and_values(self):
        with pytest.raises(SweepError, match="each axis must be"):
            ScenarioGrid.from_payload({"axes": [{"field": "seed"}]})

    def test_axis_with_no_values_rejected(self):
        with pytest.raises(SweepError, match="has no values"):
            ScenarioGrid.from_payload(
                {"axes": [{"field": "demand_growth_enabled", "values": []}]}
            )

    def test_axis_unknown_field_rejected(self):
        with pytest.raises(SweepError, match="not a sweepable"):
            ScenarioGrid.from_payload(
                {"axes": [{"field": "seed", "values": [1, 2]}]}
            )


class TestFromJson:
    def test_loads_grid_file(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(
            json.dumps(
                {
                    "name": "file-grid",
                    "scenarios": [
                        {"name": "base"},
                        {"name": "f", "faults": "light", "sanitize": True},
                    ],
                    "seeds": [11, 12],
                }
            )
        )
        grid = ScenarioGrid.from_json(path)
        assert grid.name == "file-grid"
        assert grid.seeds == (11, 12)
        assert [s.name for s in grid.scenarios] == ["base", "f"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(SweepError, match="cannot read grid file"):
            ScenarioGrid.from_json(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text("{not json")
        with pytest.raises(SweepError, match="not valid JSON"):
            ScenarioGrid.from_json(path)
