"""Sweep determinism: worker counts, cache state, and the golden pin.

The contract under test is byte-level: the report text, the
``sweep.json`` payload, and the merged trace ledger must be identical

* for any ``jobs`` value,
* whether every world was built fresh or loaded from the cache, and
* across sessions for a fixed configuration (the golden snapshot).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import RunLedger
from repro.sweep import (
    Scenario,
    ScenarioGrid,
    format_sweep_report,
    run_sweep,
    sweep_payload,
)

from .conftest import SMALL_SWEEP_BASE, SMALL_SWEEP_SEEDS, small_sweep_grid

GOLDEN_DIR = Path(__file__).parent.parent / "golden"
GOLDEN_SWEEP = GOLDEN_DIR / "sweep_report_small.txt"


def _run(jobs, cache_root=None, use_cache=True):
    ledger = RunLedger()
    result = run_sweep(
        SMALL_SWEEP_BASE,
        small_sweep_grid(),
        SMALL_SWEEP_SEEDS,
        jobs=jobs,
        cache_root=cache_root,
        use_cache=use_cache,
        ledger=ledger,
    )
    return result, ledger


def _payload_bytes(result) -> bytes:
    return json.dumps(
        sweep_payload(result), indent=2, sort_keys=True
    ).encode()


class TestWorkerInvariance:
    def test_jobs_4_byte_identical_to_jobs_1(self):
        serial, serial_ledger = _run(jobs=1)
        parallel, parallel_ledger = _run(jobs=4)
        assert format_sweep_report(parallel) == format_sweep_report(serial)
        assert _payload_bytes(parallel) == _payload_bytes(serial)
        assert parallel_ledger.to_jsonl() == serial_ledger.to_jsonl()

    def test_results_compare_equal_across_jobs(self):
        assert _run(jobs=3)[0] == _run(jobs=1)[0]


class TestCacheEquivalence:
    def test_cold_and_warm_runs_identical(self, tmp_path):
        cold, cold_ledger = _run(jobs=2, cache_root=tmp_path)
        warm, warm_ledger = _run(jobs=2, cache_root=tmp_path)
        assert cold.n_cache_hits == 0
        assert warm.n_cache_hits == len(warm.cells)
        assert warm == cold
        assert format_sweep_report(warm) == format_sweep_report(cold)
        assert warm_ledger.to_jsonl() == cold_ledger.to_jsonl()

    def test_uncached_run_matches_cached(self, tmp_path):
        cached, cached_ledger = _run(jobs=1, cache_root=tmp_path)
        fresh, fresh_ledger = _run(
            jobs=1, cache_root=tmp_path, use_cache=False
        )
        assert fresh.n_cache_hits == 0
        assert fresh == cached
        assert fresh_ledger.to_jsonl() == cached_ledger.to_jsonl()

    def test_cells_sharing_a_config_share_the_cache(self, tmp_path):
        # "growth-on" overrides the knob with its default value, so its
        # cells resolve to the same world configurations as baseline's;
        # with jobs=1 the later cells must hit the earlier cells' store.
        grid = ScenarioGrid(
            scenarios=(
                Scenario(name="baseline"),
                Scenario(
                    name="growth-on",
                    overrides={"demand_growth_enabled": True},
                ),
            ),
            name="overlap",
        )
        result = run_sweep(
            SMALL_SWEEP_BASE,
            grid,
            SMALL_SWEEP_SEEDS,
            experiments=("table1",),
            jobs=1,
            cache_root=tmp_path,
        )
        assert result.n_cache_hits == len(SMALL_SWEEP_SEEDS)
        for base_cell, twin in zip(
            result.cells_for("baseline"), result.cells_for("growth-on")
        ):
            assert twin.verdicts == base_cell.verdicts
            assert twin.headline == base_cell.headline


class TestGoldenSweep:
    """The small sweep's report is pinned byte-for-byte.

    Regenerate after an intentional behavior change with::

        PYTHONPATH=src python -m pytest tests/sweep/test_determinism.py \\
            --regen-golden
    """

    def test_report_matches_golden(self, small_sweep, request):
        text = format_sweep_report(small_sweep)
        if request.config.getoption("--regen-golden"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            GOLDEN_SWEEP.write_text(text + "\n")
            pytest.skip(f"regenerated {GOLDEN_SWEEP}")
        assert GOLDEN_SWEEP.exists(), (
            "golden sweep snapshot missing — regenerate with "
            "`python -m pytest tests/sweep/test_determinism.py --regen-golden`"
        )
        assert text + "\n" == GOLDEN_SWEEP.read_text(), (
            "sweep report drifted from the golden snapshot; if the change "
            "is intentional, regenerate with --regen-golden and review "
            "the diff"
        )
