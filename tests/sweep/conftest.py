"""Fixtures for the sweep suite.

Two sweeps are shared across the suite, each run at most once per
session:

* ``small_sweep`` — a 2-scenario x 2-seed grid over ~150-user worlds;
  cheap enough for the engine/report/determinism tests to rerun in
  variations (different worker counts, cold vs warm cache);
* ``metamorphic_sweep`` — the mechanism-direction grid: the baseline
  world plus one scenario per generative knob (price selection, quality
  suppression, demand growth, supply constraints, fault injection),
  crossed with three replicate seeds at ~1,200 users. Every metamorphic
  test reads this one result.

The session-wide ``REPRO_CACHE_DIR`` isolation from ``tests/conftest.py``
applies here too, so sweeps never touch the user's real world cache.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import WorldConfig
from repro.sweep import Scenario, ScenarioGrid, SweepResult, run_sweep

SMALL_SWEEP_BASE = WorldConfig(
    seed=5, n_dasu_users=150, n_fcc_users=0, days_per_year=1.0
)
SMALL_SWEEP_SEEDS = (5, 6)


def small_sweep_grid() -> ScenarioGrid:
    return ScenarioGrid(
        scenarios=(
            Scenario(name="baseline"),
            Scenario(name="growth-off", overrides={"demand_growth_enabled": False}),
        ),
        name="small",
    )


@pytest.fixture(scope="session")
def small_sweep() -> SweepResult:
    return run_sweep(
        SMALL_SWEEP_BASE, small_sweep_grid(), SMALL_SWEEP_SEEDS, jobs=2
    )


METAMORPHIC_BASE = WorldConfig(
    seed=101, n_dasu_users=1200, n_fcc_users=0, days_per_year=1.0
)
METAMORPHIC_SEEDS = (101, 102, 103)


def metamorphic_grid() -> ScenarioGrid:
    """One scenario per generative mechanism, plus the baseline."""
    return ScenarioGrid(
        scenarios=(
            Scenario(name="baseline"),
            Scenario(
                name="price-off",
                overrides={"price_selection_enabled": False},
            ),
            Scenario(
                name="quality-off",
                overrides={"quality_suppression_enabled": False},
            ),
            Scenario(
                name="growth-off",
                overrides={"demand_growth_enabled": False},
            ),
            Scenario(
                name="constrained",
                overrides={"address_constraint_rate": 0.45},
            ),
            Scenario(name="faulted", faults="light", sanitize=True),
        ),
        name="metamorphic",
    )


@pytest.fixture(scope="session")
def metamorphic_sweep() -> SweepResult:
    """The shared mechanism-direction sweep (18 worlds, built once)."""
    return run_sweep(
        METAMORPHIC_BASE,
        metamorphic_grid(),
        METAMORPHIC_SEEDS,
        jobs=max(1, min(8, os.cpu_count() or 1)),
    )
