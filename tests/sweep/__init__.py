"""Tests for the scenario-sweep engine (:mod:`repro.sweep`)."""
