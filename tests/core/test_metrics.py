"""Demand metrics."""

import numpy as np
import pytest

from repro.core import metrics
from repro.exceptions import AnalysisError


class TestDemandSummary:
    def test_mean_and_peak(self):
        rates = np.concatenate([np.zeros(95), np.full(5, 10.0)])
        summary = metrics.demand_summary(rates)
        assert summary.mean_mbps == pytest.approx(0.5)
        # With 95% zeros, the 95th percentile sits at the transition.
        assert 0.0 <= summary.peak_mbps <= 10.0

    def test_peak_is_95th_percentile(self):
        rates = np.arange(100.0)
        summary = metrics.demand_summary(rates)
        assert summary.peak_mbps == pytest.approx(np.percentile(rates, 95))

    def test_n_samples(self):
        assert metrics.demand_summary([1.0, 2.0]).n_samples == 2

    def test_constant_series(self):
        summary = metrics.demand_summary([2.0] * 10)
        assert summary.mean_mbps == summary.peak_mbps == 2.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            metrics.demand_summary([])

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            metrics.demand_summary([1.0, -0.1])

    def test_peak_demand_helper(self):
        rates = np.arange(100.0)
        assert metrics.peak_demand(rates) == pytest.approx(
            np.percentile(rates, 95)
        )


class TestUtilization:
    def test_basic(self):
        assert metrics.utilization(5.0, 10.0) == 0.5

    def test_clipped_at_one(self):
        assert metrics.utilization(12.0, 10.0) == 1.0

    def test_zero_demand(self):
        assert metrics.utilization(0.0, 10.0) == 0.0

    def test_zero_capacity_rejected(self):
        with pytest.raises(AnalysisError):
            metrics.utilization(1.0, 0.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(AnalysisError):
            metrics.utilization(-1.0, 10.0)

    def test_summary_utilization(self):
        summary = metrics.demand_summary([1.0, 1.0, 3.0, 3.0])
        util = summary.utilization(10.0)
        assert util.mean == pytest.approx(0.2)
        assert util.peak == pytest.approx(summary.peak_mbps / 10.0)
