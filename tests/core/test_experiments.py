"""The natural-experiment framework."""

import pytest

from repro.core import experiments
from repro.exceptions import ExperimentError


def outcomes(pairs):
    return [experiments.PairedOutcome(c, t) for c, t in pairs]


class TestPairedOutcome:
    def test_holds_when_treatment_greater(self):
        assert experiments.PairedOutcome(1.0, 2.0).hypothesis_holds

    def test_does_not_hold_when_smaller(self):
        assert not experiments.PairedOutcome(2.0, 1.0).hypothesis_holds

    def test_tie_detection(self):
        outcome = experiments.PairedOutcome(1.0, 1.0)
        assert outcome.is_tie
        assert not outcome.hypothesis_holds


class TestNaturalExperiment:
    def test_counts(self):
        exp = experiments.NaturalExperiment("test")
        result = exp.evaluate(outcomes([(1, 2), (1, 2), (2, 1), (1, 1)]))
        assert result.n_pairs == 3  # tie dropped
        assert result.n_holds == 2
        assert result.n_ties == 1
        assert result.fraction_holds == pytest.approx(2 / 3)

    def test_paper_table1_analogue(self):
        # 70.3% of 520 pairs: decisively significant and important.
        exp = experiments.NaturalExperiment("peak usage")
        result = exp.evaluate(
            outcomes([(0, 1)] * 366 + [(1, 0)] * 154)
        )
        assert result.statistically_significant
        assert result.practically_important
        assert result.rejects_null

    def test_chance_level_not_significant(self):
        exp = experiments.NaturalExperiment("chance")
        result = exp.evaluate(outcomes([(0, 1), (1, 0)] * 50))
        assert not result.statistically_significant
        assert not result.rejects_null

    def test_practical_margin_blocks_tiny_effects(self):
        # 51% of 100,000 pairs: statistically significant but below the
        # 2% practical margin — the Paxson critique the paper guards
        # against.
        exp = experiments.NaturalExperiment("tiny effect")
        result = exp.evaluate(
            outcomes([(0, 1)] * 51_000 + [(1, 0)] * 49_000)
        )
        assert result.statistically_significant
        assert not result.practically_important
        assert not result.rejects_null

    def test_exactly_52_percent_is_practically_important(self):
        exp = experiments.NaturalExperiment("margin")
        result = exp.evaluate(outcomes([(0, 1)] * 52 + [(1, 0)] * 48))
        assert result.practically_important

    def test_empty_outcomes(self):
        exp = experiments.NaturalExperiment("empty")
        result = exp.evaluate([])
        assert result.n_pairs == 0
        assert not result.rejects_null

    def test_all_ties(self):
        exp = experiments.NaturalExperiment("ties")
        result = exp.evaluate(outcomes([(1, 1)] * 10))
        assert result.n_pairs == 0
        assert result.n_ties == 10

    def test_evaluate_values(self):
        exp = experiments.NaturalExperiment("values")
        result = exp.evaluate_values([1.0, 1.0], [2.0, 0.5])
        assert result.n_pairs == 2
        assert result.n_holds == 1

    def test_evaluate_values_length_mismatch(self):
        exp = experiments.NaturalExperiment("bad")
        with pytest.raises(ExperimentError):
            exp.evaluate_values([1.0], [2.0, 3.0])

    def test_row_marks_insignificance(self):
        exp = experiments.NaturalExperiment("row")
        result = exp.evaluate(outcomes([(0, 1), (1, 0)] * 10))
        assert "*" in result.row()

    def test_row_plain_when_significant(self):
        exp = experiments.NaturalExperiment("row")
        result = exp.evaluate(outcomes([(0, 1)] * 100))
        assert "*" not in result.row()

    def test_invalid_null_probability(self):
        with pytest.raises(ExperimentError):
            experiments.NaturalExperiment("x", null_probability=1.0)

    def test_invalid_alpha(self):
        with pytest.raises(ExperimentError):
            experiments.NaturalExperiment("x", alpha=0.0)

    def test_invalid_margin(self):
        with pytest.raises(ExperimentError):
            experiments.NaturalExperiment("x", practical_margin=0.5)

    def test_fraction_nan_when_empty(self):
        import math

        result = experiments.NaturalExperiment("x").evaluate([])
        assert math.isnan(result.fraction_holds)
