"""Deterministic sharded execution, with and without a run ledger."""

import pytest

from repro.core.executor import resolve_jobs, run_sharded
from repro.exceptions import ReproError
from repro.obs import ledger as obs
from repro.obs.ledger import RunLedger


def _square(n: int) -> int:
    return n * n


def _square_and_count(n: int) -> int:
    # Records through the ambient ledger exactly like builder workers do.
    obs.count("tasks.run")
    obs.count("tasks.total_input", n)
    with obs.span(f"task/{n:03d}", shard=str(n)):
        pass
    return n * n


class TestResolveJobs:
    def test_none_means_cpu_count(self):
        assert resolve_jobs(None) >= 1

    def test_positive_passes_through(self):
        assert resolve_jobs(3) == 3

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ReproError):
            resolve_jobs(bad)


class TestRunSharded:
    def test_results_in_task_order(self):
        assert run_sharded(_square, [3, 1, 2], jobs=2) == [9, 1, 4]

    def test_serial_equals_parallel(self):
        tasks = list(range(10))
        assert run_sharded(_square, tasks, jobs=1) == run_sharded(
            _square, tasks, jobs=4
        )

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_on_result_sees_every_task_once(self, jobs):
        seen = []
        results = run_sharded(
            _square, [3, 1, 2], jobs=jobs,
            on_result=lambda index, result: seen.append((index, result)),
        )
        assert results == [9, 1, 4]
        # Completion order is scheduling-dependent; coverage is not.
        assert sorted(seen) == [(0, 9), (1, 1), (2, 4)]

    def test_on_result_streams_serially_in_order(self):
        # The serial path fires the hook after each task, in task
        # order — this is what gives the DAG's in-process backend its
        # per-stage (not per-wave) publication granularity.
        seen = []
        run_sharded(_square, [3, 1, 2], jobs=1,
                    on_result=lambda i, r: seen.append(i))
        assert seen == [0, 1, 2]


class TestRunShardedLedger:
    def test_events_merged_into_ledger(self):
        ledger = RunLedger()
        results = run_sharded(_square_and_count, [1, 2, 3], jobs=1,
                              ledger=ledger)
        assert results == [1, 4, 9]
        assert ledger.counters["tasks.run"] == 3
        assert ledger.counters["tasks.total_input"] == 6
        assert len(ledger.spans) == 3

    def test_serial_and_pool_ledgers_byte_identical(self):
        # The merged ledger is part of the determinism contract: same
        # events whether the tasks ran in-process or across a pool.
        tasks = list(range(8))
        serial, pooled = RunLedger(), RunLedger()
        run_sharded(_square_and_count, tasks, jobs=1, ledger=serial)
        run_sharded(_square_and_count, tasks, jobs=4, ledger=pooled)
        assert serial.to_jsonl() == pooled.to_jsonl()

    def test_no_ledger_means_no_wrapping(self):
        # Without a ledger the worker result comes back untouched (no
        # (result, shard) tuples leaking out).
        assert run_sharded(_square_and_count, [2], jobs=1) == [4]

    def test_worker_events_do_not_leak_into_parent_ambient(self):
        with obs.scoped() as ambient:
            ledger = RunLedger()
            run_sharded(_square_and_count, [1, 2], jobs=1, ledger=ledger)
            assert ambient.counters == {}
        assert ledger.counters["tasks.run"] == 2
