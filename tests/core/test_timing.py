"""Per-stage timing layer."""

import pickle
import time

from repro.core.timing import StageTimer, StageTiming, format_profile, measure_stage


class TestStageTimer:
    def test_stage_records_name_and_duration(self):
        timer = StageTimer()
        with timer.stage("work"):
            time.sleep(0.01)
        assert len(timer.timings) == 1
        timing = timer.timings[0]
        assert timing.name == "work"
        assert timing.wall_s >= 0.01
        assert timing.cpu_s >= 0.0

    def test_stage_records_on_exception(self):
        timer = StageTimer()
        try:
            with timer.stage("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert [t.name for t in timer.timings] == ["boom"]

    def test_add_merges_external_timing(self):
        timer = StageTimer()
        timer.add(StageTiming("remote", 1.5, 1.0))
        assert timer.total_wall_s == 1.5
        assert timer.total_cpu_s == 1.0

    def test_stages_kept_in_completion_order(self):
        timer = StageTimer()
        with timer.stage("a"):
            pass
        with timer.stage("b"):
            pass
        assert [t.name for t in timer.timings] == ["a", "b"]


class TestMeasureStage:
    def test_returns_result_and_timing(self):
        result, timing = measure_stage("double", lambda x: 2 * x, 21)
        assert result == 42
        assert timing.name == "double"
        assert timing.wall_s >= 0.0

    def test_timing_is_picklable(self):
        # Workers ship timings back through the process pool.
        _, timing = measure_stage("t", lambda: None)
        assert pickle.loads(pickle.dumps(timing)) == timing


class TestFormatProfile:
    def test_sorted_by_name_with_total(self):
        # Name order, not duration order: durations vary run to run, so
        # a duration sort would shuffle rows across --jobs values.
        text = format_profile(
            [StageTiming("slow", 2.0, 1.5), StageTiming("fast", 0.1, 0.1)]
        )
        lines = text.splitlines()
        assert lines[0] == "analysis profile"
        assert "fast" in lines[1]
        assert "slow" in lines[2]
        assert "total" in lines[-1]
        assert "2.100" in lines[-1]  # summed wall seconds

    def test_row_order_independent_of_durations(self):
        # The same stages with permuted durations yield rows in the
        # same order — the byte-stability contract behind jobs=1 vs
        # jobs=N profile comparisons (with timing columns masked).
        a = format_profile(
            [StageTiming("x", 5.0, 4.0), StageTiming("y", 0.1, 0.1)]
        )
        b = format_profile(
            [StageTiming("x", 0.1, 0.1), StageTiming("y", 5.0, 4.0)]
        )
        names_a = [line.split()[0] for line in a.splitlines()[1:]]
        names_b = [line.split()[0] for line in b.splitlines()[1:]]
        assert names_a == names_b == ["x", "y", "total"]

    def test_custom_title(self):
        text = format_profile([StageTiming("s", 0.0, 0.0)], title="report stages")
        assert text.splitlines()[0] == "report stages"

    def test_empty_profile_still_renders_total(self):
        assert "total" in format_profile([])
