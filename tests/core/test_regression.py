"""Per-market price~capacity regression."""

import numpy as np
import pytest
import scipy.stats

from repro.core import regression
from repro.exceptions import AnalysisError


class TestFitPriceCapacity:
    def test_exact_line(self):
        caps = [1.0, 10.0, 100.0]
        prices = [20.0 + 0.5 * c for c in caps]
        fit = regression.fit_price_capacity(caps, prices)
        assert fit.slope_usd_per_mbps == pytest.approx(0.5)
        assert fit.intercept_usd == pytest.approx(20.0)
        assert fit.correlation == pytest.approx(1.0)

    def test_matches_scipy_linregress(self):
        rng = np.random.default_rng(3)
        caps = rng.uniform(1, 100, 30)
        prices = 15 + 0.7 * caps + rng.normal(0, 5, 30)
        fit = regression.fit_price_capacity(caps, prices)
        expected = scipy.stats.linregress(caps, prices)
        assert fit.slope_usd_per_mbps == pytest.approx(expected.slope)
        assert fit.intercept_usd == pytest.approx(expected.intercept)
        assert fit.correlation == pytest.approx(expected.rvalue)

    def test_predicted_price(self):
        fit = regression.fit_price_capacity([1.0, 2.0], [10.0, 12.0])
        assert fit.predicted_price(3.0) == pytest.approx(14.0)

    def test_correlation_thresholds(self):
        fit = regression.MarketRegression(1.0, 0.0, 0.5, 10)
        assert fit.moderately_correlated
        assert not fit.strongly_correlated
        strong = regression.MarketRegression(1.0, 0.0, 0.9, 10)
        assert strong.strongly_correlated

    def test_threshold_boundaries_exclusive(self):
        # The paper's wording is "> 0.4" and "> 0.8".
        assert not regression.MarketRegression(1.0, 0.0, 0.4, 5).moderately_correlated
        assert not regression.MarketRegression(1.0, 0.0, 0.8, 5).strongly_correlated

    def test_negative_correlation_not_moderate(self):
        fit = regression.MarketRegression(-1.0, 0.0, -0.9, 10)
        assert not fit.moderately_correlated

    def test_single_plan_rejected(self):
        with pytest.raises(AnalysisError):
            regression.fit_price_capacity([1.0], [20.0])

    def test_constant_capacity_rejected(self):
        with pytest.raises(AnalysisError):
            regression.fit_price_capacity([2.0, 2.0], [10.0, 20.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            regression.fit_price_capacity([1.0, 2.0], [10.0])

    def test_n_plans_recorded(self):
        fit = regression.fit_price_capacity([1, 2, 4], [10, 11, 13])
        assert fit.n_plans == 3
