"""Capacity classes and bin machinery."""

import math
from decimal import Decimal

import numpy as np
import pytest

from repro.core import binning
from repro.exceptions import BinningError


class TestBin:
    def test_lower_edge_exclusive(self):
        b = binning.Bin(1.0, 2.0)
        assert 1.0 not in b

    def test_upper_edge_inclusive(self):
        b = binning.Bin(1.0, 2.0)
        assert 2.0 in b

    def test_interior(self):
        assert 1.5 in binning.Bin(1.0, 2.0)

    def test_outside(self):
        b = binning.Bin(1.0, 2.0)
        assert 0.5 not in b
        assert 2.5 not in b

    def test_non_number_not_contained(self):
        assert "x" not in binning.Bin(1.0, 2.0)
        assert None not in binning.Bin(1.0, 2.0)
        assert complex(1.5, 0.0) not in binning.Bin(1.0, 2.0)

    @pytest.mark.parametrize(
        "value",
        [np.float32(1.5), np.float64(1.5), np.int64(2), Decimal("1.5")],
    )
    def test_non_builtin_real_numbers_contained(self, value):
        # Regression: the old isinstance(int, float) gate silently
        # rejected numpy scalars and Decimal, dropping those users from
        # BinSpec.group.
        assert value in binning.Bin(1.0, 2.0)

    @pytest.mark.parametrize(
        "value", [np.float32(0.5), np.float64(2.5), Decimal("0.5")]
    )
    def test_non_builtin_reals_outside(self, value):
        assert value not in binning.Bin(1.0, 2.0)

    def test_nan_not_contained(self):
        assert float("nan") not in binning.Bin(1.0, 2.0)
        assert np.float64("nan") not in binning.Bin(1.0, 2.0)

    def test_empty_bin_rejected(self):
        with pytest.raises(BinningError):
            binning.Bin(2.0, 2.0)

    def test_label(self):
        assert binning.Bin(3.2, 6.4).label() == "(3.2, 6.4] Mbps"

    def test_label_infinite(self):
        assert "inf" in binning.Bin(32.0, math.inf).label()

    def test_width(self):
        assert binning.Bin(1.0, 3.0).width == 2.0


class TestCapacityClass:
    def test_paper_class_definition(self):
        # Class k is (100 kbps * 2^(k-1), 100 kbps * 2^k].
        assert binning.capacity_class(0.15) == 1
        assert binning.capacity_class(0.2) == 1
        assert binning.capacity_class(0.201) == 2
        assert binning.capacity_class(0.4) == 2

    def test_upper_edges_belong_to_class(self):
        for k in range(1, 12):
            upper = binning.CAPACITY_CLASS_BASE_MBPS * 2**k
            assert binning.capacity_class(upper) == k

    def test_just_above_edge_next_class(self):
        for k in range(1, 10):
            upper = binning.CAPACITY_CLASS_BASE_MBPS * 2**k
            assert binning.capacity_class(upper * 1.0001) == k + 1

    def test_sub_base_maps_to_class_one(self):
        assert binning.capacity_class(0.05) == 1

    def test_non_positive_rejected(self):
        with pytest.raises(BinningError):
            binning.capacity_class(0.0)

    def test_bounds_round_trip(self):
        for k in range(1, 12):
            bounds = binning.capacity_class_bounds(k)
            mid = math.sqrt(bounds.low * bounds.high)
            assert binning.capacity_class(mid) == k

    def test_bounds_invalid_class(self):
        with pytest.raises(BinningError):
            binning.capacity_class_bounds(0)

    def test_spec_covers_contiguously(self):
        spec = binning.capacity_class_spec(10)
        for left, right in zip(spec, list(spec)[1:]):
            assert left.high == right.low


class TestCapacityClassBoundsConsistency:
    """``capacity_class`` and ``capacity_class_bounds`` must agree at,
    just below, and just above every class edge for classes 1..14."""

    @pytest.mark.parametrize("k", range(1, 15))
    def test_upper_edge_belongs_to_class_and_bin(self, k):
        upper = binning.capacity_class_bounds(k).high
        assert binning.capacity_class(upper) == k
        assert upper in binning.capacity_class_bounds(k)

    @pytest.mark.parametrize("k", range(1, 15))
    def test_just_below_upper_edge_stays_in_class(self, k):
        bounds = binning.capacity_class_bounds(k)
        value = math.nextafter(bounds.high, 0.0)
        assert binning.capacity_class(value) == k
        assert value in bounds

    @pytest.mark.parametrize("k", range(1, 15))
    def test_just_above_upper_edge_is_next_class(self, k):
        bounds = binning.capacity_class_bounds(k)
        value = math.nextafter(bounds.high, math.inf)
        assert binning.capacity_class(value) == k + 1
        assert value not in bounds
        assert value in binning.capacity_class_bounds(k + 1)

    @pytest.mark.parametrize("k", range(2, 15))
    def test_lower_edge_belongs_to_previous_class(self, k):
        bounds = binning.capacity_class_bounds(k)
        assert bounds.low not in bounds
        assert binning.capacity_class(bounds.low) == k - 1

    @pytest.mark.parametrize("k", range(1, 15))
    def test_spec_agrees_with_scalar_classifier(self, k):
        spec = binning.capacity_class_spec(15)
        bounds = binning.capacity_class_bounds(k)
        for value in (
            math.nextafter(bounds.low, math.inf),
            math.sqrt(bounds.low * bounds.high),
            bounds.high,
        ):
            assert spec.index_of(value) == binning.capacity_class(value) - 1


class TestBinSpec:
    def test_index_of(self):
        spec = binning.explicit_bins([(0.0, 1.0), (1.0, 8.0)])
        assert spec.index_of(0.5) == 0
        assert spec.index_of(1.0) == 0
        assert spec.index_of(4.0) == 1
        assert spec.index_of(9.0) is None

    def test_bin_of_none_outside(self):
        spec = binning.explicit_bins([(1.0, 2.0)])
        assert spec.bin_of(5.0) is None

    def test_overlapping_rejected(self):
        with pytest.raises(BinningError):
            binning.explicit_bins([(0.0, 2.0), (1.0, 3.0)])

    def test_gaps_allowed(self):
        spec = binning.explicit_bins([(0.0, 1.0), (2.0, 3.0)])
        assert spec.bin_of(1.5) is None

    def test_empty_rejected(self):
        with pytest.raises(BinningError):
            binning.BinSpec([])

    def test_ordering_normalized(self):
        spec = binning.explicit_bins([(2.0, 3.0), (0.0, 1.0)])
        assert spec[0].low == 0.0

    def test_group_drops_out_of_range(self):
        spec = binning.explicit_bins([(0.0, 1.0)])
        grouped = spec.group([(0.5, "a"), (2.0, "b")])
        assert sum(len(v) for v in grouped.values()) == 1

    def test_group_collects_payloads(self):
        spec = binning.explicit_bins([(0.0, 1.0), (1.0, 2.0)])
        grouped = spec.group([(0.5, "a"), (0.7, "b"), (1.5, "c")])
        assert grouped[spec[0]] == ["a", "b"]
        assert grouped[spec[1]] == ["c"]

    def test_len_and_getitem(self):
        spec = binning.explicit_bins([(0.0, 1.0), (1.0, 2.0)])
        assert len(spec) == 2
        assert spec[1].high == 2.0


class TestGeometricBins:
    def test_doubling(self):
        spec = binning.geometric_bins(0.1, 3)
        assert spec[0].low == pytest.approx(0.1)
        assert spec[0].high == pytest.approx(0.2)
        assert spec[2].high == pytest.approx(0.8)

    def test_invalid_base_rejected(self):
        with pytest.raises(BinningError):
            binning.geometric_bins(0.0, 3)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(BinningError):
            binning.geometric_bins(1.0, 3, ratio=1.0)


class TestPaperBinConstants:
    def test_case_study_tiers_cover_all_capacities(self):
        spec = binning.explicit_bins(binning.CASE_STUDY_TIERS)
        for capacity in (0.3, 1.0, 5.0, 12.0, 20.0, 100.0, 900.0):
            assert spec.bin_of(capacity) is not None

    def test_price_bins_match_paper(self):
        spec = binning.explicit_bins(binning.PRICE_OF_ACCESS_BINS_USD)
        assert spec.index_of(20.0) == 0
        assert spec.index_of(25.0) == 0
        assert spec.index_of(40.0) == 1
        assert spec.index_of(60.0) == 1
        assert spec.index_of(150.0) == 2

    def test_upgrade_cost_bins_match_paper(self):
        spec = binning.explicit_bins(binning.UPGRADE_COST_BINS_USD)
        assert spec.index_of(0.5) == 0
        assert spec.index_of(0.9) == 1
        assert spec.index_of(40.0) == 2

    def test_latency_bins_match_table7(self):
        spec = binning.explicit_bins(binning.LATENCY_BINS_MS)
        assert len(spec) == 5
        assert spec[4].low == 512.0
        assert spec[4].high == 2048.0

    def test_loss_bins_match_table8(self):
        spec = binning.explicit_bins(binning.LOSS_BINS_FRACTION)
        # Fractions of 0.01% / 0.1% / 1% / 15%.
        assert spec[0].high == pytest.approx(1e-4)
        assert spec[3].high == pytest.approx(0.15)

    def test_upgrade_tiers_match_fig5(self):
        assert binning.UPGRADE_TIERS_MBPS[0] == (0.25, 1.0)
        assert binning.UPGRADE_TIERS_MBPS[-1] == (64.0, 256.0)
