"""Service-switch detection."""

import pytest

from repro.core import upgrades
from repro.exceptions import AnalysisError


def period(
    user="u1",
    isp="ISP-A",
    prefix="10.0.0.0/24",
    city="Northton",
    start=0.0,
    end=2.0,
    capacity=2.0,
    mean=0.1,
    peak=0.5,
):
    return upgrades.ServicePeriod(
        user_id=user,
        network=upgrades.NetworkId(isp, prefix, city),
        start_day=start,
        end_day=end,
        capacity_mbps=capacity,
        mean_mbps=mean,
        peak_mbps=peak,
        mean_no_bt_mbps=mean * 0.8,
        peak_no_bt_mbps=peak * 0.8,
    )


class TestServicePeriod:
    def test_duration(self):
        assert period(start=1.0, end=3.5).duration_days == 2.5

    def test_zero_duration_rejected(self):
        with pytest.raises(AnalysisError):
            period(start=1.0, end=1.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(AnalysisError):
            period(capacity=0.0)

    def test_network_id_str(self):
        net = upgrades.NetworkId("ISP", "1.2.3.0/24", "City")
        assert str(net) == "ISP/1.2.3.0/24/City"


class TestServiceSwitch:
    def test_upgrade_classification(self):
        switch = upgrades.ServiceSwitch(
            period(capacity=2.0), period(prefix="p2", start=3, end=5, capacity=4.0)
        )
        assert switch.is_upgrade
        assert not switch.is_downgrade
        assert switch.capacity_ratio == 2.0

    def test_downgrade_classification(self):
        switch = upgrades.ServiceSwitch(
            period(capacity=4.0), period(prefix="p2", start=3, end=5, capacity=2.0)
        )
        assert switch.is_downgrade

    def test_deltas_with_and_without_bt(self):
        before = period(capacity=2.0, mean=0.1, peak=0.5)
        after = period(prefix="p2", start=3, end=5, capacity=4.0, mean=0.3, peak=1.0)
        switch = upgrades.ServiceSwitch(before, after)
        assert switch.delta_mean() == pytest.approx(0.2)
        assert switch.delta_peak() == pytest.approx(0.5)
        assert switch.delta_mean(include_bt=False) == pytest.approx(0.16)
        assert switch.delta_peak(include_bt=False) == pytest.approx(0.4)


class TestDetectSwitches:
    def test_detects_capacity_change(self):
        periods = [
            period(end=2.0),
            period(prefix="p2", start=3.0, end=5.0, capacity=8.0),
        ]
        switches = upgrades.detect_switches(periods)
        assert len(switches) == 1
        assert switches[0].is_upgrade

    def test_same_network_not_a_switch(self):
        periods = [period(end=2.0), period(start=3.0, end=5.0, capacity=8.0)]
        assert upgrades.detect_switches(periods) == []

    def test_small_change_filtered(self):
        periods = [
            period(end=2.0, capacity=2.0),
            period(prefix="p2", start=3.0, end=5.0, capacity=2.2),
        ]
        assert upgrades.detect_switches(periods) == []

    def test_downgrade_detected(self):
        periods = [
            period(end=2.0, capacity=8.0),
            period(prefix="p2", start=3.0, end=5.0, capacity=2.0),
        ]
        assert len(upgrades.detect_switches(periods)) == 1

    def test_multiple_switches(self):
        periods = [
            period(end=1.0, capacity=1.0),
            period(prefix="p2", start=2.0, end=3.0, capacity=2.0),
            period(prefix="p3", start=4.0, end=5.0, capacity=8.0),
        ]
        assert len(upgrades.detect_switches(periods)) == 2

    def test_mixed_users_rejected(self):
        periods = [period(user="a", end=2.0), period(user="b", start=3.0, end=4.0)]
        with pytest.raises(AnalysisError):
            upgrades.detect_switches(periods)

    def test_overlapping_periods_rejected(self):
        periods = [
            period(end=2.0),
            period(prefix="p2", start=1.0, end=3.0, capacity=8.0),
        ]
        with pytest.raises(AnalysisError):
            upgrades.detect_switches(periods)

    def test_invalid_ratio_rejected(self):
        with pytest.raises(AnalysisError):
            upgrades.detect_switches([period()], min_capacity_ratio=1.0)


class TestSlowFastObservation:
    def test_pairs_extremes(self):
        periods = [
            period(end=1.0, capacity=1.0),
            period(prefix="p2", start=2.0, end=3.0, capacity=4.0),
            period(prefix="p3", start=4.0, end=5.0, capacity=2.0),
        ]
        obs = upgrades.slow_fast_observation(periods)
        assert obs is not None
        assert obs.slow.capacity_mbps == 1.0
        assert obs.fast.capacity_mbps == 4.0
        assert obs.capacity_ratio == 4.0

    def test_single_period_none(self):
        assert upgrades.slow_fast_observation([period()]) is None

    def test_insufficient_spread_none(self):
        periods = [
            period(end=1.0, capacity=2.0),
            period(prefix="p2", start=2.0, end=3.0, capacity=2.1),
        ]
        assert upgrades.slow_fast_observation(periods) is None

    def test_same_network_extremes_none(self):
        # Both stays on the same network id: capacity noise, not a switch.
        periods = [
            period(end=1.0, capacity=1.0),
            period(start=2.0, end=3.0, capacity=4.0),
        ]
        assert upgrades.slow_fast_observation(periods) is None

    def test_multi_user_rejected(self):
        periods = [period(user="a"), period(user="b", start=3.0, end=4.0)]
        with pytest.raises(AnalysisError):
            upgrades.slow_fast_observation(periods)
