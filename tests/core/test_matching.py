"""Nearest-neighbor matching with a caliper."""

import math

import pytest

from repro.core import matching
from repro.exceptions import MatchingError


class TestCaliperCompatible:
    def test_within_25_percent(self):
        # The paper's example: 50 ms and 62 ms are similar.
        assert matching.caliper_compatible(50.0, 62.0)

    def test_beyond_25_percent(self):
        assert not matching.caliper_compatible(50.0, 63.0)

    def test_symmetric(self):
        assert matching.caliper_compatible(62.0, 50.0)

    def test_equal_values(self):
        assert matching.caliper_compatible(3.0, 3.0)

    def test_both_zero_compatible(self):
        assert matching.caliper_compatible(0.0, 0.0)

    def test_zero_vs_large_incompatible(self):
        assert not matching.caliper_compatible(0.0, 1.0)

    def test_tiny_values_treated_as_zero(self):
        assert matching.caliper_compatible(1e-9, 1e-8)

    def test_custom_caliper(self):
        assert matching.caliper_compatible(10.0, 14.0, caliper=0.5)
        assert not matching.caliper_compatible(10.0, 16.0, caliper=0.5)

    def test_invalid_caliper_rejected(self):
        with pytest.raises(MatchingError):
            matching.caliper_compatible(1.0, 1.0, caliper=0.0)

    def test_negative_value_rejected(self):
        with pytest.raises(MatchingError):
            matching.caliper_compatible(-1.0, 1.0)

    def test_nan_rejected(self):
        # NaN marks a missing covariate and must be excluded *before*
        # matching; silently falling through the comparisons would make
        # every NaN pair "incompatible" without ever surfacing the bug.
        for a, b in ((math.nan, 1.0), (1.0, math.nan), (math.nan, math.nan)):
            with pytest.raises(MatchingError):
                matching.caliper_compatible(a, b)


class TestFloorConstants:
    """The zero floors are pinned: analysis code imports them from here."""

    def test_loss_floor_single_source(self):
        from repro.analysis.common import CONFOUNDER_EXTRACTORS

        record = type("U", (), {"loss_fraction": 0.0})()
        assert CONFOUNDER_EXTRACTORS["loss"](record) == matching.LOSS_MATCH_FLOOR

    def test_loss_floor_dominates_zero_floor(self):
        # The matcher floors every confounder at ZERO_FLOOR as a last
        # resort; a loss floor below it would be silently overridden.
        assert matching.LOSS_MATCH_FLOOR >= matching.ZERO_FLOOR

    def test_caliper_behavior_at_loss_floor(self):
        # Two loss-free lines floored at LOSS_MATCH_FLOOR are similar;
        # a floored line vs. 1% loss is not.
        floor = matching.LOSS_MATCH_FLOOR
        assert matching.caliper_compatible(floor, floor)
        assert matching.caliper_compatible(floor, floor * 1.25)
        assert not matching.caliper_compatible(floor, floor * 1.26)
        assert not matching.caliper_compatible(floor, 0.01)

    def test_caliper_behavior_at_zero_floor(self):
        # Values at or below ZERO_FLOOR collapse to "zero": mutually
        # compatible, incompatible with anything materially larger.
        floor = matching.ZERO_FLOOR
        assert matching.caliper_compatible(floor, floor / 10.0)
        assert matching.caliper_compatible(0.0, floor)
        assert matching.caliper_compatible(floor, floor * 1.25)
        assert not matching.caliper_compatible(floor, floor * 1.26)

    def test_pinned_values(self):
        # Regression pin: changing either floor changes which users the
        # paper's experiments can pair, so it must be a conscious edit.
        assert matching.LOSS_MATCH_FLOOR == 1e-4
        assert matching.ZERO_FLOOR == 1e-6


def by_value(unit):
    return unit["v"]


def by_weight(unit):
    return unit["w"]


class TestMatchPairs:
    def test_exact_partners_matched(self):
        control = [{"v": 1.0}, {"v": 10.0}]
        treatment = [{"v": 10.0}, {"v": 1.0}]
        summary = matching.match_pairs(control, treatment, [by_value])
        assert summary.n_matched == 2
        for pair in summary.pairs:
            assert pair.control["v"] == pair.treatment["v"]

    def test_caliper_blocks_distant_pairs(self):
        control = [{"v": 1.0}]
        treatment = [{"v": 2.0}]
        summary = matching.match_pairs(control, treatment, [by_value])
        assert summary.n_matched == 0

    def test_one_to_one_without_replacement(self):
        control = [{"v": 1.0}]
        treatment = [{"v": 1.0}, {"v": 1.01}, {"v": 1.02}]
        summary = matching.match_pairs(control, treatment, [by_value])
        assert summary.n_matched == 1

    def test_greedy_prefers_closest(self):
        control = [{"v": 1.0}]
        treatment = [{"v": 1.2}, {"v": 1.01}]
        summary = matching.match_pairs(control, treatment, [by_value])
        assert summary.pairs[0].treatment["v"] == 1.01

    def test_multiple_confounders_all_must_match(self):
        control = [{"v": 1.0, "w": 1.0}]
        treatment = [{"v": 1.0, "w": 5.0}, {"v": 1.1, "w": 1.1}]
        summary = matching.match_pairs(
            control, treatment, [by_value, by_weight]
        )
        assert summary.n_matched == 1
        assert summary.pairs[0].treatment["w"] == 1.1

    def test_empty_pools(self):
        assert matching.match_pairs([], [{"v": 1.0}], [by_value]).n_matched == 0
        assert matching.match_pairs([{"v": 1.0}], [], [by_value]).n_matched == 0

    def test_max_pairs_cap(self):
        control = [{"v": 1.0 + i * 1e-4} for i in range(10)]
        treatment = [{"v": 1.0 + i * 1e-4} for i in range(10)]
        summary = matching.match_pairs(
            control, treatment, [by_value], max_pairs=3
        )
        assert summary.n_matched == 3

    def test_deterministic(self):
        control = [{"v": 1.0 + 0.01 * i} for i in range(20)]
        treatment = [{"v": 1.0 + 0.011 * i} for i in range(20)]
        a = matching.match_pairs(control, treatment, [by_value])
        b = matching.match_pairs(control, treatment, [by_value])
        assert [
            (p.control["v"], p.treatment["v"]) for p in a.pairs
        ] == [(p.control["v"], p.treatment["v"]) for p in b.pairs]

    def test_all_pairs_respect_caliper(self):
        control = [{"v": float(i)} for i in range(1, 50)]
        treatment = [{"v": float(i) * 1.2} for i in range(1, 50)]
        summary = matching.match_pairs(control, treatment, [by_value])
        for pair in summary.pairs:
            assert matching.caliper_compatible(
                pair.control["v"], pair.treatment["v"]
            )

    def test_match_rate(self):
        control = [{"v": 1.0}, {"v": 100.0}]
        treatment = [{"v": 1.0}]
        summary = matching.match_pairs(control, treatment, [by_value])
        assert summary.match_rate == 1.0

    def test_no_confounders_rejected(self):
        with pytest.raises(MatchingError):
            matching.match_pairs([{"v": 1}], [{"v": 1}], [])

    def test_nan_confounder_rejected(self):
        with pytest.raises(MatchingError):
            matching.match_pairs(
                [{"v": float("nan")}], [{"v": 1.0}], [by_value]
            )

    def test_distance_is_log_scale(self):
        # 10 vs 12 (ratio 1.2) is closer than 10 vs 8 (ratio 1.25).
        control = [{"v": 10.0}]
        treatment = [{"v": 8.1}, {"v": 12.0}]
        summary = matching.match_pairs(control, treatment, [by_value])
        assert summary.pairs[0].treatment["v"] == 12.0

    def test_chunked_path_equivalent(self):
        # Large-ish pools exercise the chunked candidate enumeration.
        control = [{"v": 1.0 + (i % 37) * 0.001} for i in range(300)]
        treatment = [{"v": 1.0 + (i % 41) * 0.001} for i in range(300)]
        summary = matching.match_pairs(control, treatment, [by_value])
        assert summary.n_matched == 300


def _five_confounder_pools(n=40):
    keys = ("a", "b", "c", "d", "e")
    control = [
        {k: 1.0 + ((i * 7 + j) % 11) * 0.01 for j, k in enumerate(keys)}
        for i in range(n)
    ]
    treatment = [
        {k: 1.0 + ((i * 5 + j) % 13) * 0.01 for j, k in enumerate(keys)}
        for i in range(n)
    ]
    extractors = [lambda u, k=k: u[k] for k in keys]
    return control, treatment, extractors


class TestCandidateChunkRows:
    def test_block_respects_cell_budget_with_five_confounders(self):
        # The candidate block materializes chunk * treatment * confounder
        # float64 cells; the heuristic must bound that product, not just
        # the first two dimensions.
        n_treatment, n_confounders = 3_000, 5
        chunk = matching.candidate_chunk_rows(n_treatment, n_confounders)
        assert chunk >= 1
        assert (
            chunk * n_treatment * n_confounders
            <= matching.CANDIDATE_CELL_BUDGET
        )

    def test_bound_holds_across_pool_shapes(self):
        for n_treatment in (1, 100, 10_000, 1_000_000):
            for n_confounders in (1, 2, 5):
                chunk = matching.candidate_chunk_rows(n_treatment, n_confounders)
                if chunk > 1:
                    assert (
                        chunk * n_treatment * n_confounders
                        <= matching.CANDIDATE_CELL_BUDGET
                    )

    def test_scales_inversely_with_confounder_count(self):
        assert matching.candidate_chunk_rows(1_000, 5) == (
            matching.CANDIDATE_CELL_BUDGET // (1_000 * 5)
        )

    def test_floor_of_one_row(self):
        assert matching.candidate_chunk_rows(10**9, 5) == 1

    def test_chunked_five_confounder_matching_equivalent(self, monkeypatch):
        control, treatment, extractors = _five_confounder_pools()
        baseline = matching.match_pairs(control, treatment, extractors)
        monkeypatch.setattr(
            matching, "candidate_chunk_rows", lambda *args, **kwargs: 3
        )
        chunked = matching.match_pairs(control, treatment, extractors)
        assert [
            (p.control, p.treatment, p.distance) for p in chunked.pairs
        ] == [(p.control, p.treatment, p.distance) for p in baseline.pairs]


class TestNonFiniteConfounders:
    """Non-finite covariates must be rejected, never silently matched.

    The original guard caught only NaN: two users whose extractor
    produced ``inf`` satisfied ``inf <= 1.25 * inf`` and were "matched"
    on a meaningless covariate. Every non-finite value now raises
    :class:`MatchingError` from :func:`caliper_compatible` all the way
    through :func:`match_pairs` / :func:`match_pairs_arrays`.
    """

    NON_FINITE = (math.inf, -math.inf, math.nan)

    def test_caliper_compatible_rejects_every_non_finite_pair(self):
        for bad in self.NON_FINITE:
            for a, b in ((bad, 1.0), (1.0, bad), (bad, bad)):
                with pytest.raises(MatchingError, match="finite"):
                    matching.caliper_compatible(a, b)

    def test_two_infinities_never_compatible(self):
        # The exact regression: inf <= 1.25 * inf is True, so the
        # ratio test alone would call two infinite covariates similar.
        with pytest.raises(MatchingError, match="finite"):
            matching.caliper_compatible(math.inf, math.inf)

    def test_match_pairs_rejects_inf_confounder(self):
        for bad in self.NON_FINITE:
            with pytest.raises(MatchingError, match="invalid value"):
                matching.match_pairs(
                    [{"v": bad}], [{"v": 1.0}], [by_value]
                )
            with pytest.raises(MatchingError, match="invalid value"):
                matching.match_pairs(
                    [{"v": 1.0}], [{"v": bad}], [by_value]
                )

    def test_match_pairs_rejects_mixed_finite_and_infinite_pool(self):
        control = [{"v": 1.0}, {"v": math.inf}, {"v": 2.0}]
        with pytest.raises(MatchingError, match="invalid value"):
            matching.match_pairs(control, [{"v": 1.0}], [by_value])

    def test_match_pairs_arrays_rejects_non_finite(self):
        import numpy as np

        for bad in self.NON_FINITE:
            with pytest.raises(MatchingError, match="invalid value"):
                matching.match_pairs_arrays(
                    [np.array([1.0, bad])], [np.array([1.0, 2.0])]
                )


class TestMatchPairsArrays:
    """The columnar matcher is the object matcher on extracted columns."""

    def _pools(self, n=60):
        control, treatment, extractors = _five_confounder_pools(n)
        import numpy as np

        control_cols = [
            np.array([e(u) for u in control]) for e in extractors
        ]
        treatment_cols = [
            np.array([e(u) for u in treatment]) for e in extractors
        ]
        return control, treatment, extractors, control_cols, treatment_cols

    def test_identical_pairs_and_distances(self):
        control, treatment, extractors, ccols, tcols = self._pools()
        by_object = matching.match_pairs(control, treatment, extractors)
        by_column = matching.match_pairs_arrays(ccols, tcols)
        # Recover indices by identity: equal-valued units recur in the
        # pools, so list.index() would alias distinct members.
        control_idx = {id(u): i for i, u in enumerate(control)}
        treatment_idx = {id(u): i for i, u in enumerate(treatment)}
        assert [
            (
                control_idx[id(p.control)],
                treatment_idx[id(p.treatment)],
                p.distance,
            )
            for p in by_object.pairs
        ] == [(p.control, p.treatment, p.distance) for p in by_column.pairs]
        assert by_object.n_control == by_column.n_control
        assert by_object.n_treatment == by_column.n_treatment

    def test_pairs_are_indices(self):
        import numpy as np

        summary = matching.match_pairs_arrays(
            [np.array([1.0, 50.0])], [np.array([50.0, 1.0])]
        )
        assert summary.n_matched == 2
        assert {(p.control, p.treatment) for p in summary.pairs} == {
            (0, 1), (1, 0)
        }

    def test_empty_pool(self):
        import numpy as np

        summary = matching.match_pairs_arrays(
            [np.array([])], [np.array([1.0])]
        )
        assert summary.n_matched == 0

    def test_mismatched_lengths_rejected(self):
        import numpy as np

        with pytest.raises(MatchingError):
            matching.match_pairs_arrays(
                [np.array([1.0]), np.array([1.0, 2.0])],
                [np.array([1.0]), np.array([1.0])],
            )

    def test_no_confounders_rejected(self):
        with pytest.raises(MatchingError):
            matching.match_pairs_arrays([], [])
