"""Statistical primitives, cross-checked against scipy."""

import math

import numpy as np
import pytest
import scipy.special
import scipy.stats

from repro.core import stats
from repro.exceptions import AnalysisError


class TestLogBinomialPmf:
    def test_matches_scipy(self):
        for n, k, p in [(10, 3, 0.5), (100, 50, 0.5), (7, 0, 0.2), (7, 7, 0.9)]:
            expected = scipy.stats.binom.logpmf(k, n, p)
            assert stats.log_binomial_pmf(k, n, p) == pytest.approx(expected)

    def test_degenerate_p_zero(self):
        assert stats.log_binomial_pmf(0, 5, 0.0) == 0.0
        assert stats.log_binomial_pmf(1, 5, 0.0) == -math.inf

    def test_degenerate_p_one(self):
        assert stats.log_binomial_pmf(5, 5, 1.0) == 0.0
        assert stats.log_binomial_pmf(4, 5, 1.0) == -math.inf

    def test_k_out_of_range_rejected(self):
        with pytest.raises(AnalysisError):
            stats.log_binomial_pmf(6, 5, 0.5)

    def test_invalid_p_rejected(self):
        with pytest.raises(AnalysisError):
            stats.log_binomial_pmf(1, 5, 1.5)


class TestBinomialSf:
    @pytest.mark.parametrize(
        "k,n,p",
        [(5, 10, 0.5), (60, 100, 0.5), (1, 3, 0.25), (400, 1000, 0.4),
         (999, 1000, 0.5), (0, 10, 0.5), (10, 10, 0.5)],
    )
    def test_matches_scipy_sf(self, k, n, p):
        expected = scipy.stats.binom.sf(k - 1, n, p)
        assert stats.binomial_sf(k, n, p) == pytest.approx(expected, rel=1e-10)

    def test_k_zero_is_one(self):
        assert stats.binomial_sf(0, 10, 0.3) == 1.0

    def test_k_above_n_is_zero(self):
        assert stats.binomial_sf(11, 10, 0.3) == 0.0

    def test_large_n_stays_in_unit_interval(self):
        value = stats.binomial_sf(100_100, 200_000, 0.5)
        assert 0.0 <= value <= 1.0

    def test_negative_n_rejected(self):
        with pytest.raises(AnalysisError):
            stats.binomial_sf(1, -1, 0.5)


class TestRegularizedIncompleteBeta:
    @pytest.mark.parametrize(
        "a,b,x",
        [(1.0, 1.0, 0.3), (2.5, 3.5, 0.7), (50.0, 2.0, 0.9),
         (500.0, 500.0, 0.5), (10.0, 90.0, 0.05)],
    )
    def test_matches_scipy_betainc(self, a, b, x):
        expected = scipy.special.betainc(a, b, x)
        assert stats.regularized_incomplete_beta(a, b, x) == pytest.approx(
            expected, rel=1e-12
        )

    def test_boundaries(self):
        assert stats.regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
        assert stats.regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(AnalysisError):
            stats.regularized_incomplete_beta(0.0, 1.0, 0.5)
        with pytest.raises(AnalysisError):
            stats.regularized_incomplete_beta(1.0, 1.0, 1.5)


class TestBinomialSfLargeN:
    """Continued-fraction tail vs scipy.stats.binomtest, deep tail included.

    The log-space incomplete-beta evaluation is O(1) in n, so exactness
    must hold where the old O(n) summation was slowest: n of 100k+.
    """

    @pytest.mark.parametrize(
        "k,n",
        [
            # n = 10: every tail depth is reachable directly.
            (6, 10), (9, 10), (10, 10),
            # n = 1 000: moderate and deep tail (p ~ 1e-3 ... 1e-89).
            (530, 1_000), (600, 1_000), (650, 1_000),
            # n = 100 000: the target scale; k = 51 000 is p ~ 1e-10,
            # k = 52 500 is p ~ 1e-56.
            (50_100, 100_000), (51_000, 100_000), (52_500, 100_000),
        ],
    )
    def test_matches_scipy_binomtest(self, k, n):
        expected = scipy.stats.binomtest(k, n, 0.5, alternative="greater")
        assert stats.binomial_sf(k, n, 0.5) == pytest.approx(
            expected.pvalue, rel=1e-8
        )

    def test_underflowed_deep_tail_is_zero(self):
        # P[X >= 60 000] for Bin(100 000, 0.5) is ~1e-876: below the
        # smallest double, exactly like scipy reports it.
        assert stats.binomial_sf(60_000, 100_000, 0.5) == 0.0
        assert scipy.stats.binom.sf(59_999, 100_000, 0.5) == 0.0

    def test_biased_null_probability(self):
        expected = scipy.stats.binomtest(400, 1_000, 0.3, alternative="greater")
        assert stats.binomial_sf(400, 1_000, 0.3) == pytest.approx(
            expected.pvalue, rel=1e-10
        )

    def test_degenerate_p(self):
        assert stats.binomial_sf(1, 100_000, 0.0) == 0.0
        assert stats.binomial_sf(100_000, 100_000, 1.0) == 1.0

    def test_invalid_p_rejected(self):
        with pytest.raises(AnalysisError):
            stats.binomial_sf(5, 10, 1.5)


class TestBinomialTestGreater:
    def test_matches_scipy_binomtest(self):
        result = stats.binomial_test_greater(115, 171, 0.5)
        expected = scipy.stats.binomtest(115, 171, 0.5, alternative="greater")
        assert result.p_value == pytest.approx(expected.pvalue, rel=1e-10)

    def test_paper_table1_scale(self):
        # Roughly the paper's Table 1: 70.3% of ~520 pairs gives a
        # p-value around 1e-36.
        result = stats.binomial_test_greater(366, 520, 0.5)
        assert result.p_value < 1e-20

    def test_fraction(self):
        result = stats.binomial_test_greater(60, 100)
        assert result.fraction == pytest.approx(0.6)

    def test_zero_trials_is_inconclusive(self):
        result = stats.binomial_test_greater(0, 0)
        assert result.p_value == 1.0
        assert math.isnan(result.fraction)

    def test_chance_level_not_significant(self):
        result = stats.binomial_test_greater(50, 100)
        assert not result.significant()

    def test_strong_deviation_significant(self):
        result = stats.binomial_test_greater(70, 100)
        assert result.significant()

    def test_invalid_counts_rejected(self):
        with pytest.raises(AnalysisError):
            stats.binomial_test_greater(11, 10)
        with pytest.raises(AnalysisError):
            stats.binomial_test_greater(-1, 10)


class TestConfidenceInterval:
    def test_known_values(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        ci = stats.mean_confidence_interval(values)
        sem = np.std(values, ddof=1) / math.sqrt(5)
        assert ci.center == pytest.approx(3.0)
        assert ci.half_width == pytest.approx(stats.Z_95 * sem)

    def test_contains_center(self):
        ci = stats.mean_confidence_interval([1.0, 2.0, 3.0])
        assert ci.contains(ci.center)

    def test_single_value_degenerate(self):
        ci = stats.mean_confidence_interval([2.5])
        assert ci.low == ci.high == ci.center == 2.5

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            stats.mean_confidence_interval([])

    def test_level_90(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        sem = np.std(values, ddof=1) / math.sqrt(5)
        ci = stats.mean_confidence_interval(values, level=0.90)
        assert ci.half_width == pytest.approx(
            1.6448536269514722 * sem, rel=1e-12
        )
        assert ci.level == 0.90

    def test_level_99(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        sem = np.std(values, ddof=1) / math.sqrt(5)
        ci = stats.mean_confidence_interval(values, level=0.99)
        assert ci.half_width == pytest.approx(
            2.5758293035489004 * sem, rel=1e-12
        )

    def test_width_grows_with_level(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        widths = [
            stats.mean_confidence_interval(values, level=lvl).half_width
            for lvl in (0.80, 0.90, 0.95, 0.99)
        ]
        assert widths == sorted(widths)

    def test_invalid_level_rejected(self):
        for level in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(AnalysisError):
                stats.mean_confidence_interval([1.0, 2.0], level=level)

    def test_wilson_supports_general_levels(self):
        narrow = stats.wilson_interval(30, 50, level=0.90)
        wide = stats.wilson_interval(30, 50, level=0.99)
        assert narrow.half_width < wide.half_width


class TestNormalQuantile:
    def test_median(self):
        assert stats.normal_quantile(0.5) == pytest.approx(0.0, abs=1e-15)

    def test_known_quantiles(self):
        # Reference values from scipy.stats.norm.ppf.
        known = {
            0.975: 1.959963984540054,
            0.95: 1.6448536269514722,
            0.995: 2.5758293035489004,
            0.01: -2.3263478740408408,
        }
        for p, z in known.items():
            assert stats.normal_quantile(p) == pytest.approx(z, rel=1e-13)

    def test_symmetry(self):
        for p in (0.001, 0.1, 0.3, 0.77, 0.999):
            assert stats.normal_quantile(p) == pytest.approx(
                -stats.normal_quantile(1.0 - p), rel=1e-12, abs=1e-12
            )

    def test_monotone(self):
        grid = [0.001, 0.01, 0.2, 0.5, 0.8, 0.99, 0.999]
        values = [stats.normal_quantile(p) for p in grid]
        assert values == sorted(values)

    def test_endpoints_rejected(self):
        for p in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(AnalysisError):
                stats.normal_quantile(p)

    def test_95_level_uses_exact_constant(self):
        # Golden-report byte-stability: the default level must keep
        # producing the historical Z_95 constant bit for bit.
        ci = stats.mean_confidence_interval([0.0, 1.0], level=0.95)
        sem = np.std([0.0, 1.0], ddof=1) / math.sqrt(2)
        assert ci.half_width == stats.Z_95 * sem


class TestPearson:
    def test_perfect_positive(self):
        assert stats.pearson_r([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert stats.pearson_r([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=50)
        y = x * 0.5 + rng.normal(size=50)
        expected = scipy.stats.pearsonr(x, y).statistic
        assert stats.pearson_r(x, y) == pytest.approx(expected)

    def test_constant_series_is_nan(self):
        assert math.isnan(stats.pearson_r([1, 1, 1], [1, 2, 3]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            stats.pearson_r([1, 2], [1, 2, 3])

    def test_too_short_rejected(self):
        with pytest.raises(AnalysisError):
            stats.pearson_r([1], [2])


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [math.exp(v) for v in x]
        assert stats.spearman_r(x, y) == pytest.approx(1.0)

    def test_matches_scipy_with_ties(self):
        x = [1.0, 2.0, 2.0, 3.0, 5.0]
        y = [3.0, 1.0, 4.0, 4.0, 6.0]
        expected = scipy.stats.spearmanr(x, y).statistic
        assert stats.spearman_r(x, y) == pytest.approx(expected)


class TestPercentileAndEcdf:
    def test_median(self):
        assert stats.percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_p95_definition_matches_numpy(self):
        values = np.arange(100.0)
        assert stats.percentile(values, 95) == pytest.approx(
            np.percentile(values, 95)
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(AnalysisError):
            stats.percentile([1.0], 101)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            stats.percentile([], 50)

    def test_ecdf_reaches_one(self):
        xs, ps = stats.ecdf([3.0, 1.0, 2.0, 2.0])
        assert ps[-1] == pytest.approx(1.0)

    def test_ecdf_sorted_support(self):
        xs, ps = stats.ecdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]

    def test_ecdf_handles_duplicates(self):
        xs, ps = stats.ecdf([1.0, 1.0, 2.0, 2.0])
        assert list(xs) == [1.0, 2.0]
        assert list(ps) == [0.5, 1.0]

    def test_ecdf_empty_rejected(self):
        with pytest.raises(AnalysisError):
            stats.ecdf([])


class TestWilsonInterval:
    def test_matches_known_value(self):
        # Wilson interval for 70/100 at 95%: roughly [0.604, 0.782].
        ci = stats.wilson_interval(70, 100)
        assert ci.low == pytest.approx(0.604, abs=0.005)
        assert ci.high == pytest.approx(0.782, abs=0.005)

    def test_center_is_observed_fraction(self):
        ci = stats.wilson_interval(60, 100)
        assert ci.center == pytest.approx(0.6)

    def test_behaves_at_edges(self):
        zero = stats.wilson_interval(0, 20)
        full = stats.wilson_interval(20, 20)
        assert zero.low == 0.0 and zero.high > 0.0
        assert full.high == 1.0 and full.low < 1.0

    def test_narrows_with_n(self):
        small = stats.wilson_interval(6, 10)
        large = stats.wilson_interval(600, 1000)
        assert (large.high - large.low) < (small.high - small.low)

    def test_invalid_counts_rejected(self):
        with pytest.raises(AnalysisError):
            stats.wilson_interval(5, 0)
        with pytest.raises(AnalysisError):
            stats.wilson_interval(11, 10)
