"""Quasi-experimental design."""

import numpy as np
import pytest

from repro.core.qed import QuasiExperiment, stratum_key
from repro.exceptions import ExperimentError


def by_v(u):
    return u["v"]


def by_w(u):
    return u["w"]


class TestStratumKey:
    def test_same_band_same_key(self):
        a = stratum_key({"v": 10.0}, [by_v])
        b = stratum_key({"v": 11.0}, [by_v])
        assert a == b

    def test_decade_apart_differs(self):
        a = stratum_key({"v": 1.0}, [by_v])
        b = stratum_key({"v": 100.0}, [by_v])
        assert a != b

    def test_resolution(self):
        # With 10 bins per decade, 10 and 13 separate (a ~26% gap
        # crosses a bin edge at that resolution).
        a = stratum_key({"v": 10.0}, [by_v], bins_per_decade=10)
        b = stratum_key({"v": 13.0}, [by_v], bins_per_decade=10)
        assert a != b

    def test_multiple_confounders(self):
        key = stratum_key({"v": 10.0, "w": 0.5}, [by_v, by_w])
        assert len(key) == 2

    def test_invalid_values_rejected(self):
        with pytest.raises(ExperimentError):
            stratum_key({"v": -1.0}, [by_v])

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ExperimentError):
            stratum_key({"v": 1.0}, [by_v], bins_per_decade=0)


class TestQuasiExperiment:
    def test_detects_clear_effect(self):
        rng = np.random.default_rng(0)
        # The covariate effect (0.01 per unit of v) is small next to the
        # +1.0 treatment effect, so within-stratum pairs are decisive.
        control = [
            {"v": float(v), "y": float(v) * 0.01}
            for v in rng.uniform(1, 50, 300)
        ]
        treatment = [
            {"v": float(v), "y": float(v) * 0.01 + 1.0}
            for v in rng.uniform(1, 50, 300)
        ]
        qed = QuasiExperiment("effect", [by_v])
        result = qed.run(control, treatment, outcome=lambda u: u["y"])
        assert result.n_pairs > 50
        assert result.net_outcome_score > 0.9
        assert result.significant

    def test_null_effect_near_zero_score(self):
        rng = np.random.default_rng(1)
        make = lambda: [
            {"v": float(v), "y": float(rng.normal())}
            for v in rng.uniform(1, 50, 400)
        ]
        qed = QuasiExperiment("null", [by_v])
        result = qed.run(make(), make(), outcome=lambda u: u["y"])
        assert abs(result.net_outcome_score) < 0.2
        assert not result.significant

    def test_pairs_only_within_shared_strata(self):
        control = [{"v": 1.0, "y": 0.0}] * 5
        treatment = [{"v": 1000.0, "y": 1.0}] * 5
        qed = QuasiExperiment("disjoint", [by_v])
        result = qed.run(control, treatment, outcome=lambda u: u["y"])
        assert result.n_pairs == 0

    def test_surplus_units_unmatched(self):
        control = [{"v": 1.0, "y": 0.0}] * 2
        treatment = [{"v": 1.0, "y": 1.0}] * 10
        qed = QuasiExperiment("surplus", [by_v])
        result = qed.run(control, treatment, outcome=lambda u: u["y"])
        assert result.n_pairs == 2

    def test_ties_counted_separately(self):
        control = [{"v": 1.0, "y": 1.0}] * 3
        treatment = [{"v": 1.0, "y": 1.0}] * 3
        qed = QuasiExperiment("ties", [by_v])
        result = qed.run(control, treatment, outcome=lambda u: u["y"])
        assert result.n_ties == 3
        assert result.n_pairs == 0

    def test_score_definition(self):
        control = [{"v": 1.0, "y": 0.0}, {"v": 1.0, "y": 2.0}]
        treatment = [{"v": 1.0, "y": 1.0}, {"v": 1.0, "y": 1.0}]
        qed = QuasiExperiment("score", [by_v])
        result = qed.run(control, treatment, outcome=lambda u: u["y"])
        assert result.n_pairs == 2
        assert result.net_outcome_score == 0.0

    def test_no_confounders_rejected(self):
        with pytest.raises(ExperimentError):
            QuasiExperiment("bad", [])

    def test_rng_shuffling_changes_pairing_not_validity(self):
        rng = np.random.default_rng(2)
        control = [{"v": 1.0, "y": float(i)} for i in range(20)]
        treatment = [{"v": 1.0, "y": float(i) + 0.5} for i in range(20)]
        qed = QuasiExperiment("shuffle", [by_v])
        result = qed.run(control, treatment, outcome=lambda u: u["y"], rng=rng)
        assert result.n_pairs + result.n_ties == 20

    def test_agrees_with_natural_experiment_on_real_data(self, dasu_users):
        """QED and caliper matching find the same capacity effect."""
        low = [u for u in dasu_users if 0.8 < u.capacity_down_mbps <= 3.2]
        high = [u for u in dasu_users if 3.2 < u.capacity_down_mbps <= 12.8]
        qed = QuasiExperiment(
            "capacity",
            [lambda u: u.latency_ms, lambda u: max(u.loss_fraction, 1e-4)],
            bins_per_decade=2,
        )
        result = qed.run(
            low, high, outcome=lambda u: u.peak_no_bt_mbps,
            rng=np.random.default_rng(3),
        )
        assert result.n_pairs > 30
        assert result.net_outcome_score > 0.0
