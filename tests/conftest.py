"""Shared fixtures for the test suite.

The expensive fixture is ``small_world``: a fully built synthetic world,
large enough for every analysis to run, small enough to build in a few
seconds. It is session-scoped and shared by the integration and analysis
tests; unit tests build their own tiny inputs instead.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets import World, WorldConfig, build_world


@pytest.fixture(scope="session", autouse=True)
def _isolated_world_cache(tmp_path_factory):
    """Keep tests hermetic: never touch the user's real world cache."""
    root = tmp_path_factory.mktemp("world-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


SMALL_WORLD_CONFIG = WorldConfig(
    seed=7,
    n_dasu_users=2500,
    n_fcc_users=500,
    days_per_year=1.5,
)


@pytest.fixture(scope="session")
def small_world() -> World:
    """A compact but fully featured world, built once per test session."""
    return build_world(SMALL_WORLD_CONFIG)


@pytest.fixture(scope="session")
def dasu_users(small_world: World):
    return small_world.dasu.users


@pytest.fixture(scope="session")
def fcc_users(small_world: World):
    return small_world.fcc.users
