"""Shared fixtures for the test suite.

The expensive fixtures are the session-scoped worlds, each built at most
once per session and only when a test actually requests it:

* ``small_world`` — large enough for every analysis to run, small enough
  to build in a few seconds (the workhorse of the analysis tests);
* ``tiny_world`` — the smallest world that still exercises every
  builder code path (unit-level dataset tests);
* ``faulted_world_light`` / ``faulted_world_default`` /
  ``faulted_world_heavy`` — ``small_world``'s configuration with fault
  injection at each severity profile plus sanitization, for the
  robustness regression suite;
* ``sanitized_small_world`` — ``small_world`` rebuilt with the cleaning
  stage enabled but no faults (must be equivalent to ``small_world``).

Unit tests build their own tiny inputs instead.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.datasets import World, WorldConfig, build_world
from repro.faults import fault_profile


@pytest.fixture(scope="session", autouse=True)
def _isolated_world_cache(tmp_path_factory):
    """Keep tests hermetic: never touch the user's real world cache."""
    root = tmp_path_factory.mktemp("world-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


SMALL_WORLD_CONFIG = WorldConfig(
    seed=7,
    n_dasu_users=2500,
    n_fcc_users=500,
    days_per_year=1.5,
)


@pytest.fixture(scope="session")
def small_world() -> World:
    """A compact but fully featured world, built once per test session."""
    return build_world(SMALL_WORLD_CONFIG)


@pytest.fixture(scope="session")
def dasu_users(small_world: World):
    return small_world.dasu.users


@pytest.fixture(scope="session")
def fcc_users(small_world: World):
    return small_world.fcc.users


TINY_WORLD_CONFIG = WorldConfig(
    seed=11, n_dasu_users=150, n_fcc_users=40, days_per_year=1.0
)


@pytest.fixture(scope="session")
def tiny_world() -> World:
    """The smallest world exercising every builder code path."""
    return build_world(TINY_WORLD_CONFIG)


def faulted_config(profile: str, base: WorldConfig = SMALL_WORLD_CONFIG) -> WorldConfig:
    """``base`` with fault injection at ``profile`` plus sanitization."""
    return dataclasses.replace(
        base, faults=fault_profile(profile), sanitize=True
    )


@pytest.fixture(scope="session")
def faulted_world_light() -> World:
    return build_world(faulted_config("light"))


@pytest.fixture(scope="session")
def faulted_world_default() -> World:
    return build_world(faulted_config("default"))


@pytest.fixture(scope="session")
def faulted_world_heavy() -> World:
    return build_world(faulted_config("heavy"))


@pytest.fixture(scope="session")
def sanitized_small_world() -> World:
    """``small_world`` rebuilt with cleaning on but a pristine substrate."""
    return build_world(
        dataclasses.replace(SMALL_WORLD_CONFIG, sanitize=True)
    )
