"""The global plan-survey generator."""

import numpy as np
import pytest

from repro.exceptions import MarketError
from repro.market.countries import ANCHOR_PROFILES, build_profiles
from repro.market.survey import PlanSurvey, generate_market, generate_survey


def us_profile():
    return [p for p in ANCHOR_PROFILES if p.name == "US"][0]


def japan_profile():
    return [p for p in ANCHOR_PROFILES if p.name == "Japan"][0]


@pytest.fixture(scope="module")
def survey():
    rng = np.random.default_rng(42)
    return generate_survey(build_profiles(rng), rng)


class TestGenerateMarket:
    def test_ladder_is_sorted_and_unique(self):
        market = generate_market(us_profile(), np.random.default_rng(1))
        caps = [p.download_mbps for p in market.plans]
        assert caps == sorted(caps)
        assert len(caps) == len(set(caps))

    def test_prices_positive(self):
        market = generate_market(us_profile(), np.random.default_rng(1))
        assert all(p.monthly_price_usd_ppp > 0 for p in market.plans)

    def test_slope_near_profile_target(self):
        slopes = []
        for seed in range(8):
            market = generate_market(us_profile(), np.random.default_rng(seed))
            slopes.append(market.regression.slope_usd_per_mbps)
        average = np.mean(slopes)
        assert average == pytest.approx(us_profile().upgrade_slope_usd, rel=0.4)

    def test_japan_ladder_has_no_slow_plans(self):
        market = generate_market(japan_profile(), np.random.default_rng(1))
        assert market.min_capacity_mbps >= 8.0

    def test_local_prices_converted(self):
        market = generate_market(japan_profile(), np.random.default_rng(1))
        plan = market.plans[0]
        assert plan.monthly_price_local > plan.monthly_price_usd_ppp  # JPY

    def test_capacity_range_respected_roughly(self):
        profile = us_profile()
        market = generate_market(profile, np.random.default_rng(1))
        assert market.max_capacity_mbps <= profile.max_capacity_mbps * 1.5
        assert market.min_capacity_mbps >= profile.min_capacity_mbps * 0.5

    def test_deterministic(self):
        a = generate_market(us_profile(), np.random.default_rng(9))
        b = generate_market(us_profile(), np.random.default_rng(9))
        assert [p.monthly_price_usd_ppp for p in a.plans] == [
            p.monthly_price_usd_ppp for p in b.plans
        ]


class TestPlanSurvey:
    def test_country_count(self, survey):
        # The Google dataset covers 99 countries; ours is comparable.
        assert 80 <= len(survey.countries) <= 120

    def test_plan_count(self, survey):
        assert survey.n_plans > 400

    def test_unknown_country_rejected(self, survey):
        with pytest.raises(MarketError):
            survey.market("Atlantis")

    def test_price_of_access_ordering(self, survey):
        prices = survey.price_of_access()
        # The paper's groups: US/Germany/Japan cheap; Botswana/Iran > $60.
        assert prices["US"] < 25.0
        assert prices["Germany"] < 25.0
        assert prices["Botswana"] > 60.0
        assert prices["Iran"] > 60.0

    def test_upgrade_costs_ordering(self, survey):
        costs = survey.upgrade_costs()
        assert costs["Japan"] < 0.15
        assert costs["South Korea"] < 0.15
        assert 0.3 < costs["US"] < 1.0
        assert costs["Ghana"] > 5.0

    def test_correlation_shares_near_paper(self, survey):
        strong, moderate = survey.correlation_shares()
        # Paper: 66% strong, 81% at least moderate.
        assert 0.45 <= strong <= 0.9
        assert 0.65 <= moderate <= 0.95
        assert moderate >= strong

    def test_afghanistan_often_not_qualifying(self):
        # With a 50% oddball rate, Afghanistan's correlation is usually
        # degraded; across seeds it should frequently miss the r > 0.4 bar.
        misses = 0
        for seed in range(10):
            rng = np.random.default_rng(seed)
            survey = generate_survey(build_profiles(rng), rng)
            if "Afghanistan" not in survey.upgrade_costs():
                misses += 1
        assert misses >= 2

    def test_all_plans_accessor(self, survey):
        plans = survey.all_plans()
        assert len(plans) == survey.n_plans

    def test_duplicate_country_rejected(self):
        rng = np.random.default_rng(1)
        profile = us_profile()
        with pytest.raises(MarketError):
            generate_survey([profile, profile], rng)

    def test_empty_survey_rejected(self):
        with pytest.raises(MarketError):
            PlanSurvey(markets={})
