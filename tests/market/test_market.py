"""Country markets and derived metrics."""

import pytest

from repro.exceptions import MarketError
from repro.market.currency import USD
from repro.market.economy import DevelopmentLevel, Economy, Region
from repro.market.market import CountryMarket
from repro.market.plans import BroadbandPlan, PlanTechnology


def us_economy():
    return Economy(
        country="Testland",
        region=Region.NORTH_AMERICA,
        development=DevelopmentLevel.DEVELOPED,
        gdp_per_capita_ppp_usd=49_797.0,
        currency=USD,
        internet_penetration=0.81,
    )


def make_plan(capacity, price, dedicated=False):
    return BroadbandPlan(
        country="Testland",
        isp="Testland Telecom",
        name=f"plan-{capacity}",
        download_mbps=capacity,
        upload_mbps=capacity * 0.1,
        monthly_price_local=price,
        currency=USD,
        technology=PlanTechnology.DSL if capacity <= 20 else PlanTechnology.CABLE,
        dedicated=dedicated,
    )


def market(plans=None):
    if plans is None:
        plans = [
            make_plan(0.5, 15.0),
            make_plan(1.0, 20.0),
            make_plan(4.0, 22.0),
            make_plan(10.0, 26.0),
            make_plan(25.0, 35.0),
        ]
    return CountryMarket(economy=us_economy(), plans=tuple(plans))


class TestCountryMarket:
    def test_price_of_access_is_cheapest_at_least_1mbps(self):
        assert market().price_of_access() == 20.0

    def test_price_of_access_ignores_sub_megabit(self):
        # The 0.5 Mbps plan is cheaper but below the access floor.
        assert market().price_of_access() != 15.0

    def test_price_of_access_fallback_for_slow_markets(self):
        slow = market([make_plan(0.25, 90.0), make_plan(0.5, 110.0)])
        assert slow.price_of_access() == 110.0

    def test_nearest_plan_log_scale(self):
        # 17.6 Mbps is nearer (log-scale) to 25 than to 10.
        assert market().nearest_plan(17.6).download_mbps == 25.0

    def test_nearest_plan_exact(self):
        assert market().nearest_plan(4.0).download_mbps == 4.0

    def test_nearest_plan_invalid_capacity(self):
        with pytest.raises(MarketError):
            market().nearest_plan(0.0)

    def test_regression_slope(self):
        reg = market().regression
        assert reg is not None
        assert reg.slope_usd_per_mbps > 0

    def test_upgrade_cost_requires_moderate_correlation(self):
        # An anti-correlated market yields no upgrade-cost estimate.
        weird = market(
            [make_plan(1.0, 100.0), make_plan(10.0, 50.0), make_plan(20.0, 20.0)]
        )
        assert weird.upgrade_cost_usd_per_mbps is None

    def test_upgrade_cost_well_behaved_market(self):
        cost = market().upgrade_cost_usd_per_mbps
        assert cost is not None
        assert 0.1 < cost < 5.0

    def test_single_capacity_market_has_no_regression(self):
        single = market([make_plan(4.0, 20.0), make_plan(4.0, 25.0)])
        assert single.regression is None
        assert single.upgrade_cost_usd_per_mbps is None

    def test_capacity_range(self):
        m = market()
        assert m.min_capacity_mbps == 0.5
        assert m.max_capacity_mbps == 25.0

    def test_plans_at_least(self):
        assert len(market().plans_at_least(4.0)) == 3

    def test_cheapest_plan_at_least_none(self):
        assert market().cheapest_plan_at_least(100.0) is None

    def test_empty_market_rejected(self):
        with pytest.raises(MarketError):
            CountryMarket(economy=us_economy(), plans=())

    def test_foreign_plan_rejected(self):
        foreign = BroadbandPlan(
            country="Elsewhere",
            isp="X",
            name="x",
            download_mbps=1.0,
            upload_mbps=0.1,
            monthly_price_local=10.0,
            currency=USD,
            technology=PlanTechnology.DSL,
        )
        with pytest.raises(MarketError):
            CountryMarket(economy=us_economy(), plans=(foreign,))
