"""Currency and PPP normalization."""

import pytest

from repro.exceptions import MarketError
from repro.market.currency import USD, Currency, to_usd_ppp


class TestCurrency:
    def test_usd_identity(self):
        assert USD.to_usd_ppp(53.0) == 53.0
        assert USD.to_usd_market(53.0) == 53.0

    def test_market_conversion(self):
        jpy = Currency("JPY", units_per_usd=100.0, ppp_market_ratio=1.0)
        assert jpy.to_usd_market(5000.0) == 50.0

    def test_ppp_adjustment_inflates_cheap_economies(self):
        # PPP ratio < 1: local prices buy more, so PPP dollars exceed
        # market dollars (the Botswana effect in Table 4).
        bwp = Currency("BWP", units_per_usd=8.4, ppp_market_ratio=0.5)
        assert bwp.to_usd_ppp(84.0) == pytest.approx(20.0)
        assert bwp.to_usd_market(84.0) == pytest.approx(10.0)

    def test_ppp_adjustment_deflates_expensive_economies(self):
        nok = Currency("NOK", units_per_usd=6.0, ppp_market_ratio=1.5)
        assert nok.to_usd_ppp(90.0) == pytest.approx(10.0)

    def test_helper_function(self):
        eur = Currency("EUR", units_per_usd=0.75, ppp_market_ratio=1.0)
        assert to_usd_ppp(75.0, eur) == pytest.approx(100.0)

    def test_invalid_exchange_rate(self):
        with pytest.raises(MarketError):
            Currency("XXX", units_per_usd=0.0, ppp_market_ratio=1.0)

    def test_invalid_ppp_ratio(self):
        with pytest.raises(MarketError):
            Currency("XXX", units_per_usd=1.0, ppp_market_ratio=-0.5)
