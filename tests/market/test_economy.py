"""Economies and regions."""

import pytest

from repro.exceptions import MarketError
from repro.market.currency import USD
from repro.market.economy import (
    TABLE5_REGIONS,
    DevelopmentLevel,
    Economy,
    Region,
)


def economy(region=Region.EUROPE, development=DevelopmentLevel.DEVELOPED):
    return Economy(
        country="Testland",
        region=region,
        development=development,
        gdp_per_capita_ppp_usd=36_000.0,
        currency=USD,
        internet_penetration=0.8,
    )


class TestEconomy:
    def test_monthly_income(self):
        assert economy().monthly_income_ppp_usd == pytest.approx(3000.0)

    def test_invalid_gdp(self):
        with pytest.raises(MarketError):
            Economy("X", Region.EUROPE, DevelopmentLevel.DEVELOPED, 0.0, USD, 0.5)

    def test_invalid_penetration(self):
        with pytest.raises(MarketError):
            Economy("X", Region.EUROPE, DevelopmentLevel.DEVELOPED, 1.0, USD, 1.5)


class TestTable5Rows:
    def test_plain_region(self):
        assert economy(Region.EUROPE).table5_rows() == ("Europe",)

    def test_asia_developed_contributes_twice(self):
        rows = economy(Region.ASIA, DevelopmentLevel.DEVELOPED).table5_rows()
        assert rows == ("Asia (all)", "Asia (developed)")

    def test_asia_developing_contributes_twice(self):
        rows = economy(Region.ASIA, DevelopmentLevel.DEVELOPING).table5_rows()
        assert rows == ("Asia (all)", "Asia (developing)")

    def test_oceania_not_in_table5(self):
        assert economy(Region.OCEANIA).table5_rows() == ()

    def test_all_row_labels_valid(self):
        for region in Region:
            for development in DevelopmentLevel:
                for label in economy(region, development).table5_rows():
                    assert label in TABLE5_REGIONS

    def test_table5_has_nine_rows(self):
        assert len(TABLE5_REGIONS) == 9
