"""Affordability metrics."""

import pytest

from repro.exceptions import MarketError
from repro.market.affordability import (
    cost_of_access_as_income_share,
    price_of_access_bin,
    upgrade_cost_bin,
)
from repro.market.currency import USD
from repro.market.economy import DevelopmentLevel, Economy, Region


class TestPriceOfAccessBin:
    def test_cheap(self):
        assert price_of_access_bin(20.0).high == 25.0

    def test_boundary_25_in_cheap(self):
        assert price_of_access_bin(25.0).high == 25.0

    def test_mid(self):
        assert price_of_access_bin(40.0).low == 25.0

    def test_expensive_unbounded(self):
        import math

        assert math.isinf(price_of_access_bin(150.0).high)

    def test_invalid(self):
        with pytest.raises(MarketError):
            price_of_access_bin(0.0)


class TestUpgradeCostBin:
    def test_cheap(self):
        assert upgrade_cost_bin(0.3).high == 0.5

    def test_mid(self):
        b = upgrade_cost_bin(0.8)
        assert b.low == 0.5 and b.high == 1.0

    def test_expensive(self):
        assert upgrade_cost_bin(55.0).low == 1.0

    def test_invalid(self):
        with pytest.raises(MarketError):
            upgrade_cost_bin(-1.0)


class TestIncomeShare:
    def test_botswana_row(self):
        economy = Economy(
            country="Botswana",
            region=Region.AFRICA,
            development=DevelopmentLevel.DEVELOPING,
            gdp_per_capita_ppp_usd=14_993.0,
            currency=USD,
            internet_penetration=0.12,
        )
        share = cost_of_access_as_income_share(100.0, economy)
        # Table 4: $100/month is 8.0% of monthly GDP per capita.
        assert share == pytest.approx(0.080, abs=0.001)

    def test_us_row(self):
        economy = Economy(
            country="US",
            region=Region.NORTH_AMERICA,
            development=DevelopmentLevel.DEVELOPED,
            gdp_per_capita_ppp_usd=49_797.0,
            currency=USD,
            internet_penetration=0.81,
        )
        share = cost_of_access_as_income_share(53.0, economy)
        assert share == pytest.approx(0.013, abs=0.001)

    def test_invalid_price(self):
        economy = Economy(
            "X", Region.EUROPE, DevelopmentLevel.DEVELOPED, 30_000.0, USD, 0.8
        )
        with pytest.raises(MarketError):
            cost_of_access_as_income_share(0.0, economy)
