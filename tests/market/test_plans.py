"""Retail plan records."""

import pytest

from repro.exceptions import MarketError
from repro.market.currency import Currency, USD
from repro.market.plans import BroadbandPlan, PlanTechnology


def plan(**overrides):
    kwargs = dict(
        country="Testland",
        isp="Testland Telecom",
        name="dsl-4M",
        download_mbps=4.0,
        upload_mbps=0.5,
        monthly_price_local=40.0,
        currency=USD,
        technology=PlanTechnology.DSL,
    )
    kwargs.update(overrides)
    return BroadbandPlan(**kwargs)


class TestBroadbandPlan:
    def test_usd_ppp_price(self):
        local = Currency("TST", units_per_usd=2.0, ppp_market_ratio=0.5)
        p = plan(currency=local, monthly_price_local=40.0)
        assert p.monthly_price_usd_ppp == pytest.approx(40.0)

    def test_unit_price(self):
        assert plan().usd_ppp_per_mbps == pytest.approx(10.0)

    def test_cap_detection(self):
        assert not plan().is_capped
        assert plan(data_cap_gb=50.0).is_capped

    def test_invalid_speeds(self):
        with pytest.raises(MarketError):
            plan(download_mbps=0.0)

    def test_upload_cannot_exceed_download(self):
        with pytest.raises(MarketError):
            plan(upload_mbps=8.0)

    def test_invalid_price(self):
        with pytest.raises(MarketError):
            plan(monthly_price_local=0.0)

    def test_invalid_cap(self):
        with pytest.raises(MarketError):
            plan(data_cap_gb=0.0)


class TestPlanTechnology:
    def test_fixed_line_classification(self):
        assert PlanTechnology.FIBER.is_fixed_line
        assert PlanTechnology.CABLE.is_fixed_line
        assert PlanTechnology.DSL.is_fixed_line
        assert not PlanTechnology.WIRELESS.is_fixed_line
        assert not PlanTechnology.SATELLITE.is_fixed_line
