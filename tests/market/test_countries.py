"""Country profiles: anchors and synthetic fill."""

import numpy as np
import pytest

from repro.market.countries import (
    ANCHOR_PROFILES,
    CASE_STUDY_COUNTRIES,
    build_profiles,
    synthesize_profiles,
)
from repro.market.economy import DevelopmentLevel, Region


def anchor(name):
    for profile in ANCHOR_PROFILES:
        if profile.name == name:
            return profile
    raise AssertionError(f"no anchor {name}")


class TestAnchors:
    def test_case_study_countries_present(self):
        names = {p.name for p in ANCHOR_PROFILES}
        for country in CASE_STUDY_COUNTRIES:
            assert country in names

    def test_paper_named_markets_present(self):
        names = {p.name for p in ANCHOR_PROFILES}
        for country in (
            "India", "Germany", "Canada", "South Korea", "Hong Kong",
            "Mexico", "New Zealand", "Philippines", "Iran", "Ghana",
            "Uganda", "Afghanistan", "Paraguay", "Ivory Coast", "China",
        ):
            assert country in names

    def test_table4_gdp_values(self):
        assert anchor("Botswana").gdp_per_capita_ppp == 14_993.0
        assert anchor("Saudi Arabia").gdp_per_capita_ppp == 29_114.0
        assert anchor("US").gdp_per_capita_ppp == 49_797.0
        assert anchor("Japan").gdp_per_capita_ppp == 34_532.0

    def test_table4_user_count_ratios(self):
        assert anchor("US").dasu_user_weight == 3759.0
        assert anchor("Japan").dasu_user_weight == 73.0
        assert anchor("Botswana").dasu_user_weight == 67.0
        assert anchor("Saudi Arabia").dasu_user_weight == 120.0

    def test_fig10_slope_ordering(self):
        # Japan/Korea < US/Canada < Ghana/Uganda, as Fig. 10 annotates.
        assert anchor("Japan").upgrade_slope_usd < 0.1
        assert anchor("South Korea").upgrade_slope_usd < 0.1
        assert 0.4 < anchor("US").upgrade_slope_usd < 1.0
        assert 0.4 < anchor("Canada").upgrade_slope_usd < 1.0
        assert anchor("Ghana").upgrade_slope_usd > 5.0
        assert anchor("Uganda").upgrade_slope_usd > 5.0

    def test_india_matches_sec7_profile(self):
        india = anchor("India")
        # Cost to upgrade within 25% of the US (Sec. 7.1)...
        us = anchor("US")
        ratio = india.upgrade_slope_usd / us.upgrade_slope_usd
        assert 0.75 <= ratio <= 1.3
        # ...but much more expensive access and much worse quality.
        assert india.base_price_usd > 60.0
        assert india.extra_latency_ms > 100.0
        assert india.loss_multiplier > 10.0

    def test_china_india_cheap_upgrades_footnote(self):
        # The paper's footnote: India and China upgrade below $1/Mbps.
        assert anchor("India").upgrade_slope_usd < 1.0
        assert anchor("China").upgrade_slope_usd < 1.0

    def test_afghanistan_weak_correlation_market(self):
        assert anchor("Afghanistan").oddball_plan_rate >= 0.4

    def test_economy_construction(self):
        economy = anchor("US").economy()
        assert economy.region is Region.NORTH_AMERICA
        assert economy.monthly_income_ppp_usd == pytest.approx(49_797 / 12)


class TestSynthesis:
    def test_deterministic(self):
        a = synthesize_profiles(np.random.default_rng(5))
        b = synthesize_profiles(np.random.default_rng(5))
        assert [p.name for p in a] == [p.name for p in b]
        assert [p.upgrade_slope_usd for p in a] == [
            p.upgrade_slope_usd for p in b
        ]

    def test_fill_counts_by_region(self):
        profiles = synthesize_profiles(np.random.default_rng(5))
        africa = [p for p in profiles if p.region is Region.AFRICA]
        assert len(africa) == 14

    def test_all_profiles_valid(self):
        for profile in synthesize_profiles(np.random.default_rng(5)):
            assert profile.min_capacity_mbps <= profile.max_capacity_mbps
            assert profile.n_plans >= 2
            assert abs(sum(profile.tech_mix.values()) - 1.0) < 1e-6

    def test_africa_slopes_expensive(self):
        profiles = synthesize_profiles(np.random.default_rng(5))
        slopes = [
            p.upgrade_slope_usd
            for p in profiles
            if p.region is Region.AFRICA
        ]
        assert all(s > 1.0 for s in slopes)

    def test_developed_asia_slopes_cheap(self):
        profiles = synthesize_profiles(np.random.default_rng(5))
        slopes = [
            p.upgrade_slope_usd
            for p in profiles
            if p.region is Region.ASIA
            and p.development is DevelopmentLevel.DEVELOPED
        ]
        assert slopes and all(s < 0.5 for s in slopes)

    def test_build_profiles_includes_anchors(self):
        profiles = build_profiles(np.random.default_rng(5))
        names = {p.name for p in profiles}
        assert "US" in names and "Botswana" in names
        assert len(profiles) > 60

    def test_build_profiles_anchor_only(self):
        profiles = build_profiles(
            np.random.default_rng(5), include_synthetic=False
        )
        assert len(profiles) == len(ANCHOR_PROFILES)

    def test_user_weight_scaling(self):
        profiles = build_profiles(
            np.random.default_rng(5),
            include_synthetic=False,
            user_weight_scale=2.0,
        )
        us = [p for p in profiles if p.name == "US"][0]
        assert us.dasu_user_weight == 2 * 3759.0

    def test_unique_names(self):
        profiles = build_profiles(np.random.default_rng(5))
        names = [p.name for p in profiles]
        assert len(names) == len(set(names))
