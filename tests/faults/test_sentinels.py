"""The ``-1`` sentinel contract, end to end.

Measurement clients *emit* sentinels (a reset/reboot makes an interval's
volume unknowable), the sanitize stage *owns dropping* them, and no
sentinel may ever reach a :class:`~repro.core.metrics.DemandSummary` —
``demand_summary`` treats a negative rate as a counter bug and raises.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.metrics import demand_summary
from repro.datasets import WorldConfig, build_world
from repro.datasets.sanitize import strip_sentinels
from repro.exceptions import AnalysisError
from repro.faults import fault_profile
from repro.faults.injector import RESET_SENTINEL_MBPS
from repro.measurement.netstat import deltas_from_netstat
from repro.measurement.upnp import deltas_from_readings
from repro.units import UINT32_WRAP


class TestClientsEmitSentinels:
    def test_upnp_reset_surfaces_as_sentinel(self):
        # A small decrease (< half the 32-bit range) is a gateway
        # reboot, not a wrap: the client must flag it, not guess.
        readings = np.array([1000, 2000, 500, 1500])
        deltas = deltas_from_readings(readings)
        assert deltas[1] == -1
        assert deltas[0] == 1000 and deltas[2] == 1000

    def test_upnp_wrap_corrected_not_flagged(self):
        readings = np.array([UINT32_WRAP - 100, 400])
        deltas = deltas_from_readings(readings)
        assert deltas[0] == 500

    def test_netstat_reboot_surfaces_as_sentinel(self):
        readings = np.array([5000, 9000, 100])
        deltas = deltas_from_netstat(readings)
        assert deltas[0] == 4000
        assert deltas[1] == -1


class TestSummariesRejectSentinels:
    def test_demand_summary_refuses_negative_rates(self):
        with pytest.raises(AnalysisError):
            demand_summary(np.array([1.0, RESET_SENTINEL_MBPS, 2.0]))

    def test_stripped_series_is_accepted(self):
        rates = np.array([1.0, RESET_SENTINEL_MBPS, 2.0])
        bt = np.zeros(3, dtype=bool)
        hours = np.array([1.0, 2.0, 3.0])
        clean, _, _, _ = strip_sentinels(rates, bt, hours, None)
        summary = demand_summary(clean)
        assert summary.n_samples == 2
        assert summary.mean_mbps == pytest.approx(1.5)


class TestSentinelsNeverReachRecords:
    """Even with sanitization *off*, the builder strips sentinels.

    ``heavy`` injects resets into ~2% of samples; a 40-user world
    collects ~100k Dasu samples, so resets certainly occur. Every
    surviving summary statistic must still be a finite, non-negative
    rate — proof the sentinel path ends at ``strip_sentinels``.
    """

    @pytest.fixture(scope="class")
    def faulted_unsanitized_world(self):
        return build_world(
            WorldConfig(
                seed=3,
                n_dasu_users=40,
                n_fcc_users=10,
                days_per_year=1.0,
                faults=fault_profile("heavy"),
                sanitize=False,
            )
        )

    def test_all_demand_statistics_non_negative(self, faulted_unsanitized_world):
        users = faulted_unsanitized_world.all_users
        assert users
        for user in users:
            for obs in user.observations:
                p = obs.period
                for value in (
                    p.mean_mbps,
                    p.peak_mbps,
                    p.mean_no_bt_mbps,
                    p.peak_no_bt_mbps,
                ):
                    assert math.isfinite(value) and value >= 0
                if obs.mean_up_mbps is not None:
                    assert obs.mean_up_mbps >= 0
                if obs.peak_up_mbps is not None:
                    assert obs.peak_up_mbps >= 0

    def test_unsanitized_world_has_no_report(self, faulted_unsanitized_world):
        assert faulted_unsanitized_world.sanitization is None
