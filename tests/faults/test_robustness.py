"""Robustness regression: dirty-but-sanitized worlds reproduce the paper.

The issue's bar: at ``light`` and ``default`` severity the capacity
(Table 2) and price (Table 3) experiments must reach the clean world's
findings. With ~50-80 matched pairs per comparison, binomial p-values
sitting *at* the 0.05 threshold legitimately wobble when sanitization
removes a handful of hosts — so the contract is stated robustly:

* every **decisive** clean verdict (p below alpha/2) must still reject
  the null, in the same direction;
* no comparison may **materially flip direction** (both worlds clearing
  a 5-point margin from 50% on opposite sides);
* the dirty world must never mint a *contradictory* significant finding
  (rejecting the null in the direction the clean world's data oppose).

At ``heavy`` severity the pipeline must *run* — the analyses degrade
gracefully — but no verdict is guaranteed.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import capacity, price

#: Minimum matched pairs before a comparison's direction is meaningful.
_MIN_PAIRS = 30
#: fraction_holds must clear 0.5 by this much to count as a direction.
_DIRECTION_MARGIN = 0.05


def _direction(result) -> int:
    """+1 / -1 for a material direction, 0 for too-close-to-call."""
    if result.n_pairs < _MIN_PAIRS:
        return 0
    if abs(result.fraction_holds - 0.5) <= _DIRECTION_MARGIN:
        return 0
    return 1 if result.fraction_holds > 0.5 else -1


def _is_decisive(result) -> bool:
    """Rejects the null with margin: the verdict must survive faults."""
    return result.rejects_null and result.p_value < result.alpha / 2


def _assert_experiments_agree(clean, dirty, label):
    if _direction(clean) * _direction(dirty) == -1:
        pytest.fail(
            f"{label}: direction flipped (clean holds="
            f"{clean.fraction_holds:.3f}, dirty holds="
            f"{dirty.fraction_holds:.3f})"
        )
    if _is_decisive(clean):
        assert dirty.rejects_null, (
            f"{label}: decisive clean verdict lost "
            f"(clean p={clean.p_value:.3g}, dirty p={dirty.p_value:.3g} "
            f"holds={dirty.fraction_holds:.3f})"
        )
    if dirty.rejects_null and _direction(clean) != 0:
        assert _direction(clean) == 1, (
            f"{label}: dirty world rejects the null against the clean "
            f"world's direction (clean holds={clean.fraction_holds:.3f})"
        )


def _table2_by_bin(result):
    return {row.control_bin.low: row.experiment.result for row in result.rows}


@pytest.fixture(params=["light", "default"])
def profile(request):
    return request.param


@pytest.fixture
def faulted_world(profile, request):
    return request.getfixturevalue(f"faulted_world_{profile}")


class TestDirectionalFindingsSurvive:
    def test_capacity_experiment_matches_clean_world(
        self, small_world, faulted_world, profile
    ):
        clean = _table2_by_bin(capacity.table2(small_world.dasu.users, "dasu"))
        dirty = _table2_by_bin(capacity.table2(faulted_world.dasu.users, "dasu"))
        common = sorted(set(clean) & set(dirty))
        # Sanitization may drop a thin edge class, but the bulk of the
        # capacity ladder must survive at these severities.
        assert len(common) >= max(2, len(clean) - 1)
        decisive = [low for low in common if _is_decisive(clean[low])]
        assert decisive, "clean world lost its headline capacity findings"
        for low in common:
            _assert_experiments_agree(
                clean[low], dirty[low], f"table2[{profile}] control>{low}"
            )

    def test_capacity_headline_direction_preserved(
        self, small_world, faulted_world, profile
    ):
        # The paper's finding: higher capacity classes demand more. The
        # majority of well-populated comparisons must stay positive.
        dirty = capacity.table2(faulted_world.dasu.users, "dasu")
        populated = [
            row.experiment.result
            for row in dirty.rows
            if row.experiment.result.n_pairs >= _MIN_PAIRS
        ]
        assert populated
        positive = sum(1 for r in populated if r.fraction_holds > 0.5)
        assert positive >= len(populated) / 2

    def test_price_experiment_matches_clean_world(
        self, small_world, faulted_world, profile
    ):
        clean = price.table3(small_world.dasu.users)
        dirty = price.table3(faulted_world.dasu.users)
        for (label, _, c), (_, _, d) in zip(clean.rows(), dirty.rows()):
            _assert_experiments_agree(
                c.result, d.result, f"table3[{profile}] {label}"
            )

    def test_price_direction_stays_positive(self, faulted_world, profile):
        # Expensive markets demand more (Table 3's direction) even on a
        # dirty substrate.
        dirty = price.table3(faulted_world.dasu.users)
        for label, _, exp in dirty.rows():
            assert exp.result.fraction_holds > 0.5, (
                f"table3[{profile}] {label} lost the paper's direction"
            )

    def test_panel_is_smaller_but_not_gutted(
        self, small_world, faulted_world, profile
    ):
        clean_n = len(small_world.dasu.users)
        dirty_n = len(faulted_world.dasu.users)
        assert dirty_n < clean_n  # churn/attrition really removed hosts
        assert dirty_n > clean_n * 0.6  # ...but most of the panel survives

    def test_sanitization_report_accounts_damage(self, faulted_world, profile):
        report = faulted_world.sanitization
        assert report is not None
        assert report.rule("counter_reset").dropped > 0
        assert report.rule("counter_wrap").repaired > 0
        assert report.rule("duplicate_sample").dropped > 0
        assert report.samples_kept <= report.samples_in


class TestHeavySeverityDegradesGracefully:
    """Adversarially dirty input: analyses run, no verdicts promised."""

    def test_capacity_pipeline_runs(self, faulted_world_heavy):
        result = capacity.table2(faulted_world_heavy.dasu.users, "dasu")
        for row in result.rows:
            fraction = row.experiment.result.fraction_holds
            assert math.isnan(fraction) or 0.0 <= fraction <= 1.0

    def test_price_pipeline_runs(self, faulted_world_heavy):
        result = price.table3(faulted_world_heavy.dasu.users)
        assert result.group_sizes[0] > 0

    def test_records_are_still_clean(self, faulted_world_heavy):
        # However dirty the substrate, sanitized records carry only
        # finite, usable statistics.
        for user in faulted_world_heavy.all_users:
            assert math.isfinite(user.peak_no_bt_mbps)
            assert user.peak_no_bt_mbps >= 0
            assert math.isfinite(user.capacity_down_mbps)
            assert user.capacity_down_mbps > 0
