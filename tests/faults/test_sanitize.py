"""Unit tests for the sanitization rules and their accounting."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.upgrades import NetworkId, ServicePeriod
from repro.datasets.io import write_users_csv
from repro.datasets.records import PeriodObservation, UserRecord
from repro.datasets.sanitize import (
    MIN_NDT_TESTS,
    RuleStats,
    SanitizationReport,
    dedup_samples,
    ingest_users,
    repair_wraps,
    sanitize_samples,
    sanitize_users,
    strip_sentinels,
)
from repro.exceptions import DatasetError
from repro.faults.injector import RESET_SENTINEL_MBPS, wrap_quantum_mbps

INTERVAL_S = 30.0
QUANTUM = wrap_quantum_mbps(INTERVAL_S)


def make_obs(
    user_id: str = "u1",
    network: NetworkId | None = None,
    start_day: float = 0.0,
    end_day: float = 1.0,
    capacity: float = 20.0,
    mean: float = 1.0,
    peak: float = 5.0,
    n_ndt_tests: int = 10,
    n_usage_samples: int = 2000,
    **kwargs,
) -> PeriodObservation:
    period = ServicePeriod(
        user_id=user_id,
        network=network or NetworkId("isp", "1.2.3.0/24", "city"),
        start_day=start_day,
        end_day=end_day,
        capacity_mbps=capacity,
        mean_mbps=mean,
        peak_mbps=peak,
        mean_no_bt_mbps=kwargs.pop("mean_no_bt", mean),
        peak_no_bt_mbps=kwargs.pop("peak_no_bt", peak),
    )
    return PeriodObservation(
        period=period,
        latency_ms=kwargs.pop("latency_ms", 40.0),
        loss_fraction=kwargs.pop("loss_fraction", 0.001),
        capacity_up_mbps=kwargs.pop("capacity_up", 2.0),
        n_ndt_tests=n_ndt_tests,
        n_usage_samples=n_usage_samples,
        **kwargs,
    )


def make_user(
    user_id: str = "u1",
    observations: tuple[PeriodObservation, ...] | None = None,
    source: str = "dasu",
) -> UserRecord:
    return UserRecord(
        user_id=user_id,
        source=source,
        country="US",
        region="North America",
        development="developed",
        vantage="upnp" if source == "dasu" else "gateway",
        technology="cable",
        bt_user=False,
        observations=observations or (make_obs(user_id=user_id),),
        price_of_access_usd=25.0,
        upgrade_cost_usd_per_mbps=2.0,
        gdp_per_capita_usd=50000.0,
    )


class TestReport:
    def test_rule_stats_merge(self):
        a = RuleStats(examined=10, repaired=2, dropped=1)
        a.merge(RuleStats(examined=5, repaired=1, dropped=4))
        assert (a.examined, a.repaired, a.dropped) == (15, 3, 5)

    def test_report_merge_is_additive(self):
        a, b = SanitizationReport(), SanitizationReport()
        a.rule("counter_wrap").repaired = 3
        a.samples_in, a.samples_kept = 100, 97
        b.rule("counter_wrap").repaired = 2
        b.rule("counter_reset").dropped = 5
        b.users_in, b.users_kept = 10, 9
        a.merge(b)
        assert a.rule("counter_wrap").repaired == 5
        assert a.rule("counter_reset").dropped == 5
        assert (a.samples_in, a.samples_kept) == (100, 97)
        assert (a.users_in, a.users_kept) == (10, 9)
        assert a.total_repaired == 5
        assert a.total_dropped == 5

    def test_payload_round_trip(self):
        report = SanitizationReport()
        report.rule("counter_wrap").repaired = 7
        report.rule("ndt_failure").dropped = 2
        report.users_in, report.users_kept = 50, 48
        report.periods_in, report.periods_kept = 80, 75
        report.samples_in, report.samples_kept = 1000, 990
        payload = json.loads(json.dumps(report.to_payload()))
        restored = SanitizationReport.from_payload(payload)
        assert restored.to_payload() == report.to_payload()

    def test_format_lists_every_rule(self):
        report = SanitizationReport()
        report.rule("counter_wrap").repaired = 1
        report.rule("duplicate_sample").dropped = 2
        text = report.format()
        assert "counter_wrap" in text
        assert "duplicate_sample" in text
        assert "sanitization report" in text


class TestRepairWraps:
    def test_clean_rates_untouched(self):
        rates = np.array([0.0, 10.0, 900.0])
        out = repair_wraps(rates, INTERVAL_S)
        assert np.array_equal(out, rates)

    def test_single_wrap_repaired_exactly(self):
        clean = np.array([3.5, 120.0, 0.25])
        wrapped = clean + QUANTUM
        report = SanitizationReport()
        out = repair_wraps(wrapped, INTERVAL_S, report)
        assert np.allclose(out, clean, atol=1e-9)
        assert report.rule("counter_wrap").repaired == 3

    def test_multiple_wraps_repaired(self):
        clean = np.array([42.0])
        out = repair_wraps(clean + 3 * QUANTUM, INTERVAL_S)
        assert out[0] == pytest.approx(42.0, abs=1e-9)

    def test_bad_interval_rejected(self):
        with pytest.raises(DatasetError):
            repair_wraps(np.array([1.0]), 0.0)


class TestStripSentinels:
    def test_removes_down_sentinels(self):
        rates = np.array([1.0, RESET_SENTINEL_MBPS, 3.0])
        bt = np.array([False, True, False])
        hours = np.array([1.0, 2.0, 3.0])
        report = SanitizationReport()
        out_r, out_bt, out_h, out_up = strip_sentinels(
            rates, bt, hours, None, report
        )
        assert np.array_equal(out_r, [1.0, 3.0])
        assert np.array_equal(out_h, [1.0, 3.0])
        assert out_up is None
        assert report.rule("counter_reset").dropped == 1
        assert report.rule("counter_reset").examined == 3

    def test_up_sentinel_drops_whole_sample(self):
        rates = np.array([1.0, 2.0])
        up = np.array([0.5, RESET_SENTINEL_MBPS])
        out_r, _, _, out_up = strip_sentinels(
            rates, np.zeros(2, bool), np.arange(2.0), up
        )
        assert np.array_equal(out_r, [1.0])
        assert np.array_equal(out_up, [0.5])

    def test_clean_arrays_returned_unchanged(self):
        rates = np.array([1.0, 2.0])
        out_r, _, _, _ = strip_sentinels(
            rates, np.zeros(2, bool), np.arange(2.0), None
        )
        assert out_r is rates


class TestDedupSamples:
    def test_collapses_runs_to_first_copy(self):
        rates = np.array([1.0, 1.0, 1.0, 2.0])
        hours = np.array([5.0, 5.0, 5.0, 6.0])
        bt = np.zeros(4, bool)
        report = SanitizationReport()
        out_r, _, out_h, _ = dedup_samples(rates, bt, hours, None, report)
        assert np.array_equal(out_r, [1.0, 2.0])
        assert report.rule("duplicate_sample").dropped == 2

    def test_equal_rates_different_timestamps_kept(self):
        rates = np.array([1.0, 1.0])
        hours = np.array([5.0, 6.0])
        out_r, _, _, _ = dedup_samples(rates, np.zeros(2, bool), hours, None)
        assert np.array_equal(out_r, [1.0, 1.0])


class TestSanitizeSamples:
    def test_gateway_interval_none_disables_wrap_repair(self):
        # An hourly record above the *hourly* wrap quantum is a fast
        # line, not a wrap; with 64-bit counters nothing is repaired.
        fast = np.array([wrap_quantum_mbps(3600.0) * 2])
        out_r, _, _, _ = sanitize_samples(
            fast, np.zeros(1, bool), np.array([4.0]), None,
            counter_interval_s=None,
        )
        assert np.array_equal(out_r, fast)

    def test_full_pass_accounts_samples(self):
        rates = np.array([1.0, RESET_SENTINEL_MBPS, 2.0, 2.0])
        hours = np.array([1.0, 2.0, 3.0, 3.0])
        report = SanitizationReport()
        out_r, _, _, _ = sanitize_samples(
            rates, np.zeros(4, bool), hours, None,
            counter_interval_s=INTERVAL_S, report=report,
        )
        assert np.array_equal(out_r, [1.0, 2.0])
        assert report.samples_in == 4
        assert report.samples_kept == 2


class TestSanitizeUsers:
    def test_clean_user_survives_intact(self):
        user = make_user()
        kept, report = sanitize_users([user])
        assert kept == [user]
        assert report.users_kept == 1
        assert report.total_dropped == 0

    def test_duplicate_period_collapsed(self):
        obs = make_obs()
        user = make_user(observations=(obs, obs))
        kept, report = sanitize_users([user])
        assert len(kept) == 1
        assert len(kept[0].observations) == 1
        assert report.rule("duplicate_period").dropped == 1

    def test_ndt_failure_period_excluded(self):
        bad = make_obs(n_ndt_tests=MIN_NDT_TESTS - 1)
        good = make_obs(start_day=10.0, end_day=11.0)
        user = make_user(observations=(bad, good))
        kept, report = sanitize_users([user])
        assert len(kept[0].observations) == 1
        assert kept[0].observations[0].period.start_day == 10.0
        assert report.rule("ndt_failure").dropped == 1

    def test_invalid_values_period_excluded(self):
        bad = make_obs(peak=math.nan, peak_no_bt=math.nan)
        user = make_user(observations=(bad,))
        kept, report = sanitize_users([user])
        assert kept == []
        assert report.rule("invalid_values").dropped == 1
        assert report.users_kept == 0

    def test_short_observation_user_excluded(self):
        # 10 samples x 30 s is far below the minimum observed days.
        thin = make_obs(n_usage_samples=10)
        user = make_user(observations=(thin,))
        kept, report = sanitize_users([user])
        assert kept == []
        assert report.rule("short_observation").dropped == 1

    def test_gateway_observation_floor_uses_hourly_interval(self):
        # 10 hourly records = 10 h of wall clock, above the 0.05-day floor.
        obs = make_obs(n_usage_samples=10)
        user = make_user(user_id="f1", observations=(obs,), source="fcc")
        kept, _ = sanitize_users([user])
        assert kept == [user]


class TestIngestUsers:
    def test_clean_csv_round_trips(self, tmp_path):
        users = [make_user(user_id=f"u{i}") for i in range(3)]
        path = tmp_path / "users.csv"
        write_users_csv(users, path)
        kept, report = ingest_users(path)
        assert [u.user_id for u in kept] == [u.user_id for u in users]
        assert report.rule("malformed_row").dropped == 0

    def test_malformed_rows_dropped_and_counted(self, tmp_path):
        users = [make_user(user_id=f"u{i}") for i in range(3)]
        path = tmp_path / "users.csv"
        write_users_csv(users, path)
        lines = path.read_text().splitlines()
        # Truncate one data row mid-field: it can no longer parse.
        lines[1] = lines[1].split(",")[0]
        path.write_text("\n".join(lines) + "\n")
        kept, report = ingest_users(path)
        assert report.rule("malformed_row").dropped >= 1
        assert len(kept) < len(users)
        assert all(u.user_id.startswith("u") for u in kept)

    def test_strict_reader_still_raises(self, tmp_path):
        from repro.datasets.io import read_users_csv

        users = [make_user()]
        path = tmp_path / "users.csv"
        write_users_csv(users, path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].split(",")[0]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises((ValueError, TypeError, KeyError, DatasetError)):
            read_users_csv(path)
