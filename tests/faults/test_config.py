"""FaultConfig validation, severity profiles, and injector mechanics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.faults import (
    FAULT_PROFILES,
    FaultConfig,
    FaultInjector,
    fault_profile,
)
from repro.faults.injector import RESET_SENTINEL_MBPS, wrap_quantum_mbps
from repro.measurement.ndt import NdtResult


class TestFaultConfig:
    def test_defaults_are_all_off(self):
        assert FaultConfig().is_noop

    def test_profiles_are_not_noops(self):
        for name, config in FAULT_PROFILES.items():
            assert not config.is_noop
            assert config.profile == name

    def test_severity_ordering(self):
        light, default, heavy = (
            FAULT_PROFILES[n] for n in ("light", "default", "heavy")
        )
        for rate in ("sample_drop_rate", "counter_reset_rate",
                     "ndt_failure_rate", "household_loss_rate"):
            assert (
                getattr(light, rate)
                < getattr(default, rate)
                < getattr(heavy, rate)
            )

    @pytest.mark.parametrize("field,value", [
        ("sample_drop_rate", -0.1),
        ("sample_drop_rate", 1.5),
        ("counter_wrap_rate", 2.0),
        ("clock_skew_max_hours", -1.0),
    ])
    def test_out_of_range_rates_rejected(self, field, value):
        with pytest.raises(ReproError):
            FaultConfig(**{field: value})

    def test_non_numeric_rate_rejected(self):
        with pytest.raises(ReproError):
            FaultConfig(sample_drop_rate="lots")

    def test_profile_resolution(self):
        assert fault_profile("off") is None
        assert fault_profile("none") is None
        assert fault_profile("default") is FAULT_PROFILES["default"]

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError, match="unknown fault profile"):
            fault_profile("catastrophic")


def _injector(seed=0, **rates):
    return FaultInjector(FaultConfig(**rates), np.random.default_rng(seed))


class TestInjectorMechanics:
    def test_household_loss_at_rate_one(self):
        assert _injector(household_loss_rate=1.0).household_lost()
        assert not _injector().household_lost()

    def test_attrition_truncates_panel(self):
        entry, exit_ = _injector(attrition_rate=1.0).perturb_panel(2011, 2014)
        assert entry == 2011
        assert 2011 <= exit_ <= 2014

    def test_no_attrition_preserves_panel(self):
        assert _injector().perturb_panel(2011, 2014) == (2011, 2014)

    def test_resets_void_both_directions(self):
        injector = _injector(counter_reset_rate=1.0)
        rates = np.array([5.0, 6.0])
        up = np.array([1.0, 2.0])
        out_r, _, _, out_up = injector.perturb_dasu_samples(
            rates, np.zeros(2, bool), np.arange(2.0), up, interval_s=30.0
        )
        assert np.all(out_r == RESET_SENTINEL_MBPS)
        assert np.all(out_up == RESET_SENTINEL_MBPS)

    def test_wraps_add_exactly_one_quantum(self):
        injector = _injector(counter_wrap_rate=1.0)
        rates = np.array([5.0])
        out_r, _, _, _ = injector.perturb_dasu_samples(
            rates, np.zeros(1, bool), np.zeros(1), None, interval_s=30.0
        )
        assert out_r[0] == pytest.approx(5.0 + wrap_quantum_mbps(30.0))

    def test_duplicates_repeat_samples_verbatim(self):
        injector = _injector(sample_duplicate_rate=1.0)
        rates = np.array([5.0, 7.0])
        hours = np.array([1.0, 2.0])
        out_r, _, out_h, _ = injector.perturb_dasu_samples(
            rates, np.zeros(2, bool), hours, None, interval_s=30.0
        )
        assert np.array_equal(out_r, [5.0, 5.0, 7.0, 7.0])
        assert np.array_equal(out_h, [1.0, 1.0, 2.0, 2.0])

    def test_gateway_gap_removes_contiguous_block(self):
        injector = _injector(
            gateway_gap_rate=1.0, gateway_gap_max_fraction=0.5
        )
        n = 100
        rates = np.arange(float(n))
        out_r, _, out_h, _ = injector.perturb_gateway_samples(
            rates, np.zeros(n, bool), np.arange(float(n)), None
        )
        assert 0 < out_r.size < n
        # Survivors keep their original order and values.
        assert np.all(np.diff(out_r) > 0)

    def test_ndt_failure_removes_runs(self):
        injector = _injector(ndt_failure_rate=1.0)
        tests = [
            NdtResult(day=float(i), download_mbps=10.0, upload_mbps=1.0,
                      rtt_ms=20.0, loss_fraction=0.0)
            for i in range(5)
        ]
        assert injector.perturb_ndt(tests) == []
        assert injector.perturb_ndt([]) == []

    def test_ndt_truncation_underestimates_capacity(self):
        injector = _injector(ndt_truncation_rate=1.0)
        tests = [
            NdtResult(day=0.0, download_mbps=10.0, upload_mbps=1.0,
                      rtt_ms=20.0, loss_fraction=0.0)
        ]
        (out,) = injector.perturb_ndt(tests)
        assert 0.15 * 10.0 <= out.download_mbps <= 0.6 * 10.0
        assert out.rtt_ms == 20.0

    def test_clock_skew_shifts_hours_mod_24(self):
        injector = _injector(seed=5, clock_skew_max_hours=4.0)
        hours = np.array([0.0, 12.0, 23.5])
        _, _, out_h, _ = injector.perturb_dasu_samples(
            np.ones(3), np.zeros(3, bool), hours, None, interval_s=30.0
        )
        assert np.all((0.0 <= out_h) & (out_h < 24.0))
        assert not np.array_equal(out_h, hours)

    def test_empty_arrays_pass_through(self):
        injector = _injector(sample_drop_rate=0.5)
        empty = np.array([])
        out = injector.perturb_dasu_samples(
            empty, np.array([], bool), empty, None, interval_s=30.0
        )
        assert out[0].size == 0
        gw = injector.perturb_gateway_samples(
            empty, np.array([], bool), empty, None
        )
        assert gw[0].size == 0
