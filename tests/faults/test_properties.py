"""Property-based robustness of the sanitization/injection contract.

Hypothesis drives the sample-level rules across arbitrary dirty inputs;
the world-level classes pin the three byte-identity invariants the issue
demands: zero-rate injection is a no-op, sanitizing a clean world is a
no-op, and a faulted build is bit-identical for any worker count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import WorldConfig, build_world
from repro.datasets.io import write_survey_csv, write_users_csv
from repro.datasets.sanitize import repair_wraps, sanitize_samples
from repro.faults import FaultConfig, FaultInjector
from repro.faults.injector import RESET_SENTINEL_MBPS, wrap_quantum_mbps

INTERVAL_S = 30.0
QUANTUM = wrap_quantum_mbps(INTERVAL_S)

# One dirty sample: a sentinel, a clean rate, or a rate carrying 1-3
# uncorrected wraps. Drawn per element so arbitrary mixtures appear.
_sample = st.one_of(
    st.just(RESET_SENTINEL_MBPS),
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.integers(min_value=1, max_value=3),
    ).map(lambda t: t[0] + t[1] * QUANTUM),
)


@st.composite
def dirty_arrays(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    rates = np.asarray(
        draw(st.lists(_sample, min_size=n, max_size=n)), dtype=float
    )
    hours = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=23.99, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=float,
    )
    bt = np.asarray(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    if draw(st.booleans()):
        up = np.asarray(
            draw(st.lists(_sample, min_size=n, max_size=n)), dtype=float
        )
    else:
        up = None
    # Duplicate a random run to exercise dedup.
    if n >= 2 and draw(st.booleans()):
        i = draw(st.integers(min_value=0, max_value=n - 1))
        repeats = np.ones(n, dtype=int)
        repeats[i] = draw(st.integers(min_value=2, max_value=4))
        rates = np.repeat(rates, repeats)
        hours = np.repeat(hours, repeats)
        bt = np.repeat(bt, repeats)
        if up is not None:
            up = np.repeat(up, repeats)
    return rates, bt, hours, up


def _sanitize(arrays):
    return sanitize_samples(*arrays, counter_interval_s=INTERVAL_S)


class TestSampleProperties:
    @given(arrays=dirty_arrays())
    @settings(max_examples=60, deadline=None)
    def test_sanitization_is_idempotent(self, arrays):
        once = _sanitize(arrays)
        twice = _sanitize(once)
        for a, b in zip(once, twice):
            if a is None or b is None:
                assert a is b
            else:
                assert np.array_equal(a, b)

    @given(arrays=dirty_arrays())
    @settings(max_examples=60, deadline=None)
    def test_outputs_never_negative(self, arrays):
        rates, _, _, up = _sanitize(arrays)
        assert np.all(rates >= 0)
        if up is not None:
            assert np.all(up >= 0)

    @given(arrays=dirty_arrays())
    @settings(max_examples=60, deadline=None)
    def test_all_arrays_stay_aligned(self, arrays):
        rates, bt, hours, up = _sanitize(arrays)
        assert rates.size == bt.size == hours.size
        if up is not None:
            assert up.size == rates.size

    @given(
        clean=st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        wraps=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_wrap_repair_recovers_clean_rates_exactly(self, clean, wraps):
        clean_arr = np.asarray(clean, dtype=float)
        k = np.asarray(wraps[: len(clean)] + [0] * (len(clean) - len(wraps)))
        corrupted = clean_arr + k * QUANTUM
        repaired = repair_wraps(corrupted, INTERVAL_S)
        assert np.allclose(repaired, clean_arr, atol=1e-9)
        untouched = k == 0
        assert np.array_equal(repaired[untouched], clean_arr[untouched])


class TestZeroRateInjection:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_noop_config_perturbs_nothing(self, seed, n):
        rng = np.random.default_rng(seed)
        rates = rng.uniform(0.0, 100.0, n)
        hours = rng.uniform(0.0, 24.0, n) % 24.0
        bt = rng.random(n) < 0.2
        up = rng.uniform(0.0, 5.0, n)
        injector = FaultInjector(FaultConfig(), np.random.default_rng(seed + 1))
        out_r, out_bt, out_h, out_up = injector.perturb_dasu_samples(
            rates, bt, hours, up, interval_s=INTERVAL_S
        )
        assert np.array_equal(out_r, rates)
        assert np.array_equal(out_bt, bt)
        assert np.array_equal(out_h, hours)
        assert np.array_equal(out_up, up)
        g_r, _, g_h, _ = injector.perturb_gateway_samples(rates, bt, hours, up)
        assert np.array_equal(g_r, rates)
        assert np.array_equal(g_h, hours)

    def test_noop_config_is_noop(self):
        assert FaultConfig().is_noop


SMALL = dict(n_dasu_users=40, n_fcc_users=10, days_per_year=1.0)


def _world_bytes(world, tmp_path, tag):
    users = tmp_path / f"{tag}-users.csv"
    survey = tmp_path / f"{tag}-survey.csv"
    write_users_csv(world.all_users, users)
    write_survey_csv(world.survey, survey)
    return users.read_bytes(), survey.read_bytes()


class TestWorldInvariants:
    """The issue's hard acceptance criteria, at the bytes level."""

    @pytest.mark.parametrize("seed", [3, 97])
    def test_zero_rate_injection_is_byte_identical(self, tmp_path, seed):
        clean = build_world(WorldConfig(seed=seed, **SMALL))
        zeroed = build_world(
            WorldConfig(seed=seed, faults=FaultConfig(), **SMALL)
        )
        assert _world_bytes(clean, tmp_path, "clean") == _world_bytes(
            zeroed, tmp_path, "zero"
        )

    def test_sanitizing_a_clean_world_changes_nothing(self, tmp_path):
        clean = build_world(WorldConfig(seed=3, **SMALL))
        sanitized = build_world(WorldConfig(seed=3, sanitize=True, **SMALL))
        assert _world_bytes(clean, tmp_path, "clean") == _world_bytes(
            sanitized, tmp_path, "san"
        )
        report = sanitized.sanitization
        assert report is not None
        assert report.total_dropped == 0
        assert report.total_repaired == 0
        assert report.users_kept == report.users_in

    @pytest.mark.parametrize("profile", ["default", "heavy"])
    def test_faulted_build_deterministic_across_jobs(self, tmp_path, profile):
        from repro.faults import fault_profile

        config = WorldConfig(
            seed=3, faults=fault_profile(profile), sanitize=True, **SMALL
        )
        serial = build_world(config, jobs=1)
        parallel = build_world(config, jobs=4, chunk_size=7)
        assert _world_bytes(serial, tmp_path, "s") == _world_bytes(
            parallel, tmp_path, "p"
        )
        assert (
            serial.sanitization.to_payload()
            == parallel.sanitization.to_payload()
        )

    def test_faulted_world_actually_differs(self, tmp_path):
        from repro.faults import fault_profile

        clean = build_world(WorldConfig(seed=3, **SMALL))
        faulted = build_world(
            WorldConfig(
                seed=3, faults=fault_profile("default"), sanitize=True, **SMALL
            )
        )
        assert _world_bytes(clean, tmp_path, "c") != _world_bytes(
            faulted, tmp_path, "f"
        )
        assert faulted.sanitization.total_dropped > 0

    def test_fault_free_config_payload_unchanged(self):
        # Cache keys hash this payload: clean configs must not mention
        # the new fields, so warm caches from before the fault subsystem
        # (and its golden snapshots) stay valid.
        from repro.datasets.io import config_payload

        payload = config_payload(WorldConfig(seed=3, **SMALL))
        assert "faults" not in payload
        assert "sanitize" not in payload
        dirty = config_payload(
            WorldConfig(seed=3, faults=FaultConfig(), sanitize=True, **SMALL)
        )
        assert "faults" in dirty
        assert dirty["sanitize"] is True

    def test_faulted_config_gets_distinct_cache_key(self):
        from repro.datasets.cache import cache_key
        from repro.faults import fault_profile

        clean = WorldConfig(seed=3, **SMALL)
        faulted = WorldConfig(
            seed=3, faults=fault_profile("default"), sanitize=True, **SMALL
        )
        assert cache_key(clean) != cache_key(faulted)
