"""Tests for fault injection and the hardened ingest/sanitization stage."""
