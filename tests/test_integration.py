"""End-to-end integration tests across the whole pipeline."""

import numpy as np
import pytest

from repro.analysis import (
    capacity,
    characterization,
    longitudinal,
    price,
    quality,
    upgrade_cost,
)
from repro.datasets import WorldConfig, build_world
from repro.datasets.io import read_users_csv, write_users_csv


class TestEveryAnalysisRuns:
    """Every paper table/figure entry point runs on one world."""

    def test_full_pipeline(self, small_world):
        dasu = small_world.dasu.users
        fcc = small_world.fcc.users
        survey = small_world.survey

        assert characterization.figure1(dasu).n_users == len(dasu)
        assert capacity.figure2(dasu).min_correlation > 0.5
        assert capacity.figure3(dasu, fcc).fcc_peak.points
        assert capacity.table1(dasu).n_observations > 0
        assert capacity.figure4(dasu).mean_ratio_at_median > 0
        assert capacity.figure5(dasu).cells
        assert capacity.table2(dasu, "dasu").rows
        assert longitudinal.figure6(dasu).year_curves
        assert price.table3(dasu).group_sizes[0] > 0
        assert len(price.table4(dasu, survey).rows) == 4
        assert len(price.figure7(dasu).countries) == 4
        assert price.figure8(dasu, min_users=10).groups
        assert price.figure9(dasu, min_users=10).groups
        assert upgrade_cost.figure10(survey).n_countries > 10
        assert len(upgrade_cost.table5(survey).rows) == 9
        assert upgrade_cost.table6(dasu).group_sizes[1] > 0
        assert quality.table7(dasu).rows
        assert quality.figure11(dasu).india_median_ndt_ms > 0
        assert quality.table8(dasu).rows
        assert quality.figure12(dasu).india_median_loss_pct > 0


class TestAnalysisNeverTouchesGroundTruth:
    def test_analyses_work_from_persisted_records_alone(
        self, small_world, tmp_path
    ):
        """Round-tripping through CSV (which cannot carry ground truth)
        reproduces the analysis results exactly — proof the pipeline uses
        measurements only."""
        subset = small_world.dasu.users[:400]
        path = tmp_path / "users.csv"
        write_users_csv(subset, path)
        loaded = read_users_csv(path)

        direct = capacity.table1(subset)
        from_disk = capacity.table1(loaded)
        assert direct.average.n_pairs == from_disk.average.n_pairs
        assert direct.average.n_holds == from_disk.average.n_holds
        assert direct.peak.p_value == pytest.approx(from_disk.peak.p_value)


class TestDeterminism:
    def test_analysis_results_reproducible(self):
        config = WorldConfig(
            seed=31, n_dasu_users=250, n_fcc_users=0, days_per_year=1.0
        )
        a = build_world(config)
        b = build_world(config)
        fa = characterization.figure1(a.dasu.users)
        fb = characterization.figure1(b.dasu.users)
        assert fa.median_capacity_mbps == fb.median_capacity_mbps
        assert fa.median_latency_ms == fb.median_latency_ms
        ta = capacity.table1(a.dasu.users)
        tb = capacity.table1(b.dasu.users)
        assert ta.peak.n_holds == tb.peak.n_holds


class TestCrossDatasetConsistency:
    def test_user_capacities_consistent_with_market(self, small_world):
        """Measured capacities respect each country's plan ceilings
        (modulo technology limits and small measurement overshoot)."""
        for user in small_world.dasu.users[:500]:
            market = small_world.survey.market(user.country)
            assert user.capacity_down_mbps <= market.max_capacity_mbps * 1.2

    def test_covariates_match_survey(self, small_world):
        prices = small_world.survey.price_of_access()
        for user in small_world.dasu.users[:500]:
            assert user.price_of_access_usd == pytest.approx(
                prices[user.country]
            )

    def test_switchers_upgrade_within_market(self, small_world):
        for user in small_world.dasu.users:
            if not user.switched_service:
                continue
            market = small_world.survey.market(user.country)
            for obs in user.observations:
                assert (
                    obs.period.capacity_mbps
                    <= market.max_capacity_mbps * 1.2
                )


class TestHeadlineFindings:
    """The paper's summary claims, end to end, on the shared world."""

    def test_capacity_drives_demand_but_saturates(self, small_world):
        fig2 = capacity.figure2(small_world.dasu.users)
        assert fig2.min_correlation > 0.8
        assert fig2.diminishing_returns()

    def test_users_rarely_fully_utilize(self, small_world):
        utils = np.array(
            [u.peak_utilization for u in small_world.dasu.users]
        )
        # Sec. 3.1: average p95 utilization between 10 and 48%.
        assert 0.08 <= float(np.mean(utils)) <= 0.55

    def test_upgrades_raise_demand(self, small_world):
        t1 = capacity.table1(small_world.dasu.users)
        assert t1.peak.fraction_holds > 0.52

    def test_quality_suppresses_demand(self, small_world):
        # With only ~25 India-US pairs at this world size, the share is
        # noisy (sd ~0.10); the paper-scale benchmark asserts > 0.5 with
        # ~120 pairs.
        f11 = quality.figure11(small_world.dasu.users)
        assert f11.india_lower_demand_share >= 0.40
