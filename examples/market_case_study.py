#!/usr/bin/env python
"""The four-market case study: Botswana, Saudi Arabia, the US and Japan.

Reproduces the Sec. 5 narrative: what broadband costs in each market (as
a share of income), what capacities people end up on, and how hard they
drive their links. The punchline is the reversal — ordering the markets
by capacity orders them in reverse by peak utilization.

Run:  python examples/market_case_study.py
"""

from repro import WorldConfig, build_world
from repro.analysis import price
from repro.market.countries import CASE_STUDY_COUNTRIES


def main() -> None:
    # The case study needs enough users per country tier, so this example
    # uses a mid-sized world.
    config = WorldConfig(seed=5, n_dasu_users=6000, n_fcc_users=0,
                         days_per_year=1.5)
    print("Building world (this takes a little while)...")
    world = build_world(config)
    users = world.dasu.users

    # Table 4: the typical price of broadband.
    t4 = price.table4(users, world.survey)
    print("\nTable 4 — the typical price of broadband:")
    header = (f"  {'country':<14}{'users':>6}{'median Mbps':>13}"
              f"{'tier Mbps':>11}{'price $PPP':>12}{'% of income':>13}")
    print(header)
    for row in t4.rows:
        print(
            f"  {row.country:<14}{row.n_users:>6}"
            f"{row.median_capacity_mbps:>13.2f}"
            f"{row.nearest_tier_mbps:>11.1f}"
            f"{row.price_usd_ppp:>12.0f}"
            f"{100 * row.cost_share_of_monthly_income:>12.1f}%"
        )

    # Fig. 7: capacity vs utilization ordering.
    fig7 = price.figure7(users)
    print("\nFigure 7 — capacity and peak utilization:")
    for entry in fig7.countries:
        print(
            f"  {entry.country:<14} median capacity "
            f"{entry.median_capacity_mbps:>7.2f} Mbps   "
            f"mean peak utilization {100 * entry.mean_peak_utilization:>5.1f}%"
        )
    print(
        "  capacity order reverses as utilization order: "
        f"{fig7.utilization_order_reverses_capacity_order()}"
    )

    # Figs. 8-9: per-tier comparisons.
    fig9 = price.figure9(users, min_users=20)
    print("\nFigure 9 — average peak demand per (country, tier):")
    for group in fig9.groups:
        print(
            f"  {group.country:<14}{group.tier.label():<18}"
            f" n={group.n_users:<5} avg peak "
            f"{group.mean_peak_demand_mbps:.2f} Mbps"
        )

    print(
        "\nReading: in markets where broadband (or the next tier up) is"
        "\nexpensive, subscribers sit on slower plans and press them much"
        "\nharder — demand follows the market, not just the need."
    )
    assert set(CASE_STUDY_COUNTRIES) == {c.country for c in fig7.countries}


if __name__ == "__main__":
    main()
