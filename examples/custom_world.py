#!/usr/bin/env python
"""Author a custom measurement study end to end.

Shows the lower-level substrate APIs: define your own country, generate
its retail market, simulate one household's year of traffic, measure it
with the Dasu client and NDT, and export a dataset to CSV.

Run:  python examples/custom_world.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import WorldConfig, build_world
from repro.behavior.choice import ChoiceModel
from repro.behavior.demand import DemandProcess
from repro.behavior.population import PopulationModel
from repro.datasets.io import write_config_json, write_plans_csv, write_users_csv
from repro.market.countries import CountryProfile
from repro.market.economy import DevelopmentLevel, Region
from repro.market.plans import PlanTechnology
from repro.market.survey import generate_market
from repro.measurement.dasu import DasuClient, DasuVantage
from repro.measurement.ndt import NdtClient
from repro.network.link import provision_link
from repro.network.path import build_path
from repro.traffic.generator import generate_usage_series


def define_country() -> CountryProfile:
    """A fictional mid-income market with pricey upgrades."""
    return CountryProfile(
        name="Altamira",
        region=Region.SOUTH_AMERICA,
        development=DevelopmentLevel.DEVELOPING,
        gdp_per_capita_ppp=12_000.0,
        currency_code="ALT",
        units_per_usd=7.5,
        ppp_market_ratio=0.55,
        internet_penetration=0.4,
        base_price_usd=38.0,
        upgrade_slope_usd=4.0,
        min_capacity_mbps=1.0,
        max_capacity_mbps=25.0,
        n_plans=8,
        price_noise=0.08,
        oddball_plan_rate=0.1,
        promoted_tier_mbps=4.0,
        promoted_adoption=0.3,
        tech_mix={
            PlanTechnology.DSL: 0.6,
            PlanTechnology.CABLE: 0.2,
            PlanTechnology.WIRELESS: 0.15,
            PlanTechnology.SATELLITE: 0.05,
        },
        extra_latency_ms=60.0,
        loss_multiplier=1.8,
        dasu_user_weight=100.0,
    )


def one_household(profile: CountryProfile) -> None:
    """Walk a single household through the whole substrate."""
    rng = np.random.default_rng(7)
    market = generate_market(profile, rng)
    print(f"{profile.name}: {len(market.plans)} plans, access from "
          f"${market.price_of_access():.0f}/mo, +1 Mbps costs "
          f"${market.upgrade_cost_usd_per_mbps:.2f}/mo")

    # Not every candidate household can afford a plan (that is the
    # "can afford" selection the paper studies) — draw until one signs up.
    model = PopulationModel()
    chooser = ChoiceModel()
    for attempt in range(100):
        household = model.sample_user(
            f"demo-{attempt}", profile.economy(), rng
        )
        choice = chooser.choose(household, market, rng)
        if choice is not None:
            break
    assert choice is not None, "no candidate could afford any plan"
    plan = choice.plan
    print(f"  household: need {household.need_mbps:.1f} Mbps, budget "
          f"${household.budget_usd_ppp:.0f} -> chose {plan.name} "
          f"(${plan.monthly_price_usd_ppp:.0f}/mo)")

    link = provision_link(
        plan.download_mbps, plan.upload_mbps, plan.technology, rng,
        loss_multiplier=profile.loss_multiplier,
    )
    path = build_path(link, profile.extra_latency_ms, rng)
    process = DemandProcess.for_user(household, path)
    series = generate_usage_series(process, duration_days=3.0,
                                   interval_s=30.0, rng=rng)

    sampled = DasuClient(DasuVantage.UPNP, rng).collect(series)
    summary = sampled.summary(include_bt=False)
    tests = NdtClient(rng).run_tests(path, 8, (0.0, 3.0))
    capacity = max(t.download_mbps for t in tests)
    print(f"  measured: capacity {capacity:.2f} Mbps, "
          f"latency {np.mean([t.rtt_ms for t in tests]):.0f} ms, "
          f"mean demand {summary.mean_mbps:.3f} Mbps, "
          f"peak {summary.peak_mbps:.3f} Mbps "
          f"({sampled.n_samples} samples collected)\n")


def export_dataset() -> None:
    """Generate a world and persist it the way a study would publish it."""
    config = WorldConfig(seed=3, n_dasu_users=200, n_fcc_users=40,
                         days_per_year=1.0)
    world = build_world(config)
    out = Path(tempfile.mkdtemp(prefix="repro-dataset-"))
    n_rows = write_users_csv(world.all_users, out / "users.csv")
    n_plans = write_plans_csv(world.survey, out / "plans.csv")
    write_config_json(config, out / "config.json")
    print(f"exported {n_rows} user-period rows and {n_plans} plans to {out}")


def main() -> None:
    profile = define_country()
    one_household(profile)
    export_dataset()


if __name__ == "__main__":
    main()
