#!/usr/bin/env python
"""Beyond the paper: the extension analyses.

The reproduction carries several analyses the paper's evaluation does not
include but its data (and citations) set up:

* user categories from measured behavior (the paper's closing
  future-work item);
* the usage-cap rationing effect it cites from Chetty et al.;
* the upload direction (recorded by the original datasets, unused);
* diurnal profiles, exposing each collection channel's sampling bias;
* the quasi-experimental design of Krishnan & Sitaraman, side by side
  with the paper's natural experiments.

Run:  python examples/beyond_the_paper.py
"""

import numpy as np

from repro import WorldConfig, build_world
from repro.analysis.caps import caps_experiment
from repro.analysis.common import demand_outcome, matched_experiment
from repro.analysis.diurnal import population_diurnal_profile
from repro.analysis.segments import segment_users
from repro.analysis.upload import seeding_experiment, upload_asymmetry
from repro.core.qed import QuasiExperiment


def main() -> None:
    config = WorldConfig(seed=29, n_dasu_users=3000, n_fcc_users=400,
                         days_per_year=1.5)
    print("Building world...\n")
    world = build_world(config)
    users = world.dasu.users

    # 1. User categories (future work of Sec. 10).
    segmentation = segment_users(users)
    print("User segments (from measured behavior only):")
    for profile in segmentation.profiles:
        print(f"  {profile.segment:<10} {profile.n_users:>5} users  "
              f"median peak {profile.median_peak_mbps:6.3f} Mbps  "
              f"utilization {100 * profile.mean_peak_utilization:5.1f}%")

    # 2. Usage caps (Chetty et al.).
    caps = caps_experiment(users)
    r = caps.experiment.result
    print(f"\nUsage caps: uncapped households out-demand matched "
          f"tightly-capped ones {100 * r.fraction_holds:.0f}% of the time "
          f"(n={r.n_pairs}, p={r.p_value:.3g})")

    # 3. Upload direction.
    asymmetry = upload_asymmetry(users)
    seeding = seeding_experiment(users)
    print(f"\nUpload: median up/down ratio {asymmetry.median_ratio:.3f}; "
          f"BT households upload more than matched non-BT ones "
          f"{100 * seeding.result.fraction_holds:.0f}% of the time")

    # 4. Diurnal profiles per collection channel.
    dasu_profile = population_diurnal_profile(users)
    fcc_profile = population_diurnal_profile(world.fcc.users)
    print(f"\nDiurnal shape: peak {dasu_profile.peak_hour}:00, trough "
          f"{dasu_profile.trough_hour}:00; Dasu evening/night coverage "
          f"bias {dasu_profile.coverage_bias():.2f} vs FCC "
          f"{fcc_profile.coverage_bias():.2f}")

    # 5. QED vs natural experiment on the same question.
    low = [u for u in users if 0.8 < u.capacity_down_mbps <= 3.2]
    high = [u for u in users if 3.2 < u.capacity_down_mbps <= 12.8]
    natural = matched_experiment(
        "natural", low, high,
        confounders=("latency", "loss", "price_of_access"),
        outcome=demand_outcome("peak", include_bt=False),
    )
    qed = QuasiExperiment(
        "qed",
        [lambda u: u.latency_ms, lambda u: max(u.loss_fraction, 1e-4)],
        bins_per_decade=2,
    ).run(low, high, outcome=lambda u: u.peak_no_bt_mbps,
          rng=np.random.default_rng(1))
    print(f"\nCapacity effect, two estimators:")
    print(f"  natural experiment  H holds "
          f"{100 * natural.result.fraction_holds:.1f}% "
          f"(n={natural.result.n_pairs})")
    print(f"  QED                 net outcome score "
          f"{qed.net_outcome_score:+.3f} (n={qed.n_pairs})")


if __name__ == "__main__":
    main()
