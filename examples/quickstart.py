#!/usr/bin/env python
"""Quickstart: build a synthetic broadband world and test the paper's
headline claim — that capacity causally drives demand.

Builds a small world (about a minute of CPU at most; shrink the user
count for a faster demo), summarizes the connections, draws the
usage-vs-capacity relationship, and runs the Table 1 natural experiment.

Run:  python examples/quickstart.py
"""

from repro import WorldConfig, build_world
from repro.analysis import capacity, characterization
from repro.analysis.report import format_curve, format_experiment_row


def main() -> None:
    config = WorldConfig(
        seed=1, n_dasu_users=3000, n_fcc_users=300, days_per_year=1.5
    )
    print(f"Building world (seed={config.seed}, "
          f"{config.n_dasu_users} Dasu users)...")
    world = build_world(config)
    users = world.dasu.users
    print(f"  -> {len(users)} Dasu users across "
          f"{len(world.dasu.countries)} countries, "
          f"{len(world.fcc.users)} FCC gateways, "
          f"{world.survey.n_plans} retail plans\n")

    # 1. What do the connections look like? (Fig. 1)
    fig1 = characterization.figure1(users)
    print("Connection characterization (paper / measured):")
    for label, paper, measured in fig1.summary_rows():
        print(f"  {label:<38} {paper:>8.3f} / {measured:.3f}")
    print()

    # 2. Does usage grow with capacity? (Fig. 2)
    fig2 = capacity.figure2(users)
    print(format_curve("Peak demand vs capacity (no BitTorrent)",
                       fig2.peak_no_bt))
    print(f"  diminishing returns above ~10 Mbps: "
          f"{fig2.diminishing_returns()}\n")

    # 3. Is the relationship causal? (Table 1)
    t1 = capacity.table1(users)
    print(f"Natural experiment over {t1.n_observations} users observed on "
          "two networks:")
    for label, paper, result in t1.rows():
        print(format_experiment_row(label, paper, result))
    verdict = "drives" if t1.peak.rejects_null else "does not clearly drive"
    print(f"\nConclusion: capacity {verdict} peak demand "
          f"(p = {t1.peak.p_value:.2e}).")


if __name__ == "__main__":
    main()
