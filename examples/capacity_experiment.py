#!/usr/bin/env python
"""Design your own natural experiment with the matching toolkit.

The paper's methodology — nearest-neighbor matching with a 25% caliper
plus a one-tailed binomial sign test — is exposed as a small set of
composable pieces. This example builds a custom experiment from scratch:
"do BitTorrent households place more *non-BitTorrent* demand on the
network than otherwise similar non-BitTorrent households?"

Run:  python examples/capacity_experiment.py
"""

from repro import WorldConfig, build_world
from repro.analysis.common import demand_outcome, matched_experiment
from repro.analysis.report import format_experiment_row
from repro.core.experiments import NaturalExperiment, PairedOutcome


def custom_matched_experiment(users) -> None:
    """A question the paper never asked, answered with its machinery."""
    non_bt = [u for u in users if not u.bt_user]
    bt = [u for u in users if u.bt_user]
    result = matched_experiment(
        "BT households vs non-BT households",
        control=non_bt,
        treatment=bt,
        confounders=("capacity", "latency", "loss", "price_of_access"),
        outcome=demand_outcome("peak", include_bt=False),
        hypothesis="BitTorrent households are heavier users overall",
    )
    print("Custom experiment (peak demand *excluding* BT intervals):")
    print(format_experiment_row(
        "  non-BT (control) vs BT (treatment)", None, result))
    print(f"  matched {result.matching.n_matched} of "
          f"{result.matching.n_treatment} treatment users\n")


def hand_rolled_sign_test() -> None:
    """The statistical core, usable on any paired data you have."""
    experiment = NaturalExperiment(
        "my own study",
        hypothesis="treatment beats control",
        practical_margin=0.02,
    )
    outcomes = [PairedOutcome(control_value=1.0, treatment_value=1.5)] * 70
    outcomes += [PairedOutcome(control_value=1.5, treatment_value=1.0)] * 30
    result = experiment.evaluate(outcomes)
    print("Hand-rolled sign test over 100 synthetic pairs:")
    print(f"  H holds {100 * result.fraction_holds:.0f}% "
          f"(p = {result.p_value:.2e}); "
          f"rejects H0: {result.rejects_null}\n")


def caliper_sensitivity(users) -> None:
    """How the caliper trades pair volume for comparison quality."""
    low = [u for u in users if 1.6 < u.capacity_down_mbps <= 6.4]
    high = [u for u in users if 6.4 < u.capacity_down_mbps <= 25.6]
    print("Caliper sensitivity on a capacity comparison:")
    for caliper in (0.10, 0.25, 0.50):
        result = matched_experiment(
            f"caliper {caliper:.2f}",
            low,
            high,
            confounders=("latency", "loss", "price_of_access"),
            outcome=demand_outcome("peak", include_bt=False),
            caliper=caliper,
        )
        print(
            f"  caliper {caliper:.2f}: n={result.result.n_pairs:<5} "
            f"H holds {100 * result.result.fraction_holds:5.1f}%"
        )


def main() -> None:
    config = WorldConfig(seed=17, n_dasu_users=2500, n_fcc_users=0,
                         days_per_year=1.0)
    print("Building world...\n")
    world = build_world(config)
    users = world.dasu.users
    custom_matched_experiment(users)
    hand_rolled_sign_test()
    caliper_sensitivity(users)


if __name__ == "__main__":
    main()
