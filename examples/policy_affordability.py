#!/usr/bin/env python
"""Affordability analytics for policy audiences (Sec. 6 of the paper).

Computes the global cost-of-upgrade distribution (Fig. 10), the regional
affordability table (Table 5), and then runs a what-if: if a country's
upgrade slope were subsidized to US levels, how would subscriber tier
choice change? The counterfactual reuses the exact plan-choice model the
world was generated with.

Run:  python examples/policy_affordability.py
"""

import numpy as np

from repro import WorldConfig, build_world
from repro.analysis import upgrade_cost
from repro.behavior.choice import ChoiceModel
from repro.behavior.population import PopulationModel
from repro.market.countries import ANCHOR_PROFILES
from repro.market.survey import generate_market


def global_affordability(world) -> None:
    fig10 = upgrade_cost.figure10(world.survey)
    costs = np.array(sorted(fig10.costs_by_country.values()))
    print("Cost of +1 Mbps across markets (USD PPP per month):")
    for q in (10, 25, 50, 75, 90):
        print(f"  p{q:<3} ${np.percentile(costs, q):8.2f}")
    for country in ("Japan", "US", "Ghana"):
        cost = fig10.cost_for(country)
        if cost is not None:
            print(f"  {country:<6} ${cost:8.2f} "
                  f"(quantile {fig10.quantile_of(country):.2f})")

    print("\nTable 5 — share of countries where +1 Mbps costs more than:")
    t5 = upgrade_cost.table5(world.survey)
    print(f"  {'region':<28}{'n':>3}{'>$1':>7}{'>$5':>7}{'>$10':>7}")
    for row in t5.rows:
        if row.n_countries == 0:
            continue
        print(
            f"  {row.region:<28}{row.n_countries:>3}"
            f"{100 * row.share_above_1:>6.0f}%"
            f"{100 * row.share_above_5:>6.0f}%"
            f"{100 * row.share_above_10:>6.0f}%"
        )


def subsidy_counterfactual() -> None:
    """What if Ghana's upgrade slope were subsidized to the US level?"""
    from dataclasses import replace

    ghana = next(p for p in ANCHOR_PROFILES if p.name == "Ghana")
    us = next(p for p in ANCHOR_PROFILES if p.name == "US")
    subsidized = replace(
        ghana,
        upgrade_slope_usd=us.upgrade_slope_usd,
        base_price_usd=min(ghana.base_price_usd, 35.0),
        max_capacity_mbps=20.0,
        n_plans=10,
    )

    model = PopulationModel()
    choice = ChoiceModel()
    print("\nCounterfactual: Ghana with US-level upgrade costs")
    for label, profile in (("today", ghana), ("subsidized", subsidized)):
        rng = np.random.default_rng(99)
        market = generate_market(profile, rng)
        chosen = []
        subscribed = 0
        for i in range(3000):
            user = model.sample_user(f"u{i}", profile.economy(), rng)
            picked = choice.choose(user, market, rng)
            if picked is not None:
                subscribed += 1
                chosen.append(picked.plan.download_mbps)
        rate = subscribed / 3000
        median = float(np.median(chosen)) if chosen else float("nan")
        print(
            f"  {label:<11} subscription rate {100 * rate:5.1f}%   "
            f"median chosen capacity {median:6.2f} Mbps"
        )
    print(
        "\nReading: cheaper upgrades move subscribers up the tier ladder"
        "\nand pull new households online — the mechanism behind the"
        "\npaper's policy recommendation of widening access to mid-tier"
        "\n(~10 Mbps) services."
    )


def main() -> None:
    config = WorldConfig(seed=23, n_dasu_users=400, n_fcc_users=0,
                         days_per_year=1.0)
    print("Building world...\n")
    world = build_world(config)
    global_affordability(world)
    subsidy_counterfactual()


if __name__ == "__main__":
    main()
