"""Root pytest configuration.

Lives at the repository root (not under ``tests/``) because
``pytest_addoption`` hooks are only discovered in root-level conftests
when pytest is invoked without path arguments.
"""

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden snapshots under tests/golden/ instead "
             "of comparing against them",
    )
