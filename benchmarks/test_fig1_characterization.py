"""Figure 1 — CDFs of capacity, latency and packet loss (Sec. 2.2).

Paper: median download capacity 7.4 Mbps (IQR 3.1-17.4), ~10% of users
below 1 Mbps; median RTT ~100 ms with the top 5% above 500 ms; loss below
0.1% for most users, above 1% for ~14%, above 10% for the top 1%.
"""

from repro.analysis.characterization import figure1

from conftest import emit


def test_fig1_connection_characterization(benchmark, dasu_users):
    result = benchmark.pedantic(
        figure1, args=(dasu_users,), rounds=3, iterations=1
    )

    emit(
        f"Figure 1: connection characterization (n={result.n_users})",
        (
            f"  {label:<38} paper {paper:>8.3f}   measured {measured:>8.3f}"
            for label, paper, measured in result.summary_rows()
        ),
    )

    # Shape assertions: the distributions must have the paper's gross
    # geometry even though absolute values come from a simulator.
    assert 2.0 <= result.median_capacity_mbps <= 20.0
    assert 0.03 <= result.share_below_1mbps <= 0.30
    assert 40.0 <= result.median_latency_ms <= 200.0
    assert 0.01 <= result.share_latency_above_500ms <= 0.12
    assert 0.05 <= result.share_loss_above_1pct <= 0.30
    assert result.share_loss_above_10pct <= 0.05
    # Orderings internal to each CDF.
    assert result.share_loss_below_0_1pct > result.share_loss_above_1pct
