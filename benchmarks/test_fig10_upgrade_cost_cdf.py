"""Figure 10 — CDF of the monthly cost of +1 Mbps across markets (Sec. 6).

Paper: Hong Kong/Japan/South Korea sit below $0.10; Canada/US slightly
above $0.50; Ghana/Uganda high in the distribution; developed countries
mostly under $1 while some developing markets exceed $100. Also: price
and capacity are strongly correlated (r > 0.8) in ~66% of markets and at
least moderately (r > 0.4) in ~81%.
"""

from repro.analysis.upgrade_cost import correlation_summary, figure10

from conftest import emit


def test_fig10_upgrade_cost_cdf(benchmark, paper_world):
    result = benchmark.pedantic(
        figure10, args=(paper_world.survey,), rounds=3, iterations=1
    )
    strong, moderate = correlation_summary(paper_world.survey)

    anchors = ("Hong Kong", "Japan", "South Korea", "Canada", "US",
               "Ghana", "Uganda")
    lines = [
        f"  qualifying markets (r > 0.4): {result.n_countries}",
        f"  strong-correlation share: paper 0.66, measured {strong:.2f}",
        f"  moderate-correlation share: paper 0.81, measured {moderate:.2f}",
    ]
    for country in anchors:
        cost = result.cost_for(country)
        quantile = result.quantile_of(country)
        if cost is not None:
            lines.append(
                f"  {country:<12} ${cost:>8.2f}/Mbps  "
                f"(at quantile {quantile:.2f})"
            )
    emit("Figure 10: cost of increasing capacity by 1 Mbps", lines)

    # Anchor ordering along the CDF.
    for cheap in ("Japan", "South Korea", "Hong Kong"):
        cost = result.cost_for(cheap)
        assert cost is not None and cost < 0.5
    us = result.cost_for("US")
    assert us is not None and 0.3 < us < 1.2
    for pricey in ("Ghana", "Uganda"):
        cost = result.cost_for(pricey)
        assert cost is not None and cost > 5.0
    # Distribution end points.
    costs = sorted(result.costs_by_country.values())
    assert costs[0] < 1.0
    assert costs[-1] > 20.0
    # Correlation shares near the paper's.
    assert 0.4 <= strong <= 0.95
    assert 0.6 <= moderate <= 1.0
