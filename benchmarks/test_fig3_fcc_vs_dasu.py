"""Figure 3 — FCC gateway users vs. US Dasu users.

Paper: peak (95th-percentile) demand is nearly identical across the two
collection channels; Dasu's average demand is slightly higher because its
collection is biased toward peak hours.
"""

from repro.analysis.capacity import figure3
from repro.analysis.report import format_curve

from conftest import emit


def test_fig3_fcc_vs_dasu(benchmark, dasu_users, fcc_users):
    result = benchmark.pedantic(
        figure3, args=(dasu_users, fcc_users), rounds=3, iterations=1
    )

    emit(
        "Figure 3: FCC vs Dasu (US, no BitTorrent for Dasu)",
        [
            format_curve("FCC mean", result.fcc_mean),
            format_curve("Dasu US mean", result.dasu_us_mean),
            format_curve("FCC peak", result.fcc_peak),
            format_curve("Dasu US peak", result.dasu_us_peak),
            f"  Dasu/FCC mean ratio: paper slightly > 1, "
            f"measured {result.mean_ratio_dasu_over_fcc:.2f}",
            f"  Dasu/FCC peak ratio: paper ~= 1, "
            f"measured {result.peak_ratio_dasu_over_fcc:.2f}",
        ],
    )

    # Peak nearly identical; mean offset small and positive.
    assert 0.6 <= result.peak_ratio_dasu_over_fcc <= 1.7
    assert result.mean_ratio_dasu_over_fcc > 0.95
    # Both channels show the capacity-demand correlation.
    assert result.fcc_peak.correlation > 0.8
    assert result.dasu_us_peak.correlation > 0.8
