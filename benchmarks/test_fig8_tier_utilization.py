"""Figure 8 — peak-utilization CDFs per country and speed tier (Sec. 5).

Paper: within the US, faster tiers run at lower peak utilization; at the
same tier, Botswana (avg ~80%) runs far hotter than the US (~52% overall
average), Saudi Arabia's 1-8 Mbps tier runs hotter than the US's
(median 60% vs 43%), and Japan's links are nearly idle (avg ~10%).
"""

from repro.analysis.price import figure8

from conftest import emit


def test_fig8_tier_utilization(benchmark, dasu_users):
    result = benchmark.pedantic(
        figure8,
        args=(dasu_users,),
        kwargs={"min_users": 20},
        rounds=2,
        iterations=1,
    )

    lines = []
    for group in result.groups:
        lines.append(
            f"  {group.country:<13} {group.tier.label():<18} "
            f"n={group.n_users:<5} mean util "
            f"{100 * group.mean_peak_utilization:>5.1f}%  median "
            f"{100 * group.median_peak_utilization:>5.1f}%"
        )
    emit("Figure 8: peak utilization by country and tier", lines)

    def util(country, tier_low):
        group = result.group_for(country, tier_low)
        return None if group is None else group.mean_peak_utilization

    # US tiers: utilization declines from the 1-8 tier to the >32 tier.
    us_mid = util("US", 1.0)
    us_top = util("US", 32.0)
    assert us_mid is not None and us_top is not None
    assert us_mid > us_top

    # Botswana's <1 Mbps tier runs hotter than any US tier.
    bw = util("Botswana", 0.0)
    assert bw is not None and bw > us_mid and bw > 0.45

    # Saudi Arabia's 1-8 tier hotter than the US's 1-8 tier.
    sa = util("Saudi Arabia", 1.0)
    if sa is not None:
        assert sa > us_mid

    # Japan's top tier nearly idle.
    jp = util("Japan", 32.0)
    if jp is not None:
        assert jp < 0.3
