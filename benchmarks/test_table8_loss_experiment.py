"""Table 8 — the packet-loss natural experiment (Sec. 7.2).

Paper: lower loss raises average demand — H holds 55.4% / 53.4% when the
control loses 0.1-1% of packets, and 58.9% / 53.8% when it loses 1-15%.
"""

import numpy as np

from repro.analysis.quality import table8
from repro.analysis.report import format_experiment_row

from conftest import emit


def test_table8_loss(benchmark, dasu_users):
    result = benchmark.pedantic(
        table8, args=(dasu_users,), rounds=2, iterations=1
    )

    lines = [f"  loss-bin populations: {result.group_sizes}"]
    for row in result.rows:
        lines.append(
            format_experiment_row(
                row.experiment.result.name, row.paper_percent, row.experiment
            )
        )
    emit("Table 8: packet-loss experiment (mean demand, no BT)", lines)

    assert result.rows
    fractions = [
        r.experiment.result.fraction_holds
        for r in result.rows
        if r.experiment.result.n_pairs >= 10
    ]
    assert fractions
    assert np.mean(fractions) > 0.5
