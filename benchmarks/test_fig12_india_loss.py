"""Figure 12 — India's packet loss vs. the rest of the population.

Paper: Indian users see much higher average packet-loss rates than the
general population, the second half (with latency, Fig. 11) of the
quality explanation for India's depressed demand.
"""

from repro.analysis.quality import figure12

from conftest import emit


def test_fig12_india_loss(benchmark, dasu_users):
    result = benchmark.pedantic(
        figure12, args=(dasu_users,), rounds=3, iterations=1
    )

    emit(
        "Figure 12: India vs rest packet loss",
        [
            f"  median loss   India {result.india_median_loss_pct:.3f}%"
            f" vs rest {result.other_median_loss_pct:.3f}%",
        ],
    )

    assert result.india_median_loss_pct > 3 * result.other_median_loss_pct
    assert result.india_median_loss_pct > 0.1  # above the QoE knee
