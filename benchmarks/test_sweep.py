"""Sweep throughput: the shared world cache and the worker fan-out.

Two wall-clock measurements over the same 4-cell scenario grid:

* **cold vs warm** — a sweep's worlds persist in the on-disk cache, so
  rerunning it (new seeds study, tweaked experiment list) should cost a
  fraction of the first run;
* **4-worker speedup** — cells fan out through ``run_sharded`` with
  byte-identical results, so extra workers should buy near-linear wall
  time on fresh builds. Skipped below 4 CPUs, where the measurement
  would be meaningless.
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

from repro.datasets import WorldConfig
from repro.sweep import Scenario, ScenarioGrid, format_sweep_report, run_sweep

from conftest import emit

BENCH_BASE = WorldConfig(
    seed=31, n_dasu_users=600, n_fcc_users=0, days_per_year=1.0
)
BENCH_SEEDS = (31, 32)
BENCH_GRID = ScenarioGrid(
    scenarios=(
        Scenario(name="baseline"),
        Scenario(name="growth-off", overrides={"demand_growth_enabled": False}),
    ),
    name="bench",
)

_N_WORKERS = 4


def _timed_sweep(**kwargs):
    start = time.perf_counter()
    result = run_sweep(BENCH_BASE, BENCH_GRID, BENCH_SEEDS, **kwargs)
    return result, time.perf_counter() - start


def test_sweep_cache_speedup():
    with tempfile.TemporaryDirectory() as cache_root:
        cold, cold_s = _timed_sweep(jobs=1, cache_root=cache_root)
        warm, warm_s = _timed_sweep(jobs=1, cache_root=cache_root)
    speedup = cold_s / warm_s
    emit(
        f"Sweep world cache ({len(cold.cells)} cells, "
        f"{BENCH_BASE.n_dasu_users} households each)",
        [
            f"cold (build):  {cold_s:6.2f} s",
            f"warm (cache):  {warm_s:6.2f} s",
            f"speedup:       x{speedup:.2f}",
        ],
    )
    assert cold.n_cache_hits == 0
    assert warm.n_cache_hits == len(warm.cells)
    assert format_sweep_report(warm) == format_sweep_report(cold)
    assert warm_s < cold_s * 0.5, (
        f"expected a warm sweep at under half the cold wall time, "
        f"got {warm_s:.2f}s vs {cold_s:.2f}s"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < _N_WORKERS,
    reason=f"needs >= {_N_WORKERS} CPUs to measure a {_N_WORKERS}-worker speedup",
)
def test_sweep_parallel_speedup():
    serial, serial_s = _timed_sweep(jobs=1, use_cache=False)
    parallel, parallel_s = _timed_sweep(jobs=_N_WORKERS, use_cache=False)
    speedup = serial_s / parallel_s
    emit(
        f"Parallel sweep ({len(serial.cells)} cells, {_N_WORKERS} workers)",
        [
            f"serial:     {serial_s:6.2f} s",
            f"{_N_WORKERS} workers:  {parallel_s:6.2f} s",
            f"speedup:    x{speedup:.2f}",
        ],
    )
    assert parallel == serial
    assert speedup >= 2.0, (
        f"expected >= 2x speedup from {_N_WORKERS} workers, got x{speedup:.2f}"
    )
