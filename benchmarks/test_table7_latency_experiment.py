"""Table 7 — the latency natural experiment (Sec. 7.1).

Paper: against the problematically-high-latency control group
(512-2048 ms), every lower-latency group shows higher peak demand — H
holds 63.5% / 63.4% / 59.4% / 56.3% for the (0,64], (64,128], (128,256]
and (256,512] ms groups respectively.
"""

import numpy as np

from repro.analysis.quality import table7
from repro.analysis.report import format_experiment_row

from conftest import emit


def test_table7_latency(benchmark, dasu_users):
    result = benchmark.pedantic(
        table7, args=(dasu_users,), rounds=2, iterations=1
    )

    lines = [f"  latency-bin populations: {result.group_sizes}"]
    for row in result.rows:
        lines.append(
            format_experiment_row(
                f"(512, 2048] vs {row.treatment_bin.label('ms')}",
                row.paper_percent,
                row.experiment,
            )
        )
    emit("Table 7: latency experiment (peak demand, no BT)", lines)

    assert result.rows
    fractions = [
        r.experiment.result.fraction_holds
        for r in result.rows
        if r.experiment.result.n_pairs >= 10
    ]
    assert fractions
    # Escaping the very-high-latency control raises demand on average.
    assert np.mean(fractions) > 0.5
