"""Figure 5 — change in demand by before/after service tier.

Paper: demand clearly increases when upgrading from slower tiers
(especially for peak usage); above ~16 Mbps the gains become inconsistent
with wide confidence intervals — capacity drives demand only up to a
point.
"""

import pytest

from repro.analysis.capacity import figure5

from conftest import emit


@pytest.mark.parametrize(
    "metric,include_bt",
    [("mean", True), ("peak", True), ("mean", False), ("peak", False)],
    ids=["mean-bt", "peak-bt", "mean-nobt", "peak-nobt"],
)
def test_fig5_upgrade_deltas(benchmark, dasu_users, metric, include_bt):
    result = benchmark.pedantic(
        figure5,
        args=(dasu_users,),
        kwargs={"metric": metric, "include_bt": include_bt},
        rounds=3,
        iterations=1,
    )

    lines = []
    for cell in result.cells:
        lines.append(
            f"  {cell.initial_tier.label():<20} -> "
            f"{cell.target_tier.label():<20} n={cell.n_switches:<4} "
            f"delta={cell.delta.center:+.3f} Mbps "
            f"ci=[{cell.delta.low:+.3f}, {cell.delta.high:+.3f}]"
        )
    emit(
        f"Figure 5 ({metric}, {'w/ BT' if include_bt else 'no BT'}): "
        "demand change by initial tier",
        lines,
    )

    assert result.cells
    assert result.low_tier_gains_exceed_high()
    # Low-tier upgrades show consistent positive gains.
    low_cells = [c for c in result.cells if c.initial_tier.high <= 4.0]
    if low_cells:
        positive = sum(1 for c in low_cells if c.delta.center > 0)
        assert positive >= len(low_cells) * 0.5
