"""Benchmark harness fixtures.

Provides one paper-scale world per benchmark session (larger than the
test world so that every per-country tier of the case study crosses the
paper's 30-user reporting threshold) and a tiny report printer so each
benchmark shows its paper-vs-measured rows inline.

The world is obtained through the on-disk build cache
(:mod:`repro.datasets.cache`): the first session builds it — sharded
across every available CPU, which is bit-identical to a serial build —
and later sessions load the persisted datasets instead of rebuilding.
Set ``REPRO_CACHE_DIR`` to relocate the cache.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import World, WorldConfig
from repro.datasets.cache import build_or_load_world

PAPER_WORLD_CONFIG = WorldConfig(
    seed=20141105,
    n_dasu_users=12_000,
    n_fcc_users=2_000,
    days_per_year=2.0,
)


@pytest.fixture(scope="session")
def paper_world() -> World:
    """The world every reproduction benchmark runs against."""
    world, from_cache = build_or_load_world(
        PAPER_WORLD_CONFIG, jobs=os.cpu_count() or 1
    )
    source = "cache" if from_cache else "fresh build"
    print(f"\npaper world ready ({source}, {len(world.all_users)} users)")
    return world


@pytest.fixture(scope="session")
def dasu_users(paper_world: World):
    return paper_world.dasu.users


@pytest.fixture(scope="session")
def fcc_users(paper_world: World):
    return paper_world.fcc.users


def emit(title: str, lines) -> None:
    """Print a benchmark's paper-vs-measured block."""
    print()
    print(f"=== {title} ===")
    for line in lines:
        print(line)
