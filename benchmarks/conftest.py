"""Benchmark harness fixtures.

Builds one paper-scale world per benchmark session (larger than the test
world so that every per-country tier of the case study crosses the
paper's 30-user reporting threshold) and provides a tiny report printer
so each benchmark shows its paper-vs-measured rows inline.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.datasets import World, WorldConfig, build_world

PAPER_WORLD_CONFIG = WorldConfig(
    seed=20141105,
    n_dasu_users=12_000,
    n_fcc_users=2_000,
    days_per_year=2.0,
)


@pytest.fixture(scope="session")
def paper_world() -> World:
    """The world every reproduction benchmark runs against."""
    return build_world(PAPER_WORLD_CONFIG)


@pytest.fixture(scope="session")
def dasu_users(paper_world: World):
    return paper_world.dasu.users


@pytest.fixture(scope="session")
def fcc_users(paper_world: World):
    return paper_world.fcc.users


def emit(title: str, lines) -> None:
    """Print a benchmark's paper-vs-measured block."""
    print()
    print(f"=== {title} ===")
    for line in lines:
        print(line)
