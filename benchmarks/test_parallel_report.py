"""Analysis throughput: the parallel report engine vs the serial baseline.

Records the wall-clock speedup of rendering the full paper-vs-measured
report with 4 workers over the serial path on the paper-scale world.
The report's fragments (every natural experiment, table, and binned
curve) are independent and run through the same process pool as the
world builder, so the parallel report is byte-identical to the serial
one — this benchmark measures only how much faster it arrives, and the
equality assertion doubles as an end-to-end determinism check at scale.
Skipped on machines with fewer than 4 CPUs, where a 4-worker
measurement would be meaningless.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.paper_report import full_report
from repro.core.timing import StageTimer

from conftest import emit

_N_WORKERS = 4
_MIN_SPEEDUP = 1.8


@pytest.mark.skipif(
    (os.cpu_count() or 1) < _N_WORKERS,
    reason=f"needs >= {_N_WORKERS} CPUs to measure a {_N_WORKERS}-worker speedup",
)
def test_parallel_report_speedup(paper_world):
    dasu, fcc, survey = (
        paper_world.dasu.users,
        paper_world.fcc.users,
        paper_world.survey,
    )

    profiler = StageTimer()
    start = time.perf_counter()
    serial = full_report(dasu, fcc, survey, jobs=1, profiler=profiler)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = full_report(dasu, fcc, survey, jobs=_N_WORKERS)
    parallel_s = time.perf_counter() - start

    speedup = serial_s / parallel_s
    slowest = max(profiler.timings, key=lambda t: t.wall_s)
    emit(
        f"Parallel report ({len(dasu) + len(fcc)} users, "
        f"{len(profiler.timings)} fragments)",
        [
            f"serial:            {serial_s:6.2f} s",
            f"{_N_WORKERS} workers:         {parallel_s:6.2f} s",
            f"speedup:           x{speedup:.2f}",
            f"critical fragment: {slowest.name} ({slowest.wall_s:.2f} s)",
        ],
    )
    assert parallel == serial, "parallel report drifted from serial output"
    assert speedup >= _MIN_SPEEDUP, (
        f"expected >= x{_MIN_SPEEDUP} speedup from {_N_WORKERS} workers, "
        f"got x{speedup:.2f}"
    )
