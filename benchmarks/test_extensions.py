"""Extension benchmarks beyond the paper's published evaluation.

1. **QED vs natural experiments** — the paper (Sec. 8) chose natural
   experiments over the quasi-experimental design of Krishnan &
   Sitaraman; running both estimators on the same comparison shows they
   agree on direction, with QED trading pair volume for stratum purity.
2. **User segmentation** — the paper's future-work item: categories of
   users (bulk/sustained/bursty/light) recovered from measured behavior,
   and how each segment behaves in the market.
"""

import numpy as np
import pytest

from repro.analysis.capacity import table1
from repro.analysis.caps import caps_experiment
from repro.analysis.common import demand_outcome, matched_experiment
from repro.analysis.diurnal import population_diurnal_profile
from repro.analysis.segments import segment_users
from repro.core.qed import QuasiExperiment
from repro.datasets import WorldConfig, build_world

from conftest import emit


def test_extension_qed_vs_natural_experiment(benchmark, dasu_users):
    low = [u for u in dasu_users if 0.8 < u.capacity_down_mbps <= 3.2]
    high = [u for u in dasu_users if 3.2 < u.capacity_down_mbps <= 12.8]

    def run_both():
        natural = matched_experiment(
            "natural",
            low,
            high,
            confounders=("latency", "loss", "price_of_access"),
            outcome=demand_outcome("peak", include_bt=False),
        )
        qed = QuasiExperiment(
            "qed",
            [
                lambda u: u.latency_ms,
                lambda u: max(u.loss_fraction, 1e-4),
                lambda u: float(u.price_of_access_usd or 1.0),
            ],
            bins_per_decade=2,
        ).run(
            low,
            high,
            outcome=lambda u: u.peak_no_bt_mbps,
            rng=np.random.default_rng(0),
        )
        return natural, qed

    natural, qed = benchmark.pedantic(run_both, rounds=2, iterations=1)
    emit(
        "Extension: QED vs natural experiment (capacity raises demand)",
        [
            f"  natural experiment: H holds "
            f"{100 * natural.result.fraction_holds:.1f}% "
            f"(n={natural.result.n_pairs}, p={natural.result.p_value:.3g})",
            f"  QED:                net outcome score "
            f"{qed.net_outcome_score:+.3f} "
            f"(n={qed.n_pairs}, p={qed.p_value:.3g})",
        ],
    )
    # Both estimators must find the same direction; both significant
    # given the pair volumes involved.
    assert natural.result.fraction_holds > 0.5
    assert qed.net_outcome_score > 0.0
    assert natural.result.statistically_significant
    assert qed.significant


def test_extension_user_segments(benchmark, dasu_users):
    result = benchmark.pedantic(
        segment_users, args=(dasu_users,), rounds=2, iterations=1
    )

    lines = []
    for profile in result.profiles:
        lines.append(
            f"  {profile.segment:<10} n={profile.n_users:<6} "
            f"median capacity {profile.median_capacity_mbps:>7.2f} Mbps  "
            f"median peak {profile.median_peak_mbps:>6.3f} Mbps  "
            f"mean util {100 * profile.mean_peak_utilization:>5.1f}%  "
            f"switched {100 * profile.share_switched_service:>4.1f}%"
        )
    emit("Extension: user segments (paper future work)", lines)

    shares = result.shares
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    light = result.profile("light")
    sustained = result.profile("sustained")
    # Heavier segments press their links harder and churn more.
    assert sustained.mean_peak_utilization > light.mean_peak_utilization
    assert sustained.median_peak_mbps > light.median_peak_mbps


def test_extension_usage_caps(benchmark, dasu_users):
    """Chetty et al.'s rationing effect, tested with the paper's tools."""
    result = benchmark.pedantic(
        caps_experiment, args=(dasu_users,), rounds=2, iterations=1
    )
    r = result.experiment.result
    emit(
        "Extension: monthly usage caps (Chetty et al. effect)",
        [
            f"  populations: {result.n_uncapped} uncapped, "
            f"{result.n_tight_capped} tightly capped (<100 GB), "
            f"{result.n_loose_capped} loosely capped",
            f"  uncapped users demand more: H holds "
            f"{100 * r.fraction_holds:.1f}% (n={r.n_pairs}, "
            f"p={r.p_value:.3g})",
        ],
    )
    # Direction must hold; with the cross-market price caliper the pair
    # volume is modest, so strict significance is only demanded when the
    # matching yields a large sample.
    assert result.capped_use_less
    assert r.fraction_holds > 0.52
    if r.n_pairs >= 300:
        assert r.statistically_significant


def test_extension_diurnal_profiles(benchmark, paper_world):
    """Day-shape curves per collection channel: the Fig. 3 bias, seen
    directly in hour coverage."""

    def both():
        return (
            population_diurnal_profile(paper_world.dasu.users),
            population_diurnal_profile(paper_world.fcc.users),
        )

    dasu, fcc = benchmark.pedantic(both, rounds=2, iterations=1)
    emit(
        "Extension: diurnal profiles by collection channel",
        [
            f"  Dasu: peak {dasu.peak_hour}:00, trough {dasu.trough_hour}:00,"
            f" peak/trough x{dasu.peak_to_trough_ratio:.1f},"
            f" evening/night coverage bias {dasu.coverage_bias():.2f}",
            f"  FCC : peak {fcc.peak_hour}:00, trough {fcc.trough_hour}:00,"
            f" peak/trough x{fcc.peak_to_trough_ratio:.1f},"
            f" evening/night coverage bias {fcc.coverage_bias():.2f}",
        ],
    )
    for profile in (dasu, fcc):
        assert 18 <= profile.peak_hour <= 23
        assert 0 <= profile.trough_hour <= 8
    assert dasu.coverage_bias() > fcc.coverage_bias()
    assert fcc.coverage_bias() == pytest.approx(1.0, abs=0.05)


def test_extension_seed_robustness(benchmark):
    """The Table 1 effect across independent seeds: reproducibility of
    the headline causal finding is not a property of one lucky world."""
    from repro.analysis.sensitivity import proportion_sweep

    base = WorldConfig(
        seed=0, n_dasu_users=1200, n_fcc_users=0, days_per_year=1.0
    )

    def stat(world):
        result = table1(world.dasu.users)
        return result.peak.fraction_holds, result.peak.n_pairs

    sweep = benchmark.pedantic(
        lambda: proportion_sweep(base, seeds=(101, 202, 303), statistic=stat),
        rounds=1,
        iterations=1,
    )
    emit("Extension: Table 1 across independent seeds", sweep.rows())
    assert sweep.all_above(0.5)
    assert sweep.mean > 0.55


def test_extension_upload_direction(benchmark, dasu_users):
    """Traffic asymmetry and the seeding effect, from the sent-bytes
    counters the paper's datasets recorded but its evaluation never used."""
    from repro.analysis.upload import seeding_experiment, upload_asymmetry

    def both():
        return upload_asymmetry(dasu_users), seeding_experiment(dasu_users)

    asymmetry, seeding = benchmark.pedantic(both, rounds=2, iterations=1)
    r = seeding.result
    emit(
        "Extension: upload direction",
        [
            f"  median up/down volume ratio: {asymmetry.median_ratio:.3f} "
            f"(p90 {asymmetry.p90_ratio:.3f}, n={asymmetry.n_users})",
            f"  median ratio, BT households: {asymmetry.median_ratio_bt:.3f}"
            f" vs non-BT: {asymmetry.median_ratio_non_bt:.3f}",
            f"  BT households upload more (matched): H holds "
            f"{100 * r.fraction_holds:.1f}% (n={r.n_pairs}, p={r.p_value:.3g})",
        ],
    )
    assert asymmetry.median_ratio < 0.5
    assert asymmetry.median_ratio_bt > asymmetry.median_ratio_non_bt
    assert r.fraction_holds > 0.6
    assert r.statistically_significant
