"""Table 4 — the four-market case study (Sec. 5).

Paper rows (country, users, median capacity, nearest tier, price USD PPP,
GDP/capita, access cost as % of monthly income):

    Botswana      67   0.517   0.512   $100   $14,993   8.0%
    Saudi Arabia 120   4.21    4       $79    $29,114   3.3%
    US          3759   17.6    18      $53    $49,797   1.3%
    Japan         73   29.0    26      $37    $34,532   1.3%
"""

from repro.analysis.price import Table4Result, table4

from conftest import emit


def test_table4_case_study(benchmark, paper_world):
    result = benchmark.pedantic(
        table4,
        args=(paper_world.dasu.users, paper_world.survey),
        rounds=3,
        iterations=1,
    )

    lines = []
    for row in result.rows:
        paper = Table4Result.PAPER_VALUES[row.country]
        lines.append(
            f"  {row.country:<13} users {paper[0]:>5}/{row.n_users:<5} "
            f"median {paper[1]:>6.2f}/{row.median_capacity_mbps:<7.2f} "
            f"tier {paper[2]:>5.1f}/{row.nearest_tier_mbps:<6.1f} "
            f"price ${paper[3]:>5.0f}/${row.price_usd_ppp:<6.0f} "
            f"income-share {100 * paper[5]:>4.1f}%/"
            f"{100 * row.cost_share_of_monthly_income:.1f}%"
        )
    emit("Table 4: case study (paper/measured)", lines)

    caps = {r.country: r.median_capacity_mbps for r in result.rows}
    shares = {r.country: r.cost_share_of_monthly_income for r in result.rows}
    prices = {r.country: r.price_usd_ppp for r in result.rows}

    # Capacity ordering: Botswana < Saudi Arabia < US, Japan high.
    assert caps["Botswana"] < 1.0
    assert caps["Botswana"] < caps["Saudi Arabia"] < caps["US"]
    assert caps["Japan"] > 10.0
    # Affordability ordering: 8.0% > 3.3% > 1.3% ~ 1.3%.
    assert shares["Botswana"] > shares["Saudi Arabia"] > shares["US"]
    assert abs(shares["Japan"] - shares["US"]) < 0.02
    # Typical-service price ordering (expensive markets, slow service).
    assert prices["Botswana"] > prices["US"]
    assert prices["Saudi Arabia"] > prices["Japan"]
