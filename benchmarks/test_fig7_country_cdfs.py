"""Figure 7 — capacity and peak-utilization CDFs across the four markets.

Paper: the case-study countries ordered by download capacity (Botswana,
Saudi Arabia, US, Japan) appear in exactly reverse order when ordered by
95th-percentile link utilization.
"""

from repro.analysis.price import figure7

from conftest import emit


def test_fig7_country_cdfs(benchmark, dasu_users):
    result = benchmark.pedantic(
        figure7, args=(dasu_users,), rounds=3, iterations=1
    )

    lines = []
    for entry in result.countries:
        lines.append(
            f"  {entry.country:<13} n={entry.n_users:<5} "
            f"median capacity {entry.median_capacity_mbps:>7.2f} Mbps   "
            f"mean peak utilization {100 * entry.mean_peak_utilization:>5.1f}%"
        )
    lines.append(
        "  utilization order reverses capacity order: "
        f"paper True, measured "
        f"{result.utilization_order_reverses_capacity_order()}"
    )
    emit("Figure 7: case-study capacity and utilization", lines)

    bw = result.country("Botswana")
    sa = result.country("Saudi Arabia")
    us = result.country("US")
    jp = result.country("Japan")

    # Capacity ordering as in Fig. 7a.
    assert bw.median_capacity_mbps < sa.median_capacity_mbps
    assert sa.median_capacity_mbps < us.median_capacity_mbps
    # Utilization extremes as in Fig. 7b: Botswana hottest, Japan coldest.
    assert bw.mean_peak_utilization > us.mean_peak_utilization
    assert bw.mean_peak_utilization > 2 * jp.mean_peak_utilization
    assert jp.mean_peak_utilization < 0.35
