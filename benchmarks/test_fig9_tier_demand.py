"""Figure 9 — average peak demand per country and tier (Sec. 5).

Paper: US demand rises tier over tier even as utilization falls; at a
fixed tier, the more expensive market demands more (Saudi Arabia's
1-8 Mbps tier ~37% above the US's; Botswana's <1 Mbps users average
410 kbps vs 286 kbps in the US; the US >32 tier exceeds Japan's by
~0.8 Mbps).
"""

from repro.analysis.price import figure9

from conftest import emit


def test_fig9_tier_demand(benchmark, dasu_users):
    result = benchmark.pedantic(
        figure9,
        args=(dasu_users,),
        kwargs={"min_users": 20},
        rounds=2,
        iterations=1,
    )

    lines = []
    for group in result.groups:
        lines.append(
            f"  {group.country:<13} {group.tier.label():<18} "
            f"n={group.n_users:<5} avg peak demand "
            f"{group.mean_peak_demand_mbps:.3f} Mbps"
        )
    emit("Figure 9: average peak demand by country and tier", lines)

    def demand(country, tier_low):
        return result.demand_for(country, tier_low)

    # US: demand increases on each successive tier.
    us_tiers = [g for g in result.groups if g.country == "US"]
    assert len(us_tiers) >= 3
    assert us_tiers[-1].mean_peak_demand_mbps > us_tiers[0].mean_peak_demand_mbps

    # Expensive markets demand more at the same tier. KNOWN DEVIATION
    # (documented in EXPERIMENTS.md): within the <1 Mbps tier our US pool
    # contains budget-limited saturating households on ~0.9 Mbps lines,
    # while Botswana's physical capacities cluster near 0.45 Mbps, so the
    # absolute-demand comparison of this one tier is capacity-confounded;
    # we assert comparability rather than strict ordering (utilization
    # ordering is asserted in the Fig. 8 benchmark).
    bw, us_low = demand("Botswana", 0.0), demand("US", 0.0)
    if bw is not None and us_low is not None:
        assert bw > 0.4 * us_low
    sa, us_mid = demand("Saudi Arabia", 1.0), demand("US", 1.0)
    if sa is not None and us_mid is not None:
        assert sa > us_mid
    us_top, jp_top = demand("US", 32.0), demand("Japan", 32.0)
    if us_top is not None and jp_top is not None:
        assert us_top > jp_top
