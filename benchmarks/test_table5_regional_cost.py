"""Table 5 — regional shares of countries with expensive upgrades.

Paper (share of countries where +1 Mbps costs more than $1 / $5 / $10):

    Africa                     100%  84%  74%
    Asia (all)                  67%  47%  33%
    Asia (developed)             0%   0%   0%
    Asia (developing)           83%  58%  42%
    Central America/Caribbean  100%  86%  14%
    Europe                      10%   0%   0%
    Middle East                 86%  57%  43%
    North America                0%   0%   0%
    South America               78%  55%  33%
"""

from repro.analysis.upgrade_cost import Table5Result, table5

from conftest import emit


def test_table5_regional_upgrade_cost(benchmark, paper_world):
    result = benchmark.pedantic(
        table5, args=(paper_world.survey,), rounds=3, iterations=1
    )

    lines = []
    for row in result.rows:
        paper = Table5Result.PAPER_VALUES[row.region]
        lines.append(
            f"  {row.region:<27} (n={row.n_countries:>2})  "
            f">$1: {100 * paper[0]:>3.0f}%/{100 * row.share_above_1:<5.0f} "
            f">$5: {100 * paper[1]:>3.0f}%/{100 * row.share_above_5:<5.0f} "
            f">$10: {100 * paper[2]:>3.0f}%/{100 * row.share_above_10:<5.0f}"
        )
    emit("Table 5: regional cost of +1 Mbps (paper/measured %)", lines)

    rows = {r.region: r for r in result.rows}

    africa = rows["Africa"]
    assert africa.share_above_1 > 0.9
    assert africa.share_above_10 > 0.4

    for cheap in ("North America", "Asia (developed)"):
        row = rows[cheap]
        if row.n_countries:
            assert row.share_above_5 == 0.0

    europe = rows["Europe"]
    assert europe.share_above_1 < 0.5
    assert europe.share_above_10 < 0.2

    developing_asia = rows["Asia (developing)"]
    assert developing_asia.share_above_1 > 0.5

    middle_east = rows["Middle East"]
    assert middle_east.share_above_1 > 0.5
