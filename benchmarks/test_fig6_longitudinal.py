"""Figure 6 — longitudinal usage trends, 2011-2013 (Sec. 4).

Paper: despite the fourfold growth in global IP traffic, demand within a
capacity class stayed constant across the study years (with only a
slight increase for very fast connections); traffic growth comes from
subscribers jumping tiers and new subscriptions, not heavier use of
existing tiers.
"""

from repro.analysis.longitudinal import figure6
from repro.analysis.report import format_curve, format_experiment_row

from conftest import emit


def test_fig6_longitudinal(benchmark, dasu_users):
    result = benchmark.pedantic(
        figure6,
        args=(dasu_users,),
        kwargs={"min_users": 30},  # drift over well-populated classes only
        rounds=2,
        iterations=1,
    )

    lines = []
    for year_curve in result.year_curves:
        lines.append(format_curve(f"{year_curve.year}", year_curve.curve))
    lines.append(
        format_experiment_row(
            "2011 vs 2013 pooled", None, result.cross_year_experiment
        )
    )
    for bin_, experiment in result.per_class_experiments:
        lines.append(format_experiment_row(f"  {bin_.label()}", None, experiment))
    lines.append(
        f"  max class drift |log ratio|: paper ~0, measured "
        f"{result.max_class_drift():.3f}"
    )
    emit("Figure 6: demand per capacity class by year", lines)

    # The paper's null result: no broad demand change at fixed capacity.
    # A minority of borderline classes may cross the 52% line at this
    # sample size (the paper itself observed a slight increase for very
    # fast connections); the pooled estimate must hug chance.
    rejecting = result.classes_rejecting_null()
    assert len(rejecting) <= max(2, len(result.per_class_experiments) // 3)
    assert result.cross_year_experiment.fraction_holds < 0.54
    assert result.max_class_drift() < 0.6
