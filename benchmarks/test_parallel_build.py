"""Build throughput: sharded world building vs the serial baseline.

Records the wall-clock speedup of a 4-worker ``build_world`` over the
serial path on a paper-scale (2,400-household) configuration. The
per-user seed-stream design means the parallel world is bit-identical
to the serial one — this benchmark measures only how much faster it
arrives. Skipped on machines with fewer than 4 CPUs, where a 4-worker
measurement would be meaningless.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datasets import WorldConfig, build_world

from conftest import emit

BENCH_CONFIG = WorldConfig(
    seed=99, n_dasu_users=2_000, n_fcc_users=400, days_per_year=1.0
)

_N_WORKERS = 4


@pytest.mark.skipif(
    (os.cpu_count() or 1) < _N_WORKERS,
    reason=f"needs >= {_N_WORKERS} CPUs to measure a {_N_WORKERS}-worker speedup",
)
def test_parallel_build_speedup():
    start = time.perf_counter()
    serial = build_world(BENCH_CONFIG, jobs=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = build_world(BENCH_CONFIG, jobs=_N_WORKERS)
    parallel_s = time.perf_counter() - start

    speedup = serial_s / parallel_s
    emit(
        f"Parallel build ({BENCH_CONFIG.n_dasu_users + BENCH_CONFIG.n_fcc_users}"
        " households)",
        [
            f"serial:     {serial_s:6.2f} s",
            f"{_N_WORKERS} workers:  {parallel_s:6.2f} s",
            f"speedup:    x{speedup:.2f}",
        ],
    )
    assert len(parallel.all_users) == len(serial.all_users)
    assert speedup >= 2.0, (
        f"expected >= 2x speedup from {_N_WORKERS} workers, got x{speedup:.2f}"
    )
