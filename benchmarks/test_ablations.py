"""Ablation benchmarks for the design choices DESIGN.md calls out.

These validate that the pipeline *measures* mechanisms rather than
manufacturing effects:

1. **Caliper width** — tightening the matching caliper cuts pair counts
   but leaves effect directions stable.
2. **Practical-significance margin** — the 2% rule is what separates the
   verdict from raw p-values on large samples.
3. **Selection ablation** — with plan choice severed from price and
   budget, the price experiment collapses to chance.
4. **Quality ablation** — with QoE suppression and TCP ceilings removed,
   poor-quality users stop under-using their links.
"""

import numpy as np
import pytest

from repro.analysis.capacity import table2
from repro.analysis.common import demand_outcome, matched_experiment
from repro.analysis.price import table3
from repro.analysis.quality import figure11
from repro.datasets import WorldConfig, build_world

from conftest import emit

_ABLATION_BASE = dict(
    seed=424242, n_dasu_users=3500, n_fcc_users=0, days_per_year=1.5
)


@pytest.fixture(scope="module")
def baseline_world():
    return build_world(WorldConfig(**_ABLATION_BASE))


@pytest.fixture(scope="module")
def no_selection_world():
    return build_world(
        WorldConfig(**_ABLATION_BASE, price_selection_enabled=False)
    )


@pytest.fixture(scope="module")
def no_quality_world():
    return build_world(
        WorldConfig(**_ABLATION_BASE, quality_suppression_enabled=False)
    )


def test_ablation_caliper_width(benchmark, dasu_users):
    """Tighter calipers: fewer pairs, same direction."""
    low = [u for u in dasu_users if 0.8 < u.capacity_down_mbps <= 3.2]
    high = [u for u in dasu_users if 3.2 < u.capacity_down_mbps <= 12.8]

    def sweep():
        results = {}
        for caliper in (0.10, 0.25, 0.50):
            results[caliper] = matched_experiment(
                f"caliper {caliper}",
                low,
                high,
                confounders=("latency", "loss", "price_of_access"),
                outcome=demand_outcome("peak", include_bt=False),
                caliper=caliper,
            )
        return results

    results = benchmark.pedantic(sweep, rounds=2, iterations=1)
    emit(
        "Ablation: caliper width (paper uses 25%)",
        (
            f"  caliper {caliper:.2f}: n={r.result.n_pairs:<6} "
            f"H holds {100 * r.result.fraction_holds:.1f}%"
            for caliper, r in results.items()
        ),
    )

    assert results[0.10].result.n_pairs < results[0.50].result.n_pairs
    wide = results[0.50].result
    tight = results[0.10].result
    if tight.n_pairs >= 30:
        assert abs(wide.fraction_holds - tight.fraction_holds) < 0.2


def test_ablation_practical_margin(benchmark, dasu_users):
    """Raw significance vs the 2% practical margin on a big sample."""
    result = benchmark.pedantic(
        table2, args=(dasu_users, "dasu"), rounds=1, iterations=1
    )
    lines = []
    for row in result.rows:
        r = row.experiment.result
        lines.append(
            f"  {r.name:<38} p={r.p_value:.3g} significant={r.statistically_significant} "
            f"important={r.practically_important} verdict={r.rejects_null}"
        )
    emit("Ablation: the 2% practical-importance margin", lines)
    for row in result.rows:
        r = row.experiment.result
        assert r.rejects_null == (
            r.statistically_significant and r.practically_important
        )


def test_ablation_price_selection_off(
    benchmark, baseline_world, no_selection_world
):
    """Severing the price mechanism collapses the price experiment.

    A small residual can survive through the measurement side (NDT
    under-measures lossy markets' capacities, shifting matched pools),
    so the check is comparative: the ablated effect must sit near chance
    and clearly below the baseline effect.
    """

    def both():
        ablated = table3(no_selection_world.dasu.users)
        baseline = table3(baseline_world.dasu.users)
        return baseline, ablated

    baseline, ablated = benchmark.pedantic(both, rounds=1, iterations=1)
    base_frac = baseline.low_vs_mid.result.fraction_holds
    abl_frac = ablated.low_vs_mid.result.fraction_holds
    emit(
        "Ablation: plan choice without price/budget",
        [
            f"  Table 3 low-vs-mid, selection ON : "
            f"H holds {100 * base_frac:.1f}% "
            f"(n={baseline.low_vs_mid.result.n_pairs})",
            f"  Table 3 low-vs-mid, selection OFF: "
            f"H holds {100 * abl_frac:.1f}% (expected ~50%, "
            f"n={ablated.low_vs_mid.result.n_pairs})",
        ],
    )
    # The ablated effect must sit near chance. (The baseline at this
    # reduced world size is itself noisy, so the contrast with the
    # paper-scale baseline of ~58% is printed rather than asserted.)
    assert abs(abl_frac - 0.5) < 0.08


def test_ablation_quality_suppression_off(
    benchmark, baseline_world, no_quality_world
):
    """Without QoE suppression, India's demand deficit disappears."""

    def india_shares():
        base = figure11(baseline_world.dasu.users)
        ablated = figure11(no_quality_world.dasu.users)
        return base.india_lower_demand_share, ablated.india_lower_demand_share

    base_share, ablated_share = benchmark.pedantic(
        india_shares, rounds=1, iterations=1
    )
    emit(
        "Ablation: QoE suppression removed",
        [
            f"  India-lower-than-US share, suppression ON : "
            f"{100 * base_share:.0f}% (paper 62%)",
            f"  India-lower-than-US share, suppression OFF: "
            f"{100 * ablated_share:.0f}% (should fall)",
        ],
    )
    assert ablated_share < base_share


def test_ablation_sampling_bias(benchmark, paper_world):
    """Dasu's peak-hour bias inflates means but not peaks vs FCC."""
    from repro.analysis.capacity import figure3

    result = benchmark.pedantic(
        figure3,
        args=(paper_world.dasu.users, paper_world.fcc.users),
        rounds=2,
        iterations=1,
    )
    emit(
        "Ablation: collection-channel sampling bias",
        [
            f"  Dasu/FCC mean ratio {result.mean_ratio_dasu_over_fcc:.2f} "
            f"(biased upward)",
            f"  Dasu/FCC peak ratio {result.peak_ratio_dasu_over_fcc:.2f} "
            f"(nearly 1)",
        ],
    )
    assert result.mean_ratio_dasu_over_fcc > 0.95
    assert abs(np.log(result.peak_ratio_dasu_over_fcc)) < np.log(1.8)
