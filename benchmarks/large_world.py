"""Large-world scaling harness: build + report at 10^5-household scale.

Measures wall time and peak RSS for the two halves of the pipeline —
the columnar build/store path and the report path — at world sizes far
beyond the test fixtures, and optionally enforces a memory ceiling
(nonzero exit when ``ru_maxrss`` exceeds ``--max-rss-mb``), which is how
the ``large-world`` CI job keeps the data plane sub-O(objects).

Peak RSS is a per-process high-water mark, so the interesting stages run
as separate invocations::

    # Build 100k households straight onto columns, store the shard.
    python benchmarks/large_world.py --stage build \\
        --users 100000 --fcc 10000 --cache-dir /tmp/bench-cache \\
        --max-rss-mb 4096

    # Load the shard (memory-mapped) and render the full report.
    python benchmarks/large_world.py --stage report \\
        --users 100000 --fcc 10000 --cache-dir /tmp/bench-cache

``--stage all`` runs both in one process (one combined high-water mark).
Results print as one JSON object; ``--out`` also writes it to a file for
the methodology scaling table.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time
from pathlib import Path

from repro.analysis.paper_report import full_report
from repro.datasets import WorldConfig, build_world
from repro.datasets.cache import WorldCache


def peak_rss_mb() -> float:
    """High-water resident set size of this process, in MiB.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return raw / (1024 * 1024)
    return raw / 1024


def _config(args: argparse.Namespace) -> WorldConfig:
    return WorldConfig(
        seed=args.seed,
        n_dasu_users=args.users,
        n_fcc_users=args.fcc,
        days_per_year=args.days,
    )


def run_build(args: argparse.Namespace, results: dict) -> None:
    config = _config(args)
    cache = WorldCache(args.cache_dir)
    started = time.perf_counter()
    # ground_truth=False: the measurement benchmark has no use for the
    # latent need/budget objects, and skipping them is what the CLI does.
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    world = build_world(config, jobs=jobs, ground_truth=False)
    results["build_s"] = round(time.perf_counter() - started, 2)
    columns = world.all_columns
    results["rows"] = columns.n_rows
    results["users"] = columns.n_users
    results["columns_mb"] = round(columns.nbytes / (1024 * 1024), 1)
    started = time.perf_counter()
    entry = cache.store(world)
    results["store_s"] = round(time.perf_counter() - started, 2)
    results["entry"] = str(entry)
    return None


def run_report(args: argparse.Namespace, results: dict) -> None:
    config = _config(args)
    cache = WorldCache(args.cache_dir)
    started = time.perf_counter()
    world = cache.load(config)
    if world is None:
        raise SystemExit(
            "no cached world for this config — run --stage build first "
            "(same --users/--fcc/--days/--seed/--cache-dir)"
        )
    results["load_s"] = round(time.perf_counter() - started, 2)
    started = time.perf_counter()
    text = full_report(world.dasu.users, world.fcc.users, world.survey)
    results["report_s"] = round(time.perf_counter() - started, 2)
    results["report_lines"] = text.count("\n") + 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--stage", choices=("build", "report", "all"), default="all"
    )
    parser.add_argument("--users", type=int, default=100_000)
    parser.add_argument("--fcc", type=int, default=10_000)
    parser.add_argument("--days", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=20141105)
    parser.add_argument(
        "--jobs", type=int, default=None, help="default: all CPUs"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="world cache root (default: env)"
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        help="fail (exit 1) if peak RSS exceeds this many MiB",
    )
    parser.add_argument("--out", default=None, help="also write JSON here")
    args = parser.parse_args(argv)

    results: dict = {
        "stage": args.stage,
        "n_dasu_users": args.users,
        "n_fcc_users": args.fcc,
        "days_per_year": args.days,
        "seed": args.seed,
    }
    if args.stage in ("build", "all"):
        run_build(args, results)
    if args.stage in ("report", "all"):
        run_report(args, results)
    results["peak_rss_mb"] = round(peak_rss_mb(), 1)

    print(json.dumps(results, indent=2, sort_keys=True))
    if args.out:
        Path(args.out).write_text(
            json.dumps(results, indent=2, sort_keys=True) + "\n"
        )
    if args.max_rss_mb is not None and results["peak_rss_mb"] > args.max_rss_mb:
        print(
            f"FAIL: peak RSS {results['peak_rss_mb']} MiB exceeds the "
            f"--max-rss-mb ceiling of {args.max_rss_mb} MiB",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
