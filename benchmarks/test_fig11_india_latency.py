"""Figure 11 — India's latency and its demand consequence (Sec. 7.1).

Paper: Indian users see far higher latencies than the rest of the
population, to NDT servers and to the five popular web sites alike
(nearly every Indian user above 100 ms); despite India's much higher
access price, capacity-matched Indian users impose *lower* demand than US
users 62% of the time — quality overrides price.
"""

from repro.analysis.quality import figure11

from conftest import emit


def test_fig11_india_latency(benchmark, dasu_users):
    result = benchmark.pedantic(
        figure11, args=(dasu_users,), rounds=2, iterations=1
    )

    emit(
        "Figure 11: India vs rest latency",
        [
            f"  median NDT latency   India {result.india_median_ndt_ms:.0f} ms"
            f" vs rest {result.other_median_ndt_ms:.0f} ms",
            f"  Indian users above 100 ms: paper ~100%, measured "
            f"{100 * result.share_india_above_100ms:.0f}%",
            f"  India lower demand than matched US: paper 62%, measured "
            f"{100 * result.india_lower_demand_share:.0f}% "
            f"(n={result.india_vs_us.result.n_pairs})",
        ],
    )

    assert result.india_median_ndt_ms > 1.5 * result.other_median_ndt_ms
    assert result.share_india_above_100ms > 0.75
    assert result.india_web_cdf is not None  # the 2014 validation ran
    if result.india_vs_us.result.n_pairs >= 20:
        assert result.india_lower_demand_share > 0.5
