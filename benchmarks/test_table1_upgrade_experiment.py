"""Table 1 — the user-upgrade natural experiment (Sec. 3.2).

Paper: when the same user moves from a slower to a faster network, their
average demand rises 66.8% of the time and their peak demand 70.3% of the
time, both with vanishing p-values — capacity causally drives demand.
"""

from repro.analysis.capacity import table1
from repro.analysis.report import format_experiment_row

from conftest import emit


def test_table1_upgrade_experiment(benchmark, dasu_users):
    result = benchmark.pedantic(
        table1, args=(dasu_users,), rounds=3, iterations=1
    )

    emit(
        f"Table 1: user upgrades (n={result.n_observations} slow/fast pairs)",
        (
            format_experiment_row(label, paper, experiment)
            for label, paper, experiment in result.rows()
        ),
    )

    # Both metrics: H holds well above chance and clears the paper's
    # practical-importance margin; the peak effect is decisive.
    assert result.average.fraction_holds > 0.52
    assert result.peak.fraction_holds > 0.55
    assert result.peak.rejects_null
