"""Table 2 — matched adjacent-capacity-class experiments (Sec. 3.2).

Paper (Dasu): increased capacity raises demand most decisively at slow
classes; significance fades above ~12.8 Mbps where the interaction turns
random. Paper (FCC, US-only): increased capacity raises demand across all
classes — the US market keeps price-selection active at every tier.
"""

import numpy as np

from repro.analysis.capacity import table2
from repro.analysis.report import format_experiment_row

from conftest import emit

#: Paper Table 2, Dasu panel: control-bin low edge -> % H holds.
PAPER_DASU = {
    0.1: 75.2, 0.2: 63.4, 0.4: 59.9, 0.8: 59.3, 1.6: 53.3,
    3.2: 57.5, 6.4: 56.8, 12.8: 52.9, 25.6: 51.0,
}
#: Paper Table 2, FCC panel.
PAPER_FCC = {
    0.4: 66.4, 0.8: 58.1, 1.6: 56.2, 3.2: 55.1, 6.4: 58.5,
    12.8: 61.2, 25.6: 64.7,
}


def _render(result, paper_values):
    for row in result.rows:
        paper = paper_values.get(round(row.control_bin.low, 4))
        yield format_experiment_row(
            f"{row.control_bin.label()} vs {row.treatment_bin.label()}",
            paper,
            row.experiment,
        )


def test_table2_dasu(benchmark, dasu_users):
    result = benchmark.pedantic(
        table2, args=(dasu_users, "dasu"), rounds=2, iterations=1
    )
    emit("Table 2 (Dasu): matched capacity experiment", _render(result, PAPER_DASU))

    assert len(result.rows) >= 5
    low = [
        r.experiment.result.fraction_holds
        for r in result.rows
        if r.control_bin.high <= 6.4 and r.experiment.result.n_pairs >= 15
    ]
    assert low and np.mean(low) > 0.54


def test_table2_fcc(benchmark, fcc_users):
    result = benchmark.pedantic(
        table2,
        args=(fcc_users, "fcc"),
        rounds=2,
        iterations=1,
    )
    emit("Table 2 (FCC): matched capacity experiment", _render(result, PAPER_FCC))

    assert len(result.rows) >= 4
    fractions = [
        r.experiment.result.fraction_holds
        for r in result.rows
        if r.experiment.result.n_pairs >= 15
    ]
    # US-only: the effect holds broadly across classes.
    assert np.mean(fractions) > 0.54
