"""Columnar hot paths vs the per-record object loops.

The columnar data plane's claim is twofold: exact equivalence (held by
the tier-1 suites) and speed. This benchmark measures the speed half on
the paper-scale world — binned demand curves, matching eligibility, and
a full matched experiment, each timed column-wise against the object
path it replaces.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.common import (
    binned_demand_curve,
    demand_outcome,
    demand_outcome_array,
    matched_experiment,
    matched_experiment_columns,
)
from repro.datasets import UserColumns

from conftest import emit

CONFOUNDERS = ("capacity", "latency", "loss")


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_binned_curve_columnar_speed(paper_world):
    users = paper_world.dasu.users
    columns = UserColumns.from_records(users)
    by_objects, object_s = _timed(lambda: binned_demand_curve(users))
    by_columns, column_s = _timed(lambda: binned_demand_curve(columns))
    assert by_objects.points == by_columns.points
    emit(
        f"Binned demand curve ({len(users)} users)",
        [
            f"object loop: {object_s * 1e3:7.1f} ms",
            f"columns:     {column_s * 1e3:7.1f} ms",
            f"speedup:     x{object_s / max(column_s, 1e-9):.1f}",
        ],
    )


def test_matched_experiment_columnar_speed(paper_world):
    users = paper_world.dasu.users
    control = [u for u in users if not u.bt_user]
    treatment = [u for u in users if u.bt_user]
    control_cols = UserColumns.from_records(control)
    treatment_cols = UserColumns.from_records(treatment)
    by_objects, object_s = _timed(
        lambda: matched_experiment(
            "bench", control, treatment, CONFOUNDERS,
            demand_outcome("peak", include_bt=False),
        )
    )
    by_columns, column_s = _timed(
        lambda: matched_experiment_columns(
            "bench", control_cols, treatment_cols, CONFOUNDERS,
            demand_outcome_array("peak", include_bt=False),
        )
    )
    assert by_objects.result == by_columns.result
    emit(
        f"Matched experiment ({len(control)} vs {len(treatment)} users)",
        [
            f"object loop: {object_s * 1e3:7.1f} ms",
            f"columns:     {column_s * 1e3:7.1f} ms",
            f"speedup:     x{object_s / max(column_s, 1e-9):.1f}",
            f"pairs:       {by_columns.result.n_pairs}",
        ],
    )


def test_columnar_memory_per_row(paper_world):
    columns = paper_world.all_columns
    per_row = columns.nbytes / max(columns.n_rows, 1)
    emit(
        f"Columnar footprint ({columns.n_users} users, "
        f"{columns.n_rows} rows)",
        [
            f"array:     {columns.nbytes / 2**20:6.1f} MiB",
            f"per row:   {per_row:6.0f} B",
        ],
    )
    assert per_row == float(np.dtype(columns.rows.dtype).itemsize)
