"""Figure 2 — usage vs. capacity, mean/peak, with/without BitTorrent.

Paper: usage grows with capacity in every panel (r >= 0.87 between class
capacity and class demand) while utilization declines — a law of
diminishing returns, with the relative increase in demand larger at low
capacities.
"""

from repro.analysis.capacity import figure2
from repro.analysis.report import format_curve

from conftest import emit


def test_fig2_usage_vs_capacity(benchmark, dasu_users):
    result = benchmark.pedantic(
        figure2, args=(dasu_users,), rounds=3, iterations=1
    )

    lines = []
    for title, curve in result.panels():
        lines.append(format_curve(title, curve))
    lines.append(
        f"  minimum panel correlation: paper >= 0.870, "
        f"measured {result.min_correlation:.3f}"
    )
    emit("Figure 2: usage vs capacity", lines)

    # Strong correlation in every panel.
    assert result.min_correlation > 0.80
    # Demand rises across the capacity range...
    points = result.peak_no_bt.points
    assert points[-1].average > 3 * points[0].average
    # ...but utilization falls (diminishing returns).
    first_util = points[0].average / points[0].center_mbps
    last_util = points[-1].average / points[-1].center_mbps
    assert last_util < first_util
    assert result.diminishing_returns()
