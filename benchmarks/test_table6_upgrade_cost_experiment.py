"""Table 6 — the cost-of-upgrade natural experiment (Sec. 6).

Paper: where increasing capacity costs more, users squeeze their links
harder. Average demand with BitTorrent: H holds 53.8% / 58.7%; without:
52.2% (not significant) / 56.3%.
"""

import math

import numpy as np

from repro.analysis.upgrade_cost import table6
from repro.analysis.report import format_experiment_row

from conftest import emit


def test_table6_with_bt(benchmark, dasu_users):
    result = benchmark.pedantic(
        table6,
        args=(dasu_users,),
        kwargs={"include_bt": True},
        rounds=2,
        iterations=1,
    )
    emit(
        f"Table 6a: upgrade-cost experiment, avg demand w/ BT "
        f"(groups {result.group_sizes})",
        (
            format_experiment_row(label, paper, experiment)
            for label, paper, experiment in result.rows()
        ),
    )
    _assert_direction(result)


def test_table6_without_bt(benchmark, dasu_users):
    result = benchmark.pedantic(
        table6,
        args=(dasu_users,),
        kwargs={"include_bt": False},
        rounds=2,
        iterations=1,
    )
    emit(
        f"Table 6b: upgrade-cost experiment, avg demand no BT "
        f"(groups {result.group_sizes})",
        (
            format_experiment_row(label, paper, experiment)
            for label, paper, experiment in result.rows()
        ),
    )
    _assert_direction(result)


def _assert_direction(result):
    fractions = [
        r.result.fraction_holds
        for r in (result.low_vs_mid, result.mid_vs_high)
        if r.result.n_pairs >= 15 and not math.isnan(r.result.fraction_holds)
    ]
    assert fractions
    # Pricier upgrades push demand up on average across the comparisons.
    assert np.mean(fractions) > 0.5
