"""Figure 4 — usage CDFs on users' slow vs. fast networks.

Paper: at the median, average usage roughly doubles (95 -> 189 kbps) and
peak usage more than triples (192 -> 634 kbps) on the faster network.
"""

from repro.analysis.capacity import figure4
from repro.units import mbps_to_kbps

from conftest import emit


def test_fig4_slow_fast_cdfs(benchmark, dasu_users):
    result = benchmark.pedantic(
        figure4, args=(dasu_users,), rounds=3, iterations=1
    )

    emit(
        "Figure 4: slow vs fast network usage (medians, kbps)",
        [
            f"  median mean usage   paper  95 -> 189 (2.0x)   measured "
            f"{mbps_to_kbps(result.median_slow_mean_mbps):.0f} -> "
            f"{mbps_to_kbps(result.median_fast_mean_mbps):.0f} "
            f"({result.mean_ratio_at_median:.1f}x)",
            f"  median peak usage   paper 192 -> 634 (3.3x)   measured "
            f"{mbps_to_kbps(result.median_slow_peak_mbps):.0f} -> "
            f"{mbps_to_kbps(result.median_fast_peak_mbps):.0f} "
            f"({result.peak_ratio_at_median:.1f}x)",
        ],
    )

    # Usage is considerably higher on the faster network; the peak ratio
    # is at least as large as the mean ratio directionally.
    assert result.mean_ratio_at_median > 1.15
    assert result.peak_ratio_at_median > 1.25
