"""Table 3 — the price-of-access natural experiment (Sec. 5).

Paper: comparing users with similar connections across markets, higher
broadband prices increase demand — H holds 63.4% of the time for the
$25-60 group vs the <$25 group, and 72.2% for the >$60 group.
"""

from repro.analysis.price import table3
from repro.analysis.report import format_experiment_row

from conftest import emit


def test_table3_price_of_access(benchmark, dasu_users):
    result = benchmark.pedantic(
        table3, args=(dasu_users,), rounds=2, iterations=1
    )

    low, mid, high = result.group_sizes
    emit(
        f"Table 3: price of access (groups: <$25 n={low}, "
        f"$25-60 n={mid}, >$60 n={high})",
        (
            format_experiment_row(label, paper, experiment)
            for label, paper, experiment in result.rows()
        ),
    )

    # Direction: users in pricier markets demand more at matched
    # capacity/quality; the first comparison has the pair volume to be
    # individually meaningful.
    assert result.low_vs_mid.result.n_pairs > 50
    assert result.low_vs_mid.result.fraction_holds > 0.52
    if result.low_vs_high.result.n_pairs >= 20:
        assert result.low_vs_high.result.fraction_holds > 0.5
