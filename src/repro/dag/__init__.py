"""Declarative, resumable experiment DAGs.

The package turns the study's pipelines into data: a :class:`DagSpec`
declares named stages (registered *kinds* plus per-stage config and
``depends_on`` edges), :func:`run_dag` schedules them in deterministic
dependency waves over a pluggable executor backend, and a
:class:`DagStore` content-addresses every stage output so a killed run
resumes — re-invoking the same command reloads finished stages and
re-executes only the rest, with final artifacts byte-identical to an
uninterrupted run.

Layers:

* :mod:`~repro.dag.spec` — specs, parse-time validation, the stage-kind
  registry;
* :mod:`~repro.dag.schedule` — content-addressed keys, wave scheduling,
  resume semantics;
* :mod:`~repro.dag.store` — crash-safe artifact persistence;
* :mod:`~repro.dag.backends` — in-process and process-pool executors;
* :mod:`~repro.dag.pipelines` — the built-in kinds and the ``report``/
  ``sweep`` pipeline templates (importing this package registers them).
"""

from .backends import (
    BACKENDS,
    ExecutorBackend,
    InProcessBackend,
    ProcessPoolBackend,
    get_backend,
)
from .pipelines import (
    CellOutcome,
    DatasetTriple,
    FileBundle,
    WorldSlice,
    expand_pipeline,
    fragment_report_spec,
    report_spec,
    sweep_spec,
)
from .schedule import DagRunResult, RunContext, run_dag, stage_key
from .spec import DagSpec, StageKind, StageSpec, register_stage_kind, stage_kind
from .store import DagStore, StoredStage, hash_artifact

__all__ = [
    "BACKENDS",
    "CellOutcome",
    "DagRunResult",
    "DagSpec",
    "DagStore",
    "DatasetTriple",
    "ExecutorBackend",
    "FileBundle",
    "InProcessBackend",
    "ProcessPoolBackend",
    "RunContext",
    "StageKind",
    "StageSpec",
    "StoredStage",
    "WorldSlice",
    "expand_pipeline",
    "fragment_report_spec",
    "get_backend",
    "hash_artifact",
    "register_stage_kind",
    "report_spec",
    "run_dag",
    "stage_key",
    "stage_kind",
    "sweep_spec",
]
