"""Pluggable executor backends for DAG stage waves.

The scheduler hands a backend one *wave* of independent, ready stages at
a time; the backend runs them and returns ``(result, ledger shard)``
pairs in task-submission order. Both built-in backends delegate to
:func:`repro.core.executor.run_sharded`, which already guarantees the
two properties the DAG contract needs:

* results (and shard ledgers) come back in submission order, whatever
  the completion order was — with an ``on_result`` hook fired per task
  at *completion* time, which is how the scheduler publishes each
  stage's artifact as soon as that stage finishes;
* every stage runs under its own ambient
  :class:`~repro.obs.ledger.RunLedger` scope, so its events ride back
  with its result and can be persisted next to its artifact.

Because stage functions are deterministic and self-seeded, the two
backends produce **identical bytes** — same artifacts, same hashes,
same serialized ledgers — for any worker count. The backend choice is
purely a scheduling decision (``repro dag run --backend``); a future
multi-host backend only has to honor the same interface.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from ..core.executor import resolve_jobs, run_sharded
from ..exceptions import DagError
from ..obs.ledger import RunLedger

__all__ = [
    "BACKENDS",
    "ExecutorBackend",
    "InProcessBackend",
    "ProcessPoolBackend",
    "get_backend",
]


class ExecutorBackend(Protocol):
    """The one seam a stage executor must implement."""

    name: str

    def run(
        self,
        worker: Callable,
        tasks: Sequence,
        on_result: Callable[[int, object], None] | None = None,
    ) -> list[tuple[object, RunLedger]]:
        """Run ``worker`` over ``tasks``; ``(result, shard)`` pairs in
        task order. ``on_result(task_index, pair)`` fires in the
        calling process as each task completes (completion order), so
        the scheduler can publish artifacts incrementally."""
        ...


class InProcessBackend:
    """Execute every stage serially in the calling process.

    The default for library callers and the CLI report path: no pickling
    of tasks or artifacts, no pool startup, and stage kinds may be
    arbitrary callables (closures included).
    """

    name = "inprocess"

    def run(self, worker, tasks, on_result=None):
        return run_sharded(
            worker, tasks, jobs=1, with_ledgers=True, on_result=on_result
        )


class ProcessPoolBackend:
    """Fan each wave across a process pool (``core.executor`` sharding).

    Tasks — stage configs, input artifacts, and the kind callable — are
    pickled into workers, so kinds must be module-level functions.
    Output is byte-identical to :class:`InProcessBackend` for any
    ``jobs`` value.
    """

    name = "pool"

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = resolve_jobs(jobs)

    def run(self, worker, tasks, on_result=None):
        return run_sharded(
            worker, tasks, jobs=self.jobs, with_ledgers=True,
            on_result=on_result,
        )


#: Backend names accepted by ``repro dag run --backend``.
BACKENDS = ("inprocess", "pool")


def get_backend(name: str, *, jobs: int | None = None) -> ExecutorBackend:
    """Construct a backend by name (the CLI's ``--backend`` seam)."""
    if name == "inprocess":
        return InProcessBackend()
    if name == "pool":
        return ProcessPoolBackend(jobs)
    known = ", ".join(BACKENDS)
    raise DagError(f"unknown executor backend {name!r} (expected: {known})")
