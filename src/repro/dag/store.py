"""Content-addressed, crash-safe persistence of DAG stage artifacts.

A :class:`DagStore` is a run directory holding one entry per stage
name. Each entry records the stage *key* it was computed under (the
content address over stage config + upstream output hashes + code
version, see :mod:`repro.dag.schedule`), the pickled artifact, a SHA-256
of the artifact bytes, and the stage's own run-ledger shard. A killed
run resumes by reloading every entry whose key still matches; anything
else — absent, truncated, corrupted, or computed under a different key
or code version — reads as a miss and the stage re-executes.

The publish discipline is the same as the world cache's
(:meth:`repro.datasets.cache.WorldCache.store`): every file is written
into a hidden ``.staging-*`` directory and made visible by a single
``os.replace``. A SIGKILL at any point therefore leaves either no entry
or a complete one; a concurrent (or interrupted-then-resumed) reader can
never observe a partial artifact. Artifact bytes are additionally
verified against the stored hash on load, so even damage *after* a
successful publish reads as a miss rather than as wrong data.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any
from urllib.parse import quote

from ..core.staging import (
    clear_heartbeat,
    sweep_stale_staging,
    touch_heartbeat,
)
from ..obs.ledger import RunLedger

__all__ = ["DagStore", "StoredStage", "hash_artifact"]

#: Bump when the on-disk entry layout changes (invalidates all entries).
DAG_STORE_FORMAT = 1

_META_FILE = "meta.json"
_ARTIFACT_FILE = "artifact.pkl"
_LEDGER_FILE = "ledger.jsonl"
#: Same staging discipline as the world cache: hidden names that cannot
#: collide with a percent-encoded stage directory, swept once clearly
#: abandoned (see :mod:`repro.core.staging` for the clock-safe check).
_STAGING_PREFIX = ".staging-"
_STAGING_MAX_AGE_S = 3600.0


def hash_artifact(artifact: Any) -> tuple[bytes, str]:
    """Pickle an artifact and hash the bytes.

    Returns ``(pickle_bytes, sha256_hex)``. Artifacts of this package
    (cell results, report text, file bundles) pickle deterministically
    for a fixed construction path, so the hash is a stable content
    address a downstream stage key can safely incorporate. Kinds whose
    artifacts have representation-dependent pickles (a cache-loaded
    world memory-maps its columns, a fresh build holds them in memory)
    register a ``fingerprint`` instead — see
    :func:`repro.dag.spec.register_stage_kind`.
    """
    blob = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
    return blob, hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class StoredStage:
    """A successfully reloaded stage entry."""

    artifact: Any
    output_hash: str
    #: The ledger shard the original execution recorded (``None`` when
    #: the stage recorded nothing) — merged on a hit so a resumed run's
    #: trace is byte-identical to an uninterrupted one.
    ledger: RunLedger | None


class DagStore:
    """A run directory of persisted stage artifacts, one entry per stage."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def stage_dir(self, stage_name: str) -> Path:
        # Stage names may contain '/' (e.g. "cell/baseline/seed=5");
        # percent-encoding keeps one flat, reversible directory per
        # stage without any collision risk.
        return self.root / quote(stage_name, safe="")

    def load(self, stage_name: str, key: str) -> StoredStage | None:
        """The stored artifact for ``stage_name`` at ``key``, or ``None``.

        Every failure mode — missing entry, stale key, truncated or
        corrupt artifact, unreadable ledger — is a miss; the scheduler
        falls back to re-executing the stage.
        """
        entry = self.stage_dir(stage_name)
        try:
            meta = json.loads((entry / _META_FILE).read_text())
            if meta.get("dag_store_format") != DAG_STORE_FORMAT:
                return None
            if meta.get("stage") != stage_name or meta.get("key") != key:
                return None
            output_hash = meta.get("output_hash")
            blob = (entry / _ARTIFACT_FILE).read_bytes()
            if hashlib.sha256(blob).hexdigest() != meta.get("blob_sha256"):
                return None
            artifact = pickle.loads(blob)
            ledger = None
            ledger_path = entry / _LEDGER_FILE
            if ledger_path.exists():
                ledger = RunLedger.from_jsonl(ledger_path.read_text())
        except Exception:
            # Unpickling arbitrary damaged bytes can raise nearly
            # anything; all of it means the same thing here — a miss.
            return None
        return StoredStage(
            artifact=artifact, output_hash=str(output_hash), ledger=ledger
        )

    def store(
        self,
        stage_name: str,
        key: str,
        artifact: Any,
        *,
        ledger: RunLedger | None = None,
        artifact_blob: bytes | None = None,
        output_hash: str | None = None,
    ) -> Path:
        """Atomically persist one stage's output; returns the entry path.

        ``artifact_blob``/``output_hash`` let the scheduler reuse the
        pickle it already produced for keying instead of serializing
        twice. The entry becomes visible only through the final
        ``os.replace``; interruption anywhere earlier leaves only an
        invisible staging directory.
        """
        if artifact_blob is None:
            artifact_blob = pickle.dumps(
                artifact, protocol=pickle.HIGHEST_PROTOCOL
            )
        blob_sha256 = hashlib.sha256(artifact_blob).hexdigest()
        if output_hash is None:
            output_hash = blob_sha256
        self.root.mkdir(parents=True, exist_ok=True)
        sweep_stale_staging(
            self.root, prefix=_STAGING_PREFIX, max_age_s=_STAGING_MAX_AGE_S
        )
        staging = Path(tempfile.mkdtemp(prefix=_STAGING_PREFIX, dir=self.root))
        try:
            touch_heartbeat(staging)
            (staging / _ARTIFACT_FILE).write_bytes(artifact_blob)
            touch_heartbeat(staging)
            if ledger is not None and not ledger.is_empty:
                (staging / _LEDGER_FILE).write_text(ledger.to_jsonl())
            (staging / _META_FILE).write_text(
                json.dumps(
                    {
                        "dag_store_format": DAG_STORE_FORMAT,
                        "stage": stage_name,
                        "key": key,
                        "blob_sha256": blob_sha256,
                        "output_hash": output_hash,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
            clear_heartbeat(staging)
            entry = self.stage_dir(stage_name)
            try:
                os.replace(staging, entry)
            except OSError:
                # Occupied: a previous run's entry under another key, or
                # a concurrent writer. An equivalent valid entry wins
                # the race benignly; anything else is replaced.
                if self.load(stage_name, key) is not None:
                    shutil.rmtree(staging, ignore_errors=True)
                    return entry
                shutil.rmtree(entry, ignore_errors=True)
                try:
                    os.replace(staging, entry)
                except OSError:
                    if self.load(stage_name, key) is None:
                        raise
                    shutil.rmtree(staging, ignore_errors=True)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return entry

    def clear(self) -> None:
        """Drop every stored stage (``repro dag run --no-resume``)."""
        if self.root.exists():
            shutil.rmtree(self.root)
