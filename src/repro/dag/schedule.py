"""The DAG scheduler: content-addressed, resumable stage execution.

:func:`run_dag` walks a validated :class:`~repro.dag.spec.DagSpec` in
dependency waves. Each stage is content-addressed **before** it runs:

    stage key = H(kind, config, {dep name: upstream output hash},
                  package version, key format)

via :func:`repro.datasets.cache.payload_key` — the same canonical-JSON
SHA-256 the world cache hashes through. A stage whose key already has a
valid artifact in the run's :class:`~repro.dag.store.DagStore` is
*skipped*: its artifact and its original run-ledger shard are reloaded
instead of recomputed. Because stage execution is deterministic, a run
killed at any point resumes by re-invoking the same command — finished
stages reload, unfinished ones re-execute, and the final artifacts (and
the serialized trace, which replays stored shards on hits) are
byte-identical to an uninterrupted run's.

Ready stages within a wave fan out through a pluggable
:mod:`~repro.dag.backends` executor. Shard ledgers merge into the run
ledger in deterministic wave order; counters add, gauges union, and
spans serialize in canonical order, so ``trace.jsonl`` is byte-identical
for any backend, any worker count, and any resume point. Which stages
*actually executed* this invocation is scheduling state — it is reported
on the :class:`DagRunResult` (and to stderr by the CLI), never recorded
in the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .._version import __version__
from ..datasets.cache import payload_key
from ..exceptions import DagError
from ..obs.ledger import RunLedger, count, span
from .backends import ExecutorBackend, InProcessBackend
from .spec import DagSpec, StageSpec, stage_kind
from .store import DagStore, hash_artifact

__all__ = ["DagRunResult", "RunContext", "run_dag", "stage_key"]

#: Bump when the key derivation changes (invalidates stored stages).
DAG_KEY_FORMAT = 1


@dataclass(frozen=True)
class RunContext:
    """Scheduling knobs handed to every stage kind.

    Everything here is excluded from stage keys by construction: a
    stage's output bytes must not depend on worker counts or cache
    locations, only its config and inputs — the same contract the
    world cache and sweep engine already honor.
    """

    #: Intra-stage parallelism for kinds that shard internally (the
    #: report fragments, a world build). Wave-level parallelism across
    #: stages is the backend's job, not the context's.
    jobs: int = 1
    #: World-cache root for kinds that build worlds (``None`` — default
    #: resolution, as everywhere else).
    cache_root: str | None = None
    use_cache: bool = True
    #: Pre-built dataset directory for the ``load-data`` kind.
    data_dir: str | None = None


@dataclass(frozen=True)
class _StageTask:
    """One stage execution, picklable for the process-pool backend."""

    name: str
    fn: Callable
    config: Mapping
    inputs: Mapping[str, Any]
    ctx: RunContext


def _execute_stage(task: _StageTask) -> Any:
    """Run one stage under its ambient ledger scope.

    The ``dag/stage/<name>`` span and completion counter are recorded
    *inside* the scope, so they ride back in the stage's shard, are
    persisted with its artifact, and replay identically on a resume hit
    — the trace cannot tell a cached stage from an executed one.
    """
    with span(f"dag/stage/{task.name}"):
        result = task.fn(dict(task.config), dict(task.inputs), task.ctx)
    count("dag.stages.completed")
    return result


def stage_key(stage: StageSpec, upstream_hashes: Mapping[str, str]) -> str:
    """The content address of one stage's output.

    Hashes the stage kind, its canonical config, its dependencies'
    output hashes (by dependency name — renaming an edge re-keys, as it
    changes what the kind receives), and the package version, through
    the world cache's canonicalization. Scheduling knobs never enter.
    """
    payload = {
        "__dag_key_format__": DAG_KEY_FORMAT,
        "__package_version__": __version__,
        "kind": stage.kind,
        "config": dict(stage.config),
        "inputs": {dep: upstream_hashes[dep] for dep in stage.depends_on},
    }
    return payload_key(payload)


@dataclass(frozen=True)
class DagRunResult:
    """A completed DAG run: artifacts, keys, and resume accounting."""

    spec: DagSpec
    artifacts: dict[str, Any]
    keys: dict[str, str]
    output_hashes: dict[str, str]
    #: Stage names that executed this invocation, in execution order.
    executed: tuple[str, ...]
    #: Stage names reloaded from the store, in schedule order. Like the
    #: sweep's cache-hit count this is scheduling state: excluded from
    #: comparisons and never serialized into artifacts.
    cached: tuple[str, ...] = field(default=(), compare=False)

    def artifact(self, name: str) -> Any:
        try:
            return self.artifacts[name]
        except KeyError:
            raise DagError(f"run produced no stage {name!r}") from None


def run_dag(
    spec: DagSpec,
    *,
    backend: ExecutorBackend | None = None,
    store: DagStore | None = None,
    ledger: RunLedger | None = None,
    context: RunContext | None = None,
) -> DagRunResult:
    """Execute (or resume) ``spec``; returns every stage's artifact.

    ``store=None`` runs fully in memory — nothing persists and nothing
    resumes, which is how the sweep engine and the report CLI ride the
    scheduler without changing their artifacts. With a store, completed
    stages are skipped on re-invocation (key match) and artifacts
    publish atomically, so killing the process at any point never
    corrupts the run directory.
    """
    backend = backend if backend is not None else InProcessBackend()
    ctx = context if context is not None else RunContext()
    order = spec.topological_order()
    artifacts: dict[str, Any] = {}
    keys: dict[str, str] = {}
    hashes: dict[str, str] = {}
    executed: list[str] = []
    cached: list[str] = []
    pending = list(order)
    while pending:
        wave = [s for s in pending if all(d in hashes for d in s.depends_on)]
        if not wave:  # unreachable on a validated spec
            raise DagError(f"DAG {spec.name!r} stalled; remaining: "
                           f"{[s.name for s in pending]}")
        to_run: list[StageSpec] = []
        for stage in wave:
            key = stage_key(stage, hashes)
            keys[stage.name] = key
            kind = stage_kind(stage.kind)
            if store is not None and kind.cacheable:
                stored = store.load(stage.name, key)
                if stored is not None:
                    artifacts[stage.name] = stored.artifact
                    hashes[stage.name] = stored.output_hash
                    if ledger is not None and stored.ledger is not None:
                        ledger.merge(stored.ledger)
                    cached.append(stage.name)
                    continue
            to_run.append(stage)
        tasks = [
            _StageTask(
                name=stage.name,
                fn=stage_kind(stage.kind).fn,
                config=stage.config,
                inputs={dep: artifacts[dep] for dep in stage.depends_on},
                ctx=ctx,
            )
            for stage in to_run
        ]
        wave_hashes: dict[int, str] = {}

        def publish(index: int, outcome) -> None:
            # Runs in this process the moment a stage completes (in
            # completion order), so a kill between stages of one wave
            # never loses already-finished work — the resume contract
            # is per *stage*, not per wave.
            stage = to_run[index]
            value, shard = outcome
            kind = stage_kind(stage.kind)
            if kind.fingerprint is not None:
                blob, output_hash = None, str(kind.fingerprint(value))
            else:
                blob, output_hash = hash_artifact(value)
            wave_hashes[index] = output_hash
            if store is not None and kind.cacheable:
                store.store(
                    stage.name,
                    keys[stage.name],
                    value,
                    ledger=shard,
                    artifact_blob=blob,
                    output_hash=output_hash,
                )

        outcomes = backend.run(_execute_stage, tasks, on_result=publish)
        for index, (stage, (value, shard)) in enumerate(
            zip(to_run, outcomes)
        ):
            artifacts[stage.name] = value
            hashes[stage.name] = wave_hashes[index]
            if ledger is not None:
                ledger.merge(shard)
            executed.append(stage.name)
        done = {s.name for s in wave}
        pending = [s for s in pending if s.name not in done]
    return DagRunResult(
        spec=spec,
        artifacts=artifacts,
        keys=keys,
        output_hashes=hashes,
        executed=tuple(executed),
        cached=tuple(cached),
    )
