"""Built-in stage kinds and the pipeline templates built from them.

This module is where the paper's fixed chain (build world → sanitize →
match → verdict → report) meets the generic DAG runtime: each link
becomes a registered stage kind, and the two production pipelines —
``repro report`` and ``repro sweep`` — become thin spec builders over
those kinds. The CLI and the sweep engine call :func:`report_spec` /
:func:`sweep_spec`; ``repro dag run`` additionally accepts the
``{"pipeline": ..., "config": ...}`` shorthand via
:func:`expand_pipeline`.

Registered kinds:

``build``
    Build (or load from the world cache) the world for a full
    ``WorldConfig`` payload. Sanitization and fault injection run
    inside the build when the config enables them, exactly as in the
    non-DAG pipeline. Output-fingerprinted by world-cache key, since a
    cache-loaded world memory-maps its columns and would pickle
    differently from a value-identical fresh build.
``load-data``
    Read a pre-built dataset directory (``repro report --data``). Not
    cacheable: the directory's contents are outside the spec.
``report``
    Render the full paper-vs-measured report from its one dependency
    (a built world or a loaded dataset).
``sweep-cell``
    One (scenario, seed) sweep cell: build/load the world, run the
    chosen experiments, return the cell's verdicts.
``sweep-report``
    Fold every cell into the verdict-stability report and the
    ``sweep.json`` payload.

All kind callables are module-level functions, so any pipeline runs
unchanged on the process-pool backend.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..datasets.cache import WorldCache, build_or_load_world, cache_key
from ..datasets.io import config_from_payload, config_payload, survey_csv_text
from ..datasets.world import World, WorldConfig
from ..exceptions import DagError
from ..faults import fault_profile
from ..obs.ledger import current
from .spec import DagSpec, StageSpec, register_stage_kind

__all__ = [
    "DatasetTriple",
    "FileBundle",
    "WorldSlice",
    "expand_pipeline",
    "fragment_report_spec",
    "report_spec",
    "sweep_spec",
]


@dataclass(frozen=True)
class FileBundle:
    """Named text files a stage wants materialized by ``dag run``.

    The scheduler treats a bundle like any other artifact; only the CLI
    gives it meaning, writing each entry into the run's ``--out``
    directory after the DAG completes.
    """

    files: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "files", dict(self.files))


@dataclass(frozen=True)
class DatasetTriple:
    """A loaded dataset directory: the ``load-data`` kind's artifact."""

    dasu: tuple
    fcc: tuple
    survey: Any


@dataclass(frozen=True)
class WorldSlice:
    """One named view of a world (``dasu``, ``fcc``, or ``survey``) plus
    its content digest.

    The digest — SHA-256 over the slice's canonical byte rendering, not
    over a pickle — is the slice stage's output fingerprint, so a
    downstream fragment's stage key changes exactly when the *data it
    reads* changes. Appending households re-hashes the dasu slice but
    leaves the survey digest untouched, which is what confines the
    recompute to the fragments whose inputs actually moved.
    """

    name: str
    data: Any
    digest: str


@dataclass(frozen=True)
class CellOutcome:
    """A sweep cell's result plus its (scheduling-state) cache flag."""

    result: Any  # CellResult; typed loosely to keep imports lazy
    #: Whether the cell's *world* came from the world cache — stderr
    #: accounting only, excluded from the cell's output fingerprint so
    #: warm and cold runs key (and therefore resume) identically.
    from_cache: bool = False


# ---------------------------------------------------------------------------
# Stage kinds. Lazy imports below break the repro.sweep → repro.dag →
# repro.sweep cycle (the sweep engine schedules through the DAG).
# ---------------------------------------------------------------------------


def _build_kind(config: dict, inputs: dict, ctx) -> World:
    world_config = config_from_payload(config["world"])
    cache = WorldCache(ctx.cache_root)
    key = cache_key(world_config)
    world = cache.load(world_config) if ctx.use_cache else None
    if world is not None:
        print(f"cache hit ({key[:12]}): skipping build")
    else:
        print(
            f"building world (seed={world_config.seed}, "
            f"{world_config.n_dasu_users} Dasu users, jobs={ctx.jobs})...",
            flush=True,
        )
        world, _ = build_or_load_world(
            world_config,
            jobs=ctx.jobs,
            cache=cache,
            use_cache=ctx.use_cache,
            ground_truth=False,
        )
    ambient = current()
    if ambient is not None and world.ledger is not None:
        # Fold the build's events (fresh or cached — the cache stores
        # each build's trace) into this stage's shard, so hit and miss
        # runs trace identically.
        ambient.merge(world.ledger)
    return world


def _build_fingerprint(world: World) -> str:
    return cache_key(world.config)


def _load_data_kind(config: dict, inputs: dict, ctx) -> DatasetTriple:
    from ..cli import _load  # lazy: cli imports this module's package

    if ctx.data_dir is None:
        raise DagError("the load-data kind needs RunContext.data_dir")
    from pathlib import Path

    dasu, fcc, survey = _load(Path(ctx.data_dir))
    return DatasetTriple(dasu=tuple(dasu), fcc=tuple(fcc), survey=survey)


def _report_kind(config: dict, inputs: dict, ctx) -> FileBundle:
    from ..analysis.paper_report import full_report

    if len(inputs) != 1:
        raise DagError(
            f"the report kind takes exactly one dependency, got "
            f"{sorted(inputs)}"
        )
    (data,) = inputs.values()
    if isinstance(data, World):
        dasu, fcc, survey = data.dasu.users, data.fcc.users, data.survey
    elif isinstance(data, DatasetTriple):
        dasu, fcc, survey = data.dasu, data.fcc, data.survey
    else:
        raise DagError(
            f"the report kind needs a world or dataset input, got "
            f"{type(data).__name__}"
        )
    text = full_report(dasu, fcc, survey, jobs=ctx.jobs, ledger=current())
    return FileBundle(files={"report.txt": text + "\n"})


def _sweep_cell_kind(config: dict, inputs: dict, ctx) -> CellOutcome:
    from ..sweep.engine import _CellTask, _run_cell

    world_config = config_from_payload(config["world"])
    task = _CellTask(
        scenario=str(config["scenario"]),
        seed=int(config["seed"]),
        config=world_config,
        experiments=tuple(config["experiments"]),
        cache_root=ctx.cache_root,
        use_cache=ctx.use_cache,
        iqb_config=config.get("iqb_config"),
    )
    result, from_cache = _run_cell(task)
    return CellOutcome(result=result, from_cache=from_cache)


def _sweep_cell_fingerprint(outcome: CellOutcome) -> str:
    # Address by the cell's result alone: the cache flag is scheduling
    # state and must not re-key downstream stages between runs.
    from .store import hash_artifact

    return hash_artifact(outcome.result)[1]


def _sweep_report_kind(config: dict, inputs: dict, ctx) -> FileBundle:
    from ..sweep.engine import SweepResult
    from ..sweep.grid import ScenarioGrid
    from ..sweep.report import format_sweep_report, sweep_payload

    grid = ScenarioGrid.from_payload(config["grid"])
    sweep = SweepResult(
        grid=grid,
        base_config=config_from_payload(config["base"]),
        seeds=tuple(int(s) for s in config["seeds"]),
        experiments=tuple(config["experiments"]),
        cells=tuple(inputs[name].result for name in config["cells"]),
    )
    return FileBundle(
        files={
            "report.txt": format_sweep_report(sweep) + "\n",
            "sweep.json": json.dumps(
                sweep_payload(sweep), indent=2, sort_keys=True
            )
            + "\n",
        }
    )


def _world_slice_kind(config: dict, inputs: dict, ctx) -> WorldSlice:
    name = str(config["slice"])
    (data,) = inputs.values()
    if isinstance(data, World):
        dasu, fcc, survey = data.dasu, data.fcc, data.survey
        if name == "dasu":
            return WorldSlice(
                name=name,
                data=dasu.users,
                digest=hashlib.sha256(
                    np.ascontiguousarray(dasu.columns.rows).tobytes()
                ).hexdigest(),
            )
        if name == "fcc":
            return WorldSlice(
                name=name,
                data=fcc.users,
                digest=hashlib.sha256(
                    np.ascontiguousarray(fcc.columns.rows).tobytes()
                ).hexdigest(),
            )
        if name == "survey":
            return WorldSlice(
                name=name,
                data=survey,
                digest=hashlib.sha256(
                    survey_csv_text(survey).encode("utf-8")
                ).hexdigest(),
            )
        raise DagError(f"unknown world slice {name!r}")
    raise DagError(
        f"the world-slice kind needs a world input, got "
        f"{type(data).__name__}"
    )


def _world_slice_fingerprint(slice_: WorldSlice) -> str:
    return slice_.digest


def _report_fragment_kind(config: dict, inputs: dict, ctx) -> dict:
    from ..analysis.paper_report import render_fragment

    key = str(config["fragment"])
    slices: dict[str, Any] = {}
    for value in inputs.values():
        if not isinstance(value, WorldSlice):
            raise DagError(
                f"the report-fragment kind takes world-slice inputs, got "
                f"{type(value).__name__}"
            )
        slices[value.name] = value.data
    text, error = render_fragment(
        key,
        dasu=slices.get("dasu", ()),
        fcc=slices.get("fcc"),
        survey=slices.get("survey"),
    )
    # Text and error only — no timings, no wall-clock state — so an
    # unchanged fragment pickles to unchanged bytes and downstream
    # assembly keys stay stable across runs.
    return {"text": text, "error": error}


def _report_assemble_kind(config: dict, inputs: dict, ctx) -> FileBundle:
    from ..analysis.paper_report import assemble_report

    fragments: dict[str, tuple] = {}
    slices: dict[str, WorldSlice] = {}
    for dep_name, value in inputs.items():
        if isinstance(value, WorldSlice):
            slices[value.name] = value
        elif isinstance(value, dict) and dep_name.startswith("fragment/"):
            fragments[dep_name.split("/", 1)[1]] = (
                value.get("text"), value.get("error"),
            )
        else:
            raise DagError(
                f"unexpected report-assemble input {dep_name!r}"
            )
    for required in ("dasu", "fcc", "survey"):
        if required not in slices:
            raise DagError(
                f"the report-assemble kind needs the {required!r} slice"
            )
    survey = slices["survey"].data
    text = assemble_report(
        fragments,
        n_dasu=len(slices["dasu"].data),
        n_fcc=len(slices["fcc"].data),
        n_plans=None if survey is None else survey.n_plans,
    )
    return FileBundle(files={"report.txt": text + "\n"})


register_stage_kind("build", _build_kind, fingerprint=_build_fingerprint)
register_stage_kind("load-data", _load_data_kind, cacheable=False)
register_stage_kind("report", _report_kind)
register_stage_kind(
    "sweep-cell", _sweep_cell_kind, fingerprint=_sweep_cell_fingerprint
)
register_stage_kind("sweep-report", _sweep_report_kind)
#: The fragment pipeline's world stage: same callable as ``build``, but
#: not cacheable — a resident service re-slices its warm world every
#: refresh (loading from the world cache is an mmap, not a rebuild), and
#: a pickled World in the DAG store would duplicate the whole dataset.
register_stage_kind(
    "world-source",
    _build_kind,
    fingerprint=_build_fingerprint,
    cacheable=False,
)
#: Slices re-run with the world (cheap views), but their *output hash*
#: is the content digest, so fragment stage keys — and therefore the
#: store hits that skip recompute — follow the data, not the schedule.
register_stage_kind(
    "world-slice",
    _world_slice_kind,
    fingerprint=_world_slice_fingerprint,
    cacheable=False,
)
register_stage_kind("report-fragment", _report_fragment_kind)
register_stage_kind("report-assemble", _report_assemble_kind)


# ---------------------------------------------------------------------------
# Pipeline templates: the paper's two production pipelines as specs.
# ---------------------------------------------------------------------------


def _world_payload(raw: Mapping | WorldConfig, where: str) -> dict:
    """A full canonical config payload from a (possibly partial) one.

    Accepts a ``WorldConfig`` or a payload dict; a ``"faults"`` profile
    *name* is resolved for hand-written specs. Round-tripping through
    :class:`WorldConfig` validates and fills defaults, so every stage
    config carries the complete, canonical world description.
    """
    if isinstance(raw, WorldConfig):
        return config_payload(raw)
    if not isinstance(raw, Mapping):
        raise DagError(f"{where} must be a world-config object, got {raw!r}")
    data = dict(raw)
    if isinstance(data.get("faults"), str):
        profile = fault_profile(data["faults"])
        data["faults"] = (
            None if profile is None else dataclasses.asdict(profile)
        )
        if data["faults"] is None:
            del data["faults"]
    try:
        return config_payload(config_from_payload(data))
    except Exception as exc:
        raise DagError(f"{where}: {exc}") from None


def report_spec(
    config: WorldConfig | Mapping | None = None,
    *,
    data_dir: str | None = None,
    name: str = "report",
) -> DagSpec:
    """The ``repro report`` pipeline as a two-stage DAG.

    Either a world configuration (build → report) or ``data_dir``
    (load-data → report); exactly one source must be given.
    """
    if (config is None) == (data_dir is None):
        raise DagError(
            "report_spec needs exactly one of a world config or data_dir"
        )
    if config is not None:
        source = StageSpec(
            name="world",
            kind="build",
            config={"world": _world_payload(config, "report world config")},
        )
    else:
        source = StageSpec(name="world", kind="load-data")
    return DagSpec(
        name=name,
        stages=(
            source,
            StageSpec(name="paper-report", kind="report", depends_on=("world",)),
        ),
    )


def fragment_report_spec(
    config: WorldConfig | Mapping,
    *,
    name: str = "fragment-report",
) -> DagSpec:
    """The paper report as a fragment-level DAG.

    ``world-source`` (build or cache-load) fans into three ``world-slice``
    stages (dasu, fcc, survey), each fragment depends on exactly the
    slices it reads (:data:`repro.analysis.paper_report.FRAGMENT_INPUTS`),
    and ``report-assemble`` folds every fragment into a ``report.txt``
    byte-identical to :func:`repro.analysis.paper_report.full_report`.

    Run against a persistent :class:`~repro.dag.store.DagStore`, only
    fragments whose input content digests changed re-execute — appending
    households recomputes the Dasu-driven fragments while survey-only
    ones reload. This is the report service's refresh pipeline.
    """
    from ..analysis.paper_report import fragment_inputs, fragment_keys

    stages: list[StageSpec] = [
        StageSpec(
            name="world",
            kind="world-source",
            config={"world": _world_payload(config, "report world config")},
        )
    ]
    for slice_name in ("dasu", "fcc", "survey"):
        stages.append(
            StageSpec(
                name=f"slice/{slice_name}",
                kind="world-slice",
                config={"slice": slice_name},
                depends_on=("world",),
            )
        )
    fragment_stage_names: list[str] = []
    for key in fragment_keys():
        stage_name = f"fragment/{key}"
        fragment_stage_names.append(stage_name)
        stages.append(
            StageSpec(
                name=stage_name,
                kind="report-fragment",
                config={"fragment": key},
                depends_on=tuple(
                    f"slice/{s}" for s in fragment_inputs(key)
                ),
            )
        )
    stages.append(
        StageSpec(
            name="paper-report",
            kind="report-assemble",
            depends_on=(
                "slice/dasu", "slice/fcc", "slice/survey",
                *fragment_stage_names,
            ),
        )
    )
    return DagSpec(name=name, stages=tuple(stages))


def sweep_spec(
    base_config: WorldConfig | Mapping,
    grid,
    seeds,
    experiments,
    *,
    with_report: bool = True,
    name: str = "sweep",
) -> DagSpec:
    """The ``repro sweep`` fan-out as a DAG: one stage per cell.

    Cells are independent, so they form one wave and fan across the
    backend exactly as the pre-DAG engine fanned them through
    ``run_sharded`` — scenario-major, seed-minor, the order the report
    lists them in. ``with_report`` appends the ``sweep-report`` stage
    that folds every cell into the stability report (``repro sweep``
    formats in-process instead and omits it).
    """
    from ..sweep.grid import ScenarioGrid  # lazy: cycle with repro.sweep

    if not isinstance(grid, ScenarioGrid):
        grid = ScenarioGrid.from_payload(grid)
    base_payload = _world_payload(base_config, "sweep base config")
    base = config_from_payload(base_payload)
    seeds = tuple(int(s) for s in seeds)
    experiments = tuple(experiments)
    stages: list[StageSpec] = []
    cell_names: list[str] = []
    for scenario, seed, cell_config in grid.configs(base, seeds):
        stage_name = f"cell/{scenario.name}/seed={seed}"
        cell_names.append(stage_name)
        stage_config = {
            "scenario": scenario.name,
            "seed": seed,
            "world": config_payload(cell_config),
            "experiments": list(experiments),
        }
        # Only present when set, so grids without an iqb_config axis
        # keep their pre-existing stage keys (and store hits).
        if scenario.iqb_config is not None:
            stage_config["iqb_config"] = scenario.iqb_config
        stages.append(
            StageSpec(
                name=stage_name,
                kind="sweep-cell",
                config=stage_config,
            )
        )
    if with_report:
        stages.append(
            StageSpec(
                name="sweep-report",
                kind="sweep-report",
                depends_on=tuple(cell_names),
                config={
                    "grid": grid.to_payload(),
                    "base": base_payload,
                    "seeds": list(seeds),
                    "experiments": list(experiments),
                    "cells": list(cell_names),
                },
            )
        )
    return DagSpec(name=name, stages=tuple(stages))


def expand_pipeline(payload: Mapping) -> DagSpec:
    """Expand a ``{"pipeline": ..., "config": ...}`` shorthand spec."""
    unknown = set(payload) - {"pipeline", "name", "config"}
    if unknown:
        raise DagError(
            f"pipeline spec has unknown keys: {', '.join(sorted(unknown))}"
        )
    pipeline = str(payload["pipeline"])
    config = payload.get("config", {})
    if not isinstance(config, Mapping):
        raise DagError(f"pipeline config must be an object, got {config!r}")
    name = str(payload.get("name", pipeline))
    if pipeline == "report":
        unknown = set(config) - {"world"}
        if unknown:
            raise DagError(
                "report pipeline config has unknown keys: "
                f"{', '.join(sorted(unknown))}"
            )
        return report_spec(config.get("world", {}), name=name)
    if pipeline == "fragment-report":
        unknown = set(config) - {"world"}
        if unknown:
            raise DagError(
                "fragment-report pipeline config has unknown keys: "
                f"{', '.join(sorted(unknown))}"
            )
        return fragment_report_spec(config.get("world", {}), name=name)
    if pipeline == "sweep":
        from ..sweep.grid import ScenarioGrid
        from ..sweep.runners import SWEEP_EXPERIMENTS

        unknown = set(config) - {"base", "grid", "seeds", "experiments"}
        if unknown:
            raise DagError(
                "sweep pipeline config has unknown keys: "
                f"{', '.join(sorted(unknown))}"
            )
        grid = (
            ScenarioGrid.from_payload(config["grid"])
            if "grid" in config
            else ScenarioGrid.baseline()
        )
        base = config_from_payload(
            _world_payload(config.get("base", {}), "sweep base config")
        )
        seeds = tuple(int(s) for s in config.get("seeds", ())) or (
            grid.seeds or (base.seed,)
        )
        experiments = tuple(config.get("experiments", SWEEP_EXPERIMENTS))
        return sweep_spec(base, grid, seeds, experiments, name=name)
    raise DagError(
        f"unknown pipeline {pipeline!r} (expected 'report', "
        "'fragment-report', or 'sweep')"
    )
