"""Declarative experiment-DAG specifications.

A :class:`DagSpec` names the stages of an experiment pipeline: each
:class:`StageSpec` has a unique name, a registered stage *kind* (the
callable that executes it), the names of the stages it depends on, and a
per-stage configuration dict. Specs are plain data — they parse from a
JSON/YAML-compatible payload (``repro dag run --spec dag.json``), or are
built in code by the pipeline helpers in :mod:`repro.dag.pipelines`.

Validation happens entirely at parse/construction time: duplicate stage
names, dangling ``depends_on`` references, dependency cycles, unknown
kinds, and non-canonical configs are all rejected before anything runs.
A constructed :class:`DagSpec` is therefore guaranteed schedulable, and
:meth:`DagSpec.topological_order` is total and deterministic (Kahn's
algorithm with spec-declaration order breaking ties), so the scheduler's
execution and ledger-merge order never depend on scheduling luck.

Stage kinds live in a module-level registry. The built-in kinds
(``build``, ``load-data``, ``report``, ``sweep-cell``, ``sweep-report``)
are registered when :mod:`repro.dag` imports; user code adds its own
with :func:`register_stage_kind`. A kind's callable must be a
module-level function if the DAG will run on the process-pool backend
(tasks are pickled into workers); in-process runs accept any callable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

from ..exceptions import DagError

__all__ = [
    "DagSpec",
    "StageKind",
    "StageSpec",
    "register_stage_kind",
    "stage_kind",
]


@dataclass(frozen=True)
class StageKind:
    """One registered stage implementation.

    ``fn(config, inputs, ctx)`` receives the stage's config dict, a
    ``{dependency name: artifact}`` mapping, and the run's
    :class:`~repro.dag.schedule.RunContext` (scheduling knobs that must
    never influence a stage's output bytes — worker counts, cache
    directories). ``cacheable=False`` marks kinds whose output depends
    on state outside the spec (e.g. reading a user-supplied data
    directory); their artifacts are never reused across runs.

    ``fingerprint(artifact)``, when given, supplies the stage's output
    hash (the content address downstream keys incorporate) in place of
    the default SHA-256 over the artifact's pickle. Kinds whose
    artifacts are value-equal but representation-dependent need one:
    a world loaded from the on-disk cache memory-maps its columns while
    a fresh build holds them in memory, so the ``build`` kind
    fingerprints by world-cache key instead of by pickle bytes.
    """

    name: str
    fn: Callable
    cacheable: bool = True
    fingerprint: Callable | None = None


#: The global kind registry (name → :class:`StageKind`).
_KINDS: dict[str, StageKind] = {}


def register_stage_kind(
    name: str,
    fn: Callable,
    *,
    cacheable: bool = True,
    fingerprint: Callable | None = None,
) -> StageKind:
    """Register (or deterministically re-register) a stage kind.

    Re-registering an existing name with the *same* callable is a no-op
    (idempotent imports); rebinding a name to a different callable
    raises, so two libraries cannot silently fight over a kind.
    """
    if not name or not isinstance(name, str):
        raise DagError(f"stage kinds need a non-empty string name, got {name!r}")
    existing = _KINDS.get(name)
    if existing is not None:
        if (
            existing.fn is fn
            and existing.cacheable == cacheable
            and existing.fingerprint is fingerprint
        ):
            return existing
        raise DagError(
            f"stage kind {name!r} is already registered to "
            f"{existing.fn!r}; refusing to rebind"
        )
    kind = StageKind(
        name=name, fn=fn, cacheable=cacheable, fingerprint=fingerprint
    )
    _KINDS[name] = kind
    return kind


def stage_kind(name: str) -> StageKind:
    """Look up a registered kind; unknown names raise :class:`DagError`."""
    try:
        return _KINDS[name]
    except KeyError:
        known = ", ".join(sorted(_KINDS)) or "<none>"
        raise DagError(
            f"unknown stage kind {name!r} (registered kinds: {known})"
        ) from None


def _canonical_config(name: str, config: Mapping) -> dict:
    """Validate a stage config is canonical-JSON material.

    Stage configs feed the content-addressed stage key, so — like
    world-cache keys — they must round-trip through JSON without any
    ``str()`` fallback. The canonicalizer in :mod:`repro.datasets.io`
    owns that contract.
    """
    from ..datasets.io import _canonical_json

    if not isinstance(config, Mapping):
        raise DagError(
            f"stage {name!r}: config must be a mapping, got {config!r}"
        )
    try:
        return _canonical_json(dict(config), f"stage[{name}].config")
    except Exception as exc:  # DatasetError carries the precise path
        raise DagError(f"stage {name!r}: {exc}") from None


@dataclass(frozen=True)
class StageSpec:
    """One named stage: a kind, its dependencies, and its config."""

    name: str
    kind: str
    depends_on: tuple[str, ...] = ()
    config: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise DagError(f"stages need a non-empty string name, got {self.name!r}")
        stage_kind(self.kind)  # unknown kinds rejected at construction
        deps = tuple(str(d) for d in self.depends_on)
        if len(set(deps)) != len(deps):
            raise DagError(
                f"stage {self.name!r} lists a dependency twice: {deps}"
            )
        if self.name in deps:
            raise DagError(f"stage {self.name!r} depends on itself")
        object.__setattr__(self, "depends_on", deps)
        object.__setattr__(
            self, "config", _canonical_config(self.name, self.config)
        )

    def to_payload(self) -> dict:
        payload: dict = {"name": self.name, "kind": self.kind}
        if self.depends_on:
            payload["depends_on"] = list(self.depends_on)
        if self.config:
            payload["config"] = dict(self.config)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping) -> "StageSpec":
        if not isinstance(payload, Mapping):
            raise DagError(f"stage entries must be objects, got {payload!r}")
        unknown = set(payload) - {"name", "kind", "depends_on", "config"}
        if unknown:
            raise DagError(
                f"stage has unknown keys: {', '.join(sorted(unknown))}"
            )
        missing = {"name", "kind"} - set(payload)
        if missing:
            raise DagError(
                f"stage needs {', '.join(sorted(missing))}: {dict(payload)!r}"
            )
        return cls(
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            depends_on=tuple(payload.get("depends_on", ())),
            config=payload.get("config", {}),
        )


@dataclass(frozen=True)
class DagSpec:
    """An ordered, validated set of stages forming an acyclic graph."""

    name: str
    stages: tuple[StageSpec, ...]

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise DagError(f"a DAG needs a non-empty string name, got {self.name!r}")
        if not self.stages:
            raise DagError(f"DAG {self.name!r} declares no stages")
        object.__setattr__(self, "stages", tuple(self.stages))
        names = [s.name for s in self.stages]
        seen: set[str] = set()
        for name in names:
            if name in seen:
                raise DagError(f"duplicate stage name {name!r}")
            seen.add(name)
        for stage in self.stages:
            for dep in stage.depends_on:
                if dep not in seen:
                    raise DagError(
                        f"stage {stage.name!r} depends on unknown stage "
                        f"{dep!r}"
                    )
        # Reject cycles now, so every constructed spec is schedulable.
        order = self.topological_order()
        assert len(order) == len(self.stages)

    def stage(self, name: str) -> StageSpec:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise DagError(f"DAG {self.name!r} has no stage {name!r}")

    def topological_order(self) -> tuple[StageSpec, ...]:
        """A deterministic dependency-respecting order over all stages.

        Kahn's algorithm; among simultaneously-ready stages, the spec's
        declaration order wins. Raises :class:`DagError` naming the
        stages on a cycle if one exists.
        """
        index = {s.name: i for i, s in enumerate(self.stages)}
        pending = {s.name: set(s.depends_on) for s in self.stages}
        ordered: list[StageSpec] = []
        done: set[str] = set()
        while pending:
            ready = sorted(
                (name for name, deps in pending.items() if deps <= done),
                key=index.__getitem__,
            )
            if not ready:
                cycle = ", ".join(sorted(pending))
                raise DagError(
                    f"DAG {self.name!r} has a dependency cycle among: {cycle}"
                )
            for name in ready:
                ordered.append(self.stages[index[name]])
                done.add(name)
                del pending[name]
        return tuple(ordered)

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "stages": [s.to_payload() for s in self.stages],
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "DagSpec":
        """Parse a spec payload (the ``dag.json`` schema).

        Two forms are accepted: an explicit stage list
        (``{"name": ..., "stages": [...]}``) or a pipeline shorthand
        (``{"pipeline": "sweep", "config": {...}}``) expanded by the
        registered pipeline templates in :mod:`repro.dag.pipelines`.
        """
        if not isinstance(payload, Mapping):
            raise DagError("a DAG spec must be a JSON object")
        if "pipeline" in payload:
            from .pipelines import expand_pipeline

            return expand_pipeline(payload)
        unknown = set(payload) - {"name", "stages"}
        if unknown:
            raise DagError(
                f"DAG spec has unknown keys: {', '.join(sorted(unknown))}"
            )
        stages = payload.get("stages", [])
        if not isinstance(stages, (list, tuple)):
            raise DagError(f"'stages' must be a list, got {stages!r}")
        return cls(
            name=str(payload.get("name", "dag")),
            stages=tuple(StageSpec.from_payload(entry) for entry in stages),
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "DagSpec":
        """Load a spec from a ``dag.json`` file."""
        try:
            payload = json.loads(Path(path).read_text())
        except OSError as exc:
            raise DagError(f"cannot read DAG spec {path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise DagError(f"{path} is not valid JSON: {exc}") from None
        return cls.from_payload(payload)
