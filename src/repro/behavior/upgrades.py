"""Upgrade dynamics: households jump tiers when need outgrows the pipe.

The paper's longitudinal finding — constant demand per capacity class
despite fast traffic growth — requires exactly this mechanism: a household
whose need grows does not keep saturating its link for long; once peak
utilization crosses its personal tolerance it re-enters the market and
buys a faster service (if one is affordable). Households that cannot
afford to move stay and run hot (the Botswana pattern).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DatasetError
from ..market.market import CountryMarket
from .choice import ChoiceModel, PlanChoice
from .population import LatentUser

__all__ = ["UpgradeDecision", "UpgradePolicy"]


@dataclass(frozen=True)
class UpgradeDecision:
    """What a household decided at a yearly review."""

    switched: bool
    choice: PlanChoice | None
    reason: str


class UpgradePolicy:
    """Yearly service review for one household.

    A household reconsiders its plan when (i) its peak utilization crossed
    its tolerance, or (ii) an exogenous move forces a re-choice (new home,
    ISP churn). A reconsideration only becomes a switch when the newly
    chosen plan's capacity differs by at least ``min_change_ratio`` —
    matching the switch-detection threshold in :mod:`repro.core.upgrades`.
    """

    def __init__(
        self,
        choice_model: ChoiceModel,
        move_probability: float = 0.03,
        min_change_ratio: float = 1.25,
    ) -> None:
        if not 0.0 <= move_probability <= 1.0:
            raise DatasetError("move probability must be a fraction")
        if min_change_ratio <= 1.0:
            raise DatasetError("min change ratio must exceed 1")
        self.choice_model = choice_model
        self.move_probability = move_probability
        self.min_change_ratio = min_change_ratio

    def review(
        self,
        user: LatentUser,
        market: CountryMarket,
        current_capacity_mbps: float,
        peak_utilization: float,
        rng: np.random.Generator,
        promoted_tier_mbps: float | None = None,
        promoted_adoption: float = 0.0,
        need_grew: bool = False,
    ) -> UpgradeDecision:
        """Decide whether the household changes service this year.

        ``need_grew`` marks a demand-growth episode this year (a new
        streaming habit, another person online): the household re-enters
        the market even before its old link visibly saturates.
        """
        if current_capacity_mbps <= 0:
            raise DatasetError("current capacity must be positive")
        if not 0.0 <= peak_utilization <= 1.0:
            raise DatasetError("peak utilization must be a fraction")

        moved = rng.random() < self.move_probability
        pressured = need_grew or peak_utilization >= user.upgrade_threshold
        if not moved and not pressured:
            return UpgradeDecision(False, None, "content")

        choice = self.choice_model.choose(
            user,
            market,
            rng,
            promoted_tier_mbps=promoted_tier_mbps,
            promoted_adoption=promoted_adoption,
        )
        if choice is None:
            return UpgradeDecision(False, None, "nothing affordable")

        ratio = choice.plan.download_mbps / current_capacity_mbps
        if moved:
            # A move forces a new line even at a similar speed.
            return UpgradeDecision(True, choice, "moved")
        if ratio >= self.min_change_ratio:
            return UpgradeDecision(True, choice, "outgrew service")
        return UpgradeDecision(False, None, "no better tier affordable")
