"""User-behavior substrate: need, want, can afford.

This package implements the causal mechanisms the paper's natural
experiments are designed to detect:

* a heavy-tailed latent **need** for bandwidth per household
  (:mod:`repro.behavior.population`);
* utility-based **plan choice** under a budget, which creates the
  selection effects that couple market prices to per-capacity demand
  (:mod:`repro.behavior.choice`);
* a diminishing-returns **usage response** to capacity, suppressed by
  poor connection quality (:mod:`repro.behavior.demand`);
* **upgrade dynamics** — households jump to a faster tier when their need
  outgrows the pipe (:mod:`repro.behavior.upgrades`).

Nothing in :mod:`repro.analysis` reads these ground-truth objects; the
analyses only see what the measurement clients report.
"""

from .choice import ChoiceModel, PlanChoice
from .demand import DemandProcess, qoe_multiplier
from .population import LatentUser, PopulationModel
from .profiles import APPLICATION_PROFILES, ApplicationProfile
from .upgrades import UpgradePolicy

__all__ = [
    "APPLICATION_PROFILES",
    "ApplicationProfile",
    "ChoiceModel",
    "DemandProcess",
    "LatentUser",
    "PlanChoice",
    "PopulationModel",
    "UpgradePolicy",
    "qoe_multiplier",
]
