"""The latent-user population: need, budget, tastes.

Each simulated household carries a heavy-tailed latent **need** (the peak
demand it would place on an infinite, perfect link), a **budget** (its
willingness to pay for broadband, drawn as a share of the country's
monthly income proxy), and idiosyncratic tastes. The three "need, want,
can afford" dimensions of the paper's title are exactly these fields plus
the market's plan ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..exceptions import DatasetError
from ..market.economy import Economy
from .profiles import ApplicationProfile, sample_profile

__all__ = ["LatentUser", "PopulationModel"]


@dataclass(frozen=True)
class LatentUser:
    """Ground truth for one household (never read by the analyses)."""

    user_id: str
    country: str
    need_mbps: float
    budget_usd_ppp: float
    profile: ApplicationProfile
    bt_user: bool
    taste_sigma: float
    activity_scale: float
    yearly_need_growth: float
    upgrade_threshold: float

    def __post_init__(self) -> None:
        if self.need_mbps <= 0 or self.budget_usd_ppp <= 0:
            raise DatasetError(f"{self.user_id}: need and budget must be positive")
        if not 0.0 < self.upgrade_threshold <= 1.0:
            raise DatasetError(f"{self.user_id}: bad upgrade threshold")

    def grown(self, years: int = 1) -> "LatentUser":
        """The same household after ``years`` of demand growth."""
        if years < 0:
            raise DatasetError("cannot grow by a negative number of years")
        return replace(
            self, need_mbps=self.need_mbps * self.yearly_need_growth**years
        )


class PopulationModel:
    """Draws latent households for a country.

    Parameters mirror the world-level knobs: the latent-need distribution
    is lognormal and, crucially, *identical across countries* — the paper's
    cross-market demand differences must arise from markets and selection,
    not from baked-in national appetites.
    """

    def __init__(
        self,
        need_median_mbps: float = 2.2,
        need_sigma: float = 1.1,
        budget_share_median: float = 0.028,
        budget_share_sigma: float = 0.85,
        budget_share_cap: float = 0.16,
        income_sigma: float = 0.6,
        grower_fraction: float = 0.35,
        need_growth_median: float = 2.2,
        need_growth_sigma: float = 0.25,
    ) -> None:
        if need_median_mbps <= 0 or need_sigma <= 0:
            raise DatasetError("invalid need distribution")
        if budget_share_median <= 0 or budget_share_sigma <= 0:
            raise DatasetError("invalid budget distribution")
        self.need_median_mbps = need_median_mbps
        self.need_sigma = need_sigma
        self.budget_share_median = budget_share_median
        self.budget_share_sigma = budget_share_sigma
        self.budget_share_cap = budget_share_cap
        self.income_sigma = income_sigma
        if not 0.0 <= grower_fraction <= 1.0:
            raise DatasetError("grower fraction must be a fraction")
        self.grower_fraction = grower_fraction
        self.need_growth_median = need_growth_median
        self.need_growth_sigma = need_growth_sigma

    def sample_user(
        self,
        user_id: str,
        economy: Economy,
        rng: np.random.Generator,
        bt_population: bool = True,
    ) -> LatentUser:
        """Draw one candidate household in the given economy.

        ``bt_population`` marks panels recruited through a BitTorrent
        client (the Dasu vantage) versus general-population panels (the
        FCC/SamKnows gateways), which have lower BitTorrent propensity.
        """
        need = float(
            self.need_median_mbps * np.exp(rng.normal(0.0, self.need_sigma))
        )
        share = float(
            self.budget_share_median
            * np.exp(rng.normal(0.0, self.budget_share_sigma))
        )
        share = min(share, self.budget_share_cap)
        # GDP per capita hides household income inequality; broadband
        # panels in poor, expensive markets are drawn from the richer tail.
        household_income = economy.monthly_income_ppp_usd * float(
            np.exp(rng.normal(0.0, self.income_sigma))
        )
        budget = max(3.0, share * household_income)
        profile = sample_profile(rng)
        bt_propensity = profile.bt_propensity if bt_population else 0.06
        # Demand growth is episodic, not universal: a minority of
        # households (new streaming habit, more family members online)
        # grow fast and jump tiers; the rest stay flat. This is what
        # keeps demand per capacity class stationary (Sec. 4) while
        # total traffic grows.
        if rng.random() < self.grower_fraction:
            growth = float(
                self.need_growth_median
                * np.exp(rng.normal(0.0, self.need_growth_sigma))
            )
        else:
            growth = 1.0
        return LatentUser(
            user_id=user_id,
            country=economy.country,
            need_mbps=need,
            budget_usd_ppp=budget,
            profile=profile,
            bt_user=bool(rng.random() < bt_propensity),
            taste_sigma=0.55,
            # Bounded away from zero: every real household has *some*
            # evening activity, and the 95th-percentile demand statistic
            # degenerates when active time falls below 5% of samples.
            activity_scale=float(0.7 + rng.beta(2.0, 2.0) * 1.0),
            yearly_need_growth=max(1.0, growth),
            upgrade_threshold=float(rng.uniform(0.35, 0.75)),
        )
