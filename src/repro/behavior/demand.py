"""Usage response: how much of its need a household actually expresses.

The offered load a household places on its link is its latent need shaped
by (i) time of day and session behavior (:mod:`repro.traffic`), and (ii)
connection quality: long latencies and high loss degrade the experience,
so people use the connection less (the paper's Sec. 7 mechanism, distinct
from the hard TCP throughput ceiling in :mod:`repro.network.tcp`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import DatasetError
from ..network.path import NetworkPath
from ..network.tcp import effective_capacity_mbps
from .population import LatentUser

__all__ = ["DemandProcess", "cap_awareness_multiplier", "qoe_multiplier"]

#: Latency at which quality of experience starts to degrade, in ms.
_RTT_KNEE_MS = 150.0
#: Latency scale of the degradation beyond the knee, in ms.
_RTT_SCALE_MS = 900.0
#: Loss rate at which quality of experience starts to degrade (0.1%).
_LOSS_KNEE = 0.001
#: Approximate monthly volume, in GB, generated per Mbps of average rate.
_GB_PER_MONTH_PER_MBPS = 328.0
#: Typical ratio of a household's average rate to its offered peak.
_MEAN_TO_PEAK = 0.1
#: Households never self-throttle below this share of their demand.
_CAP_FLOOR = 0.35


def qoe_multiplier(rtt_ms: float, loss_fraction: float) -> float:
    """Demand suppression factor in (0, 1] for a connection's quality.

    Calibrated to the paper's thresholds: demand is visibly lower above
    ~500 ms RTT and above ~0.1% loss, dramatically lower above 1% loss.
    """
    if rtt_ms <= 0:
        raise DatasetError(f"RTT must be positive, got {rtt_ms}")
    if not 0.0 <= loss_fraction < 1.0:
        raise DatasetError(f"loss must be in [0, 1), got {loss_fraction}")
    lat_term = 1.0 / (1.0 + max(0.0, rtt_ms - _RTT_KNEE_MS) / _RTT_SCALE_MS)
    loss_excess = max(0.0, loss_fraction - _LOSS_KNEE) / 0.02
    loss_term = 1.0 / (1.0 + 1.2 * loss_excess**0.65)
    return lat_term * loss_term


def cap_awareness_multiplier(
    offered_peak_mbps: float, data_cap_gb: float | None
) -> float:
    """Self-throttling under a monthly traffic cap, in (0, 1].

    Chetty et al. (SIGCHI'12, the paper's citation [7]) found that capped
    households ration their usage. We model a household that projects its
    monthly volume from its latent demand and scales back proportionally
    when the projection exceeds the cap, never below :data:`_CAP_FLOOR`
    (some use is not discretionary).
    """
    if offered_peak_mbps <= 0:
        raise DatasetError("offered peak must be positive")
    if data_cap_gb is None:
        return 1.0
    if data_cap_gb <= 0:
        raise DatasetError(f"data cap must be positive, got {data_cap_gb}")
    projected_gb = (
        offered_peak_mbps * _MEAN_TO_PEAK * _GB_PER_MONTH_PER_MBPS
    )
    if projected_gb <= data_cap_gb:
        return 1.0
    return max(_CAP_FLOOR, data_cap_gb / projected_gb)


@dataclass(frozen=True)
class DemandProcess:
    """Everything the traffic generator needs for one household's link.

    ``offered_peak_mbps`` is the quality-suppressed latent need;
    ``ceiling_mbps`` the TCP-and-line throughput cap. The realized rate
    series is produced by :func:`repro.traffic.generator.generate_usage_series`.
    """

    offered_peak_mbps: float
    ceiling_mbps: float
    activity_level: float
    burstiness_sigma: float
    rate_median_share: float
    bt_user: bool
    #: Uplink-to-downlink ratio of the household's foreground traffic.
    upload_share: float = 0.06
    #: What the uplink can carry (line rate or TCP ceiling).
    up_ceiling_mbps: float = 1.0

    def __post_init__(self) -> None:
        if self.offered_peak_mbps <= 0 or self.ceiling_mbps <= 0:
            raise DatasetError("demand process rates must be positive")
        if not 0.0 < self.upload_share <= 1.0:
            raise DatasetError("upload share must be a fraction in (0, 1]")
        if self.up_ceiling_mbps <= 0:
            raise DatasetError("uplink ceiling must be positive")

    @classmethod
    def for_user(
        cls,
        user: LatentUser,
        path: NetworkPath,
        data_cap_gb: float | None = None,
    ) -> "DemandProcess":
        """Derive the demand process of a household on a concrete path.

        ``data_cap_gb`` is the plan's monthly traffic limit, if any;
        capped households ration their offered load.
        """
        q = qoe_multiplier(path.web_rtt_ms, path.loss_fraction)
        q *= cap_awareness_multiplier(
            max(0.005, user.need_mbps), data_cap_gb
        )
        ceiling = max(0.01, effective_capacity_mbps(path))
        up_ceiling = max(
            0.005,
            min(path.link.upload_mbps, ceiling),
        )
        return cls(
            offered_peak_mbps=max(0.005, user.need_mbps * q),
            ceiling_mbps=ceiling,
            activity_level=min(
                1.0, user.profile.activity_level * user.activity_scale
            ),
            burstiness_sigma=user.profile.burstiness_sigma,
            rate_median_share=user.profile.rate_median_share,
            bt_user=user.bt_user,
            upload_share=user.profile.upload_share,
            up_ceiling_mbps=up_ceiling,
        )
