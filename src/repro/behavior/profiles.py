"""Application profiles: what kind of traffic a household generates.

The paper treats users as a homogeneous consumer group and flags the
finer categorization (gamers, shoppers, movie-watchers) as future work;
we model a small profile mix anyway because it provides the within-class
demand variance the matching experiments need, and it makes the
"future work" analysis possible (see ``benchmarks/test_ablations.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DatasetError

__all__ = ["APPLICATION_PROFILES", "ApplicationProfile", "sample_profile"]


@dataclass(frozen=True)
class ApplicationProfile:
    """Traffic-shape parameters for one household archetype.

    ``activity_level`` scales the fraction of time the household is
    actively using the network; ``burstiness_sigma`` is the log-space
    spread of per-session rates; ``rate_median_share`` is the median
    session rate as a share of the household's latent peak need;
    ``bt_propensity`` the probability such a household runs BitTorrent;
    ``upload_share`` the typical uplink-to-downlink volume ratio of the
    household's non-BitTorrent traffic (requests, ACKs, uploads).
    """

    name: str
    activity_level: float
    burstiness_sigma: float
    rate_median_share: float
    bt_propensity: float
    upload_share: float = 0.06

    def __post_init__(self) -> None:
        if not 0.0 < self.activity_level <= 1.0:
            raise DatasetError(f"{self.name}: bad activity level")
        if self.burstiness_sigma <= 0:
            raise DatasetError(f"{self.name}: bad burstiness")
        if not 0.0 < self.rate_median_share <= 1.0:
            raise DatasetError(f"{self.name}: bad rate share")
        if not 0.0 <= self.bt_propensity <= 1.0:
            raise DatasetError(f"{self.name}: bad BT propensity")
        if not 0.0 < self.upload_share <= 1.0:
            raise DatasetError(f"{self.name}: bad upload share")


#: The household archetype mix: (profile, population share).
APPLICATION_PROFILES: tuple[tuple[ApplicationProfile, float], ...] = (
    (
        ApplicationProfile(
            name="browser",
            activity_level=0.45,
            burstiness_sigma=1.1,
            rate_median_share=0.30,
            bt_propensity=0.55,
            upload_share=0.06,
        ),
        0.40,
    ),
    (
        ApplicationProfile(
            name="streamer",
            activity_level=0.65,
            burstiness_sigma=0.8,
            rate_median_share=0.50,
            bt_propensity=0.60,
            upload_share=0.03,
        ),
        0.30,
    ),
    (
        ApplicationProfile(
            name="gamer",
            activity_level=0.60,
            burstiness_sigma=1.0,
            rate_median_share=0.25,
            bt_propensity=0.70,
            upload_share=0.12,
        ),
        0.15,
    ),
    (
        ApplicationProfile(
            name="downloader",
            activity_level=0.55,
            burstiness_sigma=1.5,
            rate_median_share=0.42,
            bt_propensity=0.92,
            upload_share=0.10,
        ),
        0.15,
    ),
)


def sample_profile(rng: np.random.Generator) -> ApplicationProfile:
    """Draw a household archetype according to the population mix."""
    shares = np.array([share for _, share in APPLICATION_PROFILES])
    index = int(rng.choice(len(APPLICATION_PROFILES), p=shares / shares.sum()))
    return APPLICATION_PROFILES[index][0]
