"""Utility-based plan choice: the "want" and "can afford" mechanisms.

A household values satisfied demand with diminishing returns and pays the
plan price. Among affordable plans it picks the utility maximizer (with a
log-space taste shock); in markets with a heavily promoted default tier,
a fraction of subscribers simply take that tier. These two ingredients
produce the selection structure the paper measures:

* where upgrades are expensive, only high-need households sit on fast
  plans, so demand-per-capacity is high;
* where upgrades are nearly free (Japan, South Korea), tier choice
  decouples from need and fast links run nearly idle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import DatasetError
from ..market.market import CountryMarket
from ..market.plans import BroadbandPlan
from .population import LatentUser

__all__ = ["ChoiceModel", "PlanChoice"]


@dataclass(frozen=True)
class PlanChoice:
    """The outcome of one household's plan selection."""

    plan: BroadbandPlan
    utility: float
    took_promoted_tier: bool


class ChoiceModel:
    """Discrete plan choice under budget with diminishing-returns value.

    The value of a plan of capacity ``c`` to a household of need ``n`` is

        value(c) = value_scale * n * (1 - exp(-c / (headroom * n)))

    which saturates once the pipe comfortably covers the need. The
    household maximizes ``value - price`` over plans priced within its
    budget, with a multiplicative taste shock on value.
    """

    def __init__(
        self,
        value_scale: float = 110.0,
        headroom: float = 2.0,
        plan_noise_usd: float = 2.5,
    ) -> None:
        if value_scale <= 0 or headroom <= 0:
            raise DatasetError("value scale and headroom must be positive")
        if plan_noise_usd < 0:
            raise DatasetError("plan noise must be non-negative")
        self.value_scale = value_scale
        self.headroom = headroom
        self.plan_noise_usd = plan_noise_usd

    def plan_value(self, need_mbps: float, capacity_mbps: float) -> float:
        """Monthly USD-PPP value of a plan to a household of given need."""
        if need_mbps <= 0 or capacity_mbps <= 0:
            raise DatasetError("need and capacity must be positive")
        scale = self.headroom * need_mbps
        return (
            self.value_scale
            * need_mbps
            * (1.0 - math.exp(-capacity_mbps / scale))
        )

    def choose(
        self,
        user: LatentUser,
        market: CountryMarket,
        rng: np.random.Generator,
        promoted_tier_mbps: float | None = None,
        promoted_adoption: float = 0.0,
    ) -> PlanChoice | None:
        """Pick a plan, or ``None`` if nothing fits the household budget.

        Dedicated (business-grade) plans are skipped: residential panels
        like Dasu and SamKnows do not cover them.
        """
        candidates = [p for p in market.plans if not p.dedicated]
        affordable = [
            p
            for p in candidates
            if p.monthly_price_usd_ppp <= user.budget_usd_ppp
        ]
        if not affordable:
            return None

        if promoted_tier_mbps is not None and promoted_adoption > 0.0:
            promoted = [
                p
                for p in affordable
                if math.isclose(
                    p.download_mbps, promoted_tier_mbps, rel_tol=0.26
                )
            ]
            if promoted and rng.random() < promoted_adoption:
                plan = min(promoted, key=lambda p: p.monthly_price_usd_ppp)
                value = self.plan_value(user.need_mbps, plan.download_mbps)
                return PlanChoice(
                    plan=plan,
                    utility=value - plan.monthly_price_usd_ppp,
                    took_promoted_tier=True,
                )

        # One multiplicative taste shock per decision (how much this
        # household values connectivity overall), plus a small additive
        # per-plan noise in dollars (imperfect comparison shopping). The
        # separation matters: among plans that already saturate the
        # household's need, the price difference — not a resampled taste —
        # must decide, or cheap-upgrade markets degenerate to uniform
        # tier choice.
        taste = float(np.exp(rng.normal(0.0, user.taste_sigma)))
        best: BroadbandPlan | None = None
        best_utility = -math.inf
        for plan in affordable:
            value = taste * self.plan_value(user.need_mbps, plan.download_mbps)
            wobble = float(rng.normal(0.0, self.plan_noise_usd))
            utility = value - plan.monthly_price_usd_ppp + wobble
            if utility > best_utility:
                best = plan
                best_utility = utility
        assert best is not None
        return PlanChoice(plan=best, utility=best_utility, took_promoted_tier=False)
