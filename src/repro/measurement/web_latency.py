"""Latency probes toward popular web sites.

The paper validates its NDT latency measurements (Sec. 7.1, Fig. 11) by
probing five globally popular sites — Google, Facebook, YouTube, Yahoo
and Windows Live — and taking each user's median. Sites served from
local CDN replicas answer near the NDT latency; in countries with poor
CDN coverage the gap to real content is larger.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import MeasurementError
from ..network.path import NetworkPath

__all__ = ["POPULAR_SITES", "WebLatencyProber"]

#: The probe target set of the paper's 2014 validation experiment.
POPULAR_SITES: tuple[str, ...] = (
    "google.com",
    "facebook.com",
    "youtube.com",
    "yahoo.com",
    "live.com",
)

#: Per-site serving-distance factor relative to the user's typical
#: web path (some sites are replicated more aggressively than others).
_SITE_FACTORS: dict[str, float] = {
    "google.com": 0.85,
    "facebook.com": 0.95,
    "youtube.com": 0.9,
    "yahoo.com": 1.15,
    "live.com": 1.3,
}


class WebLatencyProber:
    """Measures a user's median latency to the popular-site set."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def probe_site(self, path: NetworkPath, site: str) -> float:
        """One site's measured RTT in milliseconds."""
        if site not in _SITE_FACTORS:
            raise MeasurementError(f"unknown probe target {site!r}")
        base = path.link.access_rtt_ms + (
            path.distance_rtt_ms + path.cdn_gap_ms
        ) * _SITE_FACTORS[site]
        return float(base * np.exp(self._rng.normal(0.0, 0.1)))

    def median_latency_ms(self, path: NetworkPath) -> float:
        """The user's median RTT over the five-site probe set."""
        rtts = [self.probe_site(path, site) for site in POPULAR_SITES]
        return float(np.median(rtts))
