"""The Dasu end-host measurement client.

Dasu records network usage from byte counters — ``netstat`` on hosts
directly connected to their modem, UPnP WAN counters behind gateways —
at approximately 30-second intervals, *while the client is running*.
Because people run the client when they use the computer, collection is
biased toward peak hours; this is the sampling bias that makes Dasu's
average demand slightly higher than the FCC gateways' while peak demand
matches (Fig. 3 of the paper).

The client also knows when its own BitTorrent transfers are active, which
is what lets the analyses exclude BitTorrent-active intervals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..core.metrics import DemandSummary, demand_summary
from ..exceptions import MeasurementError
from ..traffic.diurnal import diurnal_weight
from ..traffic.generator import UsageSeries
from ..traffic.sessions import draw_on_intervals, intervals_to_mask
from ..units import UINT32_WRAP, bytes_to_megabits, mbps_to_bytes_per_sec
from .netstat import REBOOT_PROBABILITY_PER_READ, deltas_from_netstat
from .upnp import RESET_PROBABILITY_PER_READ, deltas_from_readings

__all__ = ["DasuClient", "DasuVantage", "SampledUsage"]

#: Mean duration the client stays online once started, in seconds.
CLIENT_ON_S = 2.5 * 3600.0
#: Mean gap between client sessions, in seconds.
CLIENT_OFF_S = 3.0 * 3600.0
#: Reads separated by more than this many sample slots are discarded
#: (the client was offline or the scheduler slipped badly).
MAX_GAP_SLOTS = 3


class DasuVantage(enum.Enum):
    """How the host sees the traffic it accounts."""

    DIRECT = "direct"  # host on the modem; netstat counters
    UPNP = "upnp"  # behind a UPnP gateway; WAN counters


@dataclass(frozen=True)
class SampledUsage:
    """The usage samples a client actually collected.

    ``rates_mbps`` are per-collected-interval download rates;
    ``bt_active`` flags samples overlapping the client's own BitTorrent
    activity; ``hours`` is the local hour of each sample.
    """

    rates_mbps: np.ndarray
    bt_active: np.ndarray
    hours: np.ndarray
    up_rates_mbps: np.ndarray | None = None

    def __post_init__(self) -> None:
        if not (
            self.rates_mbps.shape == self.bt_active.shape == self.hours.shape
        ):
            raise MeasurementError("sample arrays must align")
        if (
            self.up_rates_mbps is not None
            and self.up_rates_mbps.shape != self.rates_mbps.shape
        ):
            raise MeasurementError("uplink samples must align")

    @property
    def n_samples(self) -> int:
        return int(self.rates_mbps.size)

    def summary(self, include_bt: bool = True) -> DemandSummary:
        """Mean/peak demand over the collected samples."""
        if include_bt:
            return demand_summary(self.rates_mbps)
        return demand_summary(self.rates_mbps[~self.bt_active])

    @property
    def has_no_bt_samples(self) -> bool:
        return bool(np.any(~self.bt_active))


class DasuClient:
    """Collects byte-counter samples from a household's usage series."""

    def __init__(
        self,
        vantage: DasuVantage,
        rng: np.random.Generator,
        read_miss_rate: float = 0.02,
    ) -> None:
        if not 0.0 <= read_miss_rate < 1.0:
            raise MeasurementError("read miss rate must be a fraction")
        self.vantage = vantage
        self._rng = rng
        self._read_miss_rate = read_miss_rate

    def _online_mask(self, series: UsageSeries) -> np.ndarray:
        """When the client was running: session process, peak-biased."""
        duration_s = series.n_samples * series.interval_s
        intervals = draw_on_intervals(
            duration_s, CLIENT_ON_S, CLIENT_OFF_S, self._rng
        )
        if intervals.size:
            start_hours = (
                series.start_hour + intervals[:, 0] / 3600.0
            ) % 24.0
            # People run the client when they are at the computer, so
            # overnight client sessions are rare: collection is strongly
            # evening-weighted (the source of the Fig. 3 mean offset).
            keep = self._rng.random(len(intervals)) < np.minimum(
                1.0, 0.08 + 1.15 * diurnal_weight(start_hours)
            )
            intervals = intervals[keep]
        return intervals_to_mask(
            intervals, series.n_samples, series.interval_s
        )

    def _counter_readings(self, byte_deltas: np.ndarray) -> np.ndarray:
        """Simulated cumulative counter readings after each interval."""
        cumulative = np.cumsum(byte_deltas)
        n = cumulative.size
        if self.vantage is DasuVantage.DIRECT:
            readings = cumulative.copy()
            reboot = self._rng.random(n) < REBOOT_PROBABILITY_PER_READ
            for idx in np.nonzero(reboot)[0]:
                readings[idx:] -= readings[idx]
            return readings
        start = int(self._rng.integers(0, UINT32_WRAP))
        readings = start + cumulative
        reset = self._rng.random(n) < RESET_PROBABILITY_PER_READ
        for idx in np.nonzero(reset)[0]:
            readings[idx:] -= readings[idx]
        return readings % UINT32_WRAP

    def collect(self, series: UsageSeries) -> SampledUsage:
        """Sample the household's series the way the real client would.

        The ground-truth rate series is converted to cumulative byte
        counters, read on the client's 30-second schedule (with missed
        reads) only while the client is online, pushed through the
        counter-artifact correction, and converted back to rates.
        """
        interval_s = series.interval_s
        byte_deltas = np.rint(
            mbps_to_bytes_per_sec(series.rates_mbps) * interval_s
        ).astype(np.int64)

        online = self._online_mask(series)
        scheduled = self._rng.random(series.n_samples) >= self._read_miss_rate
        read_slots = np.nonzero(online & scheduled)[0]
        if read_slots.size < 2:
            return SampledUsage(
                rates_mbps=np.empty(0),
                bt_active=np.empty(0, dtype=bool),
                hours=np.empty(0),
                up_rates_mbps=np.empty(0),
            )

        decode = (
            deltas_from_readings
            if self.vantage is DasuVantage.UPNP
            else deltas_from_netstat
        )
        deltas = decode(self._counter_readings(byte_deltas)[read_slots])

        # The client drops intervals it can see are unusable at read
        # time: a reset it detected itself (the decoder's -1) or a read
        # gap too wide to attribute. Resets the client *misses* — the
        # fault injector's sentinels — are a different population, owned
        # downstream by repro.datasets.sanitize.strip_sentinels.
        gaps = np.diff(read_slots)
        valid = (deltas >= 0) & (gaps <= MAX_GAP_SLOTS)

        up_rates = None
        if series.up_rates_mbps is not None:
            up_byte_deltas = np.rint(
                mbps_to_bytes_per_sec(series.up_rates_mbps) * interval_s
            ).astype(np.int64)
            up_deltas = decode(
                self._counter_readings(up_byte_deltas)[read_slots]
            )
            valid = valid & (up_deltas >= 0)
            up_rates = bytes_to_megabits(up_deltas.astype(float)) / (
                gaps.astype(float) * interval_s
            )

        end_slots = read_slots[1:][valid]
        rates = bytes_to_megabits(deltas[valid].astype(float)) / (
            gaps[valid].astype(float) * interval_s
        )
        if up_rates is not None:
            up_rates = up_rates[valid]

        hours = series.hours()
        bt = series.bt_active
        return SampledUsage(
            rates_mbps=rates,
            bt_active=bt[end_slots],
            hours=hours[end_slots],
            up_rates_mbps=up_rates,
        )
