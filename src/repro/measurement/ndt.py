"""NDT-style performance tests.

M-Lab's Network Diagnostic Tool reports the upload and download capacity
of a connection, its end-to-end latency and its packet-loss rate
(Sec. 2.2). The simulated test transfers for a fixed duration against the
nearest measurement server and reports:

* **download/upload** — the line rate net of test inefficiency, bounded
  by the TCP ceiling the path's true RTT and the loss *observed during
  the test* allow;
* **rtt** — true path RTT plus jitter and self-queueing when the
  household is busy;
* **loss** — the empirical loss fraction over the test's packets (so
  clean lines often report exactly zero on a single test).

Analyses estimate a user's capacity as the *maximum* download over their
tests, matching the paper's use of maximum measured capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import MeasurementError
from ..network.path import NetworkPath
from ..network.tcp import mathis_throughput_mbps
from ..units import mbps_to_bytes_per_sec

__all__ = ["NdtClient", "NdtResult"]

#: Duration of one NDT transfer, in seconds.
TEST_DURATION_S = 10.0
#: Approximate packet size of the test stream, in bytes.
PACKET_BYTES = 1500
#: Parallel streams of the capacity test. NDT deployments of the era used
#: large windows and multi-stream configurations (and satellite services
#: deploy performance-enhancing proxies), so the measured capacity is far
#: less RTT-limited than a single default-window TCP flow would be.
TEST_FLOWS = 12


@dataclass(frozen=True)
class NdtResult:
    """One NDT test outcome."""

    day: float
    download_mbps: float
    upload_mbps: float
    rtt_ms: float
    loss_fraction: float

    def __post_init__(self) -> None:
        if self.download_mbps <= 0 or self.upload_mbps <= 0:
            raise MeasurementError("measured capacities must be positive")
        if self.rtt_ms <= 0:
            raise MeasurementError("measured RTT must be positive")
        if not 0.0 <= self.loss_fraction <= 1.0:
            raise MeasurementError("measured loss must be in [0, 1]")


class NdtClient:
    """Runs simulated NDT tests over a household's path."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def _observed_loss(self, true_loss: float, transferred_mbps: float) -> float:
        """Empirical loss over the test's packet count."""
        n_packets = max(
            50,
            int(
                mbps_to_bytes_per_sec(transferred_mbps)
                * TEST_DURATION_S
                / PACKET_BYTES
            ),
        )
        losses = self._rng.binomial(n_packets, true_loss)
        return losses / n_packets

    def _throughput(
        self,
        line_rate_mbps: float,
        rtt_ms: float,
        true_loss: float,
        cross_traffic_mbps: float,
    ) -> tuple[float, float]:
        """(measured throughput, observed loss) for one direction."""
        available = max(0.02, line_rate_mbps - cross_traffic_mbps)
        # First pass: estimate transfer rate to size the packet sample.
        ceiling = mathis_throughput_mbps(
            rtt_ms, max(true_loss, 1e-7), n_flows=TEST_FLOWS
        )
        efficiency = float(self._rng.uniform(0.9, 1.0))
        rough = min(available * efficiency, ceiling)
        observed_loss = self._observed_loss(true_loss, max(rough, 0.1))
        if observed_loss > 0.0:
            ceiling = mathis_throughput_mbps(
                rtt_ms, observed_loss, n_flows=TEST_FLOWS
            )
        measured = max(0.01, min(available * efficiency, ceiling))
        return measured, observed_loss

    def run_test(
        self,
        path: NetworkPath,
        day: float,
        cross_traffic_mbps: float = 0.0,
    ) -> NdtResult:
        """Run one test at ``day`` (fractional days into the window).

        ``cross_traffic_mbps`` is concurrent household traffic, which both
        steals capacity and queues the test's packets (bufferbloat-style
        latency inflation).
        """
        if cross_traffic_mbps < 0:
            raise MeasurementError("cross traffic cannot be negative")
        true_rtt = path.ndt_rtt_ms
        jitter = float(np.exp(self._rng.normal(0.0, 0.08)))
        queueing = 0.0
        if cross_traffic_mbps > 0:
            occupancy = min(
                0.95, cross_traffic_mbps / max(path.link.download_mbps, 0.01)
            )
            queueing = 120.0 * occupancy**2
        rtt = true_rtt * jitter + queueing

        # Satellite services run performance-enhancing proxies that split
        # the TCP connection, so the throughput test does not pay the full
        # space-segment RTT (the reported latency still does).
        from ..network.technology import TECH_PROFILES

        pep = TECH_PROFILES[path.link.technology].pep_rtt_ms
        tcp_rtt = rtt if pep is None else min(rtt, pep)

        down, down_loss = self._throughput(
            path.link.download_mbps,
            tcp_rtt,
            path.loss_fraction,
            cross_traffic_mbps,
        )
        up, _ = self._throughput(
            path.link.upload_mbps,
            tcp_rtt,
            path.loss_fraction,
            cross_traffic_mbps * 0.1,
        )
        return NdtResult(
            day=day,
            download_mbps=down,
            upload_mbps=up,
            rtt_ms=rtt,
            loss_fraction=down_loss,
        )

    def run_tests(
        self,
        path: NetworkPath,
        n_tests: int,
        window_days: tuple[float, float],
        busy_probability: float = 0.2,
        typical_cross_traffic_mbps: float = 0.0,
    ) -> list[NdtResult]:
        """Run a campaign of tests spread uniformly over a window."""
        if n_tests < 1:
            raise MeasurementError("a campaign needs at least one test")
        lo, hi = window_days
        if hi <= lo:
            raise MeasurementError("empty test window")
        days = np.sort(self._rng.uniform(lo, hi, n_tests))
        results = []
        for day in days:
            cross = 0.0
            if (
                typical_cross_traffic_mbps > 0
                and self._rng.random() < busy_probability
            ):
                cross = typical_cross_traffic_mbps * float(
                    self._rng.uniform(0.3, 1.5)
                )
            results.append(self.run_test(path, float(day), cross))
        return results
