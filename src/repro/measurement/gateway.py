"""FCC / SamKnows residential gateway measurements.

The "Measuring Broadband America" gateways record the number of bytes
sent and received over the WAN link every hour, around the clock — no
peak-hour bias, no BitTorrent visibility (the gateway sees bytes, not
applications). They also run scheduled performance tests; the builder
reuses :class:`~repro.measurement.ndt.NdtClient` for those.
"""

from __future__ import annotations

import numpy as np

from ..core.metrics import DemandSummary, demand_summary
from ..exceptions import MeasurementError
from ..traffic.generator import UsageSeries
from ..units import SECONDS_PER_HOUR

__all__ = ["FccGateway"]


class FccGateway:
    """Aggregates a household series into hourly WAN byte counts."""

    def __init__(self, rng: np.random.Generator, loss_rate: float = 0.01) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise MeasurementError("record loss rate must be a fraction")
        self._rng = rng
        self._record_loss_rate = loss_rate

    def hourly_rates_with_hours(
        self, series: UsageSeries
    ) -> tuple[np.ndarray, np.ndarray]:
        """(hourly mean rates, local hour of each record).

        A small fraction of hourly records is lost in upload/processing
        (as in the public FCC data releases).
        """
        samples_per_hour = int(round(SECONDS_PER_HOUR / series.interval_s))
        if samples_per_hour < 1:
            raise MeasurementError(
                "series must be sampled at sub-hourly resolution"
            )
        n_hours = series.n_samples // samples_per_hour
        if n_hours < 1:
            raise MeasurementError("series shorter than one hour")
        trimmed = series.rates_mbps[: n_hours * samples_per_hour]
        hourly = trimmed.reshape(n_hours, samples_per_hour).mean(axis=1)
        hours = (series.start_hour + 0.5 + np.arange(n_hours)) % 24.0
        kept = self._rng.random(n_hours) >= self._record_loss_rate
        if not np.any(kept):
            kept[0] = True
        self._last_kept = kept
        return hourly[kept], hours[kept]

    def hourly_upload_rates(self, series: UsageSeries) -> np.ndarray | None:
        """Hourly uplink means, aligned with the most recent
        :meth:`hourly_rates_with_hours` call's record-loss mask."""
        if series.up_rates_mbps is None:
            return None
        samples_per_hour = int(round(SECONDS_PER_HOUR / series.interval_s))
        n_hours = series.n_samples // samples_per_hour
        trimmed = series.up_rates_mbps[: n_hours * samples_per_hour]
        hourly = trimmed.reshape(n_hours, samples_per_hour).mean(axis=1)
        kept = getattr(self, "_last_kept", None)
        if kept is None or kept.size != n_hours:
            return hourly
        return hourly[kept]

    def collect(
        self, series: UsageSeries
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """(hourly rates, hours, aligned uplink rates or ``None``).

        One call per observed period: downlink records first, then the
        uplink aligned to the same record-loss mask — the exact draw
        order the world builder has always used, so collection through
        this wrapper is byte-identical to the two separate calls.
        """
        hourly, hours = self.hourly_rates_with_hours(series)
        return hourly, hours, self.hourly_upload_rates(series)

    def hourly_rates(self, series: UsageSeries) -> np.ndarray:
        """Average WAN download rate per hour, in Mbps."""
        rates, _ = self.hourly_rates_with_hours(series)
        return rates

    def summary(self, series: UsageSeries) -> DemandSummary:
        """Mean/peak demand as estimated from the hourly records."""
        return demand_summary(self.hourly_rates(series))
