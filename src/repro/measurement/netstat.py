"""Host byte counters, as read via ``netstat``.

Users directly connected to their modem are measured through the host's
own interface counters — 64-bit, monotone, no wrap in practice. The only
artifact worth modeling is that counters restart when the host reboots.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import MeasurementError

__all__ = [
    "REBOOT_PROBABILITY_PER_READ",
    "NetstatCounter",
    "deltas_from_netstat",
]

#: Chance per read that the host has rebooted and its interface
#: counters restarted from zero.
REBOOT_PROBABILITY_PER_READ = 0.0002


class NetstatCounter:
    """A 64-bit cumulative interface byte counter."""

    def __init__(
        self,
        rng: np.random.Generator,
        reboot_probability_per_read: float = REBOOT_PROBABILITY_PER_READ,
    ) -> None:
        if not 0.0 <= reboot_probability_per_read < 1.0:
            raise MeasurementError("reboot probability must be a fraction")
        self._rng = rng
        self._reboot_probability = reboot_probability_per_read
        self._value = 0

    def advance(self, n_bytes: int) -> None:
        if n_bytes < 0:
            raise MeasurementError("cannot advance a counter backwards")
        self._value += int(n_bytes)

    def read(self) -> int:
        if self._rng.random() < self._reboot_probability:
            self._value = 0
        return self._value


def deltas_from_netstat(readings: np.ndarray) -> np.ndarray:
    """Per-interval byte counts from 64-bit counter readings.

    Any decrease is a host reboot; the interval is reported as ``-1``.
    As with UPnP resets, dropping the sentinel is owned by the
    sanitization stage (:mod:`repro.datasets.sanitize`), not by
    measurement code.
    """
    raw = np.asarray(readings, dtype=np.int64)
    if raw.ndim != 1 or raw.size < 2:
        raise MeasurementError("need at least two readings to form deltas")
    if np.any(raw < 0):
        raise MeasurementError("counter readings cannot be negative")
    diffs = np.diff(raw)
    out = diffs.copy()
    out[diffs < 0] = -1
    return out
