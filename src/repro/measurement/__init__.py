"""Simulated measurement infrastructure.

Each module mirrors one collection channel of the paper's datasets:

* :mod:`repro.measurement.ndt` — M-Lab NDT-style performance tests
  (capacity, end-to-end latency, packet loss);
* :mod:`repro.measurement.upnp` — UPnP gateway byte counters, including
  the 32-bit wrap and reset artifacts the paper's citations warn about,
  and their correction;
* :mod:`repro.measurement.netstat` — host byte counters for users
  directly connected to their modem;
* :mod:`repro.measurement.dasu` — the Dasu end-host client: ~30 s counter
  sampling while the client is online (peak-hour biased), BitTorrent
  activity flags;
* :mod:`repro.measurement.gateway` — FCC/SamKnows residential gateways:
  hourly WAN byte counters, uniform around the clock;
* :mod:`repro.measurement.web_latency` — median latency probes to
  popular web sites (the Fig. 11 validation).
"""

from .dasu import DasuClient, DasuVantage, SampledUsage
from .gateway import FccGateway
from .ndt import NdtClient, NdtResult
from .netstat import NetstatCounter
from .upnp import UpnpCounter, deltas_from_readings
from .web_latency import WebLatencyProber

__all__ = [
    "DasuClient",
    "DasuVantage",
    "FccGateway",
    "NdtClient",
    "NdtResult",
    "NetstatCounter",
    "SampledUsage",
    "UpnpCounter",
    "WebLatencyProber",
    "deltas_from_readings",
]
