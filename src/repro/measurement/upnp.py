"""UPnP gateway byte counters and their pathologies.

Dasu reads WAN byte counters from UPnP-enabled home gateways. Real UPnP
counters are notorious (DiCioccio et al., PAM'12 — the paper's citation
[11]): they are 32-bit and wrap every 4 GiB, and they reset to zero when
the gateway reboots. This module simulates the raw counter and provides
the correction used when turning readings into traffic volumes.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import MeasurementError
from ..units import UINT32_WRAP

__all__ = ["RESET_PROBABILITY_PER_READ", "UpnpCounter", "deltas_from_readings"]

#: Chance per read that the gateway has rebooted and the counter
#: restarted from zero (matches DiCioccio et al.'s reported reset rates).
RESET_PROBABILITY_PER_READ = 0.0005


class UpnpCounter:
    """A 32-bit cumulative WAN byte counter with reboot resets."""

    def __init__(
        self,
        rng: np.random.Generator,
        reset_probability_per_read: float = RESET_PROBABILITY_PER_READ,
    ) -> None:
        if not 0.0 <= reset_probability_per_read < 1.0:
            raise MeasurementError("reset probability must be a fraction")
        self._rng = rng
        self._reset_probability = reset_probability_per_read
        # Gateways have usually been up a while: start mid-range.
        self._value = int(rng.integers(0, UINT32_WRAP))

    def advance(self, n_bytes: int) -> None:
        """Account ``n_bytes`` of WAN traffic."""
        if n_bytes < 0:
            raise MeasurementError("cannot advance a counter backwards")
        self._value = (self._value + int(n_bytes)) % UINT32_WRAP

    def read(self) -> int:
        """Read the counter; the gateway occasionally reboots to zero."""
        if self._rng.random() < self._reset_probability:
            self._value = 0
        return self._value


def deltas_from_readings(readings: np.ndarray) -> np.ndarray:
    """Reconstruct per-interval byte counts from raw counter readings.

    Handles the two artifacts:

    * **wrap** — the counter decreased by *less* than half the 32-bit
      range is impossible; a decrease of *more* than half the range is a
      wrap, corrected by adding 2^32;
    * **reset** — a decrease of less than half the range means the
      gateway rebooted; the interval's true volume is unknowable and is
      reported as ``-1``. Dropping sentinel intervals is owned by the
      sanitization stage (:mod:`repro.datasets.sanitize`), never by
      measurement code: a ``-1`` must be *visible* in collected output
      so the cleaning pass can account for it.

    Returns an integer array one shorter than ``readings``.
    """
    raw = np.asarray(readings, dtype=np.int64)
    if raw.ndim != 1 or raw.size < 2:
        raise MeasurementError("need at least two readings to form deltas")
    if np.any(raw < 0) or np.any(raw >= UINT32_WRAP):
        raise MeasurementError("readings must be 32-bit counter values")
    diffs = np.diff(raw)
    wrapped = diffs < -(UINT32_WRAP // 2)
    reset = (diffs < 0) & ~wrapped
    out = diffs.copy()
    out[wrapped] += UINT32_WRAP
    out[reset] = -1
    return out
