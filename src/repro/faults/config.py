"""Fault-injection configuration and severity profiles.

A :class:`FaultConfig` describes how dirty the simulated measurement
substrate should be. Every rate is an independent probability (or, for
the clock knobs, an amount in hours); all of them default to zero, so a
``FaultConfig()`` — and a :class:`~repro.datasets.world.WorldConfig`
without one — produces byte-identical output to a world built before
this subsystem existed.

The named severity profiles bundle the rates observed in real
deployments of the paper's data sources:

* ``light`` — a well-behaved panel: rare reboots, occasional missed
  samples, a few failed NDT runs;
* ``default`` — the pathologies the paper actually reports cleaning
  (UPnP counter wraps/resets per DiCioccio et al., Dasu host churn,
  FCC gateway reporting gaps);
* ``heavy`` — an adversarially dirty panel, for stress tests; analyses
  are *not* expected to reproduce clean-world findings here.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..exceptions import ReproError

__all__ = ["FAULT_PROFILES", "FaultConfig", "fault_profile"]


@dataclass(frozen=True)
class FaultConfig:
    """Rates of every modeled measurement pathology (all default off)."""

    #: Label of the severity profile this config was derived from.
    profile: str = "custom"

    # -- host churn / attrition ------------------------------------------
    #: Chance a recruited household never produces usable data at all
    #: (client uninstalled, gateway replaced) and silently vanishes.
    household_loss_rate: float = 0.0
    #: Chance a household's panel membership is cut short: its observed
    #: year range is truncated to a random prefix.
    attrition_rate: float = 0.0

    # -- sample-level pathologies (byte counters) ------------------------
    #: Per-sample chance a collected 30-second sample is lost.
    sample_drop_rate: float = 0.0
    #: Per-sample chance a sample is reported twice (scheduler double
    #: fire, upload retry).
    sample_duplicate_rate: float = 0.0
    #: Per-sample chance the counter reset between reads (gateway or
    #: host reboot); the interval's volume is unknowable and surfaces
    #: as a ``-1`` sentinel rate.
    counter_reset_rate: float = 0.0
    #: Per-sample chance of an *uncorrected* uint32 wrap — the client's
    #: own wrap correction missed it (e.g. a double wrap inside a read
    #: gap), so the sample's implied volume is 2^32 bytes too high.
    counter_wrap_rate: float = 0.0

    # -- NDT runs ---------------------------------------------------------
    #: Per-test chance an NDT run fails outright and reports nothing.
    ndt_failure_rate: float = 0.0
    #: Per-test chance a run is truncated mid-transfer, underestimating
    #: the connection's capacity.
    ndt_truncation_rate: float = 0.0

    # -- clocks -----------------------------------------------------------
    #: Maximum constant local-clock offset of a household, in hours
    #: (drawn uniformly in ``[-max, +max]`` once per household).
    clock_skew_max_hours: float = 0.0
    #: Standard deviation of per-sample timestamp jitter, in hours.
    clock_jitter_hours: float = 0.0

    # -- gateway reporting gaps ------------------------------------------
    #: Per-period chance an FCC gateway loses a contiguous block of
    #: hourly records (upload backlog, firmware update).
    gateway_gap_rate: float = 0.0
    #: Largest fraction of a period's records one gap may swallow.
    gateway_gap_max_fraction: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name == "profile":
                continue
            value = getattr(self, f.name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ReproError(f"fault rate {f.name} must be a number")
            if f.name in ("clock_skew_max_hours", "clock_jitter_hours"):
                if value < 0.0:
                    raise ReproError(f"{f.name} cannot be negative")
            elif not 0.0 <= value <= 1.0:
                raise ReproError(f"{f.name} must be a fraction, got {value}")

    @property
    def is_noop(self) -> bool:
        """True when every rate is zero — injection changes nothing."""
        return all(
            getattr(self, f.name) == 0.0
            for f in fields(self)
            if f.name != "profile"
        )


#: The named severity profiles, from least to most damaged.
FAULT_PROFILES: dict[str, FaultConfig] = {
    "light": FaultConfig(
        profile="light",
        household_loss_rate=0.01,
        attrition_rate=0.02,
        sample_drop_rate=0.01,
        sample_duplicate_rate=0.005,
        counter_reset_rate=0.001,
        counter_wrap_rate=0.002,
        ndt_failure_rate=0.02,
        ndt_truncation_rate=0.02,
        clock_skew_max_hours=0.5,
        clock_jitter_hours=0.002,
        gateway_gap_rate=0.05,
        gateway_gap_max_fraction=0.15,
    ),
    "default": FaultConfig(
        profile="default",
        household_loss_rate=0.03,
        attrition_rate=0.08,
        sample_drop_rate=0.05,
        sample_duplicate_rate=0.02,
        counter_reset_rate=0.004,
        counter_wrap_rate=0.008,
        ndt_failure_rate=0.08,
        ndt_truncation_rate=0.05,
        clock_skew_max_hours=1.5,
        clock_jitter_hours=0.005,
        gateway_gap_rate=0.15,
        gateway_gap_max_fraction=0.3,
    ),
    "heavy": FaultConfig(
        profile="heavy",
        household_loss_rate=0.10,
        attrition_rate=0.25,
        sample_drop_rate=0.25,
        sample_duplicate_rate=0.08,
        counter_reset_rate=0.02,
        counter_wrap_rate=0.04,
        ndt_failure_rate=0.30,
        ndt_truncation_rate=0.20,
        clock_skew_max_hours=4.0,
        clock_jitter_hours=0.02,
        gateway_gap_rate=0.5,
        gateway_gap_max_fraction=0.6,
    ),
}


def fault_profile(name: str) -> FaultConfig | None:
    """Resolve a severity profile name; ``"off"``/``"none"`` mean no
    injection (the default world)."""
    if name in ("off", "none"):
        return None
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        known = ", ".join(("off", *FAULT_PROFILES))
        raise ReproError(
            f"unknown fault profile {name!r} (expected one of: {known})"
        ) from None
