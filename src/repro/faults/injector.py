"""Seeded fault injection over measurement-client output.

A :class:`FaultInjector` perturbs what the simulated clients collected —
*after* the generative substrate and the clients' own artifact handling,
*before* summarization — with the pathologies a real panel exhibits.
Each household owns one injector fed by a dedicated
``SeedSequence([seed, FAULT_STREAM, source_stream, country, user])``
random stream, so injection never perturbs the clean generative draws
and is bit-identical for any worker count or chunk size.

Injected damage is what the ingest stage
(:mod:`repro.datasets.sanitize`) must detect and repair:

* **counter resets** surface as ``-1`` sentinel rates (the interval's
  true volume is unknowable — same convention as
  :func:`repro.measurement.upnp.deltas_from_readings`);
* **uncorrected uint32 wraps** surface as rates exactly one
  2^32-byte quantum too high for the sample's accounting interval;
* **duplicates** repeat a sample verbatim (same rate, same timestamp);
* **drops, churn, NDT failures and gateway gaps** remove data outright
  and are unrecoverable — sanitization can only enforce minimum
  observation floors afterwards.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..measurement.ndt import NdtResult
from ..obs import ledger as obs
from ..units import UINT32_WRAP, bytes_to_megabits
from .config import FaultConfig

__all__ = ["FaultInjector", "wrap_quantum_mbps"]

#: Sentinel rate marking a sample whose true volume is unknowable
#: (counter reset mid-interval). Owned by ``repro.datasets.sanitize``,
#: which is the only stage allowed to drop it.
RESET_SENTINEL_MBPS = -1.0

_SampleArrays = tuple[
    np.ndarray, np.ndarray, np.ndarray, "np.ndarray | None"
]


def wrap_quantum_mbps(interval_s: float) -> float:
    """The rate overshoot one missed uint32 wrap causes at an interval."""
    return bytes_to_megabits(float(UINT32_WRAP)) / interval_s


class FaultInjector:
    """Applies one household's share of configured pathologies."""

    def __init__(self, config: FaultConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng
        # The household's constant local-clock offset, drawn up front so
        # every later draw sits at a fixed stream position.
        self._clock_skew_hours = float(
            rng.uniform(-1.0, 1.0) * config.clock_skew_max_hours
        )

    # -- host churn ------------------------------------------------------

    def household_lost(self) -> bool:
        """Whether this household vanishes before producing any data."""
        lost = bool(self._rng.random() < self.config.household_loss_rate)
        if lost:
            obs.count("faults.households.lost")
        return lost

    def perturb_panel(self, entry_year: int, exit_year: int) -> tuple[int, int]:
        """Possibly cut a household's panel membership short."""
        if self._rng.random() < self.config.attrition_rate:
            span = exit_year - entry_year
            exit_year = entry_year + int(self._rng.integers(0, span + 1))
            obs.count("faults.panel.attrition")
        return entry_year, exit_year

    # -- sample-level pathologies ----------------------------------------

    def _skewed_hours(self, hours: np.ndarray) -> np.ndarray:
        jitter = self._rng.normal(0.0, 1.0, hours.size)
        return (
            hours
            + self._clock_skew_hours
            + jitter * self.config.clock_jitter_hours
        ) % 24.0

    def perturb_dasu_samples(
        self,
        rates: np.ndarray,
        bt_active: np.ndarray,
        hours: np.ndarray,
        up_rates: np.ndarray | None,
        *,
        interval_s: float,
    ) -> _SampleArrays:
        """Damage one Dasu period's collected byte-counter samples.

        Applied in fixed order — clock skew/jitter, uncorrected wraps,
        counter resets, duplicates, drops — so the household's fault
        stream is consumed identically however the build is sharded.
        """
        cfg = self.config
        n = int(rates.size)
        if n == 0:
            return rates, bt_active, hours, up_rates
        rates = np.array(rates, dtype=float, copy=True)
        hours = self._skewed_hours(np.asarray(hours, dtype=float))
        if up_rates is not None:
            up_rates = np.array(up_rates, dtype=float, copy=True)

        wrapped = self._rng.random(n) < cfg.counter_wrap_rate
        rates[wrapped] += wrap_quantum_mbps(interval_s)
        obs.count("faults.samples.wrapped", int(np.sum(wrapped)))

        reset = self._rng.random(n) < cfg.counter_reset_rate
        rates[reset] = RESET_SENTINEL_MBPS
        obs.count("faults.samples.reset", int(np.sum(reset)))
        if up_rates is not None:
            # The same reboot voids both directions' counters.
            up_rates[reset] = RESET_SENTINEL_MBPS

        return self._duplicate_and_drop(rates, bt_active, hours, up_rates)

    def perturb_gateway_samples(
        self,
        rates: np.ndarray,
        bt_active: np.ndarray,
        hours: np.ndarray,
        up_rates: np.ndarray | None,
    ) -> _SampleArrays:
        """Damage one FCC gateway period's hourly records.

        Gateways timestamp server-side (no clock skew) and aggregate
        64-bit counters (no wraps); their signature pathology is the
        *reporting gap* — a contiguous block of hourly records lost to
        an upload backlog — plus occasional duplicated uploads.
        """
        cfg = self.config
        n = int(rates.size)
        if n == 0:
            return rates, bt_active, hours, up_rates
        if self._rng.random() < cfg.gateway_gap_rate and n > 1:
            max_len = max(1, int(cfg.gateway_gap_max_fraction * n))
            length = int(self._rng.integers(1, max_len + 1))
            start = int(self._rng.integers(0, n))
            keep = np.ones(n, dtype=bool)
            keep[start : start + length] = False
            if not np.any(keep):
                keep[0] = True
            obs.count("faults.samples.gap_dropped", int(np.sum(~keep)))
            rates = rates[keep]
            bt_active = bt_active[keep]
            hours = hours[keep]
            if up_rates is not None:
                up_rates = up_rates[keep]
        return self._duplicate_and_drop(rates, bt_active, hours, up_rates)

    def _duplicate_and_drop(
        self,
        rates: np.ndarray,
        bt_active: np.ndarray,
        hours: np.ndarray,
        up_rates: np.ndarray | None,
    ) -> _SampleArrays:
        cfg = self.config
        n = int(rates.size)
        duplicated = self._rng.random(n) < cfg.sample_duplicate_rate
        obs.count("faults.samples.duplicated", int(np.sum(duplicated)))
        if np.any(duplicated):
            repeats = np.where(duplicated, 2, 1)
            rates = np.repeat(rates, repeats)
            bt_active = np.repeat(bt_active, repeats)
            hours = np.repeat(hours, repeats)
            if up_rates is not None:
                up_rates = np.repeat(up_rates, repeats)
            n = int(rates.size)
        dropped = self._rng.random(n) < cfg.sample_drop_rate
        obs.count("faults.samples.dropped", int(np.sum(dropped)))
        if np.any(dropped):
            keep = ~dropped
            rates = rates[keep]
            bt_active = bt_active[keep]
            hours = hours[keep]
            if up_rates is not None:
                up_rates = up_rates[keep]
        return rates, bt_active, hours, up_rates

    # -- NDT runs ---------------------------------------------------------

    def perturb_ndt(self, tests: list[NdtResult]) -> list[NdtResult]:
        """Fail or truncate test runs; failed runs report nothing."""
        cfg = self.config
        n = len(tests)
        if n == 0:
            return tests
        failed = self._rng.random(n) < cfg.ndt_failure_rate
        truncated = self._rng.random(n) < cfg.ndt_truncation_rate
        factors = self._rng.uniform(0.15, 0.6, n)
        obs.count("faults.ndt.failed", int(np.sum(failed)))
        obs.count("faults.ndt.truncated", int(np.sum(truncated & ~failed)))
        out: list[NdtResult] = []
        for i, test in enumerate(tests):
            if failed[i]:
                continue
            if truncated[i]:
                test = dataclasses.replace(
                    test,
                    download_mbps=test.download_mbps * float(factors[i]),
                    upload_mbps=test.upload_mbps * float(factors[i]),
                )
            out.append(test)
        return out
