"""Configurable, seeded fault injection for the measurement substrate.

See :mod:`repro.faults.config` for the knobs and severity profiles and
:mod:`repro.faults.injector` for the mechanics. The world builder wires
an injector per household when
:attr:`repro.datasets.world.WorldConfig.faults` is set; the companion
ingest stage lives in :mod:`repro.datasets.sanitize`.
"""

from .config import FAULT_PROFILES, FaultConfig, fault_profile
from .injector import RESET_SENTINEL_MBPS, FaultInjector, wrap_quantum_mbps

__all__ = [
    "FAULT_PROFILES",
    "FaultConfig",
    "FaultInjector",
    "RESET_SENTINEL_MBPS",
    "fault_profile",
    "wrap_quantum_mbps",
]
