"""Sec. 5 — the price of broadband access.

* :func:`table3` — matched experiment across price-of-access groups;
* :func:`table4` — the four-market case study;
* :func:`figure7` — per-country capacity and peak-utilization CDFs;
* :func:`figure8` — peak-utilization CDFs per (country, tier);
* :func:`figure9` — average peak demand per (country, tier).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Mapping, Sequence

import numpy as np

from ..core.binning import (
    CASE_STUDY_TIERS,
    PRICE_OF_ACCESS_BINS_USD,
    Bin,
    explicit_bins,
)
from ..core.stats import ecdf, percentile
from ..datasets.records import UserRecord
from ..exceptions import AnalysisError
from ..market.affordability import cost_of_access_as_income_share
from ..market.countries import CASE_STUDY_COUNTRIES
from ..market.survey import PlanSurvey
from .common import MatchedExperimentResult, demand_outcome, matched_experiment

__all__ = [
    "Figure7Result",
    "Figure8Result",
    "Figure9Result",
    "Table3Result",
    "Table4Result",
    "Table4Row",
    "figure7",
    "figure8",
    "figure9",
    "table3",
    "table4",
]

#: Minimum users for a (country, tier) group to be reported, per Sec. 5.
MIN_TIER_USERS = 30


# ---------------------------------------------------------------------------
# Table 3: price-of-access experiment.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table3Result:
    """The two price-group comparisons of Table 3."""

    low_vs_mid: MatchedExperimentResult
    low_vs_high: MatchedExperimentResult
    group_sizes: tuple[int, int, int]

    def rows(self) -> list[tuple[str, float, MatchedExperimentResult]]:
        return [
            ("($0, $25] vs ($25, $60]", 63.4, self.low_vs_mid),
            ("($0, $25] vs ($60, inf)", 72.2, self.low_vs_high),
        ]


#: Confounders for the price experiment: everything except price itself.
_TABLE3_CONFOUNDERS = ("capacity", "latency", "loss")


def table3(
    users: Sequence[UserRecord],
    metric: str = "peak",
    include_bt: bool = False,
    confounders: Sequence[str] = _TABLE3_CONFOUNDERS,
) -> Table3Result:
    """Do users in more expensive markets demand more at equal capacity?

    Users are grouped by their market's price of broadband access
    (< $25, $25-60, > $60 monthly, USD PPP); cheaper markets are the
    control. Outcome is peak demand without BitTorrent, per the paper.
    """
    bins = explicit_bins(PRICE_OF_ACCESS_BINS_USD)
    groups: list[list[UserRecord]] = [[], [], []]
    for user in users:
        if user.price_of_access_usd is None:
            continue
        index = bins.index_of(user.price_of_access_usd)
        if index is not None:
            groups[index].append(user)
    low, mid, high = groups
    if not low or (not mid and not high):
        raise AnalysisError("price groups are too empty for the experiment")
    outcome = demand_outcome(metric, include_bt)
    return Table3Result(
        low_vs_mid=matched_experiment(
            "($0, $25] vs ($25, $60]",
            low,
            mid,
            confounders,
            outcome,
            hypothesis="higher access price increases demand",
        ),
        low_vs_high=matched_experiment(
            "($0, $25] vs ($60, inf)",
            low,
            high,
            confounders,
            outcome,
            hypothesis="higher access price increases demand",
        ),
        group_sizes=(len(low), len(mid), len(high)),
    )


# ---------------------------------------------------------------------------
# Table 4: the four-market case study.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table4Row:
    """One country row of Table 4."""

    country: str
    n_users: int
    median_capacity_mbps: float
    nearest_tier_mbps: float
    price_usd_ppp: float
    gdp_per_capita_usd: float
    cost_share_of_monthly_income: float


@dataclass(frozen=True)
class Table4Result:
    rows: tuple[Table4Row, ...]

    def row_for(self, country: str) -> Table4Row:
        for row in self.rows:
            if row.country == country:
                return row
        raise AnalysisError(f"no Table 4 row for {country!r}")

    #: The paper's values for comparison: (n, median, tier, price, gdp, share).
    PAPER_VALUES: ClassVar[
        Mapping[str, tuple[int, float, float, float, float, float]]
    ] = {
        "Botswana": (67, 0.517, 0.512, 100.0, 14_993.0, 0.080),
        "Saudi Arabia": (120, 4.21, 4.0, 79.0, 29_114.0, 0.033),
        "US": (3759, 17.6, 18.0, 53.0, 49_797.0, 0.013),
        "Japan": (73, 29.0, 26.0, 37.0, 34_532.0, 0.013),
    }


def table4(
    users: Sequence[UserRecord],
    survey: PlanSurvey,
    countries: Sequence[str] = CASE_STUDY_COUNTRIES,
) -> Table4Result:
    """The "typical price of broadband" case study (Table 4).

    The typical service of a country is the plan nearest (log-scale) to
    the median measured capacity; its PPP price, as a share of monthly
    GDP per capita, is the affordability figure the paper highlights.
    """
    rows = []
    for country in countries:
        country_users = [u for u in users if u.country == country]
        if not country_users:
            raise AnalysisError(f"no users for case-study country {country!r}")
        market = survey.market(country)
        median_capacity = percentile(
            [u.capacity_down_mbps for u in country_users], 50.0
        )
        plan = market.nearest_plan(median_capacity)
        price = plan.monthly_price_usd_ppp
        rows.append(
            Table4Row(
                country=country,
                n_users=len(country_users),
                median_capacity_mbps=median_capacity,
                nearest_tier_mbps=plan.download_mbps,
                price_usd_ppp=price,
                gdp_per_capita_usd=market.economy.gdp_per_capita_ppp_usd,
                cost_share_of_monthly_income=cost_of_access_as_income_share(
                    price, market.economy
                ),
            )
        )
    return Table4Result(rows=tuple(rows))


# ---------------------------------------------------------------------------
# Figures 7-9: capacity, utilization and demand across the four markets.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CountryCdfs:
    country: str
    n_users: int
    capacity_cdf: tuple[np.ndarray, np.ndarray]
    peak_utilization_cdf: tuple[np.ndarray, np.ndarray]
    median_capacity_mbps: float
    mean_peak_utilization: float


@dataclass(frozen=True)
class Figure7Result:
    countries: tuple[CountryCdfs, ...]

    def country(self, name: str) -> CountryCdfs:
        for entry in self.countries:
            if entry.country == name:
                return entry
        raise AnalysisError(f"no Fig. 7 entry for {name!r}")

    def utilization_order_reverses_capacity_order(self) -> bool:
        """The paper's observation: countries ordered by capacity appear in
        exactly reverse order when ordered by peak utilization."""
        by_capacity = sorted(
            self.countries, key=lambda c: c.median_capacity_mbps
        )
        by_utilization = sorted(
            self.countries, key=lambda c: c.mean_peak_utilization, reverse=True
        )
        return [c.country for c in by_capacity] == [
            c.country for c in by_utilization
        ]


def figure7(
    users: Sequence[UserRecord],
    countries: Sequence[str] = CASE_STUDY_COUNTRIES,
) -> Figure7Result:
    """Per-country capacity and 95th-percentile utilization CDFs (Fig. 7)."""
    entries = []
    for country in countries:
        country_users = [u for u in users if u.country == country]
        if not country_users:
            raise AnalysisError(f"no users for country {country!r}")
        capacities = np.array([u.capacity_down_mbps for u in country_users])
        utilizations = np.array([u.peak_utilization for u in country_users])
        entries.append(
            CountryCdfs(
                country=country,
                n_users=len(country_users),
                capacity_cdf=ecdf(capacities),
                peak_utilization_cdf=ecdf(utilizations),
                median_capacity_mbps=float(np.median(capacities)),
                mean_peak_utilization=float(np.mean(utilizations)),
            )
        )
    return Figure7Result(countries=tuple(entries))


@dataclass(frozen=True)
class TierGroup:
    """One (country, capacity tier) cell of Figs. 8 and 9."""

    country: str
    tier: Bin
    n_users: int
    utilization_cdf: tuple[np.ndarray, np.ndarray]
    mean_peak_utilization: float
    median_peak_utilization: float
    mean_peak_demand_mbps: float


def _tier_groups(
    users: Sequence[UserRecord],
    countries: Sequence[str],
    min_users: int,
) -> list[TierGroup]:
    tiers = explicit_bins(CASE_STUDY_TIERS)
    groups = []
    for country in countries:
        country_users = [u for u in users if u.country == country]
        by_tier = tiers.group(
            (u.capacity_down_mbps, u) for u in country_users
        )
        for tier in tiers:
            members = by_tier.get(tier, [])
            if len(members) < min_users:
                continue
            utilizations = np.array([u.peak_utilization for u in members])
            peaks = np.array([u.peak_no_bt_mbps for u in members])
            groups.append(
                TierGroup(
                    country=country,
                    tier=tier,
                    n_users=len(members),
                    utilization_cdf=ecdf(utilizations),
                    mean_peak_utilization=float(np.mean(utilizations)),
                    median_peak_utilization=float(np.median(utilizations)),
                    mean_peak_demand_mbps=float(np.mean(peaks)),
                )
            )
    return groups


@dataclass(frozen=True)
class Figure8Result:
    groups: tuple[TierGroup, ...]

    def group_for(self, country: str, tier_low: float) -> TierGroup | None:
        for group in self.groups:
            if group.country == country and math.isclose(
                group.tier.low, tier_low, rel_tol=1e-9, abs_tol=1e-9
            ):
                return group
        return None


def figure8(
    users: Sequence[UserRecord],
    countries: Sequence[str] = CASE_STUDY_COUNTRIES,
    min_users: int = MIN_TIER_USERS,
) -> Figure8Result:
    """Peak-utilization CDFs per country and tier (Fig. 8)."""
    return Figure8Result(
        groups=tuple(_tier_groups(users, countries, min_users))
    )


@dataclass(frozen=True)
class Figure9Result:
    groups: tuple[TierGroup, ...]

    def demand_for(self, country: str, tier_low: float) -> float | None:
        for group in self.groups:
            if group.country == country and math.isclose(
                group.tier.low, tier_low, rel_tol=1e-9, abs_tol=1e-9
            ):
                return group.mean_peak_demand_mbps
        return None


def figure9(
    users: Sequence[UserRecord],
    countries: Sequence[str] = CASE_STUDY_COUNTRIES,
    min_users: int = MIN_TIER_USERS,
) -> Figure9Result:
    """Average peak demand per country and tier (Fig. 9)."""
    return Figure9Result(
        groups=tuple(_tier_groups(users, countries, min_users))
    )
