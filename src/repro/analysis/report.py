"""Plain-text rendering of analysis results.

The benchmark harness and the examples print tables in the paper's
format, with the paper's reported value next to the measured one so the
reproduction can be eyeballed line by line.
"""

from __future__ import annotations

from typing import Sequence

from ..core.experiments import ExperimentResult
from .common import BinnedCurve, MatchedExperimentResult

__all__ = [
    "format_curve",
    "format_experiment_row",
    "format_paper_vs_measured",
]


def format_experiment_row(
    label: str,
    paper_percent: float | None,
    result: ExperimentResult | MatchedExperimentResult,
) -> str:
    """One experiment as a table row: label, paper %, measured %, p, n."""
    if isinstance(result, MatchedExperimentResult):
        result = result.result
    star = "" if result.statistically_significant else "*"
    paper = "     -" if paper_percent is None else f"{paper_percent:5.1f}%"
    measured = (
        "   n/a"
        if result.n_pairs == 0
        else f"{100 * result.fraction_holds:5.1f}%{star}"
    )
    return (
        f"  {label:<38} paper {paper}   measured {measured:<8} "
        f"(n={result.n_pairs}, p={result.p_value:.3g})"
    )


def format_curve(title: str, curve: BinnedCurve) -> str:
    """A binned demand curve as an aligned text block."""
    lines = [f"{title} (r = {curve.correlation:.3f})"]
    for point in curve.points:
        lines.append(
            f"  {point.bin.label():<22} n={point.n_users:<5} "
            f"avg={point.average:8.4f} Mbps  "
            f"ci=[{point.ci.low:.4f}, {point.ci.high:.4f}]"
        )
    return "\n".join(lines)


def format_paper_vs_measured(
    title: str,
    rows: Sequence[tuple[str, float, float]],
    as_percent: bool = False,
) -> str:
    """Generic (statistic, paper, measured) table."""
    lines = [title]
    for label, paper, measured in rows:
        if as_percent:
            lines.append(
                f"  {label:<44} paper {100 * paper:6.1f}%   "
                f"measured {100 * measured:6.1f}%"
            )
        else:
            lines.append(
                f"  {label:<44} paper {paper:10.3f}   measured {measured:10.3f}"
            )
    return "\n".join(lines)
