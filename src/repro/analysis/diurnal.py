"""Diurnal usage profiles — an extension analysis.

Aggregates the per-period hourly usage profiles into population-level
day-shape curves: where the evening peak sits, how deep the overnight
trough is, and how the two collection channels differ in hour coverage
(the Dasu client's peak-hour bias vs. the FCC gateways' around-the-clock
records — the root cause of the Fig. 3 mean offset, seen directly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..datasets.records import UserRecord
from ..exceptions import AnalysisError

__all__ = ["DiurnalProfile", "population_diurnal_profile"]


@dataclass(frozen=True)
class DiurnalProfile:
    """Population-average usage per local hour of day."""

    mean_mbps_by_hour: tuple[float, ...]  # 24 values, NaN where uncovered
    coverage_by_hour: tuple[int, ...]  # contributing periods per hour
    n_periods: int

    def __post_init__(self) -> None:
        if len(self.mean_mbps_by_hour) != 24 or len(self.coverage_by_hour) != 24:
            raise AnalysisError("diurnal profiles are 24-hour vectors")

    @property
    def peak_hour(self) -> int:
        values = np.asarray(self.mean_mbps_by_hour)
        if np.all(np.isnan(values)):
            raise AnalysisError("profile has no covered hours")
        return int(np.nanargmax(values))

    @property
    def trough_hour(self) -> int:
        values = np.asarray(self.mean_mbps_by_hour)
        if np.all(np.isnan(values)):
            raise AnalysisError("profile has no covered hours")
        return int(np.nanargmin(values))

    @property
    def peak_to_trough_ratio(self) -> float:
        values = np.asarray(self.mean_mbps_by_hour)
        trough = float(np.nanmin(values))
        if trough <= 0:
            return float("inf")
        return float(np.nanmax(values)) / trough

    def coverage_bias(self) -> float:
        """Evening-to-night coverage ratio — ~1 for an always-on
        collector, well above 1 for a peak-hour-biased one."""
        coverage = np.asarray(self.coverage_by_hour, dtype=float)
        evening = coverage[18:23].mean()
        night = coverage[1:6].mean()
        if night == 0:
            return float("inf")
        return float(evening / night)


def population_diurnal_profile(
    users: Sequence[UserRecord],
    normalize: bool = True,
) -> DiurnalProfile:
    """Average the per-period hourly profiles across a population.

    With ``normalize`` each period's profile is scaled by its own mean
    first, so heavy users do not dominate the day shape.
    """
    totals = np.zeros(24)
    counts = np.zeros(24, dtype=int)
    n_periods = 0
    for user in users:
        for obs in user.observations:
            profile = obs.hourly_mean_mbps
            if profile is None:
                continue
            values = np.asarray(profile, dtype=float)
            finite = ~np.isnan(values)
            if not finite.any():
                continue
            if normalize:
                scale = float(values[finite].mean())
                if scale <= 0:
                    continue
                values = values / scale
            n_periods += 1
            totals[finite] += values[finite]
            counts[finite] += 1
    if n_periods == 0:
        raise AnalysisError("no periods carry hourly profiles")
    means = np.full(24, np.nan)
    covered = counts > 0
    means[covered] = totals[covered] / counts[covered]
    return DiurnalProfile(
        mean_mbps_by_hour=tuple(float(v) for v in means),
        coverage_by_hour=tuple(int(c) for c in counts),
        n_periods=n_periods,
    )
