"""Sec. 6 — the cost of increasing capacity.

* :func:`figure10` — CDF across countries of the monthly cost of +1 Mbps;
* :func:`table5` — regional shares of countries above $1 / $5 / $10;
* :func:`table6` — matched experiment across cost-of-upgrade classes;
* :func:`correlation_summary` — the Sec. 6 strong/moderate correlation shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Mapping, Sequence

import numpy as np

from ..core.binning import UPGRADE_COST_BINS_USD, explicit_bins
from ..core.stats import ecdf
from ..datasets.records import UserRecord
from ..exceptions import AnalysisError
from ..market.economy import TABLE5_REGIONS
from ..market.survey import PlanSurvey
from .common import MatchedExperimentResult, demand_outcome, matched_experiment

__all__ = [
    "Figure10Result",
    "Table5Result",
    "Table6Result",
    "correlation_summary",
    "figure10",
    "table5",
    "table6",
]


# ---------------------------------------------------------------------------
# Figure 10: the cost-of-upgrade distribution.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure10Result:
    """CDF of upgrade costs across qualifying markets."""

    costs_by_country: Mapping[str, float]
    cdf: tuple[np.ndarray, np.ndarray]

    @property
    def n_countries(self) -> int:
        return len(self.costs_by_country)

    def cost_for(self, country: str) -> float | None:
        return self.costs_by_country.get(country)

    def quantile_of(self, country: str) -> float | None:
        """Where a country falls in the distribution (fraction below it)."""
        cost = self.cost_for(country)
        if cost is None:
            return None
        costs = np.array(sorted(self.costs_by_country.values()))
        return float(np.searchsorted(costs, cost, side="left") / costs.size)


def figure10(survey: PlanSurvey) -> Figure10Result:
    """CDF of the monthly cost of +1 Mbps over all qualifying markets.

    Only markets whose price~capacity correlation is at least moderate
    (r > 0.4) carry a meaningful slope, per the paper.
    """
    costs = survey.upgrade_costs()
    positive = {c: v for c, v in costs.items() if v > 0}
    if len(positive) < 2:
        raise AnalysisError("too few qualifying markets for a distribution")
    return Figure10Result(
        costs_by_country=positive,
        cdf=ecdf(np.array(list(positive.values()))),
    )


def correlation_summary(survey: PlanSurvey) -> tuple[float, float]:
    """(share of strongly correlated, share of at least moderately
    correlated) markets — the paper reports 66% and 81%."""
    return survey.correlation_shares()


# ---------------------------------------------------------------------------
# Table 5: regional aggregation.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table5Row:
    region: str
    n_countries: int
    share_above_1: float
    share_above_5: float
    share_above_10: float


@dataclass(frozen=True)
class Table5Result:
    rows: tuple[Table5Row, ...]

    #: The paper's Table 5 shares per region label (>$1, >$5, >$10).
    PAPER_VALUES: ClassVar[Mapping[str, tuple[float, float, float]]] = {
        "Africa": (1.00, 0.84, 0.74),
        "Asia (all)": (0.67, 0.47, 0.33),
        "Asia (developed)": (0.00, 0.00, 0.00),
        "Asia (developing)": (0.83, 0.58, 0.42),
        "Central America/Caribbean": (1.00, 0.86, 0.14),
        "Europe": (0.10, 0.00, 0.00),
        "Middle East": (0.86, 0.57, 0.43),
        "North America": (0.00, 0.00, 0.00),
        "South America": (0.78, 0.55, 0.33),
    }

    def row_for(self, region: str) -> Table5Row:
        for row in self.rows:
            if row.region == region:
                return row
        raise AnalysisError(f"no Table 5 row for {region!r}")


def table5(survey: PlanSurvey) -> Table5Result:
    """Share of countries per region where +1 Mbps exceeds $1/$5/$10."""
    costs = survey.upgrade_costs()
    per_row: dict[str, list[float]] = {label: [] for label in TABLE5_REGIONS}
    for country, cost in costs.items():
        economy = survey.market(country).economy
        for label in economy.table5_rows():
            per_row[label].append(cost)
    rows = []
    for label in TABLE5_REGIONS:
        values = np.array(per_row[label])
        if values.size == 0:
            rows.append(Table5Row(label, 0, float("nan"), float("nan"), float("nan")))
            continue
        rows.append(
            Table5Row(
                region=label,
                n_countries=int(values.size),
                share_above_1=float(np.mean(values > 1.0)),
                share_above_5=float(np.mean(values > 5.0)),
                share_above_10=float(np.mean(values > 10.0)),
            )
        )
    return Table5Result(rows=tuple(rows))


# ---------------------------------------------------------------------------
# Table 6: the upgrade-cost experiment.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table6Result:
    """Both panels of Table 6 (average demand, with/without BitTorrent)."""

    include_bt: bool
    low_vs_mid: MatchedExperimentResult
    mid_vs_high: MatchedExperimentResult
    group_sizes: tuple[int, int, int]

    def rows(self) -> list[tuple[str, float, MatchedExperimentResult]]:
        paper = (53.8, 58.7) if self.include_bt else (52.2, 56.3)
        return [
            ("($0, $0.50] vs ($0.50, $1.00]", paper[0], self.low_vs_mid),
            ("($0.50, $1.00] vs ($1.00, inf)", paper[1], self.mid_vs_high),
        ]


#: Confounders for the upgrade-cost experiment: everything but the
#: upgrade cost itself.
_TABLE6_CONFOUNDERS = ("capacity", "latency", "loss", "price_of_access")


def table6(
    users: Sequence[UserRecord],
    include_bt: bool = True,
    metric: str = "mean",
    confounders: Sequence[str] = _TABLE6_CONFOUNDERS,
) -> Table6Result:
    """Does a higher cost of +1 Mbps push demand up at fixed capacity?

    Markets are split at $0.50 and $1.00 per +1 Mbps; cheaper-upgrade
    markets are the control in each comparison. Outcome is average demand
    (the paper's Table 6 uses mean usage, with and without BitTorrent).
    """
    bins = explicit_bins(UPGRADE_COST_BINS_USD)
    groups: list[list[UserRecord]] = [[], [], []]
    for user in users:
        if user.upgrade_cost_usd_per_mbps is None:
            continue
        index = bins.index_of(user.upgrade_cost_usd_per_mbps)
        if index is not None:
            groups[index].append(user)
    low, mid, high = groups
    if not mid:
        raise AnalysisError("no users in the middle upgrade-cost class")
    outcome = demand_outcome(metric, include_bt)
    return Table6Result(
        include_bt=include_bt,
        low_vs_mid=matched_experiment(
            "($0, $0.50] vs ($0.50, $1.00]",
            low,
            mid,
            confounders,
            outcome,
            hypothesis="a higher upgrade cost increases demand",
        ),
        mid_vs_high=matched_experiment(
            "($0.50, $1.00] vs ($1.00, inf)",
            mid,
            high,
            confounders,
            outcome,
            hypothesis="a higher upgrade cost increases demand",
        ),
        group_sizes=(len(low), len(mid), len(high)),
    )
