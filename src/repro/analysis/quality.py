"""Sec. 7 — connection quality and demand.

* :func:`table7` — latency experiment: the very-high-latency group
  (512-2048 ms) against each lower-latency group;
* :func:`figure11` — India-vs-rest latency CDFs (NDT '11-'13, NDT '14,
  Web '14) plus the matched India-vs-US demand comparison;
* :func:`table8` — packet-loss experiment;
* :func:`figure12` — India-vs-rest packet-loss CDF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.binning import LATENCY_BINS_MS, LOSS_BINS_FRACTION, Bin, explicit_bins
from ..core.stats import ecdf
from ..datasets.records import UserRecord
from ..exceptions import AnalysisError
from ..units import fraction_to_percent
from .common import MatchedExperimentResult, demand_outcome, matched_experiment

__all__ = [
    "Figure11Result",
    "Figure12Result",
    "Table7Result",
    "Table8Result",
    "figure11",
    "figure12",
    "table7",
    "table8",
]


# ---------------------------------------------------------------------------
# Table 7: latency.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QualityExperimentRow:
    """One control-vs-treatment quality comparison."""

    control_bin: Bin
    treatment_bin: Bin
    paper_percent: float
    experiment: MatchedExperimentResult


@dataclass(frozen=True)
class Table7Result:
    rows: tuple[QualityExperimentRow, ...]
    group_sizes: tuple[int, ...]


#: Confounders for the latency experiment: capacity and loss must match
#: (Sec. 7: "similar in terms of link capacity and location", with loss
#: held similar when testing latency); price covariates pin the market.
_TABLE7_CONFOUNDERS = ("capacity", "loss", "price_of_access")

#: The paper's Table 7 "% H holds" values, by treatment bin (ms).
_TABLE7_PAPER = {
    (0.0, 64.0): 63.5,
    (64.0, 128.0): 63.4,
    (128.0, 256.0): 59.4,
    (256.0, 512.0): 56.3,
}


def table7(
    users: Sequence[UserRecord],
    metric: str = "peak",
    include_bt: bool = False,
    confounders: Sequence[str] = _TABLE7_CONFOUNDERS,
) -> Table7Result:
    """Does decreasing latency raise peak demand?

    Control is the problematically-high-latency group (512, 2048] ms;
    each lower-latency bin is a treatment. Outcome: 95th-percentile
    usage without BitTorrent (Table 7 of the paper).
    """
    bins = explicit_bins(LATENCY_BINS_MS)
    grouped = bins.group((u.latency_ms, u) for u in users)
    control_bin = bins[len(bins) - 1]
    control = grouped.get(control_bin, [])
    if not control:
        raise AnalysisError("no users in the (512, 2048] ms control group")
    outcome = demand_outcome(metric, include_bt)
    rows = []
    for index in range(len(bins) - 1):
        treatment_bin = bins[index]
        treatment = grouped.get(treatment_bin, [])
        if not treatment:
            continue
        result = matched_experiment(
            f"{control_bin.label('ms')} vs {treatment_bin.label('ms')}",
            control,
            treatment,
            confounders,
            outcome,
            hypothesis="lower latency increases demand",
        )
        if result.result.n_pairs == 0:
            continue
        rows.append(
            QualityExperimentRow(
                control_bin=control_bin,
                treatment_bin=treatment_bin,
                paper_percent=_TABLE7_PAPER[(treatment_bin.low, treatment_bin.high)],
                experiment=result,
            )
        )
    sizes = tuple(len(grouped.get(b, [])) for b in bins)
    return Table7Result(rows=tuple(rows), group_sizes=sizes)


# ---------------------------------------------------------------------------
# Figure 11: India's latency, and its demand consequence.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure11Result:
    """Latency CDFs for India vs the rest of the population."""

    india_ndt_cdf: tuple[np.ndarray, np.ndarray]
    other_ndt_cdf: tuple[np.ndarray, np.ndarray]
    india_ndt14_cdf: tuple[np.ndarray, np.ndarray] | None
    other_ndt14_cdf: tuple[np.ndarray, np.ndarray] | None
    india_web_cdf: tuple[np.ndarray, np.ndarray] | None
    other_web_cdf: tuple[np.ndarray, np.ndarray] | None
    india_median_ndt_ms: float
    other_median_ndt_ms: float
    share_india_above_100ms: float
    india_vs_us: MatchedExperimentResult

    @property
    def india_lower_demand_share(self) -> float:
        """Fraction of matched pairs where the Indian user demands less.

        The paper reports 62% (India users impose *lower* demand than
        matched US users, despite the higher access price).
        """
        result = self.india_vs_us.result
        if result.n_pairs == 0:
            return float("nan")
        return 1.0 - result.fraction_holds


def _maybe_ecdf(values: list[float]) -> tuple[np.ndarray, np.ndarray] | None:
    if len(values) < 5:
        return None
    return ecdf(np.array(values))


def figure11(users: Sequence[UserRecord]) -> Figure11Result:
    """India-vs-rest latency validation and demand comparison (Fig. 11)."""
    india = [u for u in users if u.country == "India"]
    other = [u for u in users if u.country != "India"]
    if not india or not other:
        raise AnalysisError("figure 11 needs Indian and non-Indian users")

    india_ndt = np.array([u.latency_ms for u in india])
    other_ndt = np.array([u.latency_ms for u in other])

    # The 2014 follow-up (NDT re-measurement and web probes) covers the
    # subset of users that were still reachable.
    india_ndt14 = [u.ndt_2014_latency_ms for u in india if u.ndt_2014_latency_ms]
    other_ndt14 = [u.ndt_2014_latency_ms for u in other if u.ndt_2014_latency_ms]
    india_web = [u.web_latency_ms for u in india if u.web_latency_ms]
    other_web = [u.web_latency_ms for u in other if u.web_latency_ms]

    us_users = [u for u in users if u.country == "US"]
    india_vs_us = matched_experiment(
        "US (control) vs India (treatment) demand",
        us_users,
        india,
        confounders=("capacity",),
        outcome=demand_outcome("peak", include_bt=False),
        hypothesis="Indian users demand more than capacity-matched US users",
    )

    return Figure11Result(
        india_ndt_cdf=ecdf(india_ndt),
        other_ndt_cdf=ecdf(other_ndt),
        india_ndt14_cdf=_maybe_ecdf(india_ndt14),
        other_ndt14_cdf=_maybe_ecdf(other_ndt14),
        india_web_cdf=_maybe_ecdf(india_web),
        other_web_cdf=_maybe_ecdf(other_web),
        india_median_ndt_ms=float(np.median(india_ndt)),
        other_median_ndt_ms=float(np.median(other_ndt)),
        share_india_above_100ms=float(np.mean(india_ndt > 100.0)),
        india_vs_us=india_vs_us,
    )


# ---------------------------------------------------------------------------
# Table 8: packet loss.
# ---------------------------------------------------------------------------


#: The paper's Table 8 rows: (control bin, treatment bin, % H holds).
_TABLE8_LAYOUT: tuple[tuple[tuple[float, float], tuple[float, float], float], ...] = (
    ((0.001, 0.01), (0.0, 0.0001), 55.4),
    ((0.001, 0.01), (0.0001, 0.001), 53.4),
    ((0.01, 0.15), (0.0, 0.0001), 58.9),
    ((0.01, 0.15), (0.0001, 0.001), 53.8),
)

#: Confounders for the loss experiment: capacity and latency must match.
_TABLE8_CONFOUNDERS = ("capacity", "latency", "price_of_access")


@dataclass(frozen=True)
class Table8Result:
    rows: tuple[QualityExperimentRow, ...]
    group_sizes: tuple[int, ...]


def table8(
    users: Sequence[UserRecord],
    metric: str = "mean",
    include_bt: bool = False,
    confounders: Sequence[str] = _TABLE8_CONFOUNDERS,
) -> Table8Result:
    """Does decreasing packet loss raise average demand? (Table 8)."""
    bins = explicit_bins(LOSS_BINS_FRACTION)
    grouped = bins.group((u.loss_fraction, u) for u in users)
    outcome = demand_outcome(metric, include_bt)
    rows = []
    for control_edges, treatment_edges, paper in _TABLE8_LAYOUT:
        control_bin = bins.bin_of(
            (control_edges[0] + control_edges[1]) / 2.0
        )
        treatment_bin = bins.bin_of(
            (treatment_edges[0] + treatment_edges[1]) / 2.0
        )
        assert control_bin is not None and treatment_bin is not None
        control = grouped.get(control_bin, [])
        treatment = grouped.get(treatment_bin, [])
        if not control or not treatment:
            continue
        label = (
            f"({fraction_to_percent(control_bin.low):g}%, "
            f"{fraction_to_percent(control_bin.high):g}%] vs "
            f"({fraction_to_percent(treatment_bin.low):g}%, "
            f"{fraction_to_percent(treatment_bin.high):g}%]"
        )
        result = matched_experiment(
            label,
            control,
            treatment,
            confounders,
            outcome,
            hypothesis="lower loss increases demand",
        )
        if result.result.n_pairs == 0:
            continue
        rows.append(
            QualityExperimentRow(
                control_bin=control_bin,
                treatment_bin=treatment_bin,
                paper_percent=paper,
                experiment=result,
            )
        )
    sizes = tuple(len(grouped.get(b, [])) for b in bins)
    return Table8Result(rows=tuple(rows), group_sizes=sizes)


@dataclass(frozen=True)
class Figure12Result:
    """Packet-loss CDFs for India vs the rest of the population."""

    india_loss_pct_cdf: tuple[np.ndarray, np.ndarray]
    other_loss_pct_cdf: tuple[np.ndarray, np.ndarray]
    india_median_loss_pct: float
    other_median_loss_pct: float


def figure12(users: Sequence[UserRecord]) -> Figure12Result:
    """India-vs-rest packet loss (Fig. 12)."""
    india = [
        fraction_to_percent(u.loss_fraction)
        for u in users
        if u.country == "India"
    ]
    other = [
        fraction_to_percent(u.loss_fraction)
        for u in users
        if u.country != "India"
    ]
    if not india or not other:
        raise AnalysisError("figure 12 needs Indian and non-Indian users")
    return Figure12Result(
        india_loss_pct_cdf=ecdf(np.array(india)),
        other_loss_pct_cdf=ecdf(np.array(other)),
        india_median_loss_pct=float(np.median(india)),
        other_median_loss_pct=float(np.median(other)),
    )
