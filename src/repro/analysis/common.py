"""Shared analysis building blocks.

Implements the two recurring constructs of the paper's evaluation:

* the **binned demand curve** — users grouped by capacity class, per-bin
  average demand with a 95% CI (the data behind Figs. 2, 3 and 6);
* the **matched natural experiment** — nearest-neighbor matching of
  control and treatment users on confounders, followed by the sign test
  (the machinery behind Tables 2, 3, 6, 7 and 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.binning import Bin, BinSpec, capacity_class_spec
from ..core.experiments import ExperimentResult, NaturalExperiment, PairedOutcome
from ..core.matching import (
    DEFAULT_CALIPER,
    LOSS_MATCH_FLOOR,
    MatchingSummary,
    match_pairs,
    match_pairs_arrays,
)
from ..core.stats import ConfidenceInterval, mean_confidence_interval, pearson_r
from ..datasets.columns import UserColumns
from ..datasets.records import UserRecord
from ..exceptions import AnalysisError
from ..obs import ledger as obs

__all__ = [
    "BinnedCurve",
    "BinnedCurvePoint",
    "CONFOUNDER_COLUMNS",
    "CONFOUNDER_EXTRACTORS",
    "binned_demand_curve",
    "curve_correlation",
    "demand_outcome",
    "demand_outcome_array",
    "eligibility_mask",
    "matched_experiment",
    "matched_experiment_columns",
    "standard_confounders",
]

#: Minimum users in a capacity bin for it to appear in a curve.
_MIN_BIN_USERS = 5


def demand_outcome(metric: str, include_bt: bool) -> Callable[[UserRecord], float]:
    """Outcome extractor for a demand statistic of the current period."""
    if metric not in ("mean", "peak"):
        raise AnalysisError(f"unknown demand metric {metric!r}")

    def outcome(user: UserRecord) -> float:
        return user.demand(metric=metric, include_bt=include_bt)

    return outcome


def _market_value(value: float | None) -> float:
    """A market covariate as a matching confounder; NaN marks *missing*.

    Only ``None`` means missing — a 0.0 price (free or bundled plan) or
    a 0.0 upgrade cost (flat-priced tiers) is a legitimate market
    condition and must stay in the matching pool, so truthiness checks
    are off limits here.
    """
    return math.nan if value is None else float(value)


CONFOUNDER_EXTRACTORS: dict[str, Callable[[UserRecord], float]] = {
    "capacity": lambda u: u.capacity_down_mbps,
    "latency": lambda u: u.latency_ms,
    # The loss floor is owned by repro.core.matching (single source of
    # truth, pinned relative to its ZERO_FLOOR — see LOSS_MATCH_FLOOR).
    "loss": lambda u: max(u.loss_fraction, LOSS_MATCH_FLOOR),
    "price_of_access": lambda u: _market_value(u.price_of_access_usd),
    "upgrade_cost": lambda u: _market_value(u.upgrade_cost_usd_per_mbps),
}


def demand_outcome_array(
    metric: str, include_bt: bool
) -> Callable[[UserColumns], np.ndarray]:
    """Columnar twin of :func:`demand_outcome`: one value per user."""
    if metric not in ("mean", "peak"):
        raise AnalysisError(f"unknown demand metric {metric!r}")

    def outcome(users: UserColumns) -> np.ndarray:
        return users.demand(metric=metric, include_bt=include_bt)

    return outcome


#: Columnar twins of :data:`CONFOUNDER_EXTRACTORS`: one array per pool,
#: value-identical element-wise (missing market covariates are stored as
#: NaN in the columns, exactly what ``_market_value`` produces).
CONFOUNDER_COLUMNS: dict[str, Callable[[UserColumns], np.ndarray]] = {
    "capacity": lambda c: c.capacity_down_mbps,
    "latency": lambda c: c.latency_ms,
    "loss": lambda c: np.maximum(c.loss_fraction, LOSS_MATCH_FLOOR),
    "price_of_access": lambda c: c.price_of_access_usd,
    "upgrade_cost": lambda c: c.upgrade_cost_usd_per_mbps,
}


def standard_confounders(names: Sequence[str]) -> list[Callable[[UserRecord], float]]:
    """Resolve confounder names to extractors, validating them."""
    try:
        return [CONFOUNDER_EXTRACTORS[name] for name in names]
    except KeyError as exc:
        raise AnalysisError(f"unknown confounder {exc.args[0]!r}") from None


def _has_confounders(user: UserRecord, names: Sequence[str]) -> bool:
    """Whether every matching confounder is present *and usable*.

    Missing market covariates surface as NaN (see :func:`_market_value`);
    datasets that skipped the sanitization stage can additionally carry
    non-finite measurement values. Either way the user cannot be placed
    in the matching space, so eligibility requires finiteness, not just
    non-NaN — identical on clean data, where every value is finite.
    """
    for name in names:
        value = CONFOUNDER_EXTRACTORS[name](user)
        if not math.isfinite(value):
            return False
    return True


@dataclass(frozen=True)
class MatchedExperimentResult:
    """An experiment result plus the matching diagnostics behind it."""

    result: ExperimentResult
    matching: MatchingSummary

    @property
    def n_pairs(self) -> int:
        return self.result.n_pairs


def matched_experiment(
    name: str,
    control: Sequence[UserRecord],
    treatment: Sequence[UserRecord],
    confounders: Sequence[str],
    outcome: Callable[[UserRecord], float],
    caliper: float = DEFAULT_CALIPER,
    hypothesis: str = "treatment increases demand",
) -> MatchedExperimentResult:
    """Run one matched natural experiment between two user pools.

    Users missing any confounder (e.g. no market upgrade-cost estimate)
    are excluded before matching, as the paper excludes users it cannot
    place in a market; so are users whose outcome is non-finite (only
    possible for un-sanitized dirty datasets).
    """

    def _eligible(user: UserRecord) -> bool:
        return _has_confounders(user, confounders) and math.isfinite(
            outcome(user)
        )

    eligible_control = [u for u in control if _eligible(u)]
    eligible_treatment = [u for u in treatment if _eligible(u)]
    matching = match_pairs(
        eligible_control,
        eligible_treatment,
        standard_confounders(confounders),
        caliper=caliper,
    )
    experiment = NaturalExperiment(name=name, hypothesis=hypothesis)
    result = experiment.evaluate(
        PairedOutcome(outcome(pair.control), outcome(pair.treatment))
        for pair in matching.pairs
    )
    # Run-ledger accounting (no-op outside a traced run): eligibility
    # attrition, matched pairs, and the paper's overall verdict tally.
    obs.count("experiments.run")
    obs.count(
        "experiments.users_excluded",
        (len(control) - len(eligible_control))
        + (len(treatment) - len(eligible_treatment)),
    )
    obs.count("experiments.pairs", result.n_pairs)
    obs.count("experiments.ties", result.n_ties)
    obs.count(
        "experiments.verdicts.rejects_null"
        if result.rejects_null
        else "experiments.verdicts.null_retained"
    )
    return MatchedExperimentResult(result=result, matching=matching)


def eligibility_mask(
    users: UserColumns,
    confounders: Sequence[str],
    outcome_values: np.ndarray | None = None,
) -> np.ndarray:
    """Per-user matching eligibility, computed column-wise.

    The vectorized twin of the object path's per-user
    ``_has_confounders(...) and isfinite(outcome(...))`` filter: every
    confounder (and the outcome, when given) must be finite.
    """
    mask = np.ones(users.n_users, dtype=bool)
    for name in confounders:
        if name not in CONFOUNDER_COLUMNS:
            raise AnalysisError(f"unknown confounder {name!r}")
        mask &= np.isfinite(CONFOUNDER_COLUMNS[name](users))
    if outcome_values is not None:
        mask &= np.isfinite(np.asarray(outcome_values, dtype=float))
    return mask


def matched_experiment_columns(
    name: str,
    control: UserColumns,
    treatment: UserColumns,
    confounders: Sequence[str],
    outcome: Callable[[UserColumns], np.ndarray],
    caliper: float = DEFAULT_CALIPER,
    hypothesis: str = "treatment increases demand",
) -> MatchedExperimentResult:
    """Columnar twin of :func:`matched_experiment`.

    ``outcome`` maps a pool to one float per user (see
    :func:`demand_outcome_array`). Eligibility filtering, matching, the
    sign test, and the run-ledger accounting all operate on columns;
    given pools whose per-user values equal the object path's (in the
    same order), the verdicts and every counter are identical — the
    equivalence tests in ``tests/analysis/test_columnar.py`` hold the
    two paths together.
    """
    control_outcome = np.asarray(outcome(control), dtype=float)
    treatment_outcome = np.asarray(outcome(treatment), dtype=float)
    control_idx = np.flatnonzero(
        eligibility_mask(control, confounders, control_outcome)
    )
    treatment_idx = np.flatnonzero(
        eligibility_mask(treatment, confounders, treatment_outcome)
    )
    columns = [CONFOUNDER_COLUMNS[name_] for name_ in confounders]
    matching = match_pairs_arrays(
        [col(control)[control_idx] for col in columns],
        [col(treatment)[treatment_idx] for col in columns],
        caliper=caliper,
    )
    experiment = NaturalExperiment(name=name, hypothesis=hypothesis)
    result = experiment.evaluate(
        PairedOutcome(
            float(control_outcome[control_idx[pair.control]]),
            float(treatment_outcome[treatment_idx[pair.treatment]]),
        )
        for pair in matching.pairs
    )
    obs.count("experiments.run")
    obs.count(
        "experiments.users_excluded",
        (control.n_users - int(control_idx.size))
        + (treatment.n_users - int(treatment_idx.size)),
    )
    obs.count("experiments.pairs", result.n_pairs)
    obs.count("experiments.ties", result.n_ties)
    obs.count(
        "experiments.verdicts.rejects_null"
        if result.rejects_null
        else "experiments.verdicts.null_retained"
    )
    return MatchedExperimentResult(result=result, matching=matching)


@dataclass(frozen=True)
class BinnedCurvePoint:
    """One capacity class of a demand curve."""

    bin: Bin
    n_users: int
    average: float
    ci: ConfidenceInterval

    @property
    def center_mbps(self) -> float:
        """Geometric center of the class, in Mbps."""
        return math.sqrt(self.bin.low * self.bin.high)


@dataclass(frozen=True)
class BinnedCurve:
    """A demand-vs-capacity curve (one panel of Figs. 2, 3 or 6)."""

    metric: str
    include_bt: bool
    points: tuple[BinnedCurvePoint, ...]

    @property
    def correlation(self) -> float:
        """log-log Pearson correlation of class capacity vs demand."""
        return curve_correlation(self.points)

    def point_for(self, capacity_mbps: float) -> BinnedCurvePoint | None:
        for point in self.points:
            if capacity_mbps in point.bin:
                return point
        return None


def binned_demand_curve(
    users: "Sequence[UserRecord] | UserColumns",
    metric: str = "mean",
    include_bt: bool = True,
    spec: BinSpec | None = None,
    min_users: int = _MIN_BIN_USERS,
) -> BinnedCurve:
    """Group users into capacity classes and average their demand.

    Accepts either a record sequence or a columnar dataset; the
    columnar path bins and averages whole columns
    (:meth:`BinSpec.index_of_array`) and produces a value-identical
    curve — members enter each bin in user order either way, so the
    per-bin mean and CI see the same floats in the same order.
    """
    if spec is None:
        spec = capacity_class_spec()
    if isinstance(users, UserColumns):
        return _binned_demand_curve_columns(
            users, metric, include_bt, spec, min_users
        )
    outcome = demand_outcome(metric, include_bt)
    grouped = spec.group((u.capacity_down_mbps, u) for u in users)
    points = []
    for bin_ in spec:
        # Non-finite demand can only come from un-sanitized dirty data;
        # on clean datasets this filter keeps every member.
        members = [
            u for u in grouped.get(bin_, []) if math.isfinite(outcome(u))
        ]
        if len(members) < min_users:
            continue
        values = [outcome(u) for u in members]
        points.append(
            BinnedCurvePoint(
                bin=bin_,
                n_users=len(members),
                average=float(np.mean(values)),
                ci=mean_confidence_interval(values),
            )
        )
    return BinnedCurve(metric=metric, include_bt=include_bt, points=tuple(points))


def _binned_demand_curve_columns(
    users: UserColumns,
    metric: str,
    include_bt: bool,
    spec: BinSpec,
    min_users: int,
) -> BinnedCurve:
    values = demand_outcome_array(metric, include_bt)(users)
    bin_index = spec.index_of_array(users.capacity_down_mbps)
    finite = np.isfinite(values)
    points = []
    for i, bin_ in enumerate(spec):
        members = values[(bin_index == i) & finite]
        if members.size < min_users:
            continue
        points.append(
            BinnedCurvePoint(
                bin=bin_,
                n_users=int(members.size),
                average=float(np.mean(members)),
                ci=mean_confidence_interval(members),
            )
        )
    return BinnedCurve(metric=metric, include_bt=include_bt, points=tuple(points))


def curve_correlation(points: Sequence[BinnedCurvePoint]) -> float:
    """Pearson r between log capacity and log average demand over bins.

    The paper reports the correlation between a group's link capacity and
    its usage; both axes of its figures are logarithmic, so we correlate
    in log-log space. Bins with non-positive averages cannot be logged
    and are excluded.
    """
    xs = [math.log10(p.center_mbps) for p in points if p.average > 0]
    ys = [math.log10(p.average) for p in points if p.average > 0]
    if len(xs) < 2:
        return math.nan
    return pearson_r(xs, ys)
