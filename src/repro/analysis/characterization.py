"""Sec. 2.2 — characterization of the broadband connections (Fig. 1).

CDFs of maximum download capacity, average latency to the nearest NDT
server, and average packet-loss rate over every connection in the
dataset, plus the summary statistics the paper quotes in the text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.stats import ecdf, percentile
from ..datasets.records import UserRecord
from ..exceptions import AnalysisError
from ..units import fraction_to_percent

__all__ = ["Figure1Result", "figure1"]


@dataclass(frozen=True)
class EcdfSeries:
    """One CDF panel: sorted support and cumulative probabilities."""

    values: np.ndarray
    cumulative: np.ndarray


@dataclass(frozen=True)
class Figure1Result:
    """The three panels of Fig. 1 and the quoted summary statistics."""

    capacity_cdf: EcdfSeries
    latency_cdf: EcdfSeries
    loss_percent_cdf: EcdfSeries
    n_users: int
    median_capacity_mbps: float
    capacity_iqr_mbps: tuple[float, float]
    share_below_1mbps: float
    share_above_30mbps: float
    median_latency_ms: float
    share_latency_above_500ms: float
    share_loss_below_0_1pct: float
    share_loss_above_1pct: float
    share_loss_above_10pct: float

    def summary_rows(self) -> list[tuple[str, float, float]]:
        """(statistic, paper value, measured value) rows for reporting."""
        low, high = self.capacity_iqr_mbps
        return [
            ("median download capacity (Mbps)", 7.4, self.median_capacity_mbps),
            ("capacity IQR width (Mbps)", 14.3, high - low),
            ("share of users below 1 Mbps", 0.10, self.share_below_1mbps),
            ("share of users above 30 Mbps", 0.10, self.share_above_30mbps),
            ("median latency (ms)", 100.0, self.median_latency_ms),
            ("share with latency > 500 ms", 0.05, self.share_latency_above_500ms),
            ("share with loss < 0.1%", 0.70, self.share_loss_below_0_1pct),
            ("share with loss > 1%", 0.14, self.share_loss_above_1pct),
            ("share with loss > 10%", 0.01, self.share_loss_above_10pct),
        ]


def figure1(users: Sequence[UserRecord]) -> Figure1Result:
    """Compute Fig. 1 over every connection used in the analysis."""
    if not users:
        raise AnalysisError("figure 1 needs at least one user")
    capacities = np.array([u.capacity_down_mbps for u in users])
    latencies = np.array([u.latency_ms for u in users])
    losses_pct = np.array(
        [fraction_to_percent(u.loss_fraction) for u in users]
    )

    cap_x, cap_p = ecdf(capacities)
    lat_x, lat_p = ecdf(latencies)
    loss_x, loss_p = ecdf(losses_pct)

    return Figure1Result(
        capacity_cdf=EcdfSeries(cap_x, cap_p),
        latency_cdf=EcdfSeries(lat_x, lat_p),
        loss_percent_cdf=EcdfSeries(loss_x, loss_p),
        n_users=len(users),
        median_capacity_mbps=percentile(capacities, 50.0),
        capacity_iqr_mbps=(
            percentile(capacities, 25.0),
            percentile(capacities, 75.0),
        ),
        share_below_1mbps=float(np.mean(capacities < 1.0)),
        share_above_30mbps=float(np.mean(capacities > 30.0)),
        median_latency_ms=percentile(latencies, 50.0),
        share_latency_above_500ms=float(np.mean(latencies > 500.0)),
        share_loss_below_0_1pct=float(np.mean(losses_pct < 0.1)),
        share_loss_above_1pct=float(np.mean(losses_pct > 1.0)),
        share_loss_above_10pct=float(np.mean(losses_pct > 10.0)),
    )
