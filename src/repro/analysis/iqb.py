"""Use-case quality scoring: the internet quality barometer (IQB).

The paper's Sec. 7 experiments show that latency and loss shape demand
beyond raw capacity; M-Lab's Internet Quality Barometer generalizes the
idea into *use-case* scoring — grade every connection against the
network requirements of concrete applications (web browsing, video
streaming, audio streaming), roll the per-requirement satisfaction up
through declared weights, and aggregate per market.

This module is that analysis family for the reproduction's worlds:

* :class:`IqbConfig` — a declarative config (use cases × requirements
  with weights and min/max thresholds), JSON-loadable with parse-time
  validation that names the offending use case and requirement;
* :func:`score_columns` — vectorized scoring over the columnar data
  plane, with :func:`score_record` as the straight-line scalar
  reference (the property suite holds the two exactly equal);
* :func:`market_barometer` — per-market mean scores and fully-ready
  shares with Wilson intervals;
* :func:`iqb_experiment` — a matched natural experiment extending
  Tables 7/8: does a higher composite score predict demand beyond
  capacity class and market price?

Scoring formula
---------------

Each requirement is satisfied on a [0, 1] scale:

* higher-is-better metrics (``download_mbps``, ``upload_mbps``) with a
  ``min`` threshold ``t`` score ``clip(value / t, 0, 1)``;
* lower-is-better metrics (``latency_ms``, ``loss_fraction``) with a
  ``max`` threshold ``t`` score ``1.0`` when ``value <= t`` and
  ``t / value`` otherwise;
* non-finite measured values (possible only for un-sanitized dirty
  datasets) score 0 — never NaN.

A use case's score is the weighted mean of its positive-weight
requirements; the composite is the weighted mean of the positive-weight
use cases. Both means are exact 1.0 when every threshold is met, and
zero-weight entries are ignored entirely.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..core.binning import capacity_class_spec
from ..core.stats import ConfidenceInterval, wilson_interval
from ..datasets.columns import UserColumns
from ..datasets.records import UserRecord
from ..exceptions import AnalysisError
from ..obs import ledger as obs
from .common import MatchedExperimentResult, demand_outcome, matched_experiment

__all__ = [
    "DEFAULT_IQB_CONFIG",
    "HouseholdScores",
    "IQB_PRESETS",
    "IqbConfig",
    "IqbExperimentResult",
    "IqbRequirement",
    "IqbUseCase",
    "MarketScore",
    "RecordScore",
    "format_iqb_report",
    "iqb_experiment",
    "iqb_payload",
    "market_barometer",
    "resolve_iqb_config",
    "score_columns",
    "score_record",
]

#: Metrics a requirement may grade, mapped to threshold orientation:
#: ``min`` thresholds for higher-is-better metrics, ``max`` for
#: lower-is-better ones.
METRIC_KINDS: dict[str, str] = {
    "download_mbps": "min",
    "upload_mbps": "min",
    "latency_ms": "max",
    "loss_fraction": "max",
}

#: Minimum households for a market to appear in the barometer table.
_MIN_MARKET_USERS = 5

#: Minimum scoreable households for the IQB-vs-demand experiment.
_MIN_EXPERIMENT_USERS = 30

#: Minimum households a capacity class needs before its composite-score
#: terciles are meaningful enough to contribute to the experiment arms.
_MIN_CLASS_USERS = 9

#: Confounders of the IQB-vs-demand experiment: matching on capacity
#: class and access price asks whether quality predicts demand *beyond*
#: what the user's capacity tier and market already explain.
_IQB_CONFOUNDERS = ("capacity", "price_of_access")


def _require_number(
    value: object, what: str, where: str
) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise AnalysisError(f"{where}: {what} must be a number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class IqbRequirement:
    """One graded network requirement of a use case."""

    metric: str
    weight: float
    threshold: float

    def validate(self, use_case: str) -> None:
        where = f"use case {use_case!r}, requirement {self.metric!r}"
        if self.metric not in METRIC_KINDS:
            known = ", ".join(METRIC_KINDS)
            raise AnalysisError(
                f"use case {use_case!r}: unknown requirement metric "
                f"{self.metric!r} (expected one of: {known})"
            )
        if not math.isfinite(self.weight) or self.weight < 0:
            raise AnalysisError(
                f"{where}: weight must be finite and >= 0, "
                f"got {self.weight!r}"
            )
        if not math.isfinite(self.threshold) or self.threshold <= 0:
            raise AnalysisError(
                f"{where}: threshold must be finite and > 0, "
                f"got {self.threshold!r}"
            )

    @property
    def kind(self) -> str:
        """``min`` (higher is better) or ``max`` (lower is better)."""
        return METRIC_KINDS[self.metric]

    def to_payload(self) -> dict:
        return {"weight": self.weight, self.kind: self.threshold}


@dataclass(frozen=True)
class IqbUseCase:
    """A named use case: weighted requirements plus its own weight."""

    name: str
    weight: float
    requirements: tuple[IqbRequirement, ...]

    def validate(self) -> None:
        if not self.name:
            raise AnalysisError("use cases need a non-empty name")
        if not math.isfinite(self.weight) or self.weight < 0:
            raise AnalysisError(
                f"use case {self.name!r}: weight must be finite and >= 0, "
                f"got {self.weight!r}"
            )
        if not self.requirements:
            raise AnalysisError(
                f"use case {self.name!r} declares no requirements"
            )
        seen: set[str] = set()
        for requirement in self.requirements:
            requirement.validate(self.name)
            if requirement.metric in seen:
                raise AnalysisError(
                    f"use case {self.name!r}: duplicate requirement "
                    f"{requirement.metric!r}"
                )
            seen.add(requirement.metric)
        if not any(r.weight > 0 for r in self.requirements):
            raise AnalysisError(
                f"use case {self.name!r} has no positive-weight "
                "requirement — every score would be undefined"
            )

    def to_payload(self) -> dict:
        return {
            "weight": self.weight,
            "requirements": {
                r.metric: r.to_payload() for r in self.requirements
            },
        }


@dataclass(frozen=True)
class IqbConfig:
    """A complete barometer configuration (the ``iqb.json`` schema)."""

    name: str
    use_cases: tuple[IqbUseCase, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise AnalysisError("an IQB config needs a non-empty name")
        if not self.use_cases:
            raise AnalysisError(
                f"IQB config {self.name!r} declares no use cases"
            )
        seen: set[str] = set()
        for use_case in self.use_cases:
            use_case.validate()
            if use_case.name in seen:
                raise AnalysisError(
                    f"IQB config {self.name!r}: duplicate use case "
                    f"{use_case.name!r}"
                )
            seen.add(use_case.name)
        if not any(u.weight > 0 for u in self.use_cases):
            raise AnalysisError(
                f"IQB config {self.name!r} has no positive-weight use "
                "case — the composite would be undefined"
            )

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "use_cases": {u.name: u.to_payload() for u in self.use_cases},
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "IqbConfig":
        """Parse and validate a config payload.

        Every structural or numeric problem raises
        :class:`~repro.exceptions.AnalysisError` naming the use case and
        requirement — a bad threshold can never silently turn into NaN
        scores downstream.
        """
        if not isinstance(payload, Mapping):
            raise AnalysisError(
                f"an IQB config must be a JSON object, got {payload!r}"
            )
        unknown = set(payload) - {"name", "use_cases"}
        if unknown:
            raise AnalysisError(
                "IQB config has unknown keys: "
                + ", ".join(sorted(unknown))
            )
        name = str(payload.get("name", "custom"))
        raw_cases = payload.get("use_cases")
        if not isinstance(raw_cases, Mapping) or not raw_cases:
            raise AnalysisError(
                f"IQB config {name!r} needs a non-empty 'use_cases' object"
            )
        use_cases = []
        for case_name, raw_case in raw_cases.items():
            if not isinstance(raw_case, Mapping):
                raise AnalysisError(
                    f"use case {case_name!r} must be an object, "
                    f"got {raw_case!r}"
                )
            unknown = set(raw_case) - {"weight", "requirements"}
            if unknown:
                raise AnalysisError(
                    f"use case {case_name!r} has unknown keys: "
                    + ", ".join(sorted(unknown))
                )
            raw_reqs = raw_case.get("requirements")
            if not isinstance(raw_reqs, Mapping) or not raw_reqs:
                raise AnalysisError(
                    f"use case {case_name!r} needs a non-empty "
                    "'requirements' object"
                )
            requirements = []
            for metric, raw_req in raw_reqs.items():
                where = f"use case {case_name!r}, requirement {metric!r}"
                if not isinstance(raw_req, Mapping):
                    raise AnalysisError(
                        f"{where}: must be an object, got {raw_req!r}"
                    )
                kind = METRIC_KINDS.get(str(metric))
                if kind is None:
                    known = ", ".join(METRIC_KINDS)
                    raise AnalysisError(
                        f"use case {case_name!r}: unknown requirement "
                        f"metric {metric!r} (expected one of: {known})"
                    )
                unknown = set(raw_req) - {"weight", kind}
                if unknown:
                    wrong_kind = "max" if kind == "min" else "min"
                    if wrong_kind in unknown:
                        raise AnalysisError(
                            f"{where}: a {'higher' if kind == 'min' else 'lower'}"
                            f"-is-better metric takes a {kind!r} "
                            f"threshold, not {wrong_kind!r}"
                        )
                    raise AnalysisError(
                        f"{where}: unknown keys: "
                        + ", ".join(sorted(unknown))
                    )
                if kind not in raw_req:
                    raise AnalysisError(
                        f"{where}: missing the {kind!r} threshold"
                    )
                requirements.append(
                    IqbRequirement(
                        metric=str(metric),
                        weight=_require_number(
                            raw_req.get("weight", 1), "weight", where
                        ),
                        threshold=_require_number(
                            raw_req[kind], f"the {kind!r} threshold", where
                        ),
                    )
                )
            use_cases.append(
                IqbUseCase(
                    name=str(case_name),
                    weight=_require_number(
                        raw_case.get("weight", 1),
                        "weight",
                        f"use case {case_name!r}",
                    ),
                    requirements=tuple(requirements),
                )
            )
        return cls(name=name, use_cases=tuple(use_cases))

    @classmethod
    def from_json(cls, path: str | Path) -> "IqbConfig":
        try:
            payload = json.loads(Path(path).read_text())
        except OSError as exc:
            raise AnalysisError(
                f"cannot read IQB config {path}: {exc}"
            ) from None
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"{path} is not valid JSON: {exc}") from None
        return cls.from_payload(payload)


#: The default configuration, mirroring M-Lab's IQB exemplar: web
#: browsing, video streaming, and audio streaming graded on throughput,
#: latency, and loss (latency/loss thresholds as maxima — the exemplar's
#: "threshold min" on lower-is-better metrics reads as a ceiling here).
DEFAULT_IQB_CONFIG = IqbConfig(
    name="default",
    use_cases=(
        IqbUseCase(
            name="web browsing",
            weight=1.0,
            requirements=(
                IqbRequirement("download_mbps", 3.0, 10.0),
                IqbRequirement("upload_mbps", 2.0, 10.0),
                IqbRequirement("latency_ms", 4.0, 100.0),
                IqbRequirement("loss_fraction", 4.0, 0.01),
            ),
        ),
        IqbUseCase(
            name="video streaming",
            weight=1.0,
            requirements=(
                IqbRequirement("download_mbps", 4.0, 25.0),
                IqbRequirement("upload_mbps", 2.0, 10.0),
                IqbRequirement("latency_ms", 4.0, 100.0),
                IqbRequirement("loss_fraction", 4.0, 0.01),
            ),
        ),
        IqbUseCase(
            name="audio streaming",
            weight=1.0,
            requirements=(
                IqbRequirement("download_mbps", 4.0, 10.0),
                IqbRequirement("upload_mbps", 1.0, 10.0),
                IqbRequirement("latency_ms", 2.0, 150.0),
                IqbRequirement("loss_fraction", 2.0, 0.02),
            ),
        ),
    ),
)

#: Named presets a sweep axis or CLI flag can reference without a file.
IQB_PRESETS: dict[str, IqbConfig] = {
    "default": DEFAULT_IQB_CONFIG,
    # Streaming-only mix: how markets grade when web browsing is out of
    # the picture and video carries the composite.
    "streaming": IqbConfig(
        name="streaming",
        use_cases=(
            IqbUseCase(
                name="video streaming",
                weight=3.0,
                requirements=(
                    IqbRequirement("download_mbps", 4.0, 25.0),
                    IqbRequirement("latency_ms", 4.0, 100.0),
                    IqbRequirement("loss_fraction", 4.0, 0.01),
                ),
            ),
            IqbUseCase(
                name="audio streaming",
                weight=1.0,
                requirements=(
                    IqbRequirement("download_mbps", 4.0, 10.0),
                    IqbRequirement("loss_fraction", 2.0, 0.02),
                ),
            ),
        ),
    ),
}


def resolve_iqb_config(
    config: "IqbConfig | Mapping | str | None",
) -> IqbConfig:
    """Resolve a config object, payload, preset name, or ``None``.

    ``None`` means :data:`DEFAULT_IQB_CONFIG`; a string names an entry
    of :data:`IQB_PRESETS`; a mapping is parsed (and validated) as a
    config payload.
    """
    if config is None:
        return DEFAULT_IQB_CONFIG
    if isinstance(config, IqbConfig):
        return config
    if isinstance(config, str):
        try:
            return IQB_PRESETS[config]
        except KeyError:
            known = ", ".join(sorted(IQB_PRESETS))
            raise AnalysisError(
                f"unknown IQB preset {config!r} (expected one of: {known})"
            ) from None
    return IqbConfig.from_payload(config)


# ---------------------------------------------------------------------------
# Scoring: vectorized columnar path and the scalar reference.
# ---------------------------------------------------------------------------


def _metric_columns(users: UserColumns) -> dict[str, np.ndarray]:
    return {
        "download_mbps": users.capacity_down_mbps,
        "upload_mbps": users.current("capacity_up_mbps"),
        "latency_ms": users.latency_ms,
        "loss_fraction": users.loss_fraction,
    }


def _metric_values(user: UserRecord) -> dict[str, float]:
    return {
        "download_mbps": user.capacity_down_mbps,
        "upload_mbps": user.current.capacity_up_mbps,
        "latency_ms": user.latency_ms,
        "loss_fraction": user.loss_fraction,
    }


def _requirement_score_array(
    requirement: IqbRequirement, values: np.ndarray
) -> np.ndarray:
    finite = np.isfinite(values)
    if requirement.kind == "min":
        with np.errstate(invalid="ignore"):
            score = np.clip(values / requirement.threshold, 0.0, 1.0)
    else:
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            score = np.where(
                values <= requirement.threshold,
                1.0,
                requirement.threshold / values,
            )
    return np.where(finite, score, 0.0)


def _requirement_met_array(
    requirement: IqbRequirement, values: np.ndarray
) -> np.ndarray:
    finite = np.isfinite(values)
    if requirement.kind == "min":
        return finite & (values >= requirement.threshold)
    return finite & (values <= requirement.threshold)


def _requirement_score(requirement: IqbRequirement, value: float) -> float:
    # Straight-line scalar twin of _requirement_score_array: the same
    # divisions and clips in the same order, so the two paths produce
    # bit-identical floats.
    if not math.isfinite(value):
        return 0.0
    if requirement.kind == "min":
        return min(1.0, max(0.0, value / requirement.threshold))
    if value <= requirement.threshold:
        return 1.0
    return requirement.threshold / value


@dataclass(frozen=True)
class HouseholdScores:
    """Vectorized per-household scores for one config and dataset."""

    config: IqbConfig
    #: Per-use-case score arrays, one value per user, config order.
    use_case_scores: dict[str, np.ndarray]
    #: Weighted composite across positive-weight use cases.
    composite: np.ndarray
    #: Whether every positive-weight requirement of every positive-weight
    #: use case is met outright (threshold comparisons, not score == 1).
    ready: np.ndarray

    @property
    def n_users(self) -> int:
        return int(self.composite.size)


def score_columns(
    users: UserColumns, config: IqbConfig | None = None
) -> HouseholdScores:
    """Score every household of a columnar dataset (vectorized)."""
    config = resolve_iqb_config(config)
    metrics = _metric_columns(users)
    n = users.n_users
    use_case_scores: dict[str, np.ndarray] = {}
    ready = np.ones(n, dtype=bool)
    composite_num = np.zeros(n, dtype=float)
    composite_den = 0.0
    for use_case in config.use_cases:
        numerator = np.zeros(n, dtype=float)
        denominator = 0.0
        for requirement in use_case.requirements:
            if requirement.weight <= 0:
                continue
            values = metrics[requirement.metric]
            numerator = numerator + requirement.weight * (
                _requirement_score_array(requirement, values)
            )
            denominator += requirement.weight
            if use_case.weight > 0:
                ready &= _requirement_met_array(requirement, values)
        score = numerator / denominator
        use_case_scores[use_case.name] = score
        if use_case.weight > 0:
            composite_num = composite_num + use_case.weight * score
            composite_den += use_case.weight
    composite = composite_num / composite_den
    obs.count("iqb.scored", n)
    obs.count("iqb.ready", int(np.count_nonzero(ready)))
    return HouseholdScores(
        config=config,
        use_case_scores=use_case_scores,
        composite=composite,
        ready=ready,
    )


@dataclass(frozen=True)
class RecordScore:
    """One household's scores via the scalar reference path."""

    use_case_scores: dict[str, float]
    composite: float
    ready: bool


def score_record(
    user: UserRecord, config: IqbConfig | None = None
) -> RecordScore:
    """Scalar reference implementation of :func:`score_columns`.

    Exactly (bit-for-bit) the vectorized path's result for the same
    household — the equivalence property in ``tests/analysis/test_iqb``
    holds the two implementations together.
    """
    config = resolve_iqb_config(config)
    metrics = _metric_values(user)
    use_case_scores: dict[str, float] = {}
    ready = True
    composite_num = 0.0
    composite_den = 0.0
    for use_case in config.use_cases:
        numerator = 0.0
        denominator = 0.0
        for requirement in use_case.requirements:
            if requirement.weight <= 0:
                continue
            value = metrics[requirement.metric]
            numerator = numerator + requirement.weight * (
                _requirement_score(requirement, value)
            )
            denominator += requirement.weight
            if use_case.weight > 0:
                met = math.isfinite(value) and (
                    value >= requirement.threshold
                    if requirement.kind == "min"
                    else value <= requirement.threshold
                )
                ready = ready and met
        score = numerator / denominator
        use_case_scores[use_case.name] = score
        if use_case.weight > 0:
            composite_num = composite_num + use_case.weight * score
            composite_den += use_case.weight
    return RecordScore(
        use_case_scores=use_case_scores,
        composite=composite_num / composite_den,
        ready=ready,
    )


# ---------------------------------------------------------------------------
# Market aggregation.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MarketScore:
    """One market's (country's) aggregated barometer scores."""

    market: str
    n_users: int
    mean_composite: float
    n_ready: int
    #: Wilson interval on the fully-ready share.
    ready_ci: ConfidenceInterval
    #: Per-use-case mean scores, config order.
    use_case_means: tuple[tuple[str, float], ...]

    @property
    def ready_share(self) -> float:
        return self.n_ready / self.n_users

    def to_payload(self) -> dict:
        return {
            "market": self.market,
            "n_users": self.n_users,
            "mean_composite": round(self.mean_composite, 12),
            "n_ready": self.n_ready,
            "ready_share": round(self.ready_share, 12),
            "ready_ci_low": round(self.ready_ci.low, 12),
            "ready_ci_high": round(self.ready_ci.high, 12),
            "use_case_means": {
                name: round(value, 12)
                for name, value in self.use_case_means
            },
        }


def market_barometer(
    users: "Sequence[UserRecord] | UserColumns",
    config: IqbConfig | None = None,
    *,
    min_users: int = _MIN_MARKET_USERS,
) -> tuple[MarketScore, ...]:
    """Aggregate household scores per market (country), name order.

    Markets with fewer than ``min_users`` households are dropped —
    a two-household "market" mean is noise, not a barometer. Reductions
    run over sorted values so cache-loaded and freshly built worlds
    (whose row orders may differ) aggregate to identical floats.
    """
    if not isinstance(users, UserColumns):
        users = UserColumns.from_records(users)
    config = resolve_iqb_config(config)
    scores = score_columns(users, config)
    countries = users.current("country")
    markets = []
    for country in np.unique(countries):
        mask = countries == country
        n = int(np.count_nonzero(mask))
        if n < min_users:
            continue
        n_ready = int(np.count_nonzero(scores.ready[mask]))
        markets.append(
            MarketScore(
                market=country.decode("utf-8"),
                n_users=n,
                mean_composite=float(
                    np.sort(scores.composite[mask]).mean()
                ),
                n_ready=n_ready,
                ready_ci=wilson_interval(n_ready, n),
                use_case_means=tuple(
                    (name, float(np.sort(values[mask]).mean()))
                    for name, values in scores.use_case_scores.items()
                ),
            )
        )
    obs.count("iqb.markets", len(markets))
    return tuple(markets)


# ---------------------------------------------------------------------------
# The IQB-vs-demand natural experiment.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IqbExperimentResult:
    """Top-vs-bottom composite-tercile demand experiment."""

    config_name: str
    experiment: MatchedExperimentResult
    n_control: int
    n_treatment: int
    #: Capacity classes whose composite terciles fed the arms.
    n_classes: int


def iqb_experiment(
    users: Sequence[UserRecord],
    config: IqbConfig | None = None,
    *,
    metric: str = "mean",
    include_bt: bool = False,
) -> IqbExperimentResult:
    """Does a higher barometer score predict demand beyond capacity?

    Households are grouped into the paper's power-of-two capacity
    classes and tercile-split on the composite score *within* each
    class: control pools every class's bottom tercile, treatment the
    top. A global split would put the arms in different capacity tiers
    outright (the composite is capacity-heavy) and the capacity caliper
    would then discard every candidate pair; the within-class split
    keeps both arms in every tier. Pairs are further matched on
    capacity and access price, so a holding verdict means
    quality-of-experience — not the capacity tier it correlates with —
    moves demand. Extends the paper's Table 7/8 single-metric
    experiments to the full use-case composite.
    """
    config = resolve_iqb_config(config)
    users = list(users)
    if len(users) < _MIN_EXPERIMENT_USERS:
        raise AnalysisError(
            f"the IQB experiment needs at least {_MIN_EXPERIMENT_USERS} "
            f"households, got {len(users)}"
        )
    with obs.span(f"iqb/experiment/{config.name}"):
        columns = UserColumns.from_records(users)
        composite = score_columns(columns, config).composite
        classes = capacity_class_spec().index_of_array(
            columns.capacity_down_mbps
        )
        control: list[UserRecord] = []
        treatment: list[UserRecord] = []
        n_classes = 0
        for klass in np.unique(classes):
            if klass < 0:
                continue
            members = np.flatnonzero(classes == klass)
            if members.size < _MIN_CLASS_USERS:
                continue
            class_scores = composite[members]
            low = float(np.quantile(class_scores, 1.0 / 3.0))
            high = float(np.quantile(class_scores, 2.0 / 3.0))
            if not low < high:
                continue
            n_classes += 1
            control.extend(
                users[i] for i in members if composite[i] <= low
            )
            treatment.extend(
                users[i] for i in members if composite[i] >= high
            )
        if not n_classes:
            raise AnalysisError(
                f"IQB config {config.name!r}: no capacity class has "
                f">= {_MIN_CLASS_USERS} households with distinct "
                "composite terciles"
            )
        result = matched_experiment(
            f"iqb[{config.name}] bottom vs top tercile",
            control,
            treatment,
            confounders=_IQB_CONFOUNDERS,
            outcome=demand_outcome(metric, include_bt),
            hypothesis="higher use-case quality increases demand",
        )
    obs.count("iqb.experiments.run")
    return IqbExperimentResult(
        config_name=config.name,
        experiment=result,
        n_control=len(control),
        n_treatment=len(treatment),
        n_classes=n_classes,
    )


# ---------------------------------------------------------------------------
# Rendering: the report fragment text and the JSON payload.
# ---------------------------------------------------------------------------


def _population_lines(
    label: str, scores: HouseholdScores
) -> list[str]:
    n = scores.n_users
    n_ready = int(np.count_nonzero(scores.ready))
    ci = wilson_interval(n_ready, n)
    lines = [
        f"  {label}: {n} households, composite "
        f"{float(np.sort(scores.composite).mean()):.3f}, fully ready "
        f"{100 * n_ready / n:.1f}% [{100 * ci.low:.1f}%, "
        f"{100 * ci.high:.1f}%]"
    ]
    for name, values in scores.use_case_scores.items():
        lines.append(
            f"    {name:<18} mean score {float(np.sort(values).mean()):.3f}"
        )
    return lines


def format_iqb_report(
    dasu: Sequence[UserRecord] | UserColumns,
    fcc: Sequence[UserRecord] | UserColumns | None = None,
    config: IqbConfig | None = None,
    *,
    max_markets: int = 12,
) -> str:
    """The barometer block: population scores, markets, experiment."""
    config = resolve_iqb_config(config)
    dasu_records = None if isinstance(dasu, UserColumns) else list(dasu)
    dasu_columns = (
        dasu
        if isinstance(dasu, UserColumns)
        else UserColumns.from_records(dasu_records)
    )
    if dasu_columns.n_users == 0:
        raise AnalysisError("the IQB barometer needs Dasu households")
    with obs.span(f"iqb/report/{config.name}"):
        lines = [f"Internet quality barometer (config {config.name!r})"]
        lines.extend(
            _population_lines("Dasu", score_columns(dasu_columns, config))
        )
        if fcc is not None:
            fcc_columns = (
                fcc
                if isinstance(fcc, UserColumns)
                else UserColumns.from_records(fcc)
            )
            if fcc_columns.n_users:
                lines.extend(
                    _population_lines(
                        "FCC", score_columns(fcc_columns, config)
                    )
                )
        markets = market_barometer(dasu_columns, config)
        shown = markets[:max_markets]
        lines.append(
            f"  markets (>= {_MIN_MARKET_USERS} households, "
            f"{len(shown)} of {len(markets)} shown):"
        )
        for market in shown:
            lines.append(
                f"    {market.market:<14} n={market.n_users:<6} "
                f"composite {market.mean_composite:.3f}  ready "
                f"{100 * market.ready_share:5.1f}% "
                f"[{100 * market.ready_ci.low:.1f}%, "
                f"{100 * market.ready_ci.high:.1f}%]"
            )
        if dasu_records is None:
            dasu_records = list(dasu_columns.iter_records())
        try:
            experiment = iqb_experiment(dasu_records, config)
        except AnalysisError as exc:
            lines.append(f"  IQB-vs-demand experiment skipped: {exc}")
        else:
            result = experiment.experiment.result
            verdict = "holds" if result.rejects_null else "null retained"
            lines.append(
                f"  IQB vs demand (within-class terciles over "
                f"{experiment.n_classes} capacity classes, "
                f"capacity+price matched): H holds "
                f"{100 * result.fraction_holds:.1f}% of "
                f"{result.n_pairs} pairs, p={result.p_value:.3g} "
                f"-> {verdict}"
            )
    return "\n".join(lines)


def iqb_payload(
    dasu: Sequence[UserRecord] | UserColumns,
    fcc: Sequence[UserRecord] | UserColumns | None = None,
    config: IqbConfig | None = None,
) -> dict:
    """JSON-ready barometer payload (``iqb.json``, ``/iqb.json``).

    Deterministic for a fixed dataset: floats are rounded to 12 digits
    and reductions sort first, so warm/cold caches and any ``--jobs``
    value serialize byte-identically.
    """
    config = resolve_iqb_config(config)
    dasu_records = None if isinstance(dasu, UserColumns) else list(dasu)
    dasu_columns = (
        dasu
        if isinstance(dasu, UserColumns)
        else UserColumns.from_records(dasu_records)
    )
    if dasu_columns.n_users == 0:
        raise AnalysisError("the IQB barometer needs Dasu households")

    def population(columns: UserColumns) -> dict:
        scores = score_columns(columns, config)
        n_ready = int(np.count_nonzero(scores.ready))
        ci = wilson_interval(n_ready, scores.n_users)
        return {
            "n_users": scores.n_users,
            "mean_composite": round(
                float(np.sort(scores.composite).mean()), 12
            ),
            "n_ready": n_ready,
            "ready_share": round(n_ready / scores.n_users, 12),
            "ready_ci_low": round(ci.low, 12),
            "ready_ci_high": round(ci.high, 12),
            "use_case_means": {
                name: round(float(np.sort(values).mean()), 12)
                for name, values in scores.use_case_scores.items()
            },
        }

    payload: dict = {
        "config": config.to_payload(),
        "dasu": population(dasu_columns),
        "markets": [
            m.to_payload() for m in market_barometer(dasu_columns, config)
        ],
    }
    if fcc is not None:
        fcc_columns = (
            fcc if isinstance(fcc, UserColumns) else UserColumns.from_records(fcc)
        )
        if fcc_columns.n_users:
            payload["fcc"] = population(fcc_columns)
    if dasu_records is None:
        dasu_records = list(dasu_columns.iter_records())
    try:
        experiment = iqb_experiment(dasu_records, config)
    except AnalysisError as exc:
        payload["experiment"] = {"skipped": str(exc)}
    else:
        result = experiment.experiment.result
        payload["experiment"] = {
            "name": result.name,
            "n_control": experiment.n_control,
            "n_treatment": experiment.n_treatment,
            "n_classes": experiment.n_classes,
            "n_pairs": result.n_pairs,
            "fraction_holds": round(result.fraction_holds, 12),
            "p_value": round(result.p_value, 12),
            "significant": bool(result.statistically_significant),
            "rejects_null": bool(result.rejects_null),
        }
    return payload
