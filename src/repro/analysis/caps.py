"""Usage caps and demand — an extension experiment.

The paper cites Chetty et al. (SIGCHI'12, "You're capped") on how
monthly traffic limits change household behavior but does not test the
effect itself. The plan survey carries each plan's cap, so the natural-
experiment machinery can: users on capped plans are compared with
otherwise-similar users on uncapped plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..datasets.records import UserRecord
from ..exceptions import AnalysisError
from .common import MatchedExperimentResult, demand_outcome, matched_experiment

__all__ = ["CapsResult", "caps_experiment"]

#: Caps at or above this many GB/month almost never bind for 2011-2013
#: demand levels; "tight" caps are the interesting treatment.
TIGHT_CAP_GB = 100.0


@dataclass(frozen=True)
class CapsResult:
    """The caps experiment plus group bookkeeping."""

    experiment: MatchedExperimentResult
    n_uncapped: int
    n_tight_capped: int
    n_loose_capped: int

    @property
    def capped_use_less(self) -> bool:
        """Whether uncapped users out-demand matched tightly-capped users."""
        return self.experiment.result.fraction_holds > 0.5


def caps_experiment(
    users: Sequence[UserRecord],
    metric: str = "mean",
    include_bt: bool = True,
    tight_cap_gb: float = TIGHT_CAP_GB,
    confounders: Sequence[str] = ("capacity", "latency", "loss", "price_of_access"),
) -> CapsResult:
    """Do tight monthly caps depress demand?

    Control: users on plans with a cap below ``tight_cap_gb``.
    Treatment: users on uncapped plans. H: removing the cap raises
    demand — i.e. the Chetty et al. rationing effect, measured with the
    paper's own machinery. Average demand including BitTorrent is the
    natural outcome (bulk transfer is exactly what caps ration).
    """
    uncapped = [u for u in users if u.plan_data_cap_gb is None]
    tight = [
        u
        for u in users
        if u.plan_data_cap_gb is not None
        and u.plan_data_cap_gb < tight_cap_gb
    ]
    loose = [
        u
        for u in users
        if u.plan_data_cap_gb is not None
        and u.plan_data_cap_gb >= tight_cap_gb
    ]
    if not uncapped or not tight:
        raise AnalysisError("need both uncapped and tightly-capped users")
    experiment = matched_experiment(
        "tight cap (control) vs no cap (treatment)",
        control=tight,
        treatment=uncapped,
        confounders=confounders,
        outcome=demand_outcome(metric, include_bt),
        hypothesis="removing a tight monthly cap increases demand",
    )
    return CapsResult(
        experiment=experiment,
        n_uncapped=len(uncapped),
        n_tight_capped=len(tight),
        n_loose_capped=len(loose),
    )
