"""The complete reproduction report.

Runs every table and figure of the paper's evaluation over a set of
datasets and renders one plain-text report with the paper's reported
values alongside the measured ones. This is what the CLI's ``report``
command and the benchmark summaries are built from.

The report is assembled from independent **fragments** — one natural
experiment, table, or binned-curve panel each — declared in
:data:`_FRAGMENTS` and grouped into the paper's sections by
:data:`_SECTIONS`. Because fragments share no state, they run through
:func:`repro.core.executor.run_sharded` exactly like the world builder's
shards: ``jobs=1`` executes them serially in-process, ``jobs=N`` fans
them out over a process pool, and either way the fragments are rendered
independently and reassembled in declaration order, so the report text
is byte-identical for any worker count. Section-skip semantics are
preserved: if any fragment of a section raises
:class:`~repro.exceptions.AnalysisError`, the section collapses to
``[section skipped: ...]`` citing the first failing fragment in section
order, exactly as the serial single-pass implementation did.

Each fragment is timed (wall and CPU, inside whichever process ran it);
pass a :class:`~repro.core.timing.StageTimer` to collect the profile the
CLI's ``--profile`` flag prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.executor import run_sharded
from ..core.timing import StageTimer, StageTiming, measure_stage
from ..datasets.records import UserRecord
from ..exceptions import AnalysisError
from ..market.survey import PlanSurvey
from ..obs import ledger as obs
from ..obs.ledger import RunLedger, Span
from . import capacity, characterization, iqb, longitudinal, price, quality, upgrade_cost
from .price import Table4Result
from .report import format_curve, format_experiment_row
from .upgrade_cost import Table5Result

__all__ = [
    "FRAGMENT_INPUTS",
    "assemble_report",
    "fragment_inputs",
    "fragment_keys",
    "full_report",
    "render_fragment",
    "section_reports",
]


# ---------------------------------------------------------------------------
# Fragment builders. Each returns one rendered text block (or None when its
# optional dataset is absent) for a slice of a section, and must not depend
# on any other fragment having run.
# ---------------------------------------------------------------------------


def _fragment_fig1(dasu, fcc, survey) -> str:
    result = characterization.figure1(dasu)
    lines = [f"Figure 1 — connection characterization (n={result.n_users})"]
    for label, paper, measured in result.summary_rows():
        lines.append(
            f"  {label:<40} paper {paper:>8.3f}   measured {measured:>8.3f}"
        )
    return "\n".join(lines)


def _fragment_fig2(dasu, fcc, survey) -> str:
    fig2 = capacity.figure2(dasu)
    lines = [format_curve("  Fig. 2d: peak demand, no BT", fig2.peak_no_bt)]
    lines.append(
        f"  min panel correlation: paper >= 0.870, measured "
        f"{fig2.min_correlation:.3f}"
    )
    return "\n".join(lines)


def _fragment_fig3(dasu, fcc, survey) -> str | None:
    if not fcc:
        return None
    fig3 = capacity.figure3(dasu, fcc)
    return (
        f"  Fig. 3: Dasu/FCC mean ratio {fig3.mean_ratio_dasu_over_fcc:.2f}"
        f", peak ratio {fig3.peak_ratio_dasu_over_fcc:.2f}"
    )


def _fragment_table1(dasu, fcc, survey) -> str:
    t1 = capacity.table1(dasu)
    lines = [f"  Table 1 ({t1.n_observations} slow/fast pairs):"]
    for label, paper, result in t1.rows():
        lines.append("  " + format_experiment_row(label, paper, result))
    return "\n".join(lines)


def _fragment_fig4(dasu, fcc, survey) -> str:
    fig4 = capacity.figure4(dasu)
    return (
        f"  Fig. 4: median mean usage x{fig4.mean_ratio_at_median:.1f} "
        f"(paper x2.0), median peak x{fig4.peak_ratio_at_median:.1f} "
        f"(paper x3.3) on the faster network"
    )


def _fragment_table2(dasu, fcc, survey) -> str:
    t2 = capacity.table2(dasu, "dasu")
    lines = ["  Table 2 (Dasu):"]
    for row in t2.rows:
        lines.append(
            "  "
            + format_experiment_row(
                f"{row.control_bin.label()} vs next", None, row.experiment
            )
        )
    return "\n".join(lines)


def _fragment_fig6(dasu, fcc, survey) -> str:
    result = longitudinal.figure6(dasu, min_users=30)
    lines = ["Section 4 — longitudinal trends (Fig. 6)"]
    lines.append(
        "  "
        + format_experiment_row(
            "2011 vs 2013 (pooled)", None, result.cross_year_experiment
        )
    )
    lines.append(
        f"  classes rejecting the no-change null: "
        f"{len(result.classes_rejecting_null())} of "
        f"{len(result.per_class_experiments)}"
    )
    lines.append(
        f"  max class drift |log ratio|: {result.max_class_drift():.3f}"
    )
    return "\n".join(lines)


def _fragment_table3(dasu, fcc, survey) -> str:
    t3 = price.table3(dasu)
    lines = []
    for label, paper, result in t3.rows():
        lines.append("  " + format_experiment_row(label, paper, result))
    return "\n".join(lines)


def _fragment_table4(dasu, fcc, survey) -> str | None:
    if survey is None:
        return None
    t4 = price.table4(dasu, survey)
    lines = ["  Table 4 (paper/measured):"]
    for row in t4.rows:
        paper = Table4Result.PAPER_VALUES[row.country]
        lines.append(
            f"    {row.country:<13} median {paper[1]:>6.2f}/"
            f"{row.median_capacity_mbps:<8.2f} income-share "
            f"{100 * paper[5]:>4.1f}%/"
            f"{100 * row.cost_share_of_monthly_income:.1f}%"
        )
    return "\n".join(lines)


def _fragment_fig7(dasu, fcc, survey) -> str:
    fig7 = price.figure7(dasu)
    lines = [
        "  Fig. 7: utilization order reverses capacity order: "
        f"{fig7.utilization_order_reverses_capacity_order()}"
    ]
    for entry in fig7.countries:
        lines.append(
            f"    {entry.country:<13} capacity {entry.median_capacity_mbps:>7.2f}"
            f" Mbps, peak utilization {100 * entry.mean_peak_utilization:>5.1f}%"
        )
    return "\n".join(lines)


def _fragment_fig10(dasu, fcc, survey) -> str | None:
    if survey is None:
        return None
    fig10 = upgrade_cost.figure10(survey)
    strong, moderate = upgrade_cost.correlation_summary(survey)
    return (
        f"  Fig. 10: {fig10.n_countries} qualifying markets; "
        f"correlation strong {strong:.2f} (paper 0.66), "
        f"moderate {moderate:.2f} (paper 0.81)"
    )


def _fragment_table5(dasu, fcc, survey) -> str | None:
    if survey is None:
        return None
    t5 = upgrade_cost.table5(survey)
    lines = ["  Table 5 (paper/measured, % above $1/$5/$10):"]
    for row in t5.rows:
        if row.n_countries == 0:
            continue
        paper = Table5Result.PAPER_VALUES[row.region]
        lines.append(
            f"    {row.region:<27} "
            f"{100 * paper[0]:>3.0f}/{100 * row.share_above_1:<4.0f} "
            f"{100 * paper[1]:>3.0f}/{100 * row.share_above_5:<4.0f} "
            f"{100 * paper[2]:>3.0f}/{100 * row.share_above_10:<4.0f}"
        )
    return "\n".join(lines)


def _table6_fragment(include_bt: bool) -> Callable:
    def build(dasu, fcc, survey) -> str:
        t6 = upgrade_cost.table6(dasu, include_bt=include_bt)
        tag = "w/ BT" if include_bt else "no BT"
        lines = [f"  Table 6 ({tag}):"]
        for label, paper, result in t6.rows():
            lines.append("  " + format_experiment_row(label, paper, result))
        return "\n".join(lines)

    return build


def _fragment_table7(dasu, fcc, survey) -> str:
    t7 = quality.table7(dasu)
    lines = ["  Table 7 (latency):"]
    for row in t7.rows:
        lines.append(
            "  "
            + format_experiment_row(
                f"control (512,2048] vs {row.treatment_bin.label('ms')}",
                row.paper_percent,
                row.experiment,
            )
        )
    return "\n".join(lines)


def _fragment_fig11(dasu, fcc, survey) -> str:
    fig11 = quality.figure11(dasu)
    return (
        f"  Fig. 11: India median latency {fig11.india_median_ndt_ms:.0f} ms "
        f"vs rest {fig11.other_median_ndt_ms:.0f} ms; India demands less "
        f"than matched US users {100 * fig11.india_lower_demand_share:.0f}% "
        f"of the time (paper 62%)"
    )


def _fragment_table8(dasu, fcc, survey) -> str:
    t8 = quality.table8(dasu)
    lines = ["  Table 8 (packet loss):"]
    for row in t8.rows:
        lines.append(
            "  "
            + format_experiment_row(
                row.experiment.result.name, row.paper_percent, row.experiment
            )
        )
    return "\n".join(lines)


def _fragment_fig12(dasu, fcc, survey) -> str:
    fig12 = quality.figure12(dasu)
    return (
        f"  Fig. 12: median loss India {fig12.india_median_loss_pct:.2f}% "
        f"vs rest {fig12.other_median_loss_pct:.3f}%"
    )


def _fragment_iqb(dasu, fcc, survey) -> str:
    return iqb.format_iqb_report(dasu, fcc)


#: Every fragment of the report, in declaration (= output) order.
_FRAGMENTS: dict[str, Callable] = {
    "fig1": _fragment_fig1,
    "fig2": _fragment_fig2,
    "fig3": _fragment_fig3,
    "table1": _fragment_table1,
    "fig4": _fragment_fig4,
    "table2": _fragment_table2,
    "fig6": _fragment_fig6,
    "table3": _fragment_table3,
    "table4": _fragment_table4,
    "fig7": _fragment_fig7,
    "fig10": _fragment_fig10,
    "table5": _fragment_table5,
    "table6_bt": _table6_fragment(include_bt=True),
    "table6_nobt": _table6_fragment(include_bt=False),
    "table7": _fragment_table7,
    "fig11": _fragment_fig11,
    "table8": _fragment_table8,
    "fig12": _fragment_fig12,
    "iqb": _fragment_iqb,
}

#: The world slices each fragment actually reads. Everything not listed
#: uses the Dasu dataset alone — the map is what lets the fragment-level
#: DAG (see :func:`repro.dag.pipelines.fragment_report_spec`) key each
#: fragment on only the content hashes it depends on, so appending
#: households recomputes the Dasu-driven fragments but leaves
#: survey-only ones (fig10, table5) cached.
FRAGMENT_INPUTS: dict[str, tuple[str, ...]] = {
    "fig3": ("dasu", "fcc"),
    "table4": ("dasu", "survey"),
    "fig10": ("survey",),
    "table5": ("survey",),
    "iqb": ("dasu", "fcc"),
}


def fragment_inputs(key: str) -> tuple[str, ...]:
    """The slice names fragment ``key`` reads (default: Dasu only)."""
    return FRAGMENT_INPUTS.get(key, ("dasu",))


def fragment_keys() -> tuple[str, ...]:
    """Every fragment key, in declaration (= output) order."""
    return tuple(_FRAGMENTS)


#: The paper's sections: an optional static header plus the ordered
#: fragment keys whose blocks make up the section body.
_SECTIONS: tuple[tuple[str | None, tuple[str, ...]], ...] = (
    (None, ("fig1",)),
    ("Section 3 — impact of capacity", ("fig2", "fig3", "table1", "fig4", "table2")),
    (None, ("fig6",)),
    ("Section 5 — price of broadband access", ("table3", "table4", "fig7")),
    (
        "Section 6 — cost of increasing capacity",
        ("fig10", "table5", "table6_bt", "table6_nobt"),
    ),
    ("Section 7 — connection quality", ("table7", "fig11", "table8", "fig12")),
    ("Extension — internet quality barometer", ("iqb",)),
)


@dataclass(frozen=True)
class _FragmentOutput:
    """One fragment's rendered block (or failure) plus its timing."""

    key: str
    text: str | None
    error: str | None
    #: ``None`` when the fragment was rendered outside a timed pass
    #: (:func:`assemble_report` over DAG-produced fragments).
    timing: StageTiming | None

    @property
    def failed(self) -> bool:
        return self.error is not None


# Worker-process context: the datasets are shipped once per worker via the
# pool initializer instead of once per task, so a fragment task is just its
# key. With jobs=1, run_sharded invokes the initializer in-process and the
# serial path exercises exactly the same code.
_CTX: tuple | None = None


def _init_fragment_worker(dasu, fcc, survey) -> None:
    global _CTX
    _CTX = (dasu, fcc, survey)


def _run_fragment(key: str) -> _FragmentOutput:
    assert _CTX is not None, "fragment worker used before initialization"
    dasu, fcc, survey = _CTX
    build = _FRAGMENTS[key]

    def build_safe() -> tuple[str | None, str | None]:
        try:
            return build(dasu, fcc, survey), None
        except AnalysisError as exc:
            return None, str(exc)

    (text, error), timing = measure_stage(key, build_safe)
    # Ledger accounting (no-op outside a traced run). The span carries
    # the same duration as the profile timing, so ``--profile`` is a
    # view over the ledger rather than a second clock.
    ledger = obs.current()
    if ledger is not None:
        ledger.add_span(
            Span(
                name=f"report/{key}",
                wall_s=timing.wall_s,
                cpu_s=timing.cpu_s,
            )
        )
    obs.count("report.fragments.run")
    if error is not None:
        obs.count("report.fragments.failed")
    elif not text:
        obs.count("report.fragments.empty")
    return _FragmentOutput(key=key, text=text, error=error, timing=timing)


def _assemble_section(
    header: str | None, outputs: Sequence[_FragmentOutput]
) -> str:
    """Join fragment blocks under the section header.

    The first failed fragment (in section order) skips the whole
    section, mirroring the serial implementation where an
    AnalysisError aborted the section at that point.
    """
    for out in outputs:
        if out.failed:
            return f"[section skipped: {out.error}]"
    lines = [] if header is None else [header]
    for out in outputs:
        # None (dataset absent) and "" (a table with zero rows) both
        # rendered nothing in the serial single-pass implementation.
        if out.text:
            lines.append(out.text)
    return "\n".join(lines)


def render_fragment(
    key: str,
    dasu: Sequence[UserRecord] = (),
    fcc: Sequence[UserRecord] | None = None,
    survey: PlanSurvey | None = None,
) -> tuple[str | None, str | None]:
    """Render one fragment without timing or ledger accounting.

    Returns ``(text, error)`` — exactly the failure semantics of the
    in-process path (:class:`~repro.exceptions.AnalysisError` becomes a
    section-skip message; ``None`` text means the fragment's optional
    dataset is absent). This is the entry point for DAG fragment stages,
    whose artifacts must contain no wall-clock state so an unchanged
    input hashes to an unchanged output.
    """
    build = _FRAGMENTS[key]
    try:
        return build(dasu, fcc, survey), None
    except AnalysisError as exc:
        return None, str(exc)


def assemble_report(
    fragments: dict[str, tuple[str | None, str | None]],
    *,
    n_dasu: int,
    n_fcc: int = 0,
    n_plans: int | None = None,
) -> str:
    """Assemble the full report text from pre-rendered fragments.

    ``fragments`` maps every fragment key to its ``(text, error)`` pair
    (:func:`render_fragment`'s return). The output is byte-identical to
    :func:`full_report` over the same datasets — same header, same
    dividers, same section-skip semantics — which is what lets the
    fragment-level DAG serve a report indistinguishable from a cold
    in-process render.
    """
    if n_dasu == 0:
        raise AnalysisError("a report needs at least the Dasu dataset")
    outputs = {
        key: _FragmentOutput(key=key, text=text, error=error, timing=None)
        for key, (text, error) in fragments.items()
    }
    missing = set(_FRAGMENTS) - set(outputs)
    if missing:
        raise AnalysisError(
            f"missing fragments: {', '.join(sorted(missing))}"
        )
    header = (
        "Reproduction report — Bischof, Bustamante & Stanojevic, "
        "IMC 2014\n"
        f"datasets: {n_dasu} Dasu users"
        + (f", {n_fcc} FCC users" if n_fcc else "")
        + (f", {n_plans} plans" if n_plans is not None else "")
    )
    divider = "=" * 72
    blocks = [header]
    for section_header, section_keys in _SECTIONS:
        blocks.append(divider)
        blocks.append(
            _assemble_section(
                section_header, [outputs[k] for k in section_keys]
            )
        )
    return "\n".join(blocks)


def section_reports(
    dasu: Sequence[UserRecord],
    fcc: Sequence[UserRecord] | None = None,
    survey: PlanSurvey | None = None,
    *,
    jobs: int | None = 1,
    profiler: StageTimer | None = None,
    ledger: RunLedger | None = None,
) -> list[str]:
    """One rendered block per paper section; sections whose data are
    insufficient (e.g. no Indian users) are reported as skipped rather
    than aborting the whole report.

    ``jobs`` fans the fragments out over a process pool (``None`` = one
    worker per CPU); the rendered text is byte-identical for any value.
    ``profiler`` collects one :class:`StageTiming` per fragment, in
    report order. ``ledger`` accumulates the analysis stage's run-ledger
    events (``report/<key>`` spans, experiment and matching counters),
    merged in fragment-declaration order for any worker count.
    """
    if not dasu:
        raise AnalysisError("a report needs at least the Dasu dataset")
    keys = [key for _, section_keys in _SECTIONS for key in section_keys]
    outputs = run_sharded(
        _run_fragment,
        keys,
        jobs=jobs,
        initializer=_init_fragment_worker,
        initargs=(dasu, fcc, survey),
        ledger=ledger,
    )
    by_key = {out.key: out for out in outputs}
    if profiler is not None:
        for out in outputs:
            profiler.add(out.timing)
    return [
        _assemble_section(header, [by_key[k] for k in section_keys])
        for header, section_keys in _SECTIONS
    ]


def full_report(
    dasu: Sequence[UserRecord],
    fcc: Sequence[UserRecord] | None = None,
    survey: PlanSurvey | None = None,
    *,
    jobs: int | None = 1,
    profiler: StageTimer | None = None,
    ledger: RunLedger | None = None,
) -> str:
    """The complete paper-vs-measured report as one string.

    See :func:`section_reports` for the ``jobs``/``profiler``/``ledger``
    contract; the report text is byte-identical for any worker count.
    """
    header = (
        "Reproduction report — Bischof, Bustamante & Stanojevic, "
        "IMC 2014\n"
        f"datasets: {len(dasu)} Dasu users"
        + (f", {len(fcc)} FCC users" if fcc else "")
        + (f", {survey.n_plans} plans" if survey is not None else "")
    )
    divider = "=" * 72
    blocks = [header]
    for section in section_reports(
        dasu, fcc, survey, jobs=jobs, profiler=profiler, ledger=ledger
    ):
        blocks.append(divider)
        blocks.append(section)
    return "\n".join(blocks)
