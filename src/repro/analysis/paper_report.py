"""The complete reproduction report.

Runs every table and figure of the paper's evaluation over a set of
datasets and renders one plain-text report with the paper's reported
values alongside the measured ones. This is what the CLI's ``report``
command and the benchmark summaries are built from.
"""

from __future__ import annotations

from typing import Sequence

from ..datasets.records import UserRecord
from ..exceptions import AnalysisError
from ..market.survey import PlanSurvey
from . import capacity, characterization, longitudinal, price, quality, upgrade_cost
from .price import Table4Result
from .report import format_curve, format_experiment_row
from .upgrade_cost import Table5Result

__all__ = ["full_report", "section_reports"]


def _section_fig1(dasu: Sequence[UserRecord]) -> str:
    result = characterization.figure1(dasu)
    lines = [f"Figure 1 — connection characterization (n={result.n_users})"]
    for label, paper, measured in result.summary_rows():
        lines.append(
            f"  {label:<40} paper {paper:>8.3f}   measured {measured:>8.3f}"
        )
    return "\n".join(lines)


def _section_capacity(
    dasu: Sequence[UserRecord], fcc: Sequence[UserRecord] | None
) -> str:
    lines = ["Section 3 — impact of capacity"]
    fig2 = capacity.figure2(dasu)
    lines.append(format_curve("  Fig. 2d: peak demand, no BT", fig2.peak_no_bt))
    lines.append(
        f"  min panel correlation: paper >= 0.870, measured "
        f"{fig2.min_correlation:.3f}"
    )
    if fcc:
        fig3 = capacity.figure3(dasu, fcc)
        lines.append(
            f"  Fig. 3: Dasu/FCC mean ratio {fig3.mean_ratio_dasu_over_fcc:.2f}"
            f", peak ratio {fig3.peak_ratio_dasu_over_fcc:.2f}"
        )
    t1 = capacity.table1(dasu)
    lines.append(f"  Table 1 ({t1.n_observations} slow/fast pairs):")
    for label, paper, result in t1.rows():
        lines.append("  " + format_experiment_row(label, paper, result))
    fig4 = capacity.figure4(dasu)
    lines.append(
        f"  Fig. 4: median mean usage x{fig4.mean_ratio_at_median:.1f} "
        f"(paper x2.0), median peak x{fig4.peak_ratio_at_median:.1f} "
        f"(paper x3.3) on the faster network"
    )
    t2 = capacity.table2(dasu, "dasu")
    lines.append("  Table 2 (Dasu):")
    for row in t2.rows:
        lines.append(
            "  "
            + format_experiment_row(
                f"{row.control_bin.label()} vs next", None, row.experiment
            )
        )
    return "\n".join(lines)


def _section_longitudinal(dasu: Sequence[UserRecord]) -> str:
    result = longitudinal.figure6(dasu, min_users=30)
    lines = ["Section 4 — longitudinal trends (Fig. 6)"]
    lines.append(
        "  "
        + format_experiment_row(
            "2011 vs 2013 (pooled)", None, result.cross_year_experiment
        )
    )
    lines.append(
        f"  classes rejecting the no-change null: "
        f"{len(result.classes_rejecting_null())} of "
        f"{len(result.per_class_experiments)}"
    )
    lines.append(
        f"  max class drift |log ratio|: {result.max_class_drift():.3f}"
    )
    return "\n".join(lines)


def _section_price(
    dasu: Sequence[UserRecord], survey: PlanSurvey | None
) -> str:
    lines = ["Section 5 — price of broadband access"]
    t3 = price.table3(dasu)
    for label, paper, result in t3.rows():
        lines.append("  " + format_experiment_row(label, paper, result))
    if survey is not None:
        t4 = price.table4(dasu, survey)
        lines.append("  Table 4 (paper/measured):")
        for row in t4.rows:
            paper = Table4Result.PAPER_VALUES[row.country]
            lines.append(
                f"    {row.country:<13} median {paper[1]:>6.2f}/"
                f"{row.median_capacity_mbps:<8.2f} income-share "
                f"{100 * paper[5]:>4.1f}%/"
                f"{100 * row.cost_share_of_monthly_income:.1f}%"
            )
    fig7 = price.figure7(dasu)
    lines.append(
        "  Fig. 7: utilization order reverses capacity order: "
        f"{fig7.utilization_order_reverses_capacity_order()}"
    )
    for entry in fig7.countries:
        lines.append(
            f"    {entry.country:<13} capacity {entry.median_capacity_mbps:>7.2f}"
            f" Mbps, peak utilization {100 * entry.mean_peak_utilization:>5.1f}%"
        )
    return "\n".join(lines)


def _section_upgrade_cost(
    dasu: Sequence[UserRecord], survey: PlanSurvey | None
) -> str:
    lines = ["Section 6 — cost of increasing capacity"]
    if survey is not None:
        fig10 = upgrade_cost.figure10(survey)
        strong, moderate = upgrade_cost.correlation_summary(survey)
        lines.append(
            f"  Fig. 10: {fig10.n_countries} qualifying markets; "
            f"correlation strong {strong:.2f} (paper 0.66), "
            f"moderate {moderate:.2f} (paper 0.81)"
        )
        t5 = upgrade_cost.table5(survey)
        lines.append("  Table 5 (paper/measured, % above $1/$5/$10):")
        for row in t5.rows:
            if row.n_countries == 0:
                continue
            paper = Table5Result.PAPER_VALUES[row.region]
            lines.append(
                f"    {row.region:<27} "
                f"{100 * paper[0]:>3.0f}/{100 * row.share_above_1:<4.0f} "
                f"{100 * paper[1]:>3.0f}/{100 * row.share_above_5:<4.0f} "
                f"{100 * paper[2]:>3.0f}/{100 * row.share_above_10:<4.0f}"
            )
    for include_bt in (True, False):
        t6 = upgrade_cost.table6(dasu, include_bt=include_bt)
        tag = "w/ BT" if include_bt else "no BT"
        lines.append(f"  Table 6 ({tag}):")
        for label, paper, result in t6.rows():
            lines.append("  " + format_experiment_row(label, paper, result))
    return "\n".join(lines)


def _section_quality(dasu: Sequence[UserRecord]) -> str:
    lines = ["Section 7 — connection quality"]
    t7 = quality.table7(dasu)
    lines.append("  Table 7 (latency):")
    for row in t7.rows:
        lines.append(
            "  "
            + format_experiment_row(
                f"control (512,2048] vs {row.treatment_bin.label('ms')}",
                row.paper_percent,
                row.experiment,
            )
        )
    fig11 = quality.figure11(dasu)
    lines.append(
        f"  Fig. 11: India median latency {fig11.india_median_ndt_ms:.0f} ms "
        f"vs rest {fig11.other_median_ndt_ms:.0f} ms; India demands less "
        f"than matched US users {100 * fig11.india_lower_demand_share:.0f}% "
        f"of the time (paper 62%)"
    )
    t8 = quality.table8(dasu)
    lines.append("  Table 8 (packet loss):")
    for row in t8.rows:
        lines.append(
            "  "
            + format_experiment_row(
                row.experiment.result.name, row.paper_percent, row.experiment
            )
        )
    fig12 = quality.figure12(dasu)
    lines.append(
        f"  Fig. 12: median loss India {fig12.india_median_loss_pct:.2f}% "
        f"vs rest {fig12.other_median_loss_pct:.3f}%"
    )
    return "\n".join(lines)


def section_reports(
    dasu: Sequence[UserRecord],
    fcc: Sequence[UserRecord] | None = None,
    survey: PlanSurvey | None = None,
) -> list[str]:
    """One rendered block per paper section; sections whose data are
    insufficient (e.g. no Indian users) are reported as skipped rather
    than aborting the whole report."""
    if not dasu:
        raise AnalysisError("a report needs at least the Dasu dataset")
    sections = []
    builders = (
        lambda: _section_fig1(dasu),
        lambda: _section_capacity(dasu, fcc),
        lambda: _section_longitudinal(dasu),
        lambda: _section_price(dasu, survey),
        lambda: _section_upgrade_cost(dasu, survey),
        lambda: _section_quality(dasu),
    )
    for build in builders:
        try:
            sections.append(build())
        except AnalysisError as exc:
            sections.append(f"[section skipped: {exc}]")
    return sections


def full_report(
    dasu: Sequence[UserRecord],
    fcc: Sequence[UserRecord] | None = None,
    survey: PlanSurvey | None = None,
) -> str:
    """The complete paper-vs-measured report as one string."""
    header = (
        "Reproduction report — Bischof, Bustamante & Stanojevic, "
        "IMC 2014\n"
        f"datasets: {len(dasu)} Dasu users"
        + (f", {len(fcc)} FCC users" if fcc else "")
        + (f", {survey.n_plans} plans" if survey is not None else "")
    )
    divider = "=" * 72
    blocks = [header]
    for section in section_reports(dasu, fcc, survey):
        blocks.append(divider)
        blocks.append(section)
    return "\n".join(blocks)
