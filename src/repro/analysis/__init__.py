"""Reproduction analyses: one entry point per paper table and figure.

Every function takes analysis-ready datasets (:class:`repro.datasets.world.World`
or its parts) and returns a structured result object with the numbers the
paper reports; the benchmark harness renders them next to the paper's
values. See DESIGN.md for the experiment index.

Modules follow the paper's sections:

* :mod:`repro.analysis.characterization` — Sec. 2.2 (Fig. 1);
* :mod:`repro.analysis.capacity` — Sec. 3 (Figs. 2-5, Tables 1-2);
* :mod:`repro.analysis.longitudinal` — Sec. 4 (Fig. 6);
* :mod:`repro.analysis.price` — Sec. 5 (Table 3, Table 4, Figs. 7-9);
* :mod:`repro.analysis.upgrade_cost` — Sec. 6 (Fig. 10, Tables 5-6);
* :mod:`repro.analysis.quality` — Sec. 7 (Tables 7-8, Figs. 11-12).
"""

from . import (
    capacity,
    caps,
    characterization,
    diurnal,
    export,
    longitudinal,
    paper_report,
    price,
    quality,
    segments,
    sensitivity,
    upgrade_cost,
    upload,
)
from .common import binned_demand_curve, matched_experiment
from .paper_report import full_report

__all__ = [
    "binned_demand_curve",
    "capacity",
    "caps",
    "characterization",
    "diurnal",
    "export",
    "full_report",
    "longitudinal",
    "matched_experiment",
    "paper_report",
    "price",
    "quality",
    "segments",
    "sensitivity",
    "upgrade_cost",
    "upload",
]
