"""Sec. 4 — longitudinal trends in usage (Fig. 6).

Per-year demand-vs-capacity curves, plus the natural experiment the
paper describes: comparing matched users of the same capacity class
across years should show *no* significant demand change — traffic growth
comes from subscribers moving up tiers, not from using existing tiers
harder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.binning import BinSpec, capacity_class_spec
from ..core.experiments import ExperimentResult, NaturalExperiment, PairedOutcome
from ..core.matching import match_pairs
from ..core.upgrades import ServicePeriod
from ..datasets.records import PeriodObservation, UserRecord
from ..exceptions import AnalysisError
from .common import BinnedCurve, BinnedCurvePoint
from ..core.stats import mean_confidence_interval

__all__ = ["Figure6Result", "YearCurve", "figure6", "year_observations"]


def year_observations(
    users: Sequence[UserRecord], year: int
) -> list[tuple[UserRecord, PeriodObservation]]:
    """All (user, observation) pairs for one calendar year."""
    out = []
    for user in users:
        obs = user.observation_in_year(year)
        if obs is not None:
            out.append((user, obs))
    return out


def _period_demand(period: ServicePeriod, metric: str, include_bt: bool) -> float:
    if metric == "mean":
        return period.mean_mbps if include_bt else period.mean_no_bt_mbps
    if metric == "peak":
        return period.peak_mbps if include_bt else period.peak_no_bt_mbps
    raise AnalysisError(f"unknown metric {metric!r}")


@dataclass(frozen=True)
class YearCurve:
    """One year's demand-vs-capacity curve."""

    year: int
    curve: BinnedCurve


@dataclass(frozen=True)
class Figure6Result:
    """Per-year curves for one panel plus the cross-year experiments.

    ``cross_year_experiment`` pools all matched cross-year pairs;
    ``per_class_experiments`` runs the paper's actual test — "any
    significant change in demand at any given speed tier" — one sign test
    per capacity class with enough pairs.
    """

    metric: str
    include_bt: bool
    year_curves: tuple[YearCurve, ...]
    cross_year_experiment: ExperimentResult
    per_class_experiments: tuple[tuple[object, ExperimentResult], ...] = ()

    def classes_rejecting_null(self) -> list[object]:
        """Capacity classes whose demand changed significantly."""
        return [
            bin_
            for bin_, result in self.per_class_experiments
            if result.rejects_null
        ]

    def max_class_drift(self) -> float:
        """Largest |log-ratio| of class demand between first and last year.

        A value near zero means demand per class stayed constant — the
        paper's headline longitudinal finding.
        """
        import math

        first = self.year_curves[0].curve
        last = self.year_curves[-1].curve
        drifts = []
        for point in first.points:
            other = last.point_for(point.center_mbps)
            if other is not None and point.average > 0 and other.average > 0:
                drifts.append(abs(math.log(other.average / point.average)))
        if not drifts:
            raise AnalysisError("no shared classes between first and last year")
        return max(drifts)


def _year_curve(
    observations: Sequence[tuple[UserRecord, PeriodObservation]],
    metric: str,
    include_bt: bool,
    spec: BinSpec,
    min_users: int,
) -> BinnedCurve:
    grouped = spec.group(
        (obs.period.capacity_mbps, obs) for _, obs in observations
    )
    points = []
    for bin_ in spec:
        members = grouped.get(bin_, [])
        if len(members) < min_users:
            continue
        values = [_period_demand(o.period, metric, include_bt) for o in members]
        points.append(
            BinnedCurvePoint(
                bin=bin_,
                n_users=len(members),
                average=float(sum(values) / len(values)),
                ci=mean_confidence_interval(values),
            )
        )
    return BinnedCurve(metric=metric, include_bt=include_bt, points=tuple(points))


def figure6(
    users: Sequence[UserRecord],
    metric: str = "peak",
    include_bt: bool = False,
    years: Sequence[int] = (2011, 2012, 2013),
    min_users: int = 5,
    caliper: float = 0.25,
) -> Figure6Result:
    """Fig. 6: demand vs capacity per year, plus the no-change experiment.

    The cross-year experiment matches first-year observations with
    last-year observations of *different* users on capacity, latency and
    loss, and tests whether later-year demand is higher. The paper found
    no significant change; the result's ``rejects_null`` should be False.
    """
    if len(years) < 2:
        raise AnalysisError("a longitudinal analysis needs at least two years")
    spec = capacity_class_spec()
    per_year = {year: year_observations(users, year) for year in years}
    curves = tuple(
        YearCurve(
            year=year,
            curve=_year_curve(per_year[year], metric, include_bt, spec, min_users),
        )
        for year in years
    )

    first, last = years[0], years[-1]
    confounders = (
        lambda pair: pair[1].period.capacity_mbps,
        lambda pair: pair[1].latency_ms,
        lambda pair: max(pair[1].loss_fraction, 1e-4),
    )
    matching = match_pairs(
        per_year[first], per_year[last], confounders, caliper=caliper
    )

    def outcome(pair) -> PairedOutcome:
        return PairedOutcome(
            _period_demand(pair.control[1].period, metric, include_bt),
            _period_demand(pair.treatment[1].period, metric, include_bt),
        )

    pooled = NaturalExperiment(
        name=f"{first} vs {last} demand at fixed capacity",
        hypothesis="demand at a fixed capacity class grows over time",
    ).evaluate(outcome(pair) for pair in matching.pairs)

    # The paper's per-tier version: one experiment per capacity class.
    per_class: list[tuple[object, ExperimentResult]] = []
    by_class: dict = {}
    for pair in matching.pairs:
        bin_ = spec.bin_of(pair.control[1].period.capacity_mbps)
        if bin_ is not None:
            by_class.setdefault(bin_, []).append(pair)
    for bin_ in spec:
        pairs = by_class.get(bin_, [])
        if len(pairs) < min_users:
            continue
        result = NaturalExperiment(
            name=f"{first} vs {last} in {bin_.label()}",
            hypothesis="demand in this class grows over time",
        ).evaluate(outcome(pair) for pair in pairs)
        per_class.append((bin_, result))

    return Figure6Result(
        metric=metric,
        include_bt=include_bt,
        year_curves=curves,
        cross_year_experiment=pooled,
        per_class_experiments=tuple(per_class),
    )
