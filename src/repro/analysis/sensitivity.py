"""Seed-sweep sensitivity harness.

A single synthetic world is one draw from the generative model; any
conclusion worth reporting should hold across draws. This module runs a
statistic over independently-seeded worlds and summarizes the resulting
distribution, with a Wilson interval when the statistic is a proportion
with a known trial count.

Worlds are materialized by the scenario-sweep engine
(:func:`repro.sweep.sweep_worlds`): they come through the shared
on-disk world cache — repeating a sweep loads persisted worlds instead
of rebuilding them — and ``jobs`` fans the builds out across worker
processes with bit-identical results. Statistics are applied in the
calling process, so they may be arbitrary (unpicklable) callables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.stats import ConfidenceInterval, wilson_interval
from ..datasets import World, WorldConfig
from ..exceptions import AnalysisError

__all__ = ["SeedSweepResult", "SweepPoint", "seed_sweep", "proportion_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One seed's statistic (optionally with its trial count)."""

    seed: int
    value: float
    n_trials: int | None = None

    def wilson(self) -> ConfidenceInterval | None:
        """95% Wilson interval when the value is a proportion of trials."""
        if self.n_trials is None or self.n_trials <= 0:
            return None
        successes = int(round(self.value * self.n_trials))
        return wilson_interval(successes, self.n_trials)


@dataclass(frozen=True)
class SeedSweepResult:
    """A statistic's distribution over independently seeded worlds."""

    points: tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise AnalysisError("a sweep needs at least one seed")

    @property
    def values(self) -> np.ndarray:
        return np.array([p.value for p in self.points])

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def spread(self) -> float:
        """Max minus min across seeds."""
        return float(self.values.max() - self.values.min())

    def all_above(self, threshold: float) -> bool:
        return bool(np.all(self.values > threshold))

    def rows(self) -> list[str]:
        lines = []
        for point in self.points:
            ci = point.wilson()
            band = (
                ""
                if ci is None
                else f"  95% CI [{ci.low:.3f}, {ci.high:.3f}]"
            )
            lines.append(f"  seed {point.seed}: {point.value:.3f}{band}")
        return lines


def _worlds(
    base_config: WorldConfig,
    seeds: Sequence[int],
    jobs: int | None,
    use_cache: bool,
) -> list[World]:
    if not seeds:
        raise AnalysisError("a sweep needs at least one seed")
    # Imported here: repro.sweep pulls in the analysis experiment
    # runners, so a module-level import would cycle during package init.
    from ..sweep.engine import sweep_worlds

    return sweep_worlds(
        base_config, seeds, jobs=jobs, use_cache=use_cache
    )


def seed_sweep(
    base_config: WorldConfig,
    seeds: Sequence[int],
    statistic: Callable[[World], float],
    *,
    jobs: int | None = 1,
    use_cache: bool = True,
) -> SeedSweepResult:
    """Evaluate ``statistic`` over one world per seed.

    Each world is ``base_config`` with only the seed replaced, obtained
    through the sweep engine's shared world cache (``use_cache=False``
    forces fresh builds); ``jobs`` parallelizes the world builds.
    """
    worlds = _worlds(base_config, seeds, jobs, use_cache)
    points = [
        SweepPoint(seed=int(seed), value=float(statistic(world)))
        for seed, world in zip(seeds, worlds)
    ]
    return SeedSweepResult(points=tuple(points))


def proportion_sweep(
    base_config: WorldConfig,
    seeds: Sequence[int],
    statistic: Callable[[World], tuple[float, int]],
    *,
    jobs: int | None = 1,
    use_cache: bool = True,
) -> SeedSweepResult:
    """Like :func:`seed_sweep` for proportion statistics.

    ``statistic`` returns ``(fraction, n_trials)`` so each point carries a
    Wilson interval (e.g. an experiment's %-H-holds and its pair count).
    """
    worlds = _worlds(base_config, seeds, jobs, use_cache)
    points = []
    for seed, world in zip(seeds, worlds):
        fraction, n_trials = statistic(world)
        points.append(
            SweepPoint(
                seed=int(seed), value=float(fraction), n_trials=int(n_trials)
            )
        )
    return SeedSweepResult(points=tuple(points))
