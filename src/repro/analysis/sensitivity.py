"""Seed-sweep sensitivity harness.

A single synthetic world is one draw from the generative model; any
conclusion worth reporting should hold across draws. This module runs a
statistic over independently-seeded worlds and summarizes the resulting
distribution, with a Wilson interval when the statistic is a proportion
with a known trial count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from ..core.stats import ConfidenceInterval, wilson_interval
from ..datasets import World, WorldConfig, build_world
from ..exceptions import AnalysisError

__all__ = ["SeedSweepResult", "SweepPoint", "seed_sweep", "proportion_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One seed's statistic (optionally with its trial count)."""

    seed: int
    value: float
    n_trials: int | None = None

    def wilson(self) -> ConfidenceInterval | None:
        """95% Wilson interval when the value is a proportion of trials."""
        if self.n_trials is None or self.n_trials <= 0:
            return None
        successes = int(round(self.value * self.n_trials))
        return wilson_interval(successes, self.n_trials)


@dataclass(frozen=True)
class SeedSweepResult:
    """A statistic's distribution over independently seeded worlds."""

    points: tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise AnalysisError("a sweep needs at least one seed")

    @property
    def values(self) -> np.ndarray:
        return np.array([p.value for p in self.points])

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def spread(self) -> float:
        """Max minus min across seeds."""
        return float(self.values.max() - self.values.min())

    def all_above(self, threshold: float) -> bool:
        return bool(np.all(self.values > threshold))

    def rows(self) -> list[str]:
        lines = []
        for point in self.points:
            ci = point.wilson()
            band = (
                ""
                if ci is None
                else f"  95% CI [{ci.low:.3f}, {ci.high:.3f}]"
            )
            lines.append(f"  seed {point.seed}: {point.value:.3f}{band}")
        return lines


def seed_sweep(
    base_config: WorldConfig,
    seeds: Sequence[int],
    statistic: Callable[[World], float],
) -> SeedSweepResult:
    """Evaluate ``statistic`` over one world per seed.

    Each world is ``base_config`` with only the seed replaced; building
    worlds dominates the cost, so size the config to the question.
    """
    if not seeds:
        raise AnalysisError("a sweep needs at least one seed")
    points = []
    for seed in seeds:
        world = build_world(replace(base_config, seed=int(seed)))
        points.append(SweepPoint(seed=int(seed), value=float(statistic(world))))
    return SeedSweepResult(points=tuple(points))


def proportion_sweep(
    base_config: WorldConfig,
    seeds: Sequence[int],
    statistic: Callable[[World], tuple[float, int]],
) -> SeedSweepResult:
    """Like :func:`seed_sweep` for proportion statistics.

    ``statistic`` returns ``(fraction, n_trials)`` so each point carries a
    Wilson interval (e.g. an experiment's %-H-holds and its pair count).
    """
    if not seeds:
        raise AnalysisError("a sweep needs at least one seed")
    points = []
    for seed in seeds:
        world = build_world(replace(base_config, seed=int(seed)))
        fraction, n_trials = statistic(world)
        points.append(
            SweepPoint(
                seed=int(seed), value=float(fraction), n_trials=int(n_trials)
            )
        )
    return SeedSweepResult(points=tuple(points))
