"""User segmentation — the paper's closing future-work item.

The paper ends by noting it treated users as one homogeneous consumer
group and that studying categories (gamers, movie-watchers, ...) would be
interesting. This module implements that extension using **measured**
behavior only (no ground-truth profiles): users are segmented by their
observed traffic shape, and each segment's market behavior is compared.

Segments (by measured features of the current period):

* ``bulk``     — BitTorrent was observed on the connection;
* ``sustained``— high mean-to-peak ratio: long steady sessions
  (streaming-like workloads);
* ``bursty``   — low mean-to-peak ratio: short intense bursts
  (browsing/gaming-like workloads);
* ``light``    — negligible demand altogether.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..datasets.records import UserRecord
from ..exceptions import AnalysisError
from ..core.stats import percentile

__all__ = ["SEGMENTS", "SegmentProfile", "SegmentationResult", "classify_user", "segment_users"]

SEGMENTS = ("light", "bursty", "sustained", "bulk")

#: Peak demand below this (Mbps) marks a light user.
_LIGHT_PEAK_MBPS = 0.05
#: Mean/peak ratio above this marks sustained usage.
_SUSTAINED_RATIO = 0.25


def classify_user(user: UserRecord) -> str:
    """Assign one user to a segment from measured behavior only."""
    if user.bt_user:
        return "bulk"
    if user.peak_no_bt_mbps < _LIGHT_PEAK_MBPS:
        return "light"
    ratio = user.mean_no_bt_mbps / user.peak_no_bt_mbps
    return "sustained" if ratio >= _SUSTAINED_RATIO else "bursty"


@dataclass(frozen=True)
class SegmentProfile:
    """Aggregate behavior of one segment."""

    segment: str
    n_users: int
    median_capacity_mbps: float
    median_peak_mbps: float
    mean_peak_utilization: float
    share_switched_service: float


@dataclass(frozen=True)
class SegmentationResult:
    profiles: tuple[SegmentProfile, ...]
    assignments: Mapping[str, str]  # user_id -> segment

    def profile(self, segment: str) -> SegmentProfile:
        for entry in self.profiles:
            if entry.segment == segment:
                return entry
        raise AnalysisError(f"no profile for segment {segment!r}")

    @property
    def shares(self) -> dict[str, float]:
        total = sum(p.n_users for p in self.profiles)
        return {p.segment: p.n_users / total for p in self.profiles}


def segment_users(users: Sequence[UserRecord]) -> SegmentationResult:
    """Segment a population and profile each segment."""
    if not users:
        raise AnalysisError("cannot segment an empty population")
    assignments = {u.user_id: classify_user(u) for u in users}
    profiles = []
    for segment in SEGMENTS:
        members = [u for u in users if assignments[u.user_id] == segment]
        if not members:
            continue
        profiles.append(
            SegmentProfile(
                segment=segment,
                n_users=len(members),
                median_capacity_mbps=percentile(
                    [u.capacity_down_mbps for u in members], 50.0
                ),
                median_peak_mbps=percentile(
                    [u.peak_no_bt_mbps for u in members], 50.0
                ),
                mean_peak_utilization=float(
                    np.mean([u.peak_utilization for u in members])
                ),
                share_switched_service=float(
                    np.mean([u.switched_service for u in members])
                ),
            )
        )
    return SegmentationResult(
        profiles=tuple(profiles), assignments=assignments
    )
