"""Export figure data series to CSV for external plotting.

The library deliberately has no plotting dependency; this module writes
the numeric series behind each paper figure to tidy CSV files so any
plotting tool can regenerate them. One file per figure, long format,
with a ``series`` column distinguishing lines/panels.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from ..datasets.records import UserRecord
from ..exceptions import AnalysisError
from ..market.survey import PlanSurvey
from . import capacity, characterization, longitudinal, price, upgrade_cost, quality

__all__ = ["export_figure_data"]


def _write(path: Path, header: Sequence[str], rows) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in rows:
            writer.writerow(row)


def _cdf_rows(series: str, xs: np.ndarray, ps: np.ndarray):
    for x, p in zip(xs, ps):
        yield (series, float(x), float(p))


def _curve_rows(series: str, curve):
    for point in curve.points:
        yield (
            series,
            point.center_mbps,
            point.average,
            point.ci.low,
            point.ci.high,
            point.n_users,
        )


def export_figure_data(
    out_dir: str | Path,
    dasu: Sequence[UserRecord],
    fcc: Sequence[UserRecord] | None = None,
    survey: PlanSurvey | None = None,
) -> list[Path]:
    """Write every reproducible figure's series to ``out_dir``.

    Returns the list of files written. Figures whose inputs are missing
    (e.g. Fig. 3 without an FCC dataset, Fig. 10 without a survey) are
    skipped.
    """
    if not dasu:
        raise AnalysisError("export needs at least the Dasu dataset")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    # Fig. 1: three CDFs.
    fig1 = characterization.figure1(dasu)
    path = out / "fig1_characterization.csv"
    _write(
        path,
        ("series", "value", "cumulative"),
        list(
            _cdf_rows(
                "capacity_mbps",
                fig1.capacity_cdf.values,
                fig1.capacity_cdf.cumulative,
            )
        )
        + list(_cdf_rows("latency_ms", fig1.latency_cdf.values, fig1.latency_cdf.cumulative))
        + list(
            _cdf_rows(
                "loss_percent",
                fig1.loss_percent_cdf.values,
                fig1.loss_percent_cdf.cumulative,
            )
        ),
    )
    written.append(path)

    # Fig. 2: four demand curves.
    fig2 = capacity.figure2(dasu)
    path = out / "fig2_usage_vs_capacity.csv"
    rows = []
    for title, curve in fig2.panels():
        rows.extend(_curve_rows(title, curve))
    _write(
        path,
        ("series", "capacity_mbps", "avg_mbps", "ci_low", "ci_high", "n"),
        rows,
    )
    written.append(path)

    # Fig. 3 needs FCC.
    if fcc:
        fig3 = capacity.figure3(dasu, fcc)
        path = out / "fig3_fcc_vs_dasu.csv"
        rows = []
        for name, curve in (
            ("fcc_mean", fig3.fcc_mean),
            ("fcc_peak", fig3.fcc_peak),
            ("dasu_us_mean", fig3.dasu_us_mean),
            ("dasu_us_peak", fig3.dasu_us_peak),
        ):
            rows.extend(_curve_rows(name, curve))
        _write(
            path,
            ("series", "capacity_mbps", "avg_mbps", "ci_low", "ci_high", "n"),
            rows,
        )
        written.append(path)

    # Fig. 4: slow/fast CDFs.
    fig4 = capacity.figure4(dasu)
    path = out / "fig4_slow_fast_cdfs.csv"
    _write(
        path,
        ("series", "usage_mbps", "cumulative"),
        list(_cdf_rows("slow_mean", *fig4.slow_mean_cdf))
        + list(_cdf_rows("fast_mean", *fig4.fast_mean_cdf))
        + list(_cdf_rows("slow_peak", *fig4.slow_peak_cdf))
        + list(_cdf_rows("fast_peak", *fig4.fast_peak_cdf)),
    )
    written.append(path)

    # Fig. 5: upgrade deltas (no-BT peak panel).
    fig5 = capacity.figure5(dasu, metric="peak", include_bt=False)
    path = out / "fig5_upgrade_deltas.csv"
    _write(
        path,
        ("initial_tier", "target_tier", "n", "delta_mbps", "ci_low", "ci_high"),
        (
            (
                cell.initial_tier.label(),
                cell.target_tier.label(),
                cell.n_switches,
                cell.delta.center,
                cell.delta.low,
                cell.delta.high,
            )
            for cell in fig5.cells
        ),
    )
    written.append(path)

    # Fig. 6: per-year curves.
    fig6 = longitudinal.figure6(dasu, min_users=10)
    path = out / "fig6_longitudinal.csv"
    rows = []
    for year_curve in fig6.year_curves:
        rows.extend(_curve_rows(str(year_curve.year), year_curve.curve))
    _write(
        path,
        ("series", "capacity_mbps", "avg_mbps", "ci_low", "ci_high", "n"),
        rows,
    )
    written.append(path)

    # Figs. 7-9: case-study distributions.
    try:
        fig7 = price.figure7(dasu)
    except AnalysisError:
        fig7 = None
    if fig7 is not None:
        path = out / "fig7_country_cdfs.csv"
        rows = []
        for entry in fig7.countries:
            rows.extend(
                _cdf_rows(f"{entry.country}:capacity", *entry.capacity_cdf)
            )
            rows.extend(
                _cdf_rows(
                    f"{entry.country}:utilization",
                    *entry.peak_utilization_cdf,
                )
            )
        _write(path, ("series", "value", "cumulative"), rows)
        written.append(path)

        fig8 = price.figure8(dasu, min_users=10)
        path = out / "fig8_tier_utilization.csv"
        rows = []
        for group in fig8.groups:
            rows.extend(
                _cdf_rows(
                    f"{group.country}:{group.tier.label()}",
                    *group.utilization_cdf,
                )
            )
        _write(path, ("series", "utilization", "cumulative"), rows)
        written.append(path)

        fig9 = price.figure9(dasu, min_users=10)
        path = out / "fig9_tier_demand.csv"
        _write(
            path,
            ("country", "tier", "n", "avg_peak_demand_mbps"),
            (
                (g.country, g.tier.label(), g.n_users, g.mean_peak_demand_mbps)
                for g in fig9.groups
            ),
        )
        written.append(path)

    # Fig. 10 needs the survey.
    if survey is not None:
        fig10 = upgrade_cost.figure10(survey)
        path = out / "fig10_upgrade_cost_cdf.csv"
        _write(
            path,
            ("country", "usd_per_mbps"),
            sorted(fig10.costs_by_country.items(), key=lambda kv: kv[1]),
        )
        written.append(path)

    # Figs. 11-12: India comparisons.
    try:
        fig11 = quality.figure11(dasu)
        fig12 = quality.figure12(dasu)
    except AnalysisError:
        fig11 = fig12 = None
    if fig11 is not None and fig12 is not None:
        path = out / "fig11_india_latency.csv"
        rows = list(_cdf_rows("india_ndt", *fig11.india_ndt_cdf))
        rows += list(_cdf_rows("other_ndt", *fig11.other_ndt_cdf))
        if fig11.india_web_cdf is not None:
            rows += list(_cdf_rows("india_web", *fig11.india_web_cdf))
        if fig11.other_web_cdf is not None:
            rows += list(_cdf_rows("other_web", *fig11.other_web_cdf))
        _write(path, ("series", "latency_ms", "cumulative"), rows)
        written.append(path)

        path = out / "fig12_india_loss.csv"
        _write(
            path,
            ("series", "loss_percent", "cumulative"),
            list(_cdf_rows("india", *fig12.india_loss_pct_cdf))
            + list(_cdf_rows("other", *fig12.other_loss_pct_cdf)),
        )
        written.append(path)

    return written
