"""Sec. 3 — impact of capacity on demand.

* :func:`figure2` — usage vs capacity, mean/peak, with/without BitTorrent;
* :func:`figure3` — FCC gateway users vs US Dasu users;
* :func:`table1` — the user-upgrade natural experiment;
* :func:`figure4` — slow-vs-fast network usage CDFs;
* :func:`figure5` — demand change by initial service tier;
* :func:`table2` — matched adjacent-capacity-class experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.binning import UPGRADE_TIERS_MBPS, Bin, capacity_class_spec, explicit_bins
from ..core.experiments import ExperimentResult, NaturalExperiment, PairedOutcome
from ..core.stats import ConfidenceInterval, ecdf, mean_confidence_interval, percentile
from ..core.upgrades import UpgradeObservation, slow_fast_observation
from ..datasets.records import UserRecord
from ..exceptions import AnalysisError
from .common import BinnedCurve, MatchedExperimentResult, binned_demand_curve, matched_experiment

__all__ = [
    "Figure2Result",
    "Figure3Result",
    "Figure4Result",
    "Figure5Result",
    "Table1Result",
    "Table2Result",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "table1",
    "table2",
    "upgrade_observations",
]


# ---------------------------------------------------------------------------
# Figures 2 and 3: binned usage curves.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure2Result:
    """The four panels of Fig. 2 (mean/peak x with/without BitTorrent)."""

    mean_with_bt: BinnedCurve
    peak_with_bt: BinnedCurve
    mean_no_bt: BinnedCurve
    peak_no_bt: BinnedCurve

    def panels(self) -> tuple[tuple[str, BinnedCurve], ...]:
        return (
            ("(a) mean w/ BT", self.mean_with_bt),
            ("(b) 95th %ile w/ BT", self.peak_with_bt),
            ("(c) mean no BT", self.mean_no_bt),
            ("(d) 95th %ile no BT", self.peak_no_bt),
        )

    @property
    def min_correlation(self) -> float:
        return min(curve.correlation for _, curve in self.panels())

    def demand_elasticity(self) -> float:
        """Log-log slope of peak demand (no BT) against class capacity.

        1.0 would mean demand proportional to capacity (constant
        utilization); the paper's data — and this reproduction — sit far
        below that.
        """
        points = [p for p in self.peak_no_bt.points if p.average > 0]
        if len(points) < 3:
            raise AnalysisError("too few classes for an elasticity fit")
        x = np.asarray([math.log(p.center_mbps) for p in points])
        y = np.asarray([math.log(p.average) for p in points])
        xd = x - x.mean()
        return float((xd @ (y - y.mean())) / (xd @ xd))

    def diminishing_returns(self, elasticity_threshold: float = 0.85) -> bool:
        """The paper's law of diminishing returns.

        Demand must grow clearly sub-proportionally with capacity (adding
        capacity to an already wide line yields only a minor demand
        increment), i.e. peak-demand elasticity well below 1, with peak
        utilization lower in the top class than in the bottom one.
        """
        points = self.peak_no_bt.points
        if len(points) < 3:
            raise AnalysisError("too few classes")
        first, last = points[0], points[-1]
        utilization_falls = (
            last.average / last.center_mbps < first.average / first.center_mbps
        )
        return utilization_falls and self.demand_elasticity() < elasticity_threshold


def figure2(users: Sequence[UserRecord]) -> Figure2Result:
    """Compute the four usage-vs-capacity panels of Fig. 2."""
    return Figure2Result(
        mean_with_bt=binned_demand_curve(users, "mean", include_bt=True),
        peak_with_bt=binned_demand_curve(users, "peak", include_bt=True),
        mean_no_bt=binned_demand_curve(users, "mean", include_bt=False),
        peak_no_bt=binned_demand_curve(users, "peak", include_bt=False),
    )


@dataclass(frozen=True)
class Figure3Result:
    """FCC vs US-Dasu comparison (both without BitTorrent for Dasu)."""

    fcc_mean: BinnedCurve
    fcc_peak: BinnedCurve
    dasu_us_mean: BinnedCurve
    dasu_us_peak: BinnedCurve

    def _ratio(self, fcc: BinnedCurve, dasu: BinnedCurve) -> float:
        """Median per-class Dasu/FCC demand ratio over shared classes."""
        ratios = []
        for point in dasu.points:
            other = fcc.point_for(point.center_mbps)
            if other is not None and other.average > 0:
                ratios.append(point.average / other.average)
        if not ratios:
            return math.nan
        return float(np.median(ratios))

    @property
    def mean_ratio_dasu_over_fcc(self) -> float:
        """Expected slightly above 1 (Dasu sampling is peak-hour biased)."""
        return self._ratio(self.fcc_mean, self.dasu_us_mean)

    @property
    def peak_ratio_dasu_over_fcc(self) -> float:
        """Expected near 1 ("peak usage is nearly identical")."""
        return self._ratio(self.fcc_peak, self.dasu_us_peak)


def figure3(
    dasu_users: Sequence[UserRecord], fcc_users: Sequence[UserRecord]
) -> Figure3Result:
    """Compare FCC gateway users with US Dasu users (Fig. 3)."""
    dasu_us = [u for u in dasu_users if u.country == "US"]
    if not dasu_us or not fcc_users:
        raise AnalysisError("figure 3 needs both US Dasu and FCC users")
    return Figure3Result(
        fcc_mean=binned_demand_curve(fcc_users, "mean", include_bt=True),
        fcc_peak=binned_demand_curve(fcc_users, "peak", include_bt=True),
        dasu_us_mean=binned_demand_curve(dasu_us, "mean", include_bt=False),
        dasu_us_peak=binned_demand_curve(dasu_us, "peak", include_bt=False),
    )


# ---------------------------------------------------------------------------
# Table 1 and Figure 4: the user-upgrade natural experiment.
# ---------------------------------------------------------------------------


def upgrade_observations(
    users: Sequence[UserRecord],
) -> list[UpgradeObservation]:
    """Each user's slow-vs-fast network observation, where one exists."""
    observations = []
    for user in users:
        obs = slow_fast_observation(user.periods)
        if obs is not None:
            observations.append(obs)
    return observations


@dataclass(frozen=True)
class Table1Result:
    """The upgrade experiment for average and peak demand (no BT)."""

    average: ExperimentResult
    peak: ExperimentResult
    n_observations: int

    def rows(self) -> list[tuple[str, float, ExperimentResult]]:
        """(metric, paper %, result) rows."""
        return [
            ("Average usage", 66.8, self.average),
            ("Peak usage", 70.3, self.peak),
        ]


def table1(users: Sequence[UserRecord], include_bt: bool = False) -> Table1Result:
    """Test whether individual users' demand rises on faster networks.

    Control is the user's own behavior on the slower network, treatment
    the behavior on the faster one (Table 1 of the paper; BitTorrent
    intervals excluded by default, as in the published numbers).
    """
    observations = upgrade_observations(users)
    if not observations:
        raise AnalysisError("no users observed on two networks")

    def outcome_pair(obs: UpgradeObservation, metric: str) -> PairedOutcome:
        if metric == "mean":
            if include_bt:
                return PairedOutcome(obs.slow.mean_mbps, obs.fast.mean_mbps)
            return PairedOutcome(obs.slow.mean_no_bt_mbps, obs.fast.mean_no_bt_mbps)
        if include_bt:
            return PairedOutcome(obs.slow.peak_mbps, obs.fast.peak_mbps)
        return PairedOutcome(obs.slow.peak_no_bt_mbps, obs.fast.peak_no_bt_mbps)

    average = NaturalExperiment(
        "upgrade: average usage",
        hypothesis="moving to a faster service increases average demand",
    ).evaluate(outcome_pair(o, "mean") for o in observations)
    peak = NaturalExperiment(
        "upgrade: peak usage",
        hypothesis="moving to a faster service increases peak demand",
    ).evaluate(outcome_pair(o, "peak") for o in observations)
    return Table1Result(average=average, peak=peak, n_observations=len(observations))


@dataclass(frozen=True)
class Figure4Result:
    """CDFs of demand on users' slow vs fast networks (no BT)."""

    slow_mean_cdf: tuple[np.ndarray, np.ndarray]
    fast_mean_cdf: tuple[np.ndarray, np.ndarray]
    slow_peak_cdf: tuple[np.ndarray, np.ndarray]
    fast_peak_cdf: tuple[np.ndarray, np.ndarray]
    median_slow_mean_mbps: float
    median_fast_mean_mbps: float
    median_slow_peak_mbps: float
    median_fast_peak_mbps: float

    @property
    def mean_ratio_at_median(self) -> float:
        """Paper: average usage roughly doubles (95 -> 189 kbps)."""
        return self.median_fast_mean_mbps / self.median_slow_mean_mbps

    @property
    def peak_ratio_at_median(self) -> float:
        """Paper: peak usage more than triples (192 -> 634 kbps)."""
        return self.median_fast_peak_mbps / self.median_slow_peak_mbps


def figure4(users: Sequence[UserRecord]) -> Figure4Result:
    """Slow-vs-fast network usage distributions (Fig. 4)."""
    observations = upgrade_observations(users)
    if not observations:
        raise AnalysisError("no users observed on two networks")
    slow_mean = np.array([o.slow.mean_no_bt_mbps for o in observations])
    fast_mean = np.array([o.fast.mean_no_bt_mbps for o in observations])
    slow_peak = np.array([o.slow.peak_no_bt_mbps for o in observations])
    fast_peak = np.array([o.fast.peak_no_bt_mbps for o in observations])
    return Figure4Result(
        slow_mean_cdf=ecdf(slow_mean),
        fast_mean_cdf=ecdf(fast_mean),
        slow_peak_cdf=ecdf(slow_peak),
        fast_peak_cdf=ecdf(fast_peak),
        median_slow_mean_mbps=percentile(slow_mean, 50.0),
        median_fast_mean_mbps=percentile(fast_mean, 50.0),
        median_slow_peak_mbps=percentile(slow_peak, 50.0),
        median_fast_peak_mbps=percentile(fast_peak, 50.0),
    )


# ---------------------------------------------------------------------------
# Figure 5: demand change by before/after service tier.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UpgradeDeltaCell:
    """Average demand change for one (initial tier, target tier) group."""

    initial_tier: Bin
    target_tier: Bin
    n_switches: int
    delta: ConfidenceInterval


@dataclass(frozen=True)
class Figure5Result:
    """One panel of Fig. 5 (a chosen metric and BT treatment)."""

    metric: str
    include_bt: bool
    cells: tuple[UpgradeDeltaCell, ...]

    def cells_for_initial(self, tier: Bin) -> tuple[UpgradeDeltaCell, ...]:
        return tuple(c for c in self.cells if c.initial_tier == tier)

    def low_tier_gains_exceed_high(self) -> bool:
        """Diminishing returns: *relative* demand gains (normalized by the
        initial tier's capacity) shrink as the starting tier rises.

        Absolute deltas at the top tiers can be large but are wildly
        inconsistent (the paper's Fig. 5 shows confidence intervals
        spanning zero there), so the comparison is on relative gains.
        """
        def relative(cell: UpgradeDeltaCell) -> float:
            center = math.sqrt(cell.initial_tier.low * cell.initial_tier.high)
            return cell.delta.center / center

        low = [relative(c) for c in self.cells if c.initial_tier.high <= 4.0]
        high = [relative(c) for c in self.cells if c.initial_tier.low >= 16.0]
        if not low:
            raise AnalysisError("no low-tier upgrade cells")
        if not high:
            return True  # nobody upgrades from the top tiers: trivially true
        return float(np.mean(low)) > float(np.mean(high))


def figure5(
    users: Sequence[UserRecord],
    metric: str = "peak",
    include_bt: bool = False,
    min_switches: int = 3,
) -> Figure5Result:
    """Average demand change per (initial, target) tier pair (Fig. 5)."""
    if metric not in ("mean", "peak"):
        raise AnalysisError(f"unknown metric {metric!r}")
    tiers = explicit_bins(UPGRADE_TIERS_MBPS)
    observations = upgrade_observations(users)

    def delta(obs: UpgradeObservation) -> float:
        if metric == "mean":
            if include_bt:
                return obs.fast.mean_mbps - obs.slow.mean_mbps
            return obs.fast.mean_no_bt_mbps - obs.slow.mean_no_bt_mbps
        if include_bt:
            return obs.fast.peak_mbps - obs.slow.peak_mbps
        return obs.fast.peak_no_bt_mbps - obs.slow.peak_no_bt_mbps

    grouped: dict[tuple[Bin, Bin], list[float]] = {}
    for obs in observations:
        initial = tiers.bin_of(obs.slow.capacity_mbps)
        target = tiers.bin_of(obs.fast.capacity_mbps)
        if initial is None or target is None:
            continue
        grouped.setdefault((initial, target), []).append(delta(obs))

    cells = [
        UpgradeDeltaCell(
            initial_tier=initial,
            target_tier=target,
            n_switches=len(deltas),
            delta=mean_confidence_interval(deltas),
        )
        for (initial, target), deltas in sorted(
            grouped.items(), key=lambda kv: (kv[0][0].low, kv[0][1].low)
        )
        if len(deltas) >= min_switches
    ]
    return Figure5Result(metric=metric, include_bt=include_bt, cells=tuple(cells))


# ---------------------------------------------------------------------------
# Table 2: matched adjacent-class experiments.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    """One control-vs-treatment class comparison."""

    control_bin: Bin
    treatment_bin: Bin
    experiment: MatchedExperimentResult


@dataclass(frozen=True)
class Table2Result:
    """All adjacent-class comparisons for one dataset."""

    dataset: str
    rows: tuple[Table2Row, ...]

    def row_for(self, control_low_mbps: float) -> Table2Row | None:
        for row in self.rows:
            if math.isclose(row.control_bin.low, control_low_mbps, rel_tol=1e-6):
                return row
        return None


#: Confounders for the capacity experiment: everything except capacity
#: itself (Sec. 3.2: connection quality, price of access, cost to upgrade).
_TABLE2_CONFOUNDERS = ("latency", "loss", "price_of_access", "upgrade_cost")


def table2(
    users: Sequence[UserRecord],
    dataset: str,
    metric: str = "peak",
    include_bt: bool = False,
    min_group_users: int = 15,
    confounders: Sequence[str] = _TABLE2_CONFOUNDERS,
) -> Table2Result:
    """Matched experiment: does the next capacity class raise demand?

    Users are grouped into the paper's capacity classes; each class ``k``
    is compared with class ``k+1``, matching users on connection quality
    and market confounders.
    """
    spec = capacity_class_spec()
    grouped = spec.group((u.capacity_down_mbps, u) for u in users)
    from .common import demand_outcome  # local to avoid cycle at import

    outcome = demand_outcome(metric, include_bt)
    rows: list[Table2Row] = []
    for k in range(len(spec) - 1):
        control_bin, treatment_bin = spec[k], spec[k + 1]
        control = grouped.get(control_bin, [])
        treatment = grouped.get(treatment_bin, [])
        if len(control) < min_group_users or len(treatment) < min_group_users:
            continue
        name = f"{control_bin.label()} vs {treatment_bin.label()}"
        result = matched_experiment(
            name,
            control,
            treatment,
            confounders,
            outcome,
            hypothesis="higher capacity increases demand",
        )
        if result.result.n_pairs == 0:
            continue
        rows.append(Table2Row(control_bin, treatment_bin, result))
    return Table2Result(dataset=dataset, rows=tuple(rows))
