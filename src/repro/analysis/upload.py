"""Upload-direction analysis — an extension over the paper.

The paper's datasets recorded bytes sent as well as received but its
evaluation uses the download direction only. With both directions in the
records, two structural facts are checkable:

* residential traffic is heavily **asymmetric** — the typical household
  uploads a small fraction of what it downloads;
* **BitTorrent seeding breaks the asymmetry**: P2P households saturate
  their thin uplinks, so matched BT households upload far more than
  non-BT ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..datasets.records import UserRecord
from ..exceptions import AnalysisError
from .common import MatchedExperimentResult, matched_experiment

__all__ = ["UploadAsymmetry", "seeding_experiment", "upload_asymmetry"]


@dataclass(frozen=True)
class UploadAsymmetry:
    """Distribution of the uplink-to-downlink mean-rate ratio."""

    n_users: int
    median_ratio: float
    p90_ratio: float
    median_ratio_bt: float | None
    median_ratio_non_bt: float | None


def _ratio(user: UserRecord) -> float | None:
    if user.mean_up_mbps is None or user.mean_mbps <= 0:
        return None
    return user.mean_up_mbps / user.mean_mbps


def upload_asymmetry(users: Sequence[UserRecord]) -> UploadAsymmetry:
    """Summarize the up/down volume asymmetry of a population."""
    ratios = [(u, _ratio(u)) for u in users]
    ratios = [(u, r) for u, r in ratios if r is not None]
    if not ratios:
        raise AnalysisError("no users carry upload measurements")
    values = np.array([r for _, r in ratios])
    bt = np.array([r for u, r in ratios if u.bt_user])
    non_bt = np.array([r for u, r in ratios if not u.bt_user])
    return UploadAsymmetry(
        n_users=len(ratios),
        median_ratio=float(np.median(values)),
        p90_ratio=float(np.percentile(values, 90)),
        median_ratio_bt=float(np.median(bt)) if bt.size else None,
        median_ratio_non_bt=float(np.median(non_bt)) if non_bt.size else None,
    )


def seeding_experiment(
    users: Sequence[UserRecord],
    confounders: Sequence[str] = ("capacity", "latency", "loss"),
) -> MatchedExperimentResult:
    """Do BitTorrent households upload more than matched non-BT ones?"""
    measured = [u for u in users if u.mean_up_mbps is not None]
    non_bt = [u for u in measured if not u.bt_user]
    bt = [u for u in measured if u.bt_user]
    if not non_bt or not bt:
        raise AnalysisError("need both BT and non-BT users with uploads")
    return matched_experiment(
        "non-BT (control) vs BT (treatment) upload",
        control=non_bt,
        treatment=bt,
        confounders=confounders,
        outcome=lambda u: float(u.mean_up_mbps),
        hypothesis="BitTorrent seeding raises upload volume",
    )
