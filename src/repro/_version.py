"""Single source of the package version.

Lives in its own module (rather than ``repro/__init__``) so that
leaf modules — notably :mod:`repro.datasets.cache`, whose cache keys
incorporate the code version — can import it without creating an
import cycle through the package root.
"""

__version__ = "1.2.0"
