"""The warm report service: incremental ingest served over HTTP.

``repro serve`` keeps one world chain resident and its paper report
warm. New measurement batches arrive as JSON files in a spool
directory; each is folded into the cached world through
:func:`~repro.datasets.append.append_world` (no full rebuild), the
fragment-level report DAG re-executes only the fragments whose input
content digests changed, and the refreshed artifacts are served over
plain HTTP with an ETag that tracks the provenance manifest.

* :mod:`~repro.service.report` — :class:`ReportService`: snapshot
  state, fragment-DAG refresh, spool ingest;
* :mod:`~repro.service.server` — :class:`ReportServer`: the stdlib
  ``ThreadingHTTPServer`` front-end and the polling loop.
"""

from .report import ReportService, Snapshot
from .server import ReportServer

__all__ = ["ReportServer", "ReportService", "Snapshot"]
