"""The warm report service: resident worlds, fragment-level refresh.

A :class:`ReportService` owns one append chain rooted at a base
:class:`~repro.datasets.world.WorldConfig`. Its :meth:`~ReportService.refresh`
replays the chain's :class:`~repro.datasets.append.DeltaLog` to the
current tip configuration and runs the fragment-level report DAG
(:func:`~repro.dag.pipelines.fragment_report_spec`) against a persistent
:class:`~repro.dag.store.DagStore`, so only fragments whose input
content digests changed re-execute — appending households recomputes the
Dasu-driven fragments while survey-only ones reload, and the assembled
``report.txt`` stays byte-identical to a cold full rebuild.

Each refresh publishes an immutable :class:`Snapshot` swapped under a
lock: HTTP handlers read whole snapshots, never partially updated state,
so a refresh racing a request can never serve a torn report. The
snapshot's ETag is the SHA-256 of its provenance manifest — it changes
exactly when the served configuration (base + append chain) or the code
version does, which is exactly when the report bytes may change.

Ingest arrives through a *spool directory*: drop ``<name>.json`` files
holding an append-delta payload (``{"n_dasu_users": N, "n_fcc_users":
M}``) to fold new households into the resident world, or
``<name>.grid.json`` files holding a scenario grid to re-run the
verdict sweep. :meth:`~ReportService.process_spool` consumes them in
sorted order; files that fail to parse or apply are renamed to
``*.rejected`` (never silently dropped, never retried in a loop).
"""

from __future__ import annotations

import hashlib
import json
import sys
import threading
from dataclasses import dataclass
from pathlib import Path

from ..datasets.append import AppendDelta, DeltaLog, append_world
from ..datasets.cache import WorldCache, cache_key, payload_key
from ..datasets.world import WorldConfig
from ..exceptions import ReproError
from ..obs.ledger import RunLedger
from ..obs.manifest import run_manifest

__all__ = ["ReportService", "Snapshot"]


@dataclass(frozen=True)
class Snapshot:
    """One consistent, immutable view of everything the service serves.

    Handlers grab the whole snapshot once per request; the service only
    ever replaces the reference, so a reader sees either the old state
    or the new one, never a mix of both.
    """

    #: The tip configuration the snapshot was rendered from.
    config: WorldConfig
    #: Cache key of the tip configuration.
    config_hash: str
    #: SHA-256 of ``manifest_text`` — the HTTP ETag.
    etag: str
    report_text: str
    manifest_text: str
    trace_text: str
    #: The internet quality barometer payload for ``/iqb.json``,
    #: recomputed from the tip world every refresh.
    iqb_json: str
    #: ``None`` until a scenario grid is configured.
    sweep_json: str | None
    sweep_report: str | None
    #: Stage names the refresh executed / reloaded from the stage store.
    executed: tuple[str, ...]
    cached: tuple[str, ...]


class ReportService:
    """Keep one world chain resident and its report warm.

    The service is deliberately storage-shaped rather than
    request-shaped: all state lives in the world cache, the delta log,
    and the stage store, so killing the process loses nothing —
    a restarted service replays the log and reloads every unchanged
    fragment from disk.
    """

    def __init__(
        self,
        base_config: WorldConfig,
        *,
        state_dir: str | Path,
        cache: WorldCache | None = None,
        jobs: int = 1,
        use_cache: bool = True,
        grid=None,
    ) -> None:
        self.base_config = base_config
        self.cache = cache if cache is not None else WorldCache()
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.jobs = jobs
        self.use_cache = use_cache
        self.grid = grid
        self.log = DeltaLog(base_config, cache=self.cache)
        self._lock = threading.Lock()
        self._snapshot: Snapshot | None = None
        self._sweep_state: tuple[str, str] | None = None
        self._sweep_json: str | None = None
        self._sweep_report: str | None = None
        self.refreshes = 0
        self.appends = 0
        self.rejected = 0

    # -- reading ---------------------------------------------------------

    def snapshot(self) -> Snapshot | None:
        """The current snapshot, or ``None`` before the first refresh."""
        with self._lock:
            return self._snapshot

    def status_payload(self) -> dict:
        """Operational state for ``/status.json`` (not byte-stable)."""
        snapshot = self.snapshot()
        payload = {
            "base_config_hash": self.log.base_key,
            "refreshes": self.refreshes,
            "appends": self.appends,
            "rejected": self.rejected,
            "has_sweep": self.grid is not None,
            "ready": snapshot is not None,
        }
        if snapshot is not None:
            payload.update(
                {
                    "config_hash": snapshot.config_hash,
                    "etag": snapshot.etag,
                    "n_dasu_users": snapshot.config.n_dasu_users,
                    "n_fcc_users": snapshot.config.n_fcc_users,
                    "executed": list(snapshot.executed),
                    "cached": list(snapshot.cached),
                }
            )
        return payload

    # -- refreshing ------------------------------------------------------

    def refresh(self) -> Snapshot:
        """Re-render the report for the current chain tip and publish it.

        Runs the fragment DAG against the persistent stage store:
        unchanged fragments reload (they land in the snapshot's
        ``cached``), changed ones execute. The swap at the end is the
        only mutation readers can observe.
        """
        from ..dag import DagStore, RunContext, fragment_report_spec, run_dag

        config = self.log.tip_config()
        ledger = RunLedger()
        result = run_dag(
            fragment_report_spec(config),
            store=DagStore(self.state_dir / "stages"),
            ledger=ledger,
            context=RunContext(
                jobs=self.jobs,
                cache_root=str(self.cache.root),
                use_cache=self.use_cache,
            ),
        )
        report_text = result.artifact("paper-report").files["report.txt"]
        from ..analysis.iqb import iqb_payload

        world = result.artifact("world")
        iqb_json = (
            json.dumps(
                iqb_payload(world.dasu.users, world.fcc.users),
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        sweep_json, sweep_report = self._refresh_sweep(config)
        manifest = run_manifest(
            config,
            command="serve",
            extras={
                "append_chain": [d.payload() for d in self.log.replay()],
                "base_config_hash": self.log.base_key,
                "sweep_grid": (
                    self.grid.to_payload() if self.grid is not None else None
                ),
            },
        )
        manifest_text = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        snapshot = Snapshot(
            config=config,
            config_hash=cache_key(config),
            etag=hashlib.sha256(manifest_text.encode("utf-8")).hexdigest(),
            report_text=report_text,
            manifest_text=manifest_text,
            trace_text=ledger.to_jsonl(),
            iqb_json=iqb_json,
            sweep_json=sweep_json,
            sweep_report=sweep_report,
            executed=tuple(result.executed),
            cached=tuple(result.cached),
        )
        with self._lock:
            self._snapshot = snapshot
            self.refreshes += 1
        return snapshot

    def _refresh_sweep(self, config: WorldConfig) -> tuple[str | None, str | None]:
        """Re-run the verdict sweep only when the grid or tip changed.

        Sweep cells build through the shared world cache, so even a
        re-run is warm — but skipping it entirely keeps appends that
        only touch the report from paying for a sweep at all.
        """
        if self.grid is None:
            self._sweep_state = None
            self._sweep_json = None
            self._sweep_report = None
            return None, None
        from ..sweep import (
            SWEEP_EXPERIMENTS,
            format_sweep_report,
            run_sweep,
            sweep_payload,
        )

        state = (payload_key(self.grid.to_payload()), cache_key(config))
        if state == self._sweep_state:
            return self._sweep_json, self._sweep_report
        seeds = self.grid.seeds if self.grid.seeds else (config.seed,)
        result = run_sweep(
            config,
            self.grid,
            seeds,
            experiments=SWEEP_EXPERIMENTS,
            jobs=self.jobs,
            cache_root=str(self.cache.root),
            use_cache=self.use_cache,
        )
        self._sweep_json = (
            json.dumps(sweep_payload(result), indent=2, sort_keys=True) + "\n"
        )
        self._sweep_report = format_sweep_report(result) + "\n"
        self._sweep_state = state
        return self._sweep_json, self._sweep_report

    # -- ingest ----------------------------------------------------------

    def append(self, delta: AppendDelta) -> None:
        """Fold one ingest batch into the resident chain (no refresh)."""
        parent = self.log.tip_config()
        append_world(
            parent,
            delta,
            jobs=self.jobs,
            cache=self.cache,
            use_cache=self.use_cache,
            log=self.log,
        )
        self.appends += 1

    def process_spool(self, spool_dir: str | Path) -> int:
        """Consume every spool file once; returns how many applied.

        ``*.grid.json`` replaces the scenario grid; every other
        ``*.json`` is an append-delta payload. Files are processed in
        sorted order so two appends spooled together apply
        deterministically. A file that fails to parse or apply is
        renamed to ``<name>.rejected`` with the reason on stderr —
        visible, out of the way, and never retried every poll.
        """
        spool = Path(spool_dir)
        try:
            paths = sorted(p for p in spool.glob("*.json") if p.is_file())
        except OSError:
            return 0
        applied = 0
        for path in paths:
            try:
                payload = json.loads(path.read_text())
                if path.name.endswith(".grid.json"):
                    from ..sweep import ScenarioGrid

                    self.grid = ScenarioGrid.from_payload(payload)
                    self._sweep_state = None
                else:
                    self.append(AppendDelta.from_payload(dict(payload)))
            except (OSError, ValueError, TypeError, ReproError) as exc:
                self.rejected += 1
                print(
                    f"serve: rejected spool file {path.name}: {exc}",
                    file=sys.stderr,
                )
                try:
                    path.rename(path.with_name(path.name + ".rejected"))
                except OSError:
                    pass
                continue
            applied += 1
            try:
                path.unlink()
            except OSError:
                pass
        return applied
