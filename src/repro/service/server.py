"""Stdlib HTTP front-end for the warm report service.

A :class:`ReportServer` wraps one :class:`~repro.service.report.ReportService`
in a :class:`http.server.ThreadingHTTPServer` (no dependencies beyond
the standard library) plus a spool-polling loop. Request handlers only
ever read immutable snapshots, so they are safe on the server's handler
threads while the polling loop appends and refreshes.

Endpoints::

    GET /healthz          liveness ("ok" even before the first refresh)
    GET /status.json      operational counters, executed/cached stages
    GET /report.txt       the assembled paper report        (ETag)
    GET /manifest.json    provenance manifest of the report (ETag)
    GET /trace.jsonl      run ledger of the last refresh    (ETag)
    GET /iqb.json         internet quality barometer payload (ETag)
    GET /sweep.json       verdict sweep payload, 404 w/o a grid (ETag)
    GET /sweep-report.txt verdict-stability report, 404 w/o grid (ETag)

The ETag is the SHA-256 of the provenance manifest, shared by every
content endpoint: it changes exactly when the served configuration
(base config + append chain + grid) or the code version changes, which
is exactly when any of those bytes may change. ``If-None-Match`` with
the current tag short-circuits to ``304 Not Modified``.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from .._version import __version__
from .report import ReportService

__all__ = ["ReportServer"]


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{__version__}"

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        service: ReportService = self.server.service  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send(200, "text/plain; charset=utf-8", "ok\n")
            return
        if path == "/status.json":
            body = json.dumps(
                service.status_payload(), indent=2, sort_keys=True
            ) + "\n"
            self._send(200, "application/json", body)
            return
        snapshot = service.snapshot()
        if snapshot is None:
            self._send(
                503, "text/plain; charset=utf-8", "warming up: no snapshot yet\n"
            )
            return
        content = {
            "/report.txt": ("text/plain; charset=utf-8", snapshot.report_text),
            "/manifest.json": ("application/json", snapshot.manifest_text),
            "/trace.jsonl": ("application/jsonl", snapshot.trace_text),
            "/iqb.json": ("application/json", snapshot.iqb_json),
            "/sweep.json": ("application/json", snapshot.sweep_json),
            "/sweep-report.txt": (
                "text/plain; charset=utf-8",
                snapshot.sweep_report,
            ),
        }
        if path not in content:
            self._send(404, "text/plain; charset=utf-8", "not found\n")
            return
        content_type, body = content[path]
        if body is None:  # sweep endpoints without a configured grid
            self._send(
                404, "text/plain; charset=utf-8", "no scenario grid configured\n"
            )
            return
        if self.headers.get("If-None-Match") == snapshot.etag:
            self.send_response(304)
            self.send_header("ETag", snapshot.etag)
            self.end_headers()
            return
        self._send(200, content_type, body, etag=snapshot.etag)

    def _send(
        self, status: int, content_type: str, body: str, *, etag: str | None = None
    ) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if etag is not None:
            self.send_header("ETag", etag)
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:
        # Request logging is operational noise; the service prints its
        # own ingest/refresh lines. Silence the per-request chatter.
        pass


class ReportServer:
    """The service daemon: HTTP threads plus a spool-polling loop.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`
    after :meth:`start`), which is how the tests and the CI job run
    several daemons side by side.
    """

    def __init__(
        self,
        service: ReportService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        spool_dir: str | Path | None = None,
        interval_s: float = 1.0,
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        self.interval_s = interval_s
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server is not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Warm the first snapshot, then serve in a background thread."""
        if self.spool_dir is not None:
            self.spool_dir.mkdir(parents=True, exist_ok=True)
            self.service.process_spool(self.spool_dir)
        self.service.refresh()
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), _Handler
        )
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()

    def poll_once(self) -> int:
        """One spool pass; refreshes the snapshot if anything applied."""
        if self.spool_dir is None:
            return 0
        applied = self.service.process_spool(self.spool_dir)
        if applied:
            self.service.refresh()
        return applied

    def run(self) -> None:
        """Block polling the spool until :meth:`stop` (or Ctrl-C)."""
        try:
            while not self._stop.wait(self.interval_s):
                try:
                    self.poll_once()
                except Exception as exc:  # keep the daemon alive
                    print(f"serve: refresh failed: {exc}", file=sys.stderr)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        self._stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
