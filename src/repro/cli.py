"""Command-line interface.

The subcommands cover the study lifecycle::

    python -m repro build   --out DIR [--seed N --users N --fcc N --days D]
                            [--faults PROFILE --sanitize]
                            [--jobs N --no-cache --cache-dir DIR]
    python -m repro append  [--seed N --users N ...] --add-users N --add-fcc N
    python -m repro serve   [--seed N --users N ...] [--port P --spool DIR]
                            [--grid FILE --state-dir DIR]
    python -m repro analyze --data DIR --experiment NAME
    python -m repro report  [--data DIR | --seed N --users N ...] [--out FILE]
    python -m repro sweep   [--grid FILE] [--seeds N] [--experiments LIST]
                            [--out DIR] [--jobs N] [--trace]
    python -m repro iqb     [--data DIR | --seed N ...] [--config NAME|FILE]
                            [--out DIR] [--jobs N] [--trace]
    python -m repro export  --data DIR --out DIR

``build`` generates a world and persists it (users.csv, survey.csv,
config.json); ``analyze`` runs a single paper experiment against a
persisted dataset; ``report`` renders the full paper-vs-measured report.
Everything operates on the on-disk record formats, so third-party
datasets in the same schema work too.

``build`` and ``report`` consult an on-disk world cache keyed by the
full configuration and package version (see
:mod:`repro.datasets.cache`): rebuilding the same world is a copy, and
``report`` without ``--data`` renders straight from the cache, skipping
the build entirely. ``--no-cache`` forces a fresh build; ``--jobs N``
shards both the build and the report's analysis fragments across N
worker processes with byte-identical output; ``report --profile``
prints per-fragment wall/CPU timings to stderr.

``--faults {off,light,default,heavy}`` injects seeded measurement
pathologies (host churn, dropped/duplicated samples, counter
resets/wraps, failed NDT runs, clock skew, gateway gaps — see
:mod:`repro.faults`) and ``--sanitize`` runs the paper's data-cleaning
rules over the dirty collections (:mod:`repro.datasets.sanitize`),
printing the per-rule sanitization report. Both default off, in which
case output is byte-identical to builds that predate the flags.

``build --trace`` and ``report --trace`` write the run's observability
artifacts (see :mod:`repro.obs`): ``trace.jsonl``, the run ledger's
counters/gauges/spans in canonical order, and ``manifest.json``, the
provenance manifest (config + hash, seed, code and library versions).
Both are byte-identical for a fixed seed across any ``--jobs`` value,
and the trace's ``sanitize.*`` counters always equal the persisted
``sanitization.json``.

``dag run`` executes a declarative experiment DAG (see
:mod:`repro.dag`): ``--spec dag.json`` names the stages — or a
``{"pipeline": "report"|"sweep", ...}`` shorthand expanding to the
built-in pipelines — and every stage's output is content-addressed and
persisted under ``<out>/stages``. A killed run *resumes*: re-invoking
the same command reloads finished stages and re-executes only the
rest, with final artifacts (including ``trace.jsonl``) byte-identical
to an uninterrupted run, for either ``--backend`` and any ``--jobs``.
``report`` and ``sweep`` themselves run on the same scheduler
(in-memory, no stage store), so all three commands share one
execution path.

``append`` folds new households into a cached world without a full
rebuild (see :mod:`repro.datasets.append`): only the added household
index ranges are simulated, and the extended entry is byte-identical
to a cold build of the larger configuration. ``serve`` keeps the
append chain resident and serves the paper report over HTTP,
re-rendering only the report fragments whose input data changed (see
:mod:`repro.service`).

``sweep`` evaluates the paper's verdicts across a whole grid of worlds
(see :mod:`repro.sweep`): a declarative scenario grid (``--grid
grid.json`` — config overrides × fault severities) is crossed with
``--seeds N`` replicate seeds, every (scenario, seed) cell is built
through the shared world cache and fanned out over ``--jobs`` workers,
and the chosen ``--experiments`` run per cell. The verdict-stability
report (and ``sweep.json``, and the ``--trace`` artifacts — one merged
ledger and manifest per sweep) is byte-identical for any ``--jobs``
value and for warm vs cold caches.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .analysis import capacity, characterization, longitudinal, price, quality, upgrade_cost
from .analysis.report import format_experiment_row
from .core.executor import resolve_jobs
from .core.timing import format_profile
from .datasets import WorldConfig, build_world
from .datasets.cache import WorldCache, cache_key
from .faults import FAULT_PROFILES, fault_profile
from .obs.ledger import RunLedger
from .obs.manifest import run_manifest, write_manifest
from .datasets.io import (
    read_survey_csv,
    read_users_csv,
    read_users_npy,
    write_config_json,
    write_survey_csv,
    write_users_csv,
    write_users_npy,
)
from .exceptions import DatasetError, ReproError

__all__ = ["main"]

#: Experiments runnable via ``analyze``; each maps to (needs_survey, runner).
EXPERIMENTS = (
    "fig1", "fig2", "fig4", "fig6", "fig7", "fig10", "fig11", "fig12",
    "table1", "table2", "table3", "table5", "table6", "table7", "table8",
    # Extensions beyond the paper's evaluation.
    "caps", "diurnal", "segments", "upload",
)


def _world_config(args: argparse.Namespace) -> WorldConfig:
    return WorldConfig(
        seed=args.seed,
        n_dasu_users=args.users,
        n_fcc_users=args.fcc,
        days_per_year=args.days,
        faults=fault_profile(getattr(args, "faults", "off")),
        sanitize=bool(getattr(args, "sanitize", False)),
    )


def _write_trace(ledger: RunLedger, manifest: dict, out_dir: Path) -> None:
    """Write the run's ledger stream and provenance manifest.

    Both artifacts are byte-identical for a fixed seed across any
    ``--jobs`` value: the ledger serializes in canonical event order
    with durations excluded, and the manifest carries no scheduling
    knobs or timestamps.
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "trace.jsonl").write_text(ledger.to_jsonl())
    write_manifest(manifest, out_dir / "manifest.json")
    print(f"trace written to {out_dir / 'trace.jsonl'}", file=sys.stderr)


def _build(args: argparse.Namespace) -> int:
    jobs = resolve_jobs(args.jobs)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    config = _world_config(args)
    cache = WorldCache(args.cache_dir)
    key = cache_key(config)
    if not args.no_cache and cache.fetch_into(config, out):
        # The entry's trace.jsonl (byte-identical to a fresh build's)
        # rode along with the copy; only the manifest is recomputed.
        print(f"cache hit ({key[:12]}): reused cached world, "
              "skipping build")
        print(f"wrote cached dataset to {out}")
        if args.trace:
            if not (out / "trace.jsonl").exists():
                # Entry predates the ledger: no build events are
                # recoverable, so the stream is empty rather than wrong.
                (out / "trace.jsonl").write_text(RunLedger().to_jsonl())
            write_manifest(
                run_manifest(config, command="build"),
                out / "manifest.json",
            )
            print(f"trace written to {out / 'trace.jsonl'}", file=sys.stderr)
        return 0
    print(f"building world (seed={config.seed}, {config.n_dasu_users} "
          f"Dasu users, jobs={jobs})...", flush=True)
    ledger = RunLedger()
    world = build_world(config, jobs=jobs, ledger=ledger, ground_truth=False)
    columns = world.all_columns
    n_users = write_users_csv(columns, out / "users.csv")
    write_users_npy(columns, out / "users.npy")
    n_plans = write_survey_csv(world.survey, out / "survey.csv")
    write_config_json(config, out / "config.json")
    if world.sanitization is not None:
        (out / "sanitization.json").write_text(
            json.dumps(
                world.sanitization.to_payload(), indent=2, sort_keys=True
            )
        )
        print(world.sanitization.format())
    print(f"wrote {n_users} user-period rows, {n_plans} plan rows to {out}")
    if args.trace:
        _write_trace(ledger, run_manifest(config, command="build"), out)
    if not args.no_cache:
        entry = cache.store(world)
        if entry is not None:
            print(f"cached world under key {key[:12]}")
    return 0


def _load(data_dir: Path):
    users_path = data_dir / "users.csv"
    npy_path = data_dir / "users.npy"
    users = None
    if npy_path.exists():
        # Columnar shard, when present, is the fast path: no CSV parsing
        # and full-precision hourly profiles (the CSV stores them at %.6g).
        # Sorting by user_id matches read_users_csv's return order.
        try:
            columns = read_users_npy(npy_path)
        except DatasetError:
            columns = None  # unreadable/foreign shard: fall back to CSV
        if columns is not None:
            users = sorted(columns.to_records(), key=lambda u: u.user_id)
    if users is None:
        if not users_path.exists():
            raise ReproError(f"no users.csv under {data_dir}")
        users = read_users_csv(users_path)
    dasu = [u for u in users if u.source == "dasu"]
    fcc = [u for u in users if u.source == "fcc"]
    survey = None
    survey_path = data_dir / "survey.csv"
    if survey_path.exists():
        survey = read_survey_csv(survey_path)
    return dasu, fcc, survey


def _run_experiment(name: str, dasu, fcc, survey) -> str:
    if name in ("table5", "fig10") and survey is None:
        raise ReproError(f"{name} needs survey.csv next to users.csv")
    lines: list[str] = [f"experiment: {name}"]
    if name == "fig1":
        for label, paper, measured in characterization.figure1(dasu).summary_rows():
            lines.append(f"  {label:<40} paper {paper:>8.3f} measured {measured:>8.3f}")
    elif name == "fig2":
        result = capacity.figure2(dasu)
        for title, curve in result.panels():
            lines.append(f"  {title}: r = {curve.correlation:.3f}")
    elif name == "fig4":
        result = capacity.figure4(dasu)
        lines.append(f"  mean usage ratio at median: {result.mean_ratio_at_median:.2f}")
        lines.append(f"  peak usage ratio at median: {result.peak_ratio_at_median:.2f}")
    elif name == "fig6":
        result = longitudinal.figure6(dasu, min_users=30)
        lines.append(format_experiment_row("2011 vs 2013", None, result.cross_year_experiment))
        lines.append(f"  max class drift: {result.max_class_drift():.3f}")
    elif name == "fig7":
        result = price.figure7(dasu)
        for entry in result.countries:
            lines.append(
                f"  {entry.country:<14} capacity {entry.median_capacity_mbps:8.2f} Mbps"
                f"  utilization {100 * entry.mean_peak_utilization:5.1f}%"
            )
    elif name == "fig10":
        result = upgrade_cost.figure10(survey)
        lines.append(f"  qualifying markets: {result.n_countries}")
        for country in ("Japan", "US", "Ghana"):
            cost = result.cost_for(country)
            if cost is not None:
                lines.append(f"  {country:<8} ${cost:.2f}/Mbps")
    elif name == "fig11":
        result = quality.figure11(dasu)
        lines.append(
            f"  India lower demand than matched US: "
            f"{100 * result.india_lower_demand_share:.0f}% (paper 62%)"
        )
    elif name == "fig12":
        result = quality.figure12(dasu)
        lines.append(
            f"  median loss: India {result.india_median_loss_pct:.2f}% "
            f"vs rest {result.other_median_loss_pct:.3f}%"
        )
    elif name == "table1":
        result = capacity.table1(dasu)
        for label, paper, experiment in result.rows():
            lines.append(format_experiment_row(label, paper, experiment))
    elif name == "table2":
        result = capacity.table2(dasu, "dasu")
        for row in result.rows:
            lines.append(
                format_experiment_row(
                    f"{row.control_bin.label()} vs next", None, row.experiment
                )
            )
    elif name == "table3":
        result = price.table3(dasu)
        for label, paper, experiment in result.rows():
            lines.append(format_experiment_row(label, paper, experiment))
    elif name == "table5":
        result = upgrade_cost.table5(survey)
        for row in result.rows:
            if row.n_countries:
                lines.append(
                    f"  {row.region:<28} >$1 {100 * row.share_above_1:3.0f}%"
                    f"  >$5 {100 * row.share_above_5:3.0f}%"
                    f"  >$10 {100 * row.share_above_10:3.0f}%"
                )
    elif name == "table6":
        for include_bt in (True, False):
            result = upgrade_cost.table6(dasu, include_bt=include_bt)
            tag = "w/ BT" if include_bt else "no BT"
            for label, paper, experiment in result.rows():
                lines.append(format_experiment_row(f"{label} ({tag})", paper, experiment))
    elif name == "table7":
        result = quality.table7(dasu)
        for row in result.rows:
            lines.append(
                format_experiment_row(
                    f"vs {row.treatment_bin.label('ms')}",
                    row.paper_percent,
                    row.experiment,
                )
            )
    elif name == "table8":
        result = quality.table8(dasu)
        for row in result.rows:
            lines.append(
                format_experiment_row(
                    row.experiment.result.name, row.paper_percent, row.experiment
                )
            )
    elif name == "caps":
        from .analysis.caps import caps_experiment

        result = caps_experiment(dasu)
        r = result.experiment.result
        lines.append(
            f"  {result.n_tight_capped} tightly capped vs "
            f"{result.n_uncapped} uncapped users"
        )
        lines.append(format_experiment_row("uncapped demand more", None, r))
    elif name == "diurnal":
        from .analysis.diurnal import population_diurnal_profile

        profile = population_diurnal_profile(dasu)
        lines.append(
            f"  peak hour {profile.peak_hour}:00, trough "
            f"{profile.trough_hour}:00, peak/trough "
            f"x{profile.peak_to_trough_ratio:.1f}, coverage bias "
            f"{profile.coverage_bias():.2f}"
        )
    elif name == "segments":
        from .analysis.segments import segment_users

        result = segment_users(dasu)
        for profile in result.profiles:
            lines.append(
                f"  {profile.segment:<10} n={profile.n_users:<6} "
                f"median peak {profile.median_peak_mbps:.3f} Mbps  "
                f"mean util {100 * profile.mean_peak_utilization:.1f}%"
            )
    elif name == "upload":
        from .analysis.upload import seeding_experiment, upload_asymmetry

        asymmetry = upload_asymmetry(dasu)
        lines.append(
            f"  median up/down ratio {asymmetry.median_ratio:.3f} "
            f"(n={asymmetry.n_users})"
        )
        seeding = seeding_experiment(dasu)
        lines.append(
            format_experiment_row(
                "BT households upload more", None, seeding
            )
        )
    else:
        raise ReproError(f"unknown experiment {name!r}")
    return "\n".join(lines)


def _analyze(args: argparse.Namespace) -> int:
    dasu, fcc, survey = _load(Path(args.data))
    print(_run_experiment(args.experiment, dasu, fcc, survey))
    return 0


def _report(args: argparse.Namespace) -> int:
    # The report pipeline runs as a two-stage experiment DAG (build or
    # load the data, then render). Artifacts, stdout, and the --trace
    # ledger are byte-identical to the pre-DAG direct path: the build
    # stage prints the same cache-hit/build messages and folds the
    # build's events into the run ledger exactly as this function used
    # to do inline.
    from .dag import InProcessBackend, RunContext, report_spec, run_dag

    jobs = resolve_jobs(args.jobs)
    ledger = RunLedger()
    config = None
    data_dir = None
    if args.data is not None:
        data_dir = str(args.data)
        spec = report_spec(data_dir=data_dir)
    else:
        # No dataset directory: render from the world cache, building
        # (and caching) only on a miss.
        config = _world_config(args)
        spec = report_spec(config)
    result = run_dag(
        spec,
        backend=InProcessBackend(),
        ledger=ledger,
        context=RunContext(
            jobs=jobs,
            cache_root=args.cache_dir,
            use_cache=not args.no_cache,
            data_dir=data_dir,
        ),
    )
    if config is not None and args.profile:
        world = result.artifact("world")
        if world.sanitization is not None:
            # Diagnostics channel: like the timing profile, the
            # sanitization accounting goes to stderr so the report
            # itself stays byte-identical and pipeable.
            print(world.sanitization.format(), file=sys.stderr)
    text = result.artifact("paper-report").files["report.txt"].removesuffix("\n")
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"report written to {args.out}")
    else:
        print(text)
    if args.profile:
        # The profile is a view over the ledger's report/* spans. It
        # goes to stderr so the report itself stays byte-identical
        # (and pipeable) whether or not it is requested.
        print(
            format_profile(
                ledger.stage_timings(prefix="report/"),
                title="analysis profile",
            ),
            file=sys.stderr,
        )
    if args.trace:
        _write_trace(
            ledger,
            run_manifest(config, command="report", data_dir=data_dir),
            Path(args.trace_dir),
        )
    return 0


def _sweep(args: argparse.Namespace) -> int:
    from .sweep import (
        SWEEP_EXPERIMENTS,
        ScenarioGrid,
        format_sweep_report,
        run_sweep,
        sweep_payload,
    )

    jobs = resolve_jobs(args.jobs)
    config = _world_config(args)
    grid = (
        ScenarioGrid.from_json(args.grid)
        if args.grid is not None
        else ScenarioGrid.baseline()
    )
    if args.seeds is not None:
        if args.seeds < 1:
            raise ReproError(
                f"--seeds must be a positive replicate count, got {args.seeds}"
            )
        seeds = tuple(config.seed + i for i in range(args.seeds))
    elif grid.seeds:
        seeds = grid.seeds
    else:
        seeds = (config.seed,)
    experiments = (
        tuple(key.strip() for key in args.experiments.split(",") if key.strip())
        if args.experiments
        else SWEEP_EXPERIMENTS
    )
    if args.trace and not args.out:
        raise ReproError("sweep --trace needs --out to hold the artifacts")
    print(
        f"sweeping {len(grid.scenarios)} scenarios x {len(seeds)} seeds "
        f"({len(grid.scenarios) * len(seeds)} cells, jobs={jobs})...",
        flush=True,
    )
    ledger = RunLedger()
    result = run_sweep(
        config,
        grid,
        seeds,
        experiments=experiments,
        jobs=jobs,
        cache_root=args.cache_dir,
        use_cache=not args.no_cache,
        ledger=ledger,
    )
    # Cache accounting is scheduling/state dependent, so it goes to
    # stderr: the report itself must be byte-identical cold vs warm.
    print(
        f"worlds from cache: {result.n_cache_hits}/{len(result.cells)}",
        file=sys.stderr,
    )
    text = format_sweep_report(result)
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        (out / "report.txt").write_text(text + "\n")
        (out / "sweep.json").write_text(
            json.dumps(sweep_payload(result), indent=2, sort_keys=True) + "\n"
        )
        print(f"sweep report written to {out}")
        if args.trace:
            _write_trace(
                ledger,
                run_manifest(
                    config,
                    command="sweep",
                    extras={
                        "grid": grid.to_payload(),
                        "sweep_seeds": list(seeds),
                        "experiments": list(experiments),
                    },
                ),
                out,
            )
    else:
        print(text)
    return 0


def _dag_run(args: argparse.Namespace) -> int:
    from .dag import DagSpec, DagStore, FileBundle, RunContext, get_backend, run_dag

    jobs = resolve_jobs(args.jobs)
    spec = DagSpec.from_json(args.spec)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    store = DagStore(out / "stages")
    if not args.resume:
        store.clear()
    backend = get_backend(args.backend, jobs=jobs)
    # The pool backend spends --jobs on stage-level fan-out; in-process
    # runs spend it on intra-stage sharding (a build's user shards, the
    # report's analysis fragments). Either way the artifacts are
    # byte-identical for any value: jobs is a scheduling knob, excluded
    # from stage keys and stage outputs by construction.
    context = RunContext(
        jobs=jobs if args.backend == "inprocess" else 1,
        cache_root=args.cache_dir,
        use_cache=not args.no_cache,
        data_dir=args.data,
    )
    ledger = RunLedger()
    result = run_dag(
        spec, backend=backend, store=store, ledger=ledger, context=context
    )
    written: list[str] = []
    for stage in spec.topological_order():
        artifact = result.artifacts.get(stage.name)
        if isinstance(artifact, FileBundle):
            for name, text in artifact.files.items():
                path = out / name
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(text)
                written.append(name)
    (out / "trace.jsonl").write_text(ledger.to_jsonl())
    write_manifest(
        run_manifest(
            None,
            command="dag",
            data_dir=args.data,
            extras={"dag": spec.to_payload()},
        ),
        out / "manifest.json",
    )
    print(
        f"stages: {len(result.executed)} executed, "
        f"{len(result.cached)} resumed from {out / 'stages'}",
        file=sys.stderr,
    )
    files = ", ".join(written) if written else "no report files"
    print(f"dag '{spec.name}' complete: {files} in {out}")
    return 0


def _append(args: argparse.Namespace) -> int:
    from .datasets import AppendDelta, DeltaLog, append_world

    jobs = resolve_jobs(args.jobs)
    base = _world_config(args)
    cache = WorldCache(args.cache_dir)
    log = DeltaLog(base, cache=cache)
    parent = log.tip_config()
    delta = AppendDelta(
        n_dasu_users=args.add_users, n_fcc_users=args.add_fcc
    )
    result = append_world(
        parent,
        delta,
        jobs=jobs,
        cache=cache,
        use_cache=not args.no_cache,
        log=log,
    )
    how = (
        "already cached" if result.from_cache
        else "full rebuild (allocation shrank a country)" if result.rebuilt
        else "incremental append"
    )
    print(
        f"appended {delta.n_dasu_users} Dasu + {delta.n_fcc_users} FCC "
        f"users onto {cache_key(parent)[:12]} -> "
        f"{cache_key(result.config)[:12]} ({how})"
    )
    print(
        f"chain tip: {result.config.n_dasu_users} Dasu users, "
        f"{result.config.n_fcc_users} FCC users"
    )
    return 0


def _serve(args: argparse.Namespace) -> int:
    from .service import ReportServer, ReportService
    from .sweep import ScenarioGrid

    jobs = resolve_jobs(args.jobs)
    base = _world_config(args)
    cache = WorldCache(args.cache_dir)
    grid = ScenarioGrid.from_json(args.grid) if args.grid else None
    state_dir = (
        Path(args.state_dir)
        if args.state_dir is not None
        else cache.root / "serve-state"
    )
    service = ReportService(
        base,
        state_dir=state_dir,
        cache=cache,
        jobs=jobs,
        use_cache=not args.no_cache,
        grid=grid,
    )
    server = ReportServer(
        service,
        host=args.host,
        port=args.port,
        spool_dir=args.spool,
        interval_s=args.interval,
    )
    server.start()
    print(f"serving {cache_key(base)[:12]} chain on {server.url}", flush=True)
    if args.spool:
        print(f"watching spool directory {args.spool}", flush=True)
    if args.once:
        server.stop()
        return 0
    server.run()
    return 0


def _iqb(args: argparse.Namespace) -> int:
    from .analysis.iqb import (
        IQB_PRESETS,
        IqbConfig,
        format_iqb_report,
        iqb_payload,
        resolve_iqb_config,
    )
    from .datasets.cache import build_or_load_world
    from .obs import ledger as obs

    jobs = resolve_jobs(args.jobs)
    if args.config is None or args.config in IQB_PRESETS:
        iqb_config = resolve_iqb_config(args.config)
    else:
        # Not a preset name: a path to an iqb.json config file.
        iqb_config = IqbConfig.from_json(args.config)
    ledger = RunLedger()
    config = None
    with obs.scoped(ledger):
        if args.data is not None:
            dasu, fcc, _ = _load(Path(args.data))
        else:
            config = _world_config(args)
            world, from_cache = build_or_load_world(
                config,
                jobs=jobs,
                cache=WorldCache(args.cache_dir),
                use_cache=not args.no_cache,
                ground_truth=False,
            )
            if from_cache:
                print(
                    f"cache hit ({cache_key(config)[:12]}): "
                    "skipping build",
                    file=sys.stderr,
                )
            if world.ledger is not None:
                ledger.merge(world.ledger)
            dasu, fcc = world.dasu.users, world.fcc.users
        text = format_iqb_report(dasu, fcc, iqb_config)
        payload = iqb_payload(dasu, fcc, iqb_config)
    if args.out:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        (out / "iqb.txt").write_text(text + "\n")
        (out / "iqb.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"barometer written to {out}")
    else:
        print(text)
    if args.trace:
        if not args.out:
            raise ReproError("iqb --trace needs --out to hold the artifacts")
        _write_trace(
            ledger,
            run_manifest(
                config,
                command="iqb",
                data_dir=None if args.data is None else str(args.data),
                extras={"iqb_config": iqb_config.to_payload()},
            ),
            Path(args.out),
        )
    return 0


def _export(args: argparse.Namespace) -> int:
    from .analysis.export import export_figure_data

    dasu, fcc, survey = _load(Path(args.data))
    files = export_figure_data(Path(args.out), dasu, fcc, survey)
    print(f"wrote {len(files)} figure-data files to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction toolkit for 'Need, Want, Can Afford' (IMC 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_world_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=20141105)
        p.add_argument("--users", type=int, default=2000,
                       help="Dasu users to simulate")
        p.add_argument("--fcc", type=int, default=400,
                       help="FCC gateways to simulate")
        p.add_argument("--days", type=float, default=1.5,
                       help="observed days per user per year")
        p.add_argument("--faults", default="off",
                       choices=("off", *FAULT_PROFILES),
                       help="inject seeded measurement faults at this "
                            "severity (default: off, byte-identical to "
                            "pre-fault-injection builds)")
        p.add_argument("--sanitize", action="store_true",
                       help="run the paper's data-cleaning rules while "
                            "building and report per-rule counts")

    def add_cache_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the build and, under "
                            "'report', the analysis stage (output is "
                            "identical for any value; default 1)")
        p.add_argument("--no-cache", action="store_true",
                       help="ignore the world cache and rebuild")
        p.add_argument("--cache-dir", default=None,
                       help="world cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro/worlds)")

    p_build = sub.add_parser("build", help="generate and persist a world")
    p_build.add_argument("--out", required=True, help="output directory")
    add_world_args(p_build)
    add_cache_args(p_build)
    p_build.add_argument("--trace", action="store_true",
                         help="write the run ledger (trace.jsonl) and "
                              "provenance manifest (manifest.json) next "
                              "to the dataset; byte-identical for any "
                              "--jobs value")
    p_build.set_defaults(func=_build)

    p_analyze = sub.add_parser("analyze", help="run one paper experiment")
    p_analyze.add_argument("--data", required=True,
                           help="directory written by 'build'")
    p_analyze.add_argument("--experiment", required=True, choices=EXPERIMENTS)
    p_analyze.set_defaults(func=_analyze)

    p_report = sub.add_parser("report", help="full paper-vs-measured report")
    p_report.add_argument("--data",
                          help="directory written by 'build'; omit to "
                               "build/load a world from the cache instead")
    p_report.add_argument("--out", help="write the report to a file")
    p_report.add_argument("--profile", action="store_true",
                          help="print per-fragment wall/CPU timings of the "
                               "analysis stage to stderr (a view over the "
                               "run ledger)")
    p_report.add_argument("--trace", action="store_true",
                          help="write the run ledger (trace.jsonl) and "
                               "provenance manifest (manifest.json) to "
                               "--trace-dir; byte-identical for any "
                               "--jobs value")
    p_report.add_argument("--trace-dir", default=".",
                          help="directory for --trace artifacts "
                               "(default: current directory)")
    add_world_args(p_report)
    add_cache_args(p_report)
    p_report.set_defaults(func=_report)

    p_sweep = sub.add_parser(
        "sweep",
        help="evaluate the paper's verdicts across a scenario grid",
    )
    p_sweep.add_argument("--grid",
                         help="scenario grid JSON (scenarios/axes/seeds); "
                              "omit for a baseline-only seed sweep")
    p_sweep.add_argument("--seeds", type=int, default=None,
                         help="replicate seeds per scenario (base seed, "
                              "base seed + 1, ...); overrides grid-declared "
                              "seeds")
    p_sweep.add_argument("--experiments", default=None,
                         help="comma-separated experiment subset "
                              "(default: every sweep-runnable experiment)")
    p_sweep.add_argument("--out",
                         help="directory for report.txt and sweep.json "
                              "(omit to print the report)")
    p_sweep.add_argument("--trace", action="store_true",
                         help="write one merged run ledger (trace.jsonl) "
                              "and provenance manifest (manifest.json) for "
                              "the whole sweep into --out; byte-identical "
                              "for any --jobs value")
    add_world_args(p_sweep)
    add_cache_args(p_sweep)
    p_sweep.set_defaults(func=_sweep)

    p_iqb = sub.add_parser(
        "iqb",
        help="internet quality barometer: use-case scores and markets",
        description=(
            "Grade every household's measured connection against a "
            "declarative use-case config (--config: a preset name or "
            "an iqb.json file), aggregate per-market barometer scores "
            "with Wilson intervals, and run the IQB-vs-demand matched "
            "experiment. Prints the barometer report; --out also "
            "writes iqb.txt and iqb.json, byte-identical for any "
            "--jobs value and for warm vs cold caches."
        ),
    )
    p_iqb.add_argument("--config", default=None,
                       help="IQB config: a preset name (default, "
                            "streaming) or a path to an iqb.json file "
                            "(default: the built-in default config)")
    p_iqb.add_argument("--data",
                       help="directory written by 'build'; omit to "
                            "build/load a world from the cache instead")
    p_iqb.add_argument("--out",
                       help="directory for iqb.txt and iqb.json "
                            "(omit to print the report only)")
    p_iqb.add_argument("--trace", action="store_true",
                       help="write the run ledger (trace.jsonl) and "
                            "provenance manifest (manifest.json) into "
                            "--out; byte-identical for any --jobs value")
    add_world_args(p_iqb)
    add_cache_args(p_iqb)
    p_iqb.set_defaults(func=_iqb)

    p_dag = sub.add_parser(
        "dag",
        help="declarative, resumable experiment DAGs (see repro.dag)",
    )
    dag_sub = p_dag.add_subparsers(dest="dag_command", required=True)
    p_dag_run = dag_sub.add_parser(
        "run",
        help="execute (or resume) a DAG spec into a run directory",
        description=(
            "Execute a declarative experiment DAG. --spec names a JSON "
            "spec: either an explicit stage list or a pipeline "
            "shorthand such as {\"pipeline\": \"sweep\", \"config\": "
            "{...}}. Every stage's output is content-addressed and "
            "persisted under <out>/stages, so a killed run resumes by "
            "re-invoking the same command: finished stages reload, "
            "unfinished ones re-execute, and the final artifacts are "
            "byte-identical to an uninterrupted run — for either "
            "backend and any --jobs value."
        ),
    )
    p_dag_run.add_argument("--spec", required=True,
                           help="DAG spec JSON (stage list or pipeline "
                                "shorthand)")
    p_dag_run.add_argument("--out", required=True,
                           help="run directory: stage store, report "
                                "files, trace.jsonl, manifest.json")
    p_dag_run.add_argument("--resume", default=True,
                           action=argparse.BooleanOptionalAction,
                           help="reuse completed stages from a previous "
                                "(possibly killed) run of the same spec "
                                "(--no-resume clears the stage store "
                                "first; default: resume)")
    p_dag_run.add_argument("--backend", default="inprocess",
                           choices=("inprocess", "pool"),
                           help="stage executor: 'inprocess' runs stages "
                                "serially in this process, 'pool' fans "
                                "each ready wave across --jobs worker "
                                "processes (identical output bytes)")
    p_dag_run.add_argument("--jobs", type=int, default=1,
                           help="worker processes (stage-level for "
                                "--backend pool, intra-stage otherwise); "
                                "output is identical for any value")
    p_dag_run.add_argument("--no-cache", action="store_true",
                           help="ignore the world cache inside build "
                                "stages and rebuild")
    p_dag_run.add_argument("--cache-dir", default=None,
                           help="world cache directory (default: "
                                "$REPRO_CACHE_DIR or ~/.cache/repro/worlds)")
    p_dag_run.add_argument("--data", default=None,
                           help="dataset directory for specs with a "
                                "'load-data' stage")
    p_dag_run.set_defaults(func=_dag_run)

    p_append = sub.add_parser(
        "append",
        help="fold new households into a cached world (no full rebuild)",
        description=(
            "Incremental ingest: extend the cached world rooted at the "
            "base configuration (--seed/--users/...) by --add-users / "
            "--add-fcc households. Only the new household index ranges "
            "are simulated; the extended world is published as a normal "
            "cache entry byte-identical to a cold build of the larger "
            "configuration, and the append is recorded in a delta log "
            "so 'repro serve' replays the chain after a restart. "
            "Repeated appends stack: each extends the current chain tip."
        ),
    )
    add_world_args(p_append)
    add_cache_args(p_append)
    p_append.add_argument("--add-users", type=int, default=0,
                          help="additional Dasu users to fold in")
    p_append.add_argument("--add-fcc", type=int, default=0,
                          help="additional FCC gateways to fold in")
    p_append.set_defaults(func=_append)

    p_serve = sub.add_parser(
        "serve",
        help="warm report daemon over HTTP (see repro.service)",
        description=(
            "Keep the world chain rooted at the base configuration "
            "resident and serve its paper report over HTTP. Drop "
            "append-delta JSON files (or <name>.grid.json scenario "
            "grids) into --spool to ingest new periods; only report "
            "fragments whose input content digests changed re-execute. "
            "Endpoints: /report.txt /manifest.json /trace.jsonl "
            "/status.json /iqb.json /sweep.json /sweep-report.txt "
            "/healthz; "
            "content endpoints carry an ETag (the manifest hash) and "
            "honor If-None-Match."
        ),
    )
    add_world_args(p_serve)
    add_cache_args(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8423,
                         help="listen port (0 binds an ephemeral port)")
    p_serve.add_argument("--spool", default=None,
                         help="directory watched for append-delta and "
                              "grid JSON files")
    p_serve.add_argument("--state-dir", default=None,
                         help="fragment stage store directory (default: "
                              "<cache>/serve-state)")
    p_serve.add_argument("--grid", default=None,
                         help="scenario grid JSON; enables /sweep.json "
                              "and /sweep-report.txt")
    p_serve.add_argument("--interval", type=float, default=1.0,
                         help="spool poll interval in seconds")
    p_serve.add_argument("--once", action="store_true",
                         help="warm the snapshot, then exit immediately "
                              "(smoke-test mode)")
    p_serve.set_defaults(func=_serve)

    p_export = sub.add_parser(
        "export", help="write every figure's data series to CSV"
    )
    p_export.add_argument("--data", required=True)
    p_export.add_argument("--out", required=True)
    p_export.set_defaults(func=_export)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
