"""repro — a reproduction of "Need, Want, Can Afford: Broadband Markets
and the Behavior of Users" (Bischof, Bustamante & Stanojevic, IMC 2014).

The package has two halves:

* a **generative substrate** that replaces the paper's proprietary
  datasets — retail broadband markets (:mod:`repro.market`), access
  networks (:mod:`repro.network`), user behavior (:mod:`repro.behavior`),
  traffic (:mod:`repro.traffic`) and measurement clients
  (:mod:`repro.measurement`), assembled into datasets by
  :mod:`repro.datasets`;
* the **analysis toolkit** that reproduces the paper's methodology —
  capacity classes, demand metrics, nearest-neighbor matching with a
  caliper, one-tailed binomial natural experiments (:mod:`repro.core`)
  and one entry point per paper table/figure (:mod:`repro.analysis`).

Quickstart::

    from repro import WorldConfig, build_world
    from repro.analysis import capacity

    world = build_world(WorldConfig(n_dasu_users=2000, n_fcc_users=400))
    result = capacity.table1(world.dasu.users)
    print(result.peak.row())
"""

from ._version import __version__
from .core import (
    Bin,
    BinSpec,
    DemandSummary,
    ExperimentResult,
    NaturalExperiment,
    PairedOutcome,
    binomial_test_greater,
    capacity_class,
    demand_summary,
    match_pairs,
)
from .datasets import World, WorldConfig, build_world
from .exceptions import ReproError

__all__ = [
    "Bin",
    "BinSpec",
    "DemandSummary",
    "ExperimentResult",
    "NaturalExperiment",
    "PairedOutcome",
    "ReproError",
    "World",
    "WorldConfig",
    "__version__",
    "binomial_test_greater",
    "build_world",
    "capacity_class",
    "demand_summary",
    "match_pairs",
]
