"""Geographic identity of subscriber networks.

The paper identifies a network by the tuple (ISP name, network prefix,
geolocated city); a user switching services moves between such tuples.
The :class:`NetworkPlanner` hands out deterministic, country-consistent
network identities, reusing the ISP names of the country's retail market.

Prefix octets are derived with a CRC32-based hash rather than Python's
builtin ``hash()``: the builtin is salted per interpreter process, and
the parallel world builder requires identical prefixes from every worker
process (and across separate CLI invocations, for the build cache).
"""

from __future__ import annotations

import zlib

import numpy as np

from ..core.upgrades import NetworkId
from ..exceptions import DatasetError

__all__ = ["NetworkPlanner", "sample_cities"]

_CITY_STEMS = (
    "North", "South", "East", "West", "New", "Old", "Port", "Lake",
    "Mount", "Fort", "Grand", "Little",
)
_CITY_ROOTS = (
    "field", "ton", "ville", "burg", "haven", "ford", "bridge", "wood",
    "gate", "view", "falls", "crest",
)


def _stable_hash(text: str) -> int:
    """A process-independent string hash (builtin ``hash`` is salted)."""
    return zlib.crc32(text.encode("utf-8"))


def sample_cities(rng: np.random.Generator, n_cities: int = 6) -> tuple[str, ...]:
    """Draw a country's city names; shared by every planner of a country."""
    if n_cities < 1:
        raise DatasetError("a country needs at least one city")
    return tuple(
        f"{_CITY_STEMS[int(rng.integers(len(_CITY_STEMS)))]}"
        f"{_CITY_ROOTS[int(rng.integers(len(_CITY_ROOTS)))]}"
        f"-{i}"
        for i in range(n_cities)
    )


class NetworkPlanner:
    """Deterministic generator of (ISP, prefix, city) identities.

    Prefixes are unique per (ISP, city) pair within a planner so that a
    service change always lands on a different tuple, the way the paper's
    switch detection requires. The parallel builder creates one planner
    per household, passing a pre-drawn country-level ``cities`` tuple
    (so city names stay country-consistent) and a per-user
    ``prefix_salt`` (so prefixes rarely collide across households).
    """

    def __init__(
        self,
        country: str,
        isps: tuple[str, ...],
        rng: np.random.Generator,
        n_cities: int = 6,
        cities: tuple[str, ...] | None = None,
        prefix_salt: int = 0,
    ) -> None:
        if not isps:
            raise DatasetError(f"{country}: needs at least one ISP")
        if cities is not None and not cities:
            raise DatasetError(f"{country}: needs at least one city")
        self.country = country
        self.isps = isps
        self._rng = rng
        self.cities = (
            cities if cities is not None else sample_cities(rng, n_cities)
        )
        self._prefix_salt = int(prefix_salt) % 256
        self._next_prefix: dict[tuple[str, str], int] = {}

    def _fresh_prefix(self, isp: str, city: str) -> str:
        index = self._next_prefix.get((isp, city), 0)
        self._next_prefix[(isp, city)] = index + 1
        isp_octet = 10 + (_stable_hash(f"{self.country}|{isp}") % 200)
        city_octet = _stable_hash(city) % 250
        return (
            f"{isp_octet}.{city_octet}."
            f"{(self._prefix_salt + index) % 256}.0/24"
        )

    def home_network(self, isp: str | None = None) -> NetworkId:
        """A fresh network identity for a new subscriber household."""
        if isp is None:
            isp = self.isps[int(self._rng.integers(len(self.isps)))]
        elif isp not in self.isps:
            raise DatasetError(f"{self.country}: unknown ISP {isp!r}")
        city = self.cities[int(self._rng.integers(len(self.cities)))]
        return NetworkId(isp=isp, prefix=self._fresh_prefix(isp, city), city=city)

    def switched_network(self, current: NetworkId) -> NetworkId:
        """The identity after a service change.

        Upgrading usually keeps the city (same home, new service — possibly
        a new ISP, always a new prefix); occasionally the user moved.
        """
        if self._rng.random() < 0.85:
            city = current.city
        else:
            city = self.cities[int(self._rng.integers(len(self.cities)))]
        if self._rng.random() < 0.5:
            isp = current.isp
        else:
            isp = self.isps[int(self._rng.integers(len(self.isps)))]
        return NetworkId(isp=isp, prefix=self._fresh_prefix(isp, city), city=city)
