"""Access-network substrate: technologies, links, paths and a TCP model.

These modules provide the physical-layer ground truth that the simulated
measurement clients (:mod:`repro.measurement`) observe: per-technology
latency and loss profiles, end-to-end paths toward measurement servers and
popular web sites, and a Mathis-style TCP throughput model that couples
quality to achievable rate.
"""

from .geo import NetworkPlanner
from .link import AccessLink
from .path import NetworkPath
from .tcp import effective_capacity_mbps, mathis_throughput_mbps
from .technology import TECH_PROFILES, TechnologyProfile, sample_technology

__all__ = [
    "AccessLink",
    "NetworkPath",
    "NetworkPlanner",
    "TECH_PROFILES",
    "TechnologyProfile",
    "effective_capacity_mbps",
    "mathis_throughput_mbps",
    "sample_technology",
]
