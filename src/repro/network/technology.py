"""Per-technology latency and loss profiles.

The paper observes (Sec. 2.2) that connections with very high latency
(> 500 ms) or very high loss (> 10%) are predominantly satellite or
wireless (WiMAX, cellular) services. These profiles encode that structure:
each access technology has a characteristic last-mile RTT range, a
log-uniform loss range, and a capacity ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..exceptions import MeasurementError
from ..market.plans import PlanTechnology

__all__ = ["TECH_PROFILES", "TechnologyProfile", "sample_technology"]


@dataclass(frozen=True)
class TechnologyProfile:
    """Physical characteristics of one access technology."""

    technology: PlanTechnology
    rtt_range_ms: tuple[float, float]
    loss_range: tuple[float, float]
    max_capacity_mbps: float
    #: RTT, in ms, that TCP effectively sees on this technology when a
    #: performance-enhancing proxy (PEP) splits the connection — standard
    #: on satellite services. ``None`` means no PEP.
    pep_rtt_ms: float | None = None

    def sample_access_rtt_ms(self, rng: np.random.Generator) -> float:
        """Draw a last-mile RTT for one subscriber line."""
        lo, hi = self.rtt_range_ms
        return float(np.exp(rng.uniform(np.log(lo), np.log(hi))))

    def sample_loss_fraction(
        self, rng: np.random.Generator, multiplier: float = 1.0
    ) -> float:
        """Draw an average loss rate, scaled by a country-quality multiplier.

        Losses are log-uniform within the technology's range; the country
        multiplier shifts the whole range (poorly provisioned national
        networks lose more everywhere). Capped at 30%: beyond that a line
        is unusable and would not appear in a measurement panel.
        """
        if multiplier <= 0:
            raise MeasurementError(
                f"loss multiplier must be positive, got {multiplier}"
            )
        lo, hi = self.loss_range
        base = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        return min(0.30, base * multiplier)


TECH_PROFILES: Mapping[PlanTechnology, TechnologyProfile] = {
    PlanTechnology.FIBER: TechnologyProfile(
        technology=PlanTechnology.FIBER,
        rtt_range_ms=(4.0, 18.0),
        loss_range=(2e-5, 3e-4),
        max_capacity_mbps=1000.0,
    ),
    PlanTechnology.CABLE: TechnologyProfile(
        technology=PlanTechnology.CABLE,
        rtt_range_ms=(10.0, 35.0),
        loss_range=(5e-5, 1.5e-3),
        max_capacity_mbps=200.0,
    ),
    PlanTechnology.DSL: TechnologyProfile(
        technology=PlanTechnology.DSL,
        rtt_range_ms=(18.0, 60.0),
        loss_range=(5e-5, 2.5e-3),
        max_capacity_mbps=25.0,
    ),
    PlanTechnology.WIRELESS: TechnologyProfile(
        technology=PlanTechnology.WIRELESS,
        rtt_range_ms=(50.0, 350.0),
        loss_range=(2e-3, 5e-2),
        max_capacity_mbps=20.0,
    ),
    PlanTechnology.SATELLITE: TechnologyProfile(
        technology=PlanTechnology.SATELLITE,
        # Forward error correction keeps satellite loss moderate; the
        # technology's handicap is latency, not loss.
        rtt_range_ms=(480.0, 900.0),
        loss_range=(5e-4, 8e-3),
        max_capacity_mbps=15.0,
        pep_rtt_ms=280.0,
    ),
}


def sample_technology(
    tech_mix: Mapping[PlanTechnology, float],
    capacity_mbps: float,
    rng: np.random.Generator,
) -> PlanTechnology:
    """Draw an access technology consistent with a subscriber's capacity.

    The country's technology mix is restricted to technologies whose
    ceiling can carry the plan's capacity, then renormalized. A country
    whose mix cannot deliver the capacity at all falls back to fiber (the
    only technology without a practical ceiling here).
    """
    if capacity_mbps <= 0:
        raise MeasurementError(
            f"capacity must be positive, got {capacity_mbps}"
        )
    feasible = {
        tech: share
        for tech, share in tech_mix.items()
        if TECH_PROFILES[tech].max_capacity_mbps >= capacity_mbps and share > 0
    }
    if not feasible:
        return PlanTechnology.FIBER
    techs = sorted(feasible, key=lambda t: t.value)
    shares = np.array([feasible[t] for t in techs], dtype=float)
    shares /= shares.sum()
    return techs[int(rng.choice(len(techs), p=shares))]
