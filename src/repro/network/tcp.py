"""Mathis-style TCP throughput model.

The coupling between connection quality and achievable demand runs through
TCP: sustained throughput of a loss-limited TCP flow is approximately

    rate <= (MSS / RTT) * (C / sqrt(p))

(Mathis et al., CCR 1997), with C ~= sqrt(3/2) for periodic loss. Real
household workloads multiplex several flows, so the aggregate ceiling is
``n_flows`` times the single-flow figure, never exceeding the line rate.
This is what makes very lossy or very distant connections unable to fill
their pipes — the mechanism behind the paper's Sec. 7 findings.
"""

from __future__ import annotations

import math

from ..exceptions import MeasurementError
from .path import NetworkPath

__all__ = [
    "DEFAULT_HOUSEHOLD_FLOWS",
    "MATHIS_CONSTANT",
    "effective_capacity_mbps",
    "mathis_throughput_mbps",
]

#: sqrt(3/2), the constant for periodic loss in the Mathis formula.
MATHIS_CONSTANT = math.sqrt(1.5)

#: Typical number of concurrent TCP flows in a busy household.
DEFAULT_HOUSEHOLD_FLOWS = 8

#: Standard Ethernet-era maximum segment size, in bytes.
DEFAULT_MSS_BYTES = 1460


def mathis_throughput_mbps(
    rtt_ms: float,
    loss_fraction: float,
    mss_bytes: int = DEFAULT_MSS_BYTES,
    n_flows: int = 1,
) -> float:
    """Aggregate TCP throughput ceiling in Mbps.

    Returns ``inf`` for loss-free paths (the formula only binds when loss
    is non-zero; the line rate caps throughput elsewhere).
    """
    if rtt_ms <= 0:
        raise MeasurementError(f"RTT must be positive, got {rtt_ms}")
    if not 0.0 <= loss_fraction < 1.0:
        raise MeasurementError(
            f"loss must be a fraction in [0, 1), got {loss_fraction}"
        )
    if mss_bytes <= 0 or n_flows <= 0:
        raise MeasurementError("MSS and flow count must be positive")
    if loss_fraction == 0.0:
        return math.inf
    rtt_s = rtt_ms / 1_000.0
    single_flow_bps = (
        (mss_bytes * 8.0) / rtt_s * MATHIS_CONSTANT / math.sqrt(loss_fraction)
    )
    return n_flows * single_flow_bps / 1e6


def effective_capacity_mbps(
    path: NetworkPath,
    n_flows: int = DEFAULT_HOUSEHOLD_FLOWS,
) -> float:
    """What the household can actually pull through the path.

    The minimum of the provisioned line rate and the TCP ceiling for the
    path's RTT and loss. For clean, short paths this is simply the line
    rate; very lossy lines are TCP-limited well below it. Technologies
    with a performance-enhancing proxy (satellite) cap the RTT that TCP
    effectively sees.
    """
    from .technology import TECH_PROFILES  # local import avoids a cycle

    rtt = path.ndt_rtt_ms
    pep = TECH_PROFILES[path.link.technology].pep_rtt_ms
    if pep is not None:
        rtt = min(rtt, pep)
    ceiling = mathis_throughput_mbps(
        rtt_ms=rtt,
        loss_fraction=path.loss_fraction,
        n_flows=n_flows,
    )
    return min(path.link.download_mbps, ceiling)
