"""The subscriber's access link: the ground truth a measurement sees."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import MeasurementError
from ..market.plans import PlanTechnology
from .technology import TECH_PROFILES

__all__ = ["AccessLink", "provision_link"]


@dataclass(frozen=True)
class AccessLink:
    """One subscriber line.

    ``download_mbps``/``upload_mbps`` are the *provisioned* capacities —
    what the line can actually carry, which the paper's NDT-based analysis
    estimates via the maximum measured throughput (it deliberately studies
    actual rather than advertised capacity). ``access_rtt_ms`` is the
    last-mile component of latency; ``loss_fraction`` the line's average
    packet-loss rate.
    """

    download_mbps: float
    upload_mbps: float
    technology: PlanTechnology
    access_rtt_ms: float
    loss_fraction: float

    def __post_init__(self) -> None:
        if self.download_mbps <= 0 or self.upload_mbps <= 0:
            raise MeasurementError("link capacities must be positive")
        if self.access_rtt_ms <= 0:
            raise MeasurementError("access RTT must be positive")
        if not 0.0 <= self.loss_fraction < 1.0:
            raise MeasurementError(
                f"loss must be a fraction in [0, 1), got {self.loss_fraction}"
            )


def provision_link(
    plan_download_mbps: float,
    plan_upload_mbps: float,
    technology: PlanTechnology,
    rng: np.random.Generator,
    loss_multiplier: float = 1.0,
) -> AccessLink:
    """Provision a physical line for an advertised plan.

    Real lines rarely deliver exactly the advertised rate: DSL degrades
    with loop length, cable with sharing, while fiber generally delivers
    (and sometimes slightly exceeds) the advertised figure. We draw the
    provisioning ratio accordingly and cap at the technology ceiling.
    """
    profile = TECH_PROFILES[technology]
    if technology is PlanTechnology.FIBER:
        ratio = float(rng.uniform(0.95, 1.1))
    elif technology is PlanTechnology.CABLE:
        ratio = float(rng.uniform(0.85, 1.05))
    elif technology is PlanTechnology.DSL:
        ratio = float(rng.uniform(0.78, 1.02))
    else:
        ratio = float(rng.uniform(0.5, 1.0))
    down = min(plan_download_mbps * ratio, profile.max_capacity_mbps)
    up = min(plan_upload_mbps * ratio, down)
    return AccessLink(
        download_mbps=max(0.05, down),
        upload_mbps=max(0.03, up),
        technology=technology,
        access_rtt_ms=profile.sample_access_rtt_ms(rng),
        loss_fraction=profile.sample_loss_fraction(rng, loss_multiplier),
    )
