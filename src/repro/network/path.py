"""End-to-end network paths from a subscriber to measurement targets.

Two destinations matter in the paper:

* the nearest **NDT measurement server** (hosted in content-provider and
  CDN networks, so its latency approximates latency to popular content);
* **popular web sites** (the Fig. 11 validation set: five Alexa top
  sites), whose latency additionally depends on how well CDNs cover the
  user's country.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import MeasurementError
from .link import AccessLink

__all__ = ["NetworkPath", "build_path"]


@dataclass(frozen=True)
class NetworkPath:
    """A subscriber's path to the measurement infrastructure.

    ``distance_rtt_ms`` is the wide-area component toward the nearest NDT
    server; ``cdn_gap_ms`` is the *additional* distance to popular content
    when local CDN presence is poor (near zero in well-served countries —
    the India analysis of Sec. 7.1 hinges on this being large there).
    ``path_loss_fraction`` is wide-area loss, normally negligible next to
    access-line loss.
    """

    link: AccessLink
    distance_rtt_ms: float
    cdn_gap_ms: float
    path_loss_fraction: float

    def __post_init__(self) -> None:
        if self.distance_rtt_ms < 0 or self.cdn_gap_ms < 0:
            raise MeasurementError("path latencies must be non-negative")
        if not 0.0 <= self.path_loss_fraction < 1.0:
            raise MeasurementError("path loss must be a fraction in [0, 1)")

    @property
    def ndt_rtt_ms(self) -> float:
        """True end-to-end RTT to the nearest NDT server."""
        return self.link.access_rtt_ms + self.distance_rtt_ms

    @property
    def web_rtt_ms(self) -> float:
        """True median RTT to popular web sites (CDN-dependent)."""
        return self.ndt_rtt_ms + self.cdn_gap_ms

    @property
    def loss_fraction(self) -> float:
        """Combined loss of access line and wide-area path."""
        combined = 1.0 - (1.0 - self.link.loss_fraction) * (
            1.0 - self.path_loss_fraction
        )
        return min(0.5, combined)


def build_path(
    link: AccessLink,
    extra_latency_ms: float,
    rng: np.random.Generator,
) -> NetworkPath:
    """Build a subscriber's path given the country's connectivity quality.

    ``extra_latency_ms`` is the country profile's median wide-area latency
    to content; individual subscribers vary around it. The CDN gap grows
    with the country's remoteness: users far from content are usually also
    far from CDN replicas.
    """
    if extra_latency_ms < 0:
        raise MeasurementError(
            f"extra latency must be non-negative, got {extra_latency_ms}"
        )
    distance = float(
        extra_latency_ms * np.exp(rng.normal(0.0, 0.35))
    )
    if extra_latency_ms >= 100.0:
        cdn_gap = float(rng.uniform(0.1, 0.4) * distance)
    else:
        cdn_gap = float(rng.uniform(0.0, 8.0))
    return NetworkPath(
        link=link,
        distance_rtt_ms=distance,
        cdn_gap_ms=cdn_gap,
        path_loss_fraction=float(
            min(0.01, np.exp(rng.uniform(np.log(1e-6), np.log(3e-4))))
        ),
    )
