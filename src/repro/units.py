"""Unit conversions shared across the library.

Conventions used everywhere in :mod:`repro`:

* throughput and capacity are expressed in **Mbps** (megabits per second,
  decimal: 1 Mbps = 1e6 bits per second) as ``float``;
* byte counters are raw **bytes** as ``int``;
* packet-loss rates are **fractions** in ``[0, 1]`` (the paper prints
  percentages; use :func:`fraction_to_percent` at the presentation layer);
* latency is in **milliseconds**;
* money is in **USD after purchasing-power-parity (PPP) adjustment** unless a
  name explicitly says otherwise (e.g. ``price_local``).
"""

from __future__ import annotations

from .exceptions import UnitError

BITS_PER_BYTE = 8
BITS_PER_KILOBIT = 1_000
BITS_PER_MEGABIT = 1_000_000
SECONDS_PER_HOUR = 3_600
SECONDS_PER_DAY = 86_400
HOURS_PER_DAY = 24

#: Wrap point of a 32-bit byte counter, as exposed by many UPnP gateways.
UINT32_WRAP = 2**32


def kbps_to_mbps(kbps: float) -> float:
    """Convert kilobits per second to megabits per second."""
    return kbps * BITS_PER_KILOBIT / BITS_PER_MEGABIT


def mbps_to_kbps(mbps: float) -> float:
    """Convert megabits per second to kilobits per second."""
    return mbps * BITS_PER_MEGABIT / BITS_PER_KILOBIT


def mbps_to_bytes_per_sec(mbps: float) -> float:
    """Convert megabits per second to bytes per second."""
    return mbps * BITS_PER_MEGABIT / BITS_PER_BYTE


def bytes_to_megabits(n_bytes: float) -> float:
    """Convert a byte count to megabits."""
    return n_bytes * BITS_PER_BYTE / BITS_PER_MEGABIT


def rate_mbps(n_bytes: float, interval_s: float) -> float:
    """Average rate, in Mbps, of ``n_bytes`` transferred over ``interval_s``.

    Raises :class:`~repro.exceptions.UnitError` for non-positive intervals or
    negative byte counts, which always indicate a caller bug.
    """
    if interval_s <= 0:
        raise UnitError(f"interval must be positive, got {interval_s!r}")
    if n_bytes < 0:
        raise UnitError(f"byte count must be non-negative, got {n_bytes!r}")
    return bytes_to_megabits(n_bytes) / interval_s


def bytes_for_rate(mbps: float, interval_s: float) -> int:
    """Number of whole bytes transferred at ``mbps`` over ``interval_s``."""
    if interval_s < 0:
        raise UnitError(f"interval must be non-negative, got {interval_s!r}")
    if mbps < 0:
        raise UnitError(f"rate must be non-negative, got {mbps!r}")
    return int(mbps_to_bytes_per_sec(mbps) * interval_s)


def fraction_to_percent(fraction: float) -> float:
    """Convert a fraction in [0, 1] to a percentage."""
    return fraction * 100.0


def percent_to_fraction(percent: float) -> float:
    """Convert a percentage to a fraction."""
    return percent / 100.0
